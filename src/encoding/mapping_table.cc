#include "encoding/mapping_table.h"

#include "util/bit_util.h"

namespace ebi {

namespace {

bool FitsWidth(uint64_t code, int width) {
  return width >= 64 || code < (uint64_t{1} << width);
}

}  // namespace

Result<MappingTable> MappingTable::Create(
    int width, const std::vector<uint64_t>& codes,
    std::optional<uint64_t> void_code, std::optional<uint64_t> null_code) {
  MappingTable table;
  table.width_ = width;
  table.void_code_ = void_code;
  table.null_code_ = null_code;

  size_t reserved = 0;
  if (void_code.has_value()) {
    if (!FitsWidth(*void_code, width)) {
      return Status::InvalidArgument("void code exceeds width");
    }
    ++reserved;
  }
  if (null_code.has_value()) {
    if (!FitsWidth(*null_code, width)) {
      return Status::InvalidArgument("null code exceeds width");
    }
    if (void_code.has_value() && *void_code == *null_code) {
      return Status::InvalidArgument("void and NULL codes collide");
    }
    ++reserved;
  }

  const size_t total = codes.size() + reserved;
  if (total > 0 && Log2Ceil(total) > width) {
    return Status::InvalidArgument(
        "width " + std::to_string(width) + " too small for " +
        std::to_string(total) + " codewords");
  }

  table.code_of_value_.reserve(codes.size());
  for (size_t id = 0; id < codes.size(); ++id) {
    const uint64_t code = codes[id];
    if (!FitsWidth(code, width)) {
      return Status::InvalidArgument("codeword exceeds width");
    }
    if ((void_code.has_value() && code == *void_code) ||
        (null_code.has_value() && code == *null_code)) {
      return Status::InvalidArgument("codeword collides with reserved code");
    }
    const auto [it, inserted] =
        table.value_of_code_.emplace(code, static_cast<ValueId>(id));
    if (!inserted) {
      return Status::InvalidArgument("duplicate codeword " +
                                     std::to_string(code));
    }
    table.code_of_value_.push_back(code);
  }
  return table;
}

Result<uint64_t> MappingTable::CodeOf(ValueId id) const {
  if (id >= code_of_value_.size()) {
    return Status::NotFound("ValueId " + std::to_string(id) +
                            " has no codeword");
  }
  return code_of_value_[id];
}

std::optional<ValueId> MappingTable::ValueOfCode(uint64_t code) const {
  const auto it = value_of_code_.find(code);
  if (it == value_of_code_.end()) {
    return std::nullopt;
  }
  return it->second;
}

Result<Cube> MappingTable::RetrievalFunction(ValueId id) const {
  EBI_ASSIGN_OR_RETURN(const uint64_t code, CodeOf(id));
  return Cube::MinTerm(code, width_);
}

Status MappingTable::AddValue(ValueId id, uint64_t code) {
  if (id != code_of_value_.size()) {
    return Status::InvalidArgument(
        "ValueIds must be added densely; expected " +
        std::to_string(code_of_value_.size()) + " got " + std::to_string(id));
  }
  if (!FitsWidth(code, width_)) {
    return Status::OutOfRange("codeword exceeds width " +
                              std::to_string(width_));
  }
  if ((void_code_.has_value() && code == *void_code_) ||
      (null_code_.has_value() && code == *null_code_)) {
    return Status::AlreadyExists("codeword reserved");
  }
  const auto [it, inserted] = value_of_code_.emplace(code, id);
  if (!inserted) {
    return Status::AlreadyExists("codeword " + std::to_string(code) +
                                 " already assigned");
  }
  code_of_value_.push_back(code);
  return Status::OK();
}

Status MappingTable::ExpandWidth(int new_width) {
  if (new_width < width_) {
    return Status::InvalidArgument("cannot shrink mapping width");
  }
  width_ = new_width;
  return Status::OK();
}

std::optional<uint64_t> MappingTable::FirstFreeCode() const {
  const uint64_t limit =
      width_ >= 64 ? ~uint64_t{0} : (uint64_t{1} << width_);
  for (uint64_t code = 0; code < limit; ++code) {
    const bool reserved = (void_code_.has_value() && code == *void_code_) ||
                          (null_code_.has_value() && code == *null_code_);
    if (!reserved && !value_of_code_.contains(code)) {
      return code;
    }
  }
  return std::nullopt;
}

std::vector<uint64_t> MappingTable::UnusedCodes(size_t limit) const {
  std::vector<uint64_t> out;
  const uint64_t end = width_ >= 64 ? ~uint64_t{0} : (uint64_t{1} << width_);
  for (uint64_t code = 0; code < end && out.size() < limit; ++code) {
    const bool used = value_of_code_.contains(code) ||
                      (void_code_.has_value() && code == *void_code_) ||
                      (null_code_.has_value() && code == *null_code_);
    if (!used) {
      out.push_back(code);
    }
  }
  return out;
}

size_t MappingTable::NumCodes() const {
  size_t n = value_of_code_.size();
  if (void_code_.has_value()) {
    ++n;
  }
  if (null_code_.has_value()) {
    ++n;
  }
  return n;
}

std::string MappingTable::ToString() const {
  std::string out;
  for (size_t id = 0; id < code_of_value_.size(); ++id) {
    out += 'v';
    out += std::to_string(id);
    out += " -> ";
    for (int b = width_ - 1; b >= 0; --b) {
      out += ((code_of_value_[id] >> b) & 1) ? '1' : '0';
    }
    out += "\n";
  }
  return out;
}

}  // namespace ebi
