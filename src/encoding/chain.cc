#include "encoding/chain.h"

#include <algorithm>
#include <bit>

#include "util/bit_util.h"

namespace ebi {

namespace {

/// Backtracking Hamiltonian-cycle search over the distance-1 graph.
bool ExtendChain(const std::vector<uint64_t>& codes,
                 std::vector<bool>* used, std::vector<uint64_t>* path) {
  if (path->size() == codes.size()) {
    return BinaryDistance(path->back(), path->front()) == 1;
  }
  for (size_t i = 0; i < codes.size(); ++i) {
    if ((*used)[i] || BinaryDistance(path->back(), codes[i]) != 1) {
      continue;
    }
    (*used)[i] = true;
    path->push_back(codes[i]);
    if (ExtendChain(codes, used, path)) {
      return true;
    }
    path->pop_back();
    (*used)[i] = false;
  }
  return false;
}

}  // namespace

bool IsChain(const std::vector<uint64_t>& sequence) {
  const size_t n = sequence.size();
  if (n < 2) {
    return false;
  }
  // Distinctness.
  std::vector<uint64_t> sorted = sequence;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return false;
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    if (BinaryDistance(sequence[i], sequence[i + 1]) != 1) {
      return false;
    }
  }
  return BinaryDistance(sequence[n - 1], sequence[0]) == 1;
}

bool PairwiseDistanceAtMost(const std::vector<uint64_t>& codes, int p) {
  for (size_t i = 0; i < codes.size(); ++i) {
    for (size_t j = i + 1; j < codes.size(); ++j) {
      if (BinaryDistance(codes[i], codes[j]) > p) {
        return false;
      }
    }
  }
  return true;
}

bool IsPrimeChain(const std::vector<uint64_t>& sequence) {
  const size_t n = sequence.size();
  if (!std::has_single_bit(n)) {
    return false;
  }
  const int p = std::countr_zero(n);
  // p == 0 (single element): Definition 2.3 needs n >= 2.
  if (!IsChain(sequence)) {
    return false;
  }
  return PairwiseDistanceAtMost(sequence, p);
}

std::optional<std::vector<uint64_t>> FindChain(
    const std::vector<uint64_t>& codes) {
  if (codes.size() < 2) {
    return std::nullopt;
  }
  // A Hamiltonian cycle in the hypercube visits codewords of alternating
  // parity, so a chain requires an equal split; this also rejects all odd
  // sizes cheaply before the exponential search.
  int odd = 0;
  for (uint64_t c : codes) {
    odd += std::popcount(c) & 1;
  }
  if (odd * 2 != static_cast<int>(codes.size())) {
    return std::nullopt;
  }
  std::vector<bool> used(codes.size(), false);
  std::vector<uint64_t> path;
  used[0] = true;
  path.push_back(codes[0]);
  if (ExtendChain(codes, &used, &path)) {
    return path;
  }
  return std::nullopt;
}

std::optional<std::vector<uint64_t>> FindPrimeChain(
    const std::vector<uint64_t>& codes) {
  if (!std::has_single_bit(codes.size())) {
    return std::nullopt;
  }
  const int p = std::countr_zero(codes.size());
  if (!PairwiseDistanceAtMost(codes, p)) {
    return std::nullopt;
  }
  return FindChain(codes);
}

std::vector<uint64_t> CanonicalPrimeChain(int p, uint64_t base) {
  const uint64_t n = uint64_t{1} << p;
  std::vector<uint64_t> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    out.push_back(base | BinaryToGray(i));
  }
  return out;
}

}  // namespace ebi
