#include "encoding/well_defined.h"

#include <algorithm>
#include <bit>

#include "encoding/chain.h"
#include "util/bit_util.h"

namespace ebi {

namespace {

/// Enumerates size-r subsets of `codes`, returning true as soon as `pred`
/// accepts one.
template <typename Pred>
bool AnySubset(const std::vector<uint64_t>& codes, size_t r, Pred pred) {
  const size_t n = codes.size();
  if (r > n) {
    return false;
  }
  std::vector<size_t> idx(r);
  for (size_t i = 0; i < r; ++i) {
    idx[i] = i;
  }
  for (;;) {
    std::vector<uint64_t> subset(r);
    for (size_t i = 0; i < r; ++i) {
      subset[i] = codes[idx[i]];
    }
    if (pred(subset)) {
      return true;
    }
    // Next combination.
    size_t i = r;
    while (i > 0 && idx[i - 1] == n - r + (i - 1)) {
      --i;
    }
    if (i == 0) {
      return false;
    }
    ++idx[i - 1];
    for (size_t j = i; j < r; ++j) {
      idx[j] = idx[j - 1] + 1;
    }
  }
}

bool HasPrimeChain(const std::vector<uint64_t>& codes) {
  return FindPrimeChain(codes).has_value();
}

}  // namespace

Result<bool> IsWellDefined(const MappingTable& mapping,
                           const std::vector<ValueId>& subdomain,
                           size_t domain_size) {
  const size_t n = subdomain.size();
  if (n < 2) {
    return Status::InvalidArgument(
        "well-definedness needs a subdomain of at least 2 values");
  }

  std::vector<uint64_t> codes;
  codes.reserve(n);
  for (ValueId id : subdomain) {
    EBI_ASSIGN_OR_RETURN(const uint64_t code, mapping.CodeOf(id));
    codes.push_back(code);
  }

  const int p = Log2Floor(n);
  const size_t pow_p = size_t{1} << p;

  // Case i: |s| = 2^p — a prime chain must exist on the codes themselves.
  if (n == pow_p) {
    return HasPrimeChain(codes);
  }

  // Cases ii/iii need: some 2^p-subset with a prime chain.
  const bool has_prime_subset =
      AnySubset(codes, pow_p,
                [](const std::vector<uint64_t>& s) { return HasPrimeChain(s); });
  if (!has_prime_subset) {
    return false;
  }

  if (n % 2 == 0) {
    // Case ii: chain over all of s, pairwise distance <= p+1.
    if (!PairwiseDistanceAtMost(codes, p + 1)) {
      return false;
    }
    return FindChain(codes).has_value();
  }

  // Case iii: odd |s| — some mapped value w outside s completes a chain
  // with pairwise distance <= p+1 over s ∪ {w}.
  for (ValueId w = 0; w < domain_size; ++w) {
    if (std::find(subdomain.begin(), subdomain.end(), w) !=
        subdomain.end()) {
      continue;
    }
    const Result<uint64_t> wcode = mapping.CodeOf(w);
    if (!wcode.ok()) {
      continue;
    }
    std::vector<uint64_t> extended = codes;
    extended.push_back(*wcode);
    if (PairwiseDistanceAtMost(extended, p + 1) &&
        FindChain(extended).has_value()) {
      return true;
    }
  }
  return false;
}

Result<int> AccessCost(const MappingTable& mapping,
                       const std::vector<ValueId>& subdomain,
                       const ReductionOptions& options) {
  std::vector<uint64_t> onset;
  onset.reserve(subdomain.size());
  for (ValueId id : subdomain) {
    EBI_ASSIGN_OR_RETURN(const uint64_t code, mapping.CodeOf(id));
    onset.push_back(code);
  }
  // Unused codewords can never occur in the data, so they are free
  // don't-cares for the reduction. Reserved codewords (void/NULL) stay
  // constrained to 0: a selection must not return void or NULL tuples.
  const std::vector<uint64_t> dc =
      mapping.UnusedCodes(options.max_dontcare_terms);
  const Cover cover =
      ReduceRetrievalFunction(onset, dc, mapping.width(), options);
  return DistinctVariables(cover);
}

Result<int> TotalAccessCost(const MappingTable& mapping,
                            const std::vector<std::vector<ValueId>>& preds,
                            const ReductionOptions& options) {
  int total = 0;
  for (const auto& pred : preds) {
    EBI_ASSIGN_OR_RETURN(const int cost, AccessCost(mapping, pred, options));
    total += cost;
  }
  return total;
}

}  // namespace ebi
