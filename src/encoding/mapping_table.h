#ifndef EBI_ENCODING_MAPPING_TABLE_H_
#define EBI_ENCODING_MAPPING_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "boolean/cube.h"
#include "storage/column.h"
#include "util/status.h"

namespace ebi {

/// The one-to-one mapping M^A of Definition 2.1: domain values (as dense
/// ValueIds of a column dictionary) to codewords of `width` bits.
///
/// Two special codewords may be reserved, following the paper's second
/// NULL-handling method ("assign the non-existing tuples and the tuples
/// with NULL value artificial key values, and encode these values together
/// with the other key values"):
///   * the void codeword for non-existing/deleted tuples — Theorem 2.1
///     recommends reserving code 0 so the existence conjunct can be dropped;
///   * the NULL codeword for SQL NULLs.
class MappingTable {
 public:
  MappingTable() = default;

  /// Creates a mapping for `codes[i]` = codeword of ValueId i. Codewords
  /// must be distinct and fit in `width` bits; `width` must be at least
  /// ceil(log2 of the total number of codewords including reserved ones).
  static Result<MappingTable> Create(
      int width, const std::vector<uint64_t>& codes,
      std::optional<uint64_t> void_code = std::nullopt,
      std::optional<uint64_t> null_code = std::nullopt);

  int width() const { return width_; }
  /// Number of mapped domain values (excluding void/NULL codewords).
  size_t NumValues() const { return code_of_value_.size(); }
  /// Total codewords in use, including reserved ones.
  size_t NumCodes() const;

  std::optional<uint64_t> void_code() const { return void_code_; }
  std::optional<uint64_t> null_code() const { return null_code_; }

  /// Codeword of a domain value.
  Result<uint64_t> CodeOf(ValueId id) const;
  /// ValueId mapped to `code`; nullopt for unused / reserved codewords.
  std::optional<ValueId> ValueOfCode(uint64_t code) const;

  /// The retrieval Boolean function f_v of Definition 2.1 (a k-variable
  /// min-term).
  Result<Cube> RetrievalFunction(ValueId id) const;

  /// Registers a codeword for a new domain value (updates *without* width
  /// expansion, Figure 2(a)). Fails if the code is taken or out of width.
  Status AddValue(ValueId id, uint64_t code);

  /// Grows the code width (updates *with* domain expansion, Figure 2(b)):
  /// existing codewords are zero-extended, matching the paper's step of
  /// adding a new all-zero bitmap vector B_k.
  Status ExpandWidth(int new_width);

  /// First codeword in [0, 2^width) not currently assigned; nullopt if the
  /// code space is full.
  std::optional<uint64_t> FirstFreeCode() const;

  /// Unused codewords (don't-cares for logical reduction), at most `limit`.
  std::vector<uint64_t> UnusedCodes(size_t limit) const;

  /// All assigned (value, code) pairs in ValueId order; for inspection.
  const std::vector<uint64_t>& codes() const { return code_of_value_; }

  std::string ToString() const;

 private:
  int width_ = 0;
  std::vector<uint64_t> code_of_value_;  // by ValueId
  std::unordered_map<uint64_t, ValueId> value_of_code_;
  std::optional<uint64_t> void_code_;
  std::optional<uint64_t> null_code_;
};

}  // namespace ebi

#endif  // EBI_ENCODING_MAPPING_TABLE_H_
