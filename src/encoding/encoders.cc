#include "encoding/encoders.h"

#include <algorithm>
#include <optional>

#include "util/bit_util.h"

namespace ebi {

namespace {

size_t TotalCodes(size_t m, const EncoderOptions& options) {
  return m + (options.reserve_void_zero ? 1 : 0) +
         (options.encode_null ? 1 : 0);
}

struct ReservedCodes {
  std::optional<uint64_t> void_code;
  std::optional<uint64_t> null_code;
};

/// Builds the mapping from an ordered list of candidate codewords: reserved
/// codes are taken off the front in (void, NULL) order, values get the
/// rest.
Result<MappingTable> FromCodeSequence(size_t m, int width,
                                      const std::vector<uint64_t>& sequence,
                                      const EncoderOptions& options) {
  ReservedCodes reserved;
  size_t next = 0;
  if (options.reserve_void_zero) {
    reserved.void_code = 0;
  }
  if (options.encode_null) {
    // First sequence entry that is not the void code.
    while (reserved.void_code.has_value() &&
           sequence[next] == *reserved.void_code) {
      ++next;
    }
    reserved.null_code = sequence[next];
    ++next;
  }
  std::vector<uint64_t> codes;
  codes.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    while ((reserved.void_code.has_value() &&
            sequence[next] == *reserved.void_code) ||
           (reserved.null_code.has_value() &&
            sequence[next] == *reserved.null_code)) {
      ++next;
    }
    codes.push_back(sequence[next]);
    ++next;
  }
  return MappingTable::Create(width, codes, reserved.void_code,
                              reserved.null_code);
}

}  // namespace

int WidthFor(size_t m, const EncoderOptions& options) {
  return Log2Ceil(TotalCodes(m, options)) + options.extra_width;
}

Result<MappingTable> MakeSequentialMapping(size_t m,
                                           const EncoderOptions& options) {
  if (m == 0) {
    return Status::InvalidArgument("empty domain");
  }
  const int width = WidthFor(m, options);
  std::vector<uint64_t> sequence(TotalCodes(m, options) + 1);
  for (size_t i = 0; i < sequence.size(); ++i) {
    sequence[i] = i;
  }
  return FromCodeSequence(m, width, sequence, options);
}

Result<MappingTable> MakeGrayMapping(size_t m, const EncoderOptions& options) {
  if (m == 0) {
    return Status::InvalidArgument("empty domain");
  }
  const int width = WidthFor(m, options);
  // Enough Gray codewords to skip past any reserved collisions. gray(0)=0,
  // so the void code 0 is skipped naturally at the head.
  std::vector<uint64_t> sequence(TotalCodes(m, options) + 2);
  for (size_t i = 0; i < sequence.size(); ++i) {
    sequence[i] = BinaryToGray(i);
  }
  return FromCodeSequence(m, width, sequence, options);
}

Result<MappingTable> MakeRandomMapping(size_t m, Rng* rng,
                                       const EncoderOptions& options) {
  if (m == 0) {
    return Status::InvalidArgument("empty domain");
  }
  const int width = WidthFor(m, options);
  const uint64_t space = uint64_t{1} << width;
  std::vector<uint64_t> sequence(space);
  for (uint64_t i = 0; i < space; ++i) {
    sequence[i] = i;
  }
  rng->Shuffle(&sequence);
  return FromCodeSequence(m, width, sequence, options);
}

Result<MappingTable> MakeTotalOrderMapping(size_t m,
                                           const EncoderOptions& options) {
  // The sequential assignment hands out strictly increasing codewords, so
  // it already preserves the total order of rank-ordered ValueIds.
  return MakeSequentialMapping(m, options);
}

}  // namespace ebi
