#ifndef EBI_ENCODING_HIERARCHY_H_
#define EBI_ENCODING_HIERARCHY_H_

#include <string>
#include <vector>

#include "encoding/optimizer.h"
#include "util/status.h"

namespace ebi {

/// One element of a dimension hierarchy level: a named group of base
/// values, e.g. company "a" = branches {1,2,3,4}. Relationships may be m:N
/// (Section 2.3: "the relationships between hierarchy elements are not
/// necessarily 1:N"), so a base value may appear in several groups.
struct HierarchyGroup {
  std::string name;
  std::vector<ValueId> members;  // Base-level ValueIds.
};

/// A named hierarchy level, e.g. "company" or "alliance", whose groups all
/// resolve (transitively) to base-level values.
struct HierarchyLevel {
  std::string name;
  std::vector<HierarchyGroup> groups;
};

/// A dimension hierarchy over a base attribute with `base_cardinality`
/// distinct values (the SALESPOINT example of Figure 4/5).
class Hierarchy {
 public:
  explicit Hierarchy(size_t base_cardinality)
      : base_cardinality_(base_cardinality) {}

  size_t base_cardinality() const { return base_cardinality_; }

  /// Adds a level; group members must be valid base ValueIds.
  Status AddLevel(HierarchyLevel level);

  const std::vector<HierarchyLevel>& levels() const { return levels_; }

  /// Looks up a group's member set, e.g. ("alliance", "X").
  Result<std::vector<ValueId>> Members(const std::string& level,
                                       const std::string& group) const;

  /// All group member-sets across all levels — the predicate set P of the
  /// hierarchy-encoding construction (Section 2.3): selections along
  /// dimension elements.
  PredicateSet AllGroupPredicates() const;

  /// Names of the groups of `level` that contain base value `v` — the
  /// roll-up direction of a drill-down. m:N memberships mean a value may
  /// belong to several groups (branch 3 is in companies a *and* d).
  Result<std::vector<std::string>> GroupsContaining(
      const std::string& level, ValueId v) const;

  /// Base values reached by drilling a group of `from_level` down to the
  /// base — for the paper's m:N hierarchies, just the member set; exposed
  /// by name for symmetric roll-up/drill-down call sites.
  Result<std::vector<ValueId>> DrillDown(const std::string& from_level,
                                         const std::string& group) const {
    return Members(from_level, group);
  }

 private:
  size_t base_cardinality_;
  std::vector<HierarchyLevel> levels_;
};

/// Builds a hierarchy encoding: a mapping for the base attribute that is
/// optimized (greedy + annealing) for selections on every hierarchy
/// element, so roll-ups/drill-downs touch few bitmap vectors.
Result<MappingTable> EncodeHierarchy(const Hierarchy& hierarchy,
                                     const OptimizerOptions& options =
                                         OptimizerOptions(),
                                     const EncoderOptions& encoder_options =
                                         EncoderOptions());

}  // namespace ebi

#endif  // EBI_ENCODING_HIERARCHY_H_
