#include "encoding/optimizer.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "encoding/well_defined.h"
#include "util/random.h"

namespace ebi {

namespace {

/// Orders ValueIds so values sharing predicates sit next to each other:
/// predicates are visited largest-first and append their unseen members;
/// untouched values follow in id order.
std::vector<ValueId> AffinityOrder(size_t m, const PredicateSet& predicates) {
  std::vector<size_t> pred_order(predicates.size());
  for (size_t i = 0; i < predicates.size(); ++i) {
    pred_order[i] = i;
  }
  std::stable_sort(pred_order.begin(), pred_order.end(),
                   [&predicates](size_t a, size_t b) {
                     return predicates[a].size() > predicates[b].size();
                   });

  std::vector<ValueId> order;
  order.reserve(m);
  std::vector<bool> seen(m, false);
  for (size_t pi : pred_order) {
    for (ValueId v : predicates[pi]) {
      if (v < m && !seen[v]) {
        seen[v] = true;
        order.push_back(v);
      }
    }
  }
  for (ValueId v = 0; v < m; ++v) {
    if (!seen[v]) {
      order.push_back(v);
    }
  }
  return order;
}

/// C(n, r) with saturation.
uint64_t BinomialSaturated(uint64_t n, uint64_t r, uint64_t cap) {
  if (r > n) {
    return 0;
  }
  r = std::min(r, n - r);
  uint64_t result = 1;
  for (uint64_t i = 1; i <= r; ++i) {
    if (result > cap) {
      return cap + 1;
    }
    result = result * (n - r + i) / i;
  }
  return result;
}

}  // namespace

Result<MappingTable> GreedyEncode(size_t m, const PredicateSet& predicates,
                                  const EncoderOptions& encoder_options) {
  if (m == 0) {
    return Status::InvalidArgument("empty domain");
  }
  EBI_ASSIGN_OR_RETURN(MappingTable gray,
                       MakeGrayMapping(m, encoder_options));
  const std::vector<ValueId> order = AffinityOrder(m, predicates);

  // Gray position i (as handed out by MakeGrayMapping, which skips reserved
  // codewords) goes to the i-th value in affinity order.
  std::vector<uint64_t> codes(m);
  for (size_t i = 0; i < m; ++i) {
    EBI_ASSIGN_OR_RETURN(const uint64_t code,
                         gray.CodeOf(static_cast<ValueId>(i)));
    codes[order[i]] = code;
  }
  return MappingTable::Create(gray.width(), codes, gray.void_code(),
                              gray.null_code());
}

Result<MappingTable> AnnealEncode(size_t m, const PredicateSet& predicates,
                                  const OptimizerOptions& options,
                                  const EncoderOptions& encoder_options) {
  EBI_ASSIGN_OR_RETURN(MappingTable best,
                       GreedyEncode(m, predicates, encoder_options));
  EBI_ASSIGN_OR_RETURN(
      int best_cost, TotalAccessCost(best, predicates, options.reduction));

  // Sequential codes are a strong start when predicates select consecutive
  // values; begin from whichever start is cheaper.
  EBI_ASSIGN_OR_RETURN(MappingTable sequential,
                       MakeSequentialMapping(m, encoder_options));
  EBI_ASSIGN_OR_RETURN(
      const int sequential_cost,
      TotalAccessCost(sequential, predicates, options.reduction));
  if (sequential_cost < best_cost) {
    best = std::move(sequential);
    best_cost = sequential_cost;
  }

  std::vector<uint64_t> current = best.codes();
  int current_cost = best_cost;
  const int width = best.width();
  const auto void_code = best.void_code();

  // Free codewords the annealer may swap into.
  std::vector<uint64_t> free_codes = best.UnusedCodes(1024);

  Rng rng(options.seed);
  for (int step = 0; step < options.iterations && best_cost > 0; ++step) {
    const double temperature =
        options.initial_temperature *
        (1.0 - static_cast<double>(step) / options.iterations);

    std::vector<uint64_t> proposal = current;
    const size_t a = static_cast<size_t>(rng.UniformInt(m));
    const bool use_free = !free_codes.empty() && rng.Bernoulli(0.3);
    size_t free_slot = 0;
    if (use_free) {
      free_slot = static_cast<size_t>(rng.UniformInt(free_codes.size()));
      proposal[a] = free_codes[free_slot];
    } else {
      size_t b = static_cast<size_t>(rng.UniformInt(m));
      if (a == b) {
        continue;
      }
      std::swap(proposal[a], proposal[b]);
    }

    EBI_ASSIGN_OR_RETURN(
        MappingTable candidate,
        MappingTable::Create(width, proposal, void_code, best.null_code()));
    const Result<int> cost_or =
        TotalAccessCost(candidate, predicates, options.reduction);
    if (!cost_or.ok()) {
      return cost_or.status();
    }
    const int cost = *cost_or;

    const int delta = cost - current_cost;
    const bool accept =
        delta <= 0 ||
        (temperature > 0 &&
         rng.UniformDouble() < std::exp(-delta / temperature));
    if (accept) {
      if (use_free) {
        // The old code of value `a` becomes free.
        std::swap(free_codes[free_slot], current[a]);
        current[a] = proposal[a];
      } else {
        current = std::move(proposal);
      }
      current_cost = cost;
      if (cost < best_cost) {
        best_cost = cost;
        best = std::move(candidate);
      }
    }
  }
  return best;
}

Result<MappingTable> TotalOrderOptimizedEncode(
    size_t m, const PredicateSet& predicates,
    const EncoderOptions& encoder_options, uint64_t max_combinations) {
  EBI_ASSIGN_OR_RETURN(MappingTable best,
                       MakeTotalOrderMapping(m, encoder_options));
  if (m == 0 || predicates.empty()) {
    return best;
  }
  EBI_ASSIGN_OR_RETURN(int best_cost, TotalAccessCost(best, predicates));

  // Candidate pool: every non-reserved codeword, ascending. An increasing
  // assignment is an m-subset of the pool taken in order.
  const int width = best.width();
  std::vector<uint64_t> pool;
  const uint64_t space = uint64_t{1} << width;
  for (uint64_t code = 0; code < space; ++code) {
    const bool reserved =
        (best.void_code().has_value() && code == *best.void_code()) ||
        (best.null_code().has_value() && code == *best.null_code());
    if (!reserved) {
      pool.push_back(code);
    }
  }
  if (BinomialSaturated(pool.size(), m, max_combinations) >
      max_combinations) {
    return best;  // Too many assignments; the sequential one stands.
  }

  // Enumerate m-subsets of the pool (indices ascending => codes
  // ascending => order preserved).
  std::vector<size_t> idx(m);
  for (size_t i = 0; i < m; ++i) {
    idx[i] = i;
  }
  for (;;) {
    std::vector<uint64_t> codes(m);
    for (size_t i = 0; i < m; ++i) {
      codes[i] = pool[idx[i]];
    }
    Result<MappingTable> candidate = MappingTable::Create(
        width, codes, best.void_code(), best.null_code());
    if (candidate.ok()) {
      EBI_ASSIGN_OR_RETURN(const int cost,
                           TotalAccessCost(*candidate, predicates));
      if (cost < best_cost) {
        best_cost = cost;
        best = std::move(candidate).value();
      }
    }
    // Next combination.
    size_t i = m;
    while (i > 0 && idx[i - 1] == pool.size() - m + (i - 1)) {
      --i;
    }
    if (i == 0) {
      break;
    }
    ++idx[i - 1];
    for (size_t j = i; j < m; ++j) {
      idx[j] = idx[j - 1] + 1;
    }
  }
  return best;
}

}  // namespace ebi
