#include "encoding/hierarchy.h"

#include <algorithm>

namespace ebi {

Status Hierarchy::AddLevel(HierarchyLevel level) {
  for (const HierarchyGroup& group : level.groups) {
    if (group.members.empty()) {
      return Status::InvalidArgument("group " + group.name + " of level " +
                                     level.name + " is empty");
    }
    for (ValueId v : group.members) {
      if (v >= base_cardinality_) {
        return Status::OutOfRange("group " + group.name +
                                  " references base value " +
                                  std::to_string(v) + " out of range");
      }
    }
  }
  for (const HierarchyLevel& existing : levels_) {
    if (existing.name == level.name) {
      return Status::AlreadyExists("level " + level.name +
                                   " already exists");
    }
  }
  levels_.push_back(std::move(level));
  return Status::OK();
}

Result<std::vector<ValueId>> Hierarchy::Members(
    const std::string& level, const std::string& group) const {
  for (const HierarchyLevel& l : levels_) {
    if (l.name != level) {
      continue;
    }
    for (const HierarchyGroup& g : l.groups) {
      if (g.name == group) {
        return g.members;
      }
    }
    return Status::NotFound("group " + group + " not found in level " +
                            level);
  }
  return Status::NotFound("level " + level + " not found");
}

Result<std::vector<std::string>> Hierarchy::GroupsContaining(
    const std::string& level, ValueId v) const {
  for (const HierarchyLevel& l : levels_) {
    if (l.name != level) {
      continue;
    }
    std::vector<std::string> out;
    for (const HierarchyGroup& g : l.groups) {
      if (std::find(g.members.begin(), g.members.end(), v) !=
          g.members.end()) {
        out.push_back(g.name);
      }
    }
    return out;
  }
  return Status::NotFound("level " + level + " not found");
}

PredicateSet Hierarchy::AllGroupPredicates() const {
  PredicateSet predicates;
  for (const HierarchyLevel& level : levels_) {
    for (const HierarchyGroup& group : level.groups) {
      predicates.push_back(group.members);
    }
  }
  return predicates;
}

Result<MappingTable> EncodeHierarchy(const Hierarchy& hierarchy,
                                     const OptimizerOptions& options,
                                     const EncoderOptions& encoder_options) {
  return AnnealEncode(hierarchy.base_cardinality(),
                      hierarchy.AllGroupPredicates(), options,
                      encoder_options);
}

}  // namespace ebi
