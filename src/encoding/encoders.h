#ifndef EBI_ENCODING_ENCODERS_H_
#define EBI_ENCODING_ENCODERS_H_

#include <cstddef>

#include "encoding/mapping_table.h"
#include "util/random.h"
#include "util/status.h"

namespace ebi {

/// Shared knobs for the mapping-table factories.
struct EncoderOptions {
  /// Reserve codeword 0 for non-existing (void) tuples, per Theorem 2.1's
  /// recommendation: selections on existing tuples then never need the
  /// existence conjunct.
  bool reserve_void_zero = false;
  /// Allocate a codeword for SQL NULL so NULLs are encoded "together with
  /// the other key values" (the paper's preferred NULL treatment).
  bool encode_null = false;
  /// Extra width beyond the minimum ceil(log2(total codes)); spare bits are
  /// don't-care capacity for future domain expansion.
  int extra_width = 0;
};

/// Code width needed for `m` values under `options`.
int WidthFor(size_t m, const EncoderOptions& options = EncoderOptions());

/// Sequential (binary counting) encoding: ValueId i gets the i-th free
/// codeword. This is the trivial encoding of "dynamic bitmaps" (Section 4)
/// and is also total-order preserving when ValueIds are rank order.
Result<MappingTable> MakeSequentialMapping(
    size_t m, const EncoderOptions& options = EncoderOptions());

/// Reflected-Gray-code encoding: consecutive ValueIds differ in exactly one
/// bit, so any run of consecutive values forms a chain (Definition 2.3) —
/// the natural "good" encoding for selections over consecutive values.
Result<MappingTable> MakeGrayMapping(
    size_t m, const EncoderOptions& options = EncoderOptions());

/// Uniformly random one-to-one encoding — the "improper mapping" baseline
/// of Figure 3(b).
Result<MappingTable> MakeRandomMapping(
    size_t m, Rng* rng, const EncoderOptions& options = EncoderOptions());

/// Total-order preserving encoding (Section 2.3): codewords are strictly
/// increasing in ValueId order, so "j < A < i" predicates translate to code
/// ranges. ValueIds must be rank order (sorted domain).
Result<MappingTable> MakeTotalOrderMapping(
    size_t m, const EncoderOptions& options = EncoderOptions());

}  // namespace ebi

#endif  // EBI_ENCODING_ENCODERS_H_
