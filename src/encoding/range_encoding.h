#ifndef EBI_ENCODING_RANGE_ENCODING_H_
#define EBI_ENCODING_RANGE_ENCODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "boolean/cover.h"
#include "boolean/reduction.h"
#include "encoding/mapping_table.h"
#include "encoding/optimizer.h"
#include "util/status.h"

namespace ebi {

/// A half-open integer range [lo, hi).
struct HalfOpenRange {
  int64_t lo = 0;
  int64_t hi = 0;

  bool Contains(int64_t v) const { return v >= lo && v < hi; }
  std::string ToString() const;

  friend bool operator==(const HalfOpenRange& a, const HalfOpenRange& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// Range-based encoded bitmap index support (Section 2.3, Figures 7/8).
///
/// The attribute domain [domain_lo, domain_hi) is partitioned into the
/// disjoint intervals induced by a set of predefined range selections; the
/// intervals — not individual values — are then encoded, with the encoding
/// optimized so each predefined selection reduces to few bitmap vectors.
class RangeBasedEncoding {
 public:
  /// Builds the partition and an optimized interval encoding.
  static Result<RangeBasedEncoding> Create(
      int64_t domain_lo, int64_t domain_hi,
      const std::vector<HalfOpenRange>& predefined,
      const OptimizerOptions& options = OptimizerOptions());

  /// The disjoint partition, in ascending order (Figure 7).
  const std::vector<HalfOpenRange>& intervals() const { return intervals_; }

  /// Index of the interval containing `value`, or OutOfRange.
  Result<size_t> IntervalOf(int64_t value) const;

  /// Interval index -> codeword mapping (Figure 8(a)).
  const MappingTable& mapping() const { return mapping_; }

  /// The reduced retrieval function for the selection lo <= A < hi
  /// (Figure 8(b)). The bounds must align with partition boundaries —
  /// otherwise the range is not expressible over intervals and the caller
  /// should fall back to a total-order-preserving value encoding (the
  /// paper's own advice for non-predefinable ranges).
  Result<Cover> CoverForRange(int64_t lo, int64_t hi,
                              const ReductionOptions& options =
                                  ReductionOptions()) const;

 private:
  std::vector<HalfOpenRange> intervals_;
  MappingTable mapping_;
};

}  // namespace ebi

#endif  // EBI_ENCODING_RANGE_ENCODING_H_
