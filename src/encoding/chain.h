#ifndef EBI_ENCODING_CHAIN_H_
#define EBI_ENCODING_CHAIN_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace ebi {

/// Implements Definitions 2.2-2.4 of the paper.
///
/// A *chain* on a set of distinct codewords is a cyclic ordering in which
/// consecutive codewords (and the last/first pair) have binary distance 1 —
/// i.e. a Hamiltonian cycle in the hypercube subgraph induced by the set.
/// A *prime chain* additionally requires |s| = 2^p and all pairwise
/// distances <= p.
///
/// Chain search is exact backtracking; intended for the subdomain sizes in
/// selection predicates (tens of codewords), not whole code spaces.

/// True iff `sequence` (of distinct codewords, n >= 2) is a chain
/// (Definition 2.3).
bool IsChain(const std::vector<uint64_t>& sequence);

/// True iff `sequence` is a prime chain on its codeword set
/// (Definition 2.4): it is a chain, the size is a power of two (2^p), and
/// every pair of codewords has binary distance <= p.
bool IsPrimeChain(const std::vector<uint64_t>& sequence);

/// Finds a chain ordering of `codes` if one exists.
std::optional<std::vector<uint64_t>> FindChain(
    const std::vector<uint64_t>& codes);

/// Finds a prime-chain ordering of `codes` if one exists (requires the
/// pairwise-distance bound to hold — that is a property of the set).
std::optional<std::vector<uint64_t>> FindPrimeChain(
    const std::vector<uint64_t>& codes);

/// True iff every pair in `codes` has binary distance <= p.
bool PairwiseDistanceAtMost(const std::vector<uint64_t>& codes, int p);

/// The 2^p codewords of a canonical prime chain embedded at `base`: the
/// reflected Gray code over the lowest p bits, offset by `base` (whose low
/// p bits must be zero). Consecutive entries differ in one bit and the last
/// wraps to the first, and all pairwise distances are <= p.
std::vector<uint64_t> CanonicalPrimeChain(int p, uint64_t base);

}  // namespace ebi

#endif  // EBI_ENCODING_CHAIN_H_
