#ifndef EBI_ENCODING_WELL_DEFINED_H_
#define EBI_ENCODING_WELL_DEFINED_H_

#include <cstdint>
#include <vector>

#include "boolean/reduction.h"
#include "encoding/mapping_table.h"
#include "storage/column.h"
#include "util/status.h"

namespace ebi {

/// Checks Definition 2.5: whether `mapping` is well-defined with respect to
/// the selection "A IN subdomain".
///
/// `subdomain` holds the selected ValueIds, `domain_size` the number of
/// mapped values |A| (candidates for the odd-case witness w are all mapped
/// values outside the subdomain). Exact but exponential in the subdomain
/// size (subset enumeration + Hamiltonian search); intended for |s| <~ 16,
/// the size of hand-written IN-lists.
Result<bool> IsWellDefined(const MappingTable& mapping,
                           const std::vector<ValueId>& subdomain,
                           size_t domain_size);

/// The operational cost the definitions are designed to minimize: the
/// number of distinct bitmap vectors referenced by the *reduced* retrieval
/// expression for "A IN subdomain" (Theorem 2.2's metric). Unused codewords
/// and the void codeword are injected as don't-cares.
Result<int> AccessCost(const MappingTable& mapping,
                       const std::vector<ValueId>& subdomain,
                       const ReductionOptions& options = ReductionOptions());

/// Sum of AccessCost over a set of selection predicates (Theorem 2.3's
/// objective).
Result<int> TotalAccessCost(const MappingTable& mapping,
                            const std::vector<std::vector<ValueId>>& preds,
                            const ReductionOptions& options =
                                ReductionOptions());

}  // namespace ebi

#endif  // EBI_ENCODING_WELL_DEFINED_H_
