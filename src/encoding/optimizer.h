#ifndef EBI_ENCODING_OPTIMIZER_H_
#define EBI_ENCODING_OPTIMIZER_H_

#include <cstddef>
#include <vector>

#include "boolean/reduction.h"
#include "encoding/encoders.h"
#include "encoding/mapping_table.h"
#include "util/status.h"

namespace ebi {

/// A selection predicate for encoding optimization: the set of ValueIds in
/// an "A IN {...}" list. The optimizer minimizes Theorem 2.3's objective —
/// the total number of bitmap vectors read over all predicates.
using PredicateSet = std::vector<std::vector<ValueId>>;

/// Tuning for the simulated-annealing search. The paper (Sections 2.2 and
/// 3.2) leaves encoding search as future work, noting brute force is
/// exponential and that "some heuristics" exist; these are ours.
struct OptimizerOptions {
  /// Annealing step budget. Each step evaluates all predicates once.
  int iterations = 2000;
  double initial_temperature = 1.5;
  uint64_t seed = 42;
  ReductionOptions reduction;
};

/// Greedy heuristic: orders values so that co-accessed values are adjacent
/// (predicates processed largest-first), then hands out consecutive Gray
/// codewords, so every predicate's codes form chain-like clusters.
Result<MappingTable> GreedyEncode(size_t m, const PredicateSet& predicates,
                                  const EncoderOptions& encoder_options =
                                      EncoderOptions());

/// Simulated annealing on top of the greedy start: proposes codeword swaps
/// (value<->value or value<->unused code) and accepts by the Metropolis
/// rule on the total access cost. Exact-reduction cost evaluation makes
/// this suitable for domains up to a few hundred values.
Result<MappingTable> AnnealEncode(size_t m, const PredicateSet& predicates,
                                  const OptimizerOptions& options =
                                      OptimizerOptions(),
                                  const EncoderOptions& encoder_options =
                                      EncoderOptions());

/// The Figure 6 construction: a *total-order preserving* mapping (codes
/// strictly increasing in ValueId order, so "j < A < i" stays a code
/// range) that is additionally optimized for the favored selections in
/// `predicates`. Exhaustively searches the C(2^width, m) increasing code
/// assignments when at most `max_combinations` exist; otherwise returns
/// the plain sequential mapping (still order-preserving). Set
/// `encoder_options.extra_width` to widen the code space and give the
/// search room.
Result<MappingTable> TotalOrderOptimizedEncode(
    size_t m, const PredicateSet& predicates,
    const EncoderOptions& encoder_options = EncoderOptions(),
    uint64_t max_combinations = 500000);

}  // namespace ebi

#endif  // EBI_ENCODING_OPTIMIZER_H_
