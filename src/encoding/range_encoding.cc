#include "encoding/range_encoding.h"

#include <algorithm>

namespace ebi {

std::string HalfOpenRange::ToString() const {
  std::string out = "[";
  out += std::to_string(lo);
  out += ',';
  out += std::to_string(hi);
  out += ')';
  return out;
}

Result<RangeBasedEncoding> RangeBasedEncoding::Create(
    int64_t domain_lo, int64_t domain_hi,
    const std::vector<HalfOpenRange>& predefined,
    const OptimizerOptions& options) {
  if (domain_lo >= domain_hi) {
    return Status::InvalidArgument("empty domain");
  }
  // Figure 7: the union of all range endpoints partitions the domain.
  std::vector<int64_t> cuts = {domain_lo, domain_hi};
  for (const HalfOpenRange& r : predefined) {
    if (r.lo >= r.hi) {
      return Status::InvalidArgument("empty predefined range " +
                                     r.ToString());
    }
    if (r.lo < domain_lo || r.hi > domain_hi) {
      return Status::OutOfRange("predefined range " + r.ToString() +
                                " outside the domain");
    }
    cuts.push_back(r.lo);
    cuts.push_back(r.hi);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  RangeBasedEncoding out;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    out.intervals_.push_back(HalfOpenRange{cuts[i], cuts[i + 1]});
  }

  // Each predefined selection becomes a predicate over interval ids.
  PredicateSet predicates;
  for (const HalfOpenRange& r : predefined) {
    std::vector<ValueId> ids;
    for (size_t i = 0; i < out.intervals_.size(); ++i) {
      if (out.intervals_[i].lo >= r.lo && out.intervals_[i].hi <= r.hi) {
        ids.push_back(static_cast<ValueId>(i));
      }
    }
    predicates.push_back(std::move(ids));
  }

  EBI_ASSIGN_OR_RETURN(
      out.mapping_,
      AnnealEncode(out.intervals_.size(), predicates, options));
  return out;
}

Result<size_t> RangeBasedEncoding::IntervalOf(int64_t value) const {
  // Binary search over the ascending disjoint intervals.
  size_t lo = 0;
  size_t hi = intervals_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (intervals_[mid].Contains(value)) {
      return mid;
    }
    if (value < intervals_[mid].lo) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return Status::OutOfRange("value " + std::to_string(value) +
                            " outside the encoded domain");
}

Result<Cover> RangeBasedEncoding::CoverForRange(
    int64_t lo, int64_t hi, const ReductionOptions& options) const {
  if (lo >= hi) {
    return Cover();  // Empty selection.
  }
  std::vector<uint64_t> onset;
  bool lo_aligned = false;
  bool hi_aligned = false;
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (intervals_[i].lo == lo) {
      lo_aligned = true;
    }
    if (intervals_[i].hi == hi) {
      hi_aligned = true;
    }
    if (intervals_[i].lo >= lo && intervals_[i].hi <= hi) {
      EBI_ASSIGN_OR_RETURN(const uint64_t code,
                           mapping_.CodeOf(static_cast<ValueId>(i)));
      onset.push_back(code);
    }
  }
  if (!lo_aligned || !hi_aligned) {
    return Status::FailedPrecondition(
        "range [" + std::to_string(lo) + "," + std::to_string(hi) +
        ") does not align with the predefined partition; use a total-order "
        "preserving encoding instead");
  }
  const std::vector<uint64_t> dc =
      mapping_.UnusedCodes(options.max_dontcare_terms);
  return ReduceRetrievalFunction(onset, dc, mapping_.width(), options);
}

}  // namespace ebi
