#include "boolean/cube.h"

#include <bit>

namespace ebi {

int Cube::NumLiterals() const { return std::popcount(mask); }

uint64_t Cube::CoverageSize(int k) const {
  const int free_vars = k - NumLiterals();
  return uint64_t{1} << free_vars;
}

std::string Cube::ToString(int k) const {
  if (mask == 0) {
    return "1";
  }
  std::string out;
  for (int i = k - 1; i >= 0; --i) {
    const uint64_t bit = uint64_t{1} << i;
    if ((mask & bit) == 0) {
      continue;
    }
    out += "B";
    out += std::to_string(i);
    if ((values & bit) == 0) {
      out += "'";
    }
  }
  return out;
}

std::optional<Cube> TryCombine(const Cube& a, const Cube& b) {
  if (a.mask != b.mask) {
    return std::nullopt;
  }
  const uint64_t diff = a.values ^ b.values;
  if (std::popcount(diff) != 1) {
    return std::nullopt;
  }
  return Cube(a.values & ~diff, a.mask & ~diff);
}

}  // namespace ebi
