#ifndef EBI_BOOLEAN_CUBE_H_
#define EBI_BOOLEAN_CUBE_H_

#include <cstdint>
#include <optional>
#include <string>

namespace ebi {

/// An implicant (product term) over up to 64 Boolean variables.
///
/// Variable i corresponds to bitmap vector B_i of an encoded bitmap index.
/// `mask` bit i set means variable i appears in the product; `values` bit i
/// then gives its polarity (1 = positive literal B_i, 0 = negated literal
/// B_i'). Bits of `values` outside `mask` must be zero.
///
/// A full min-term (retrieval Boolean function of Definition 2.1) is a Cube
/// whose mask covers all k variables; logical reduction shrinks masks.
struct Cube {
  uint64_t values = 0;
  uint64_t mask = 0;

  Cube() = default;
  Cube(uint64_t values_in, uint64_t mask_in)
      : values(values_in & mask_in), mask(mask_in) {}

  /// The min-term for codeword `code` over `k` variables.
  static Cube MinTerm(uint64_t code, int k) {
    const uint64_t full = k >= 64 ? ~uint64_t{0} : (uint64_t{1} << k) - 1;
    return Cube(code, full);
  }

  /// Number of literals in the product.
  int NumLiterals() const;

  /// True iff the cube evaluates to 1 on the given full assignment.
  bool Covers(uint64_t minterm) const {
    return (minterm & mask) == values;
  }

  /// True iff this cube covers every assignment the other cube covers
  /// (i.e. `other` is absorbed by `*this`).
  bool Contains(const Cube& other) const {
    return (other.mask & mask) == mask && (other.values & mask) == values;
  }

  /// Number of full assignments covered: 2^(k - NumLiterals()).
  uint64_t CoverageSize(int k) const;

  /// Renders like "B2'B1B0" with the highest variable first; an empty mask
  /// renders as "1" (the constant-true cube).
  std::string ToString(int k) const;

  friend bool operator==(const Cube& a, const Cube& b) {
    return a.values == b.values && a.mask == b.mask;
  }
  friend bool operator<(const Cube& a, const Cube& b) {
    return a.mask != b.mask ? a.mask < b.mask : a.values < b.values;
  }
};

/// If `a` and `b` differ in exactly one specified bit and have the same
/// mask, returns the merged cube with that bit removed (the adjacency step
/// of the Quine-McCluskey procedure); otherwise nullopt.
std::optional<Cube> TryCombine(const Cube& a, const Cube& b);

}  // namespace ebi

#endif  // EBI_BOOLEAN_CUBE_H_
