#include "boolean/quine_mccluskey.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <map>
#include <unordered_set>
#include <utility>

namespace ebi {

namespace {

struct CubeHash {
  size_t operator()(const Cube& c) const {
    // 64-bit mix of the two fields.
    uint64_t h = c.values * 0x9e3779b97f4a7c15ULL;
    h ^= c.mask + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

std::vector<uint64_t> DedupSorted(std::vector<uint64_t> xs) {
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  return xs;
}

}  // namespace

std::vector<Cube> PrimeImplicants(const std::vector<uint64_t>& onset,
                                  const std::vector<uint64_t>& dontcare,
                                  int k) {
  std::vector<uint64_t> all = onset;
  all.insert(all.end(), dontcare.begin(), dontcare.end());
  all = DedupSorted(std::move(all));

  std::vector<Cube> current;
  current.reserve(all.size());
  for (uint64_t m : all) {
    current.push_back(Cube::MinTerm(m, k));
  }

  std::vector<Cube> primes;
  while (!current.empty()) {
    // Bucket cubes of the same mask by the popcount of their values; only
    // cubes in adjacent buckets of the same mask can combine.
    std::map<std::pair<uint64_t, int>, std::vector<size_t>> buckets;
    for (size_t i = 0; i < current.size(); ++i) {
      buckets[{current[i].mask, std::popcount(current[i].values)}].push_back(
          i);
    }

    std::vector<bool> combined(current.size(), false);
    std::unordered_set<Cube, CubeHash> next_set;
    for (const auto& [key, indices] : buckets) {
      const auto upper = buckets.find({key.first, key.second + 1});
      if (upper == buckets.end()) {
        continue;
      }
      for (size_t i : indices) {
        for (size_t j : upper->second) {
          const std::optional<Cube> merged =
              TryCombine(current[i], current[j]);
          if (merged.has_value()) {
            combined[i] = true;
            combined[j] = true;
            next_set.insert(*merged);
          }
        }
      }
    }

    for (size_t i = 0; i < current.size(); ++i) {
      if (!combined[i]) {
        primes.push_back(current[i]);
      }
    }
    current.assign(next_set.begin(), next_set.end());
  }

  std::sort(primes.begin(), primes.end());
  primes.erase(std::unique(primes.begin(), primes.end()), primes.end());
  return primes;
}

Cover MinimizeQm(const std::vector<uint64_t>& onset,
                 const std::vector<uint64_t>& dontcare, int k,
                 const MinimizeOptions& options) {
  const std::vector<uint64_t> need = DedupSorted(onset);
  if (need.empty()) {
    return Cover();
  }

  const std::vector<Cube> primes = PrimeImplicants(need, dontcare, k);

  // Prime implicant chart: which primes cover which required minterms.
  std::vector<std::vector<size_t>> covering(need.size());
  for (size_t p = 0; p < primes.size(); ++p) {
    for (size_t m = 0; m < need.size(); ++m) {
      if (primes[p].Covers(need[m])) {
        covering[m].push_back(p);
      }
    }
  }

  std::vector<bool> covered(need.size(), false);
  std::vector<bool> selected(primes.size(), false);
  Cover result;
  uint64_t used_vars = 0;
  size_t remaining = need.size();

  auto select = [&](size_t p) {
    selected[p] = true;
    result.push_back(primes[p]);
    used_vars |= primes[p].mask;
    for (size_t m = 0; m < need.size(); ++m) {
      if (!covered[m] && primes[p].Covers(need[m])) {
        covered[m] = true;
        --remaining;
      }
    }
  };

  // 1. Essential primes: minterms with a single covering prime.
  for (size_t m = 0; m < need.size(); ++m) {
    if (covering[m].size() == 1 && !selected[covering[m][0]]) {
      select(covering[m][0]);
    }
  }

  // 2a. Exact completion for small charts: branch-and-bound set cover over
  //     the remaining minterms (Petrick's method in spirit), minimizing the
  //     number of selected primes.
  if (remaining > 0) {
    std::vector<size_t> uncovered;
    for (size_t m = 0; m < need.size(); ++m) {
      if (!covered[m]) {
        uncovered.push_back(m);
      }
    }
    std::vector<size_t> candidates;
    for (size_t p = 0; p < primes.size(); ++p) {
      if (selected[p]) {
        continue;
      }
      for (size_t u : uncovered) {
        if (primes[p].Covers(need[u])) {
          candidates.push_back(p);
          break;
        }
      }
    }
    if (uncovered.size() <= 64 && candidates.size() <= 24) {
      std::vector<uint64_t> cover_mask(candidates.size(), 0);
      for (size_t c = 0; c < candidates.size(); ++c) {
        for (size_t u = 0; u < uncovered.size(); ++u) {
          if (primes[candidates[c]].Covers(need[uncovered[u]])) {
            cover_mask[c] |= uint64_t{1} << u;
          }
        }
      }
      const uint64_t full = uncovered.size() == 64
                                ? ~uint64_t{0}
                                : (uint64_t{1} << uncovered.size()) - 1;
      std::vector<size_t> best_pick;
      std::vector<size_t> pick;
      size_t best_size = candidates.size() + 1;
      // Depth-first: always branch on the lowest uncovered minterm.
      const std::function<void(uint64_t)> search = [&](uint64_t done) {
        if (done == full) {
          if (pick.size() < best_size) {
            best_size = pick.size();
            best_pick = pick;
          }
          return;
        }
        if (pick.size() + 1 >= best_size) {
          return;  // Cannot beat the incumbent.
        }
        const int next = std::countr_one(done);
        for (size_t c = 0; c < candidates.size(); ++c) {
          if ((cover_mask[c] >> next) & 1) {
            pick.push_back(candidates[c]);
            search(done | cover_mask[c]);
            pick.pop_back();
          }
        }
      };
      search(0);
      for (size_t p : best_pick) {
        select(p);
      }
    }
  }

  // 2b. Greedy completion (large charts, or exact-search fallback):
  //    repeatedly take the prime that covers the most uncovered minterms,
  //    tie-broken toward (a) introducing fewer new variables when
  //    requested, then (b) fewer literals.
  while (remaining > 0) {
    size_t best = primes.size();
    size_t best_gain = 0;
    int best_new_vars = 65;
    int best_literals = 65;
    for (size_t p = 0; p < primes.size(); ++p) {
      if (selected[p]) {
        continue;
      }
      size_t gain = 0;
      for (size_t m = 0; m < need.size(); ++m) {
        if (!covered[m] && primes[p].Covers(need[m])) {
          ++gain;
        }
      }
      if (gain == 0) {
        continue;
      }
      const int new_vars =
          options.prefer_fewer_variables
              ? std::popcount(primes[p].mask & ~used_vars)
              : 0;
      const int literals = primes[p].NumLiterals();
      const bool better =
          std::tuple(best_gain, -best_new_vars, -best_literals) <
          std::tuple(gain, -new_vars, -literals);
      if (better) {
        best = p;
        best_gain = gain;
        best_new_vars = new_vars;
        best_literals = literals;
      }
    }
    if (best == primes.size()) {
      break;  // Unreachable for a correct chart; defensive.
    }
    select(best);
  }

  // 3. Drop redundant primes (a greedy pass can select primes that later
  //    selections made unnecessary).
  for (size_t i = result.size(); i > 0; --i) {
    Cover without;
    without.reserve(result.size() - 1);
    for (size_t j = 0; j < result.size(); ++j) {
      if (j != i - 1) {
        without.push_back(result[j]);
      }
    }
    bool still_covered = true;
    for (uint64_t m : need) {
      if (!CoverCovers(without, m)) {
        still_covered = false;
        break;
      }
    }
    if (still_covered) {
      result = std::move(without);
    }
  }

  return result;
}

}  // namespace ebi
