#ifndef EBI_BOOLEAN_QUINE_MCCLUSKEY_H_
#define EBI_BOOLEAN_QUINE_MCCLUSKEY_H_

#include <cstdint>
#include <vector>

#include "boolean/cover.h"
#include "boolean/cube.h"

namespace ebi {

/// Options for exact two-level minimization.
struct MinimizeOptions {
  /// When selecting among prime implicants, prefer ones that do not
  /// introduce new variables. This biases the cover toward the paper's cost
  /// metric (distinct bitmap vectors accessed) instead of literal count.
  bool prefer_fewer_variables = true;
};

/// Exact two-level minimization via the Quine-McCluskey procedure.
///
/// `onset` are the codewords on which the function must be 1, `dontcare`
/// the codewords whose output is unconstrained (unused codewords of an
/// encoding, and — per Theorem 2.1 — the void codeword), `k` the number of
/// variables (bitmap vectors). Returns an irredundant sum-of-products cover
/// built from prime implicants: all essential primes plus a greedy
/// selection for the remaining minterms.
///
/// Complexity is exponential in k in the worst case (the paper discusses
/// exactly this cost in Section 3.2); use `ReduceCover` from reduction.h
/// for large instances.
Cover MinimizeQm(const std::vector<uint64_t>& onset,
                 const std::vector<uint64_t>& dontcare, int k,
                 const MinimizeOptions& options = MinimizeOptions());

/// Computes all prime implicants of the function defined by onset ∪
/// dontcare (exposed for tests and for the encoding optimizer).
std::vector<Cube> PrimeImplicants(const std::vector<uint64_t>& onset,
                                  const std::vector<uint64_t>& dontcare,
                                  int k);

}  // namespace ebi

#endif  // EBI_BOOLEAN_QUINE_MCCLUSKEY_H_
