#ifndef EBI_BOOLEAN_REDUCTION_H_
#define EBI_BOOLEAN_REDUCTION_H_

#include <cstdint>
#include <vector>

#include "boolean/cover.h"
#include "boolean/cube.h"

namespace ebi {

/// Controls how retrieval Boolean expressions are reduced before
/// evaluation. Section 3.2 of the paper: a well-defined encoding "only
/// makes sense together with the logical reduction of the retrieval
/// functions", and brute-force reduction is exponential, hence the split
/// between an exact and a heuristic path.
struct ReductionOptions {
  /// When false, the raw disjunction of min-terms is used unchanged — the
  /// ablation knob for measuring what reduction buys.
  bool enable_reduction = true;

  /// Use exact Quine-McCluskey when onset+dontcare has at most this many
  /// terms; otherwise fall back to heuristic cube merging.
  size_t exact_max_terms = 8192;

  /// Don't-care sets larger than this are not materialized (e.g. the unused
  /// codewords of a 2^24 group-set code space).
  size_t max_dontcare_terms = 65536;

  /// Forwarded to MinimizeQm.
  bool prefer_fewer_variables = true;
};

/// Heuristic reduction: repeated adjacency merging (TryCombine) plus
/// absorption until fixpoint. Produces an equivalent cover, not necessarily
/// a prime/minimal one; linear-ish passes over pairs, usable far beyond the
/// exact threshold.
Cover ReduceCoverHeuristic(Cover cover);

/// Builds and reduces the retrieval expression for a value-set selection:
/// `onset` are the codewords of the selected values, `dontcare` the
/// unconstrained codewords, `k` the number of bitmap vectors. Dispatches to
/// exact or heuristic reduction per `options`.
Cover ReduceRetrievalFunction(const std::vector<uint64_t>& onset,
                              const std::vector<uint64_t>& dontcare, int k,
                              const ReductionOptions& options =
                                  ReductionOptions());

}  // namespace ebi

#endif  // EBI_BOOLEAN_REDUCTION_H_
