#ifndef EBI_BOOLEAN_COVER_H_
#define EBI_BOOLEAN_COVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "boolean/cube.h"
#include "util/bitvector.h"

namespace ebi {

/// A sum-of-products Boolean expression: the disjunction of its cubes.
/// Retrieval expressions for IN-list selections are Covers; logical
/// reduction rewrites a Cover into an equivalent one referencing fewer
/// bitmap vectors.
using Cover = std::vector<Cube>;

/// Bitwise OR of all cube masks: the set of variables (bitmap vectors) the
/// expression references.
uint64_t VariablesOf(const Cover& cover);

/// Number of distinct bitmap vectors referenced — the paper's cost metric
/// c_e (Section 3.1, footnote 4: the cost counted after logical reduction).
int DistinctVariables(const Cover& cover);

/// Total number of literals across all cubes.
int TotalLiterals(const Cover& cover);

/// True iff the cover evaluates to 1 on the full assignment `minterm`.
bool CoverCovers(const Cover& cover, uint64_t minterm);

/// Renders like "B1'B0 + B2B0'"; the empty cover renders as "0".
std::string CoverToString(const Cover& cover, int k);

/// Evaluates the expression over bitmap slices: slice[i] is the bitmap
/// vector for variable B_i; all slices must have equal length `n`. Returns
/// the result bitmap (bit j set iff the expression is 1 on tuple j's code).
///
/// Evaluation uses one negation-aware AND chain per cube and ORs cube
/// results together, exactly the plan a bitmap executor would run.
BitVector EvaluateCover(const Cover& cover,
                        const std::vector<BitVector>& slices, size_t n);

/// True iff the two covers denote the same Boolean function over k
/// variables (exhaustive check; intended for tests and small k).
bool CoversEquivalent(const Cover& a, const Cover& b, int k);

}  // namespace ebi

#endif  // EBI_BOOLEAN_COVER_H_
