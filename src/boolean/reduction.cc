#include "boolean/reduction.h"

#include <algorithm>
#include <map>
#include <utility>

#include "boolean/quine_mccluskey.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ebi {

namespace {

/// One merging pass: combines every adjacent pair it can find (each cube
/// may participate in several merges; merged cubes replace their parents).
/// Returns true if anything merged.
bool MergePass(Cover* cover) {
  // Bucket by mask: only equal-mask cubes are adjacency-mergeable.
  std::map<uint64_t, std::vector<size_t>> by_mask;
  for (size_t i = 0; i < cover->size(); ++i) {
    by_mask[(*cover)[i].mask].push_back(i);
  }

  std::vector<bool> dead(cover->size(), false);
  Cover merged;
  for (const auto& [mask, indices] : by_mask) {
    for (size_t a = 0; a < indices.size(); ++a) {
      for (size_t b = a + 1; b < indices.size(); ++b) {
        const std::optional<Cube> m =
            TryCombine((*cover)[indices[a]], (*cover)[indices[b]]);
        if (m.has_value()) {
          dead[indices[a]] = true;
          dead[indices[b]] = true;
          merged.push_back(*m);
        }
      }
    }
  }
  if (merged.empty()) {
    return false;
  }

  Cover next;
  next.reserve(cover->size());
  for (size_t i = 0; i < cover->size(); ++i) {
    if (!dead[i]) {
      next.push_back((*cover)[i]);
    }
  }
  next.insert(next.end(), merged.begin(), merged.end());
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());
  *cover = std::move(next);
  return true;
}

/// Removes cubes contained in another cube of the cover.
void AbsorptionPass(Cover* cover) {
  Cover kept;
  for (size_t i = 0; i < cover->size(); ++i) {
    bool absorbed = false;
    for (size_t j = 0; j < cover->size(); ++j) {
      if (i == j) {
        continue;
      }
      if ((*cover)[j].Contains((*cover)[i]) &&
          !((*cover)[i].Contains((*cover)[j]) && j > i)) {
        absorbed = true;
        break;
      }
    }
    if (!absorbed) {
      kept.push_back((*cover)[i]);
    }
  }
  *cover = std::move(kept);
}

}  // namespace

Cover ReduceCoverHeuristic(Cover cover) {
  std::sort(cover.begin(), cover.end());
  cover.erase(std::unique(cover.begin(), cover.end()), cover.end());
  bool changed = true;
  while (changed) {
    changed = MergePass(&cover);
    AbsorptionPass(&cover);
  }
  return cover;
}

namespace {

/// Feeds the reduction counters and, when a trace is recording, the
/// boolean.reduce span attributes (minterms in/out, method, the distinct
/// vectors the reduced expression references — the paper's c_e).
Cover FinishReduction(obs::ScopedSpan* span, const char* method,
                      size_t terms_in, size_t dontcare_terms, int k,
                      Cover result) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter* reductions =
      registry.GetCounter(obs::kMetricReductionCount);
  static obs::Counter* in = registry.GetCounter(obs::kMetricReductionTermsIn);
  static obs::Counter* out =
      registry.GetCounter(obs::kMetricReductionTermsOut);
  reductions->Increment();
  in->Increment(terms_in);
  out->Increment(result.size());
  if (span->active()) {
    span->Attr("method", method);
    span->Attr("k", k);
    span->Attr("terms_in", terms_in);
    span->Attr("dontcares", dontcare_terms);
    span->Attr("terms_out", result.size());
    span->Attr("vectors", DistinctVariables(result));
  }
  return result;
}

}  // namespace

Cover ReduceRetrievalFunction(const std::vector<uint64_t>& onset,
                              const std::vector<uint64_t>& dontcare, int k,
                              const ReductionOptions& options) {
  obs::ScopedSpan span("boolean.reduce");
  Cover raw;
  raw.reserve(onset.size());
  for (uint64_t code : onset) {
    raw.push_back(Cube::MinTerm(code, k));
  }
  if (!options.enable_reduction || onset.empty()) {
    return FinishReduction(&span, "off", onset.size(), 0, k,
                           std::move(raw));
  }

  const std::vector<uint64_t>* dc = &dontcare;
  std::vector<uint64_t> empty_dc;
  if (dontcare.size() > options.max_dontcare_terms) {
    dc = &empty_dc;
  }

  if (onset.size() + dc->size() <= options.exact_max_terms) {
    MinimizeOptions mo;
    mo.prefer_fewer_variables = options.prefer_fewer_variables;
    return FinishReduction(&span, "exact", onset.size(), dc->size(), k,
                           MinimizeQm(onset, *dc, k, mo));
  }

  // Heuristic path: include don't-cares as mergeable min-terms, then strip
  // cubes that cover no required minterm.
  Cover seeded = raw;
  for (uint64_t code : *dc) {
    seeded.push_back(Cube::MinTerm(code, k));
  }
  Cover reduced = ReduceCoverHeuristic(std::move(seeded));
  Cover result;
  for (const Cube& cube : reduced) {
    bool useful = false;
    for (uint64_t code : onset) {
      if (cube.Covers(code)) {
        useful = true;
        break;
      }
    }
    if (useful) {
      result.push_back(cube);
    }
  }
  return FinishReduction(&span, "heuristic", onset.size(), dc->size(), k,
                         std::move(result));
}

}  // namespace ebi
