#include "boolean/cover.h"

#include <bit>

namespace ebi {

uint64_t VariablesOf(const Cover& cover) {
  uint64_t vars = 0;
  for (const Cube& cube : cover) {
    vars |= cube.mask;
  }
  return vars;
}

int DistinctVariables(const Cover& cover) {
  return std::popcount(VariablesOf(cover));
}

int TotalLiterals(const Cover& cover) {
  int total = 0;
  for (const Cube& cube : cover) {
    total += cube.NumLiterals();
  }
  return total;
}

bool CoverCovers(const Cover& cover, uint64_t minterm) {
  for (const Cube& cube : cover) {
    if (cube.Covers(minterm)) {
      return true;
    }
  }
  return false;
}

std::string CoverToString(const Cover& cover, int k) {
  if (cover.empty()) {
    return "0";
  }
  std::string out;
  for (size_t i = 0; i < cover.size(); ++i) {
    if (i > 0) {
      out += " + ";
    }
    out += cover[i].ToString(k);
  }
  return out;
}

BitVector EvaluateCover(const Cover& cover,
                        const std::vector<BitVector>& slices, size_t n) {
  BitVector result(n, false);
  for (const Cube& cube : cover) {
    if (cube.mask == 0) {
      // Constant-true cube: the whole expression is a tautology.
      result.SetAll();
      return result;
    }
    BitVector term;
    bool first = true;
    for (size_t i = 0; i < slices.size(); ++i) {
      const uint64_t bit = uint64_t{1} << i;
      if ((cube.mask & bit) == 0) {
        continue;
      }
      const bool positive = (cube.values & bit) != 0;
      if (first) {
        term = slices[i];
        if (!positive) {
          term.FlipAll();
        }
        first = false;
      } else if (positive) {
        term.AndWith(slices[i]);
      } else {
        term.AndNotWith(slices[i]);
      }
    }
    result.OrWith(term);
  }
  return result;
}

bool CoversEquivalent(const Cover& a, const Cover& b, int k) {
  const uint64_t limit = uint64_t{1} << k;
  for (uint64_t m = 0; m < limit; ++m) {
    if (CoverCovers(a, m) != CoverCovers(b, m)) {
      return false;
    }
  }
  return true;
}

}  // namespace ebi
