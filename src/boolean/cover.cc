#include "boolean/cover.h"

#include <bit>

namespace ebi {

uint64_t VariablesOf(const Cover& cover) {
  uint64_t vars = 0;
  for (const Cube& cube : cover) {
    vars |= cube.mask;
  }
  return vars;
}

int DistinctVariables(const Cover& cover) {
  return std::popcount(VariablesOf(cover));
}

int TotalLiterals(const Cover& cover) {
  int total = 0;
  for (const Cube& cube : cover) {
    total += cube.NumLiterals();
  }
  return total;
}

bool CoverCovers(const Cover& cover, uint64_t minterm) {
  for (const Cube& cube : cover) {
    if (cube.Covers(minterm)) {
      return true;
    }
  }
  return false;
}

std::string CoverToString(const Cover& cover, int k) {
  if (cover.empty()) {
    return "0";
  }
  std::string out;
  for (size_t i = 0; i < cover.size(); ++i) {
    if (i > 0) {
      out += " + ";
    }
    out += cover[i].ToString(k);
  }
  return out;
}

BitVector EvaluateCover(const Cover& cover,
                        const std::vector<BitVector>& slices, size_t n) {
  BitVector result(n, false);
  // Evaluate each cube to a term, then OR all terms in one fused pass
  // instead of a chain of binary ORs. Cubes that are a single positive
  // literal alias their slice directly and need no materialized term.
  std::vector<BitVector> terms;
  terms.reserve(cover.size());
  std::vector<const BitVector*> operands;
  operands.reserve(cover.size());
  for (const Cube& cube : cover) {
    if (cube.mask == 0) {
      // Constant-true cube: the whole expression is a tautology.
      result.SetAll();
      return result;
    }
    if (std::has_single_bit(cube.mask) && (cube.values & cube.mask) != 0) {
      const size_t i = static_cast<size_t>(std::countr_zero(cube.mask));
      if (i < slices.size() && slices[i].size() == n) {
        operands.push_back(&slices[i]);
        continue;
      }
    }
    BitVector term;
    bool first = true;
    for (size_t i = 0; i < slices.size(); ++i) {
      const uint64_t bit = uint64_t{1} << i;
      if ((cube.mask & bit) == 0) {
        continue;
      }
      const bool positive = (cube.values & bit) != 0;
      if (first) {
        term = slices[i];
        if (!positive) {
          term.FlipAll();
        }
        first = false;
      } else if (positive) {
        term.AndWith(slices[i]);
      } else {
        term.AndNotWith(slices[i]);
      }
    }
    if (!first) {
      terms.push_back(std::move(term));
    }
  }
  // `terms` is fully built before any pointer into it is taken, so the
  // vector cannot reallocate under the operand list.
  for (const BitVector& term : terms) {
    operands.push_back(&term);
  }
  result.OrWithMany(operands);
  return result;
}

bool CoversEquivalent(const Cover& a, const Cover& b, int k) {
  const uint64_t limit = uint64_t{1} << k;
  for (uint64_t m = 0; m < limit; ++m) {
    if (CoverCovers(a, m) != CoverCovers(b, m)) {
      return false;
    }
  }
  return true;
}

}  // namespace ebi
