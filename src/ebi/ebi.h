#ifndef EBI_EBI_H_
#define EBI_EBI_H_

/// Umbrella header for the encoded-bitmap-indexing library, a from-scratch
/// implementation of Wu & Buchmann, "Encoded Bitmap Indexing for Data
/// Warehouses", ICDE 1998.
///
/// Typical usage (see examples/quickstart.cc):
///
///   ebi::Table table("SALES");
///   ... populate ...
///   ebi::IoAccountant io;
///   ebi::EncodedBitmapIndex index(
///       table.FindColumn("product").value(), &table.existence(), &io);
///   index.Build();
///   auto rows = index.EvaluateIn({ebi::Value::Int(3), ebi::Value::Int(4)});

#include "analysis/cost_model.h"
#include "boolean/cover.h"
#include "boolean/cube.h"
#include "boolean/quine_mccluskey.h"
#include "boolean/reduction.h"
#include "encoding/chain.h"
#include "encoding/encoders.h"
#include "encoding/hierarchy.h"
#include "encoding/mapping_table.h"
#include "encoding/optimizer.h"
#include "encoding/range_encoding.h"
#include "encoding/well_defined.h"
#include "exec/thread_pool.h"
#include "index/base_bit_sliced_index.h"
#include "index/bit_sliced_index.h"
#include "index/btree_index.h"
#include "index/cold_encoded_bitmap_index.h"
#include "index/dynamic_bitmap_index.h"
#include "index/encoded_bitmap_index.h"
#include "index/groupset_index.h"
#include "index/index.h"
#include "index/index_factory.h"
#include "index/join_index.h"
#include "index/persistence.h"
#include "index/projection_index.h"
#include "index/range_based_bitmap_index.h"
#include "index/sharded_index.h"
#include "index/simple_bitmap_index.h"
#include "index/value_list_index.h"
#include "obs/explain.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/aggregates.h"
#include "query/executor.h"
#include "query/index_manager.h"
#include "query/maintenance.h"
#include "query/materialize.h"
#include "query/parallel_executor.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "query/reencode_advisor.h"
#include "storage/bitmap_store.h"
#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/csv.h"
#include "storage/io_accountant.h"
#include "storage/segmented_table.h"
#include "storage/table.h"
#include "util/bit_util.h"
#include "util/bitvector.h"
#include "util/random.h"
#include "util/rle_bitmap.h"
#include "util/status.h"
#include "workload/generator.h"
#include "workload/query_mix.h"
#include "workload/star_schema.h"

#endif  // EBI_EBI_H_
