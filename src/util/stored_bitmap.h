#ifndef EBI_UTIL_STORED_BITMAP_H_
#define EBI_UTIL_STORED_BITMAP_H_

#include <cstddef>
#include <variant>

#include "util/bitmap_format.h"
#include "util/bitvector.h"
#include "util/ewah_bitmap.h"
#include "util/rle_bitmap.h"
#include "util/status.h"

namespace ebi {

/// One bitmap vector in its selected physical format.
///
/// This is the unit the bitmap-backed indexes store per value / bucket /
/// slice: the logical bits are the same in every format, but SizeBytes()
/// — and therefore the I/O charged per vector read — reflects the
/// physical representation. Logical operations dispatch to the matching
/// compressed-form kernel, so a query path written against StoredBitmap
/// runs unchanged over plain, RLE and EWAH storage.
class StoredBitmap {
 public:
  /// An empty plain bitmap.
  StoredBitmap() = default;

  /// Materializes `bits` in the requested format.
  [[nodiscard]] static StoredBitmap Make(BitVector bits, BitmapFormat format);

  /// Wraps an already-compressed representation without re-encoding —
  /// the deserialization path, where the compressed words were validated
  /// on read and decompress/recompress would lose the exact physical
  /// layout the I/O charge is based on.
  [[nodiscard]] static StoredBitmap FromRle(RleBitmap rle);
  [[nodiscard]] static StoredBitmap FromEwah(EwahBitmap ewah);

  [[nodiscard]] BitmapFormat format() const {
    if (std::holds_alternative<RleBitmap>(rep_)) {
      return BitmapFormat::kRle;
    }
    if (std::holds_alternative<EwahBitmap>(rep_)) {
      return BitmapFormat::kEwah;
    }
    return BitmapFormat::kPlain;
  }

  /// Number of logical bits.
  [[nodiscard]] size_t size() const;
  /// Number of set bits (computed on the compressed form).
  [[nodiscard]] size_t Count() const;
  /// Physical heap bytes — the per-read I/O charge and the space metric.
  [[nodiscard]] size_t SizeBytes() const;
  /// Fraction of zero bits.
  [[nodiscard]] double Sparsity() const;

  /// Expands to a plain bit vector (a copy even for plain storage).
  [[nodiscard]] BitVector ToBitVector() const;

  /// Fast path: the underlying plain vector, or nullptr when compressed.
  [[nodiscard]] const BitVector* AsPlain() const {
    return std::get_if<BitVector>(&rep_);
  }

  /// The underlying compressed form, or nullptr when the format differs.
  /// Used by persistence to serialize runs/words without decompressing.
  [[nodiscard]] const RleBitmap* AsRle() const {
    return std::get_if<RleBitmap>(&rep_);
  }
  [[nodiscard]] const EwahBitmap* AsEwah() const {
    return std::get_if<EwahBitmap>(&rep_);
  }

  /// Appends one bit. Plain storage grows in place; compressed storage is
  /// rewritten (decompress, append, recompress) — the O(|T|) maintenance
  /// cost compressed indexes pay per append (Section 3.1).
  void AppendBit(bool value);

  /// Logical operations on the stored form. Both operands must share the
  /// same format and bit size; InvalidArgument otherwise.
  static Result<StoredBitmap> And(const StoredBitmap& a,
                                  const StoredBitmap& b);
  static Result<StoredBitmap> Or(const StoredBitmap& a,
                                 const StoredBitmap& b);

  /// Calls `fn(index)` for every set bit in increasing order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    std::visit([&](const auto& rep) { rep.ForEachSetBit(fn); }, rep_);
  }

 private:
  std::variant<BitVector, RleBitmap, EwahBitmap> rep_;
};

}  // namespace ebi

#endif  // EBI_UTIL_STORED_BITMAP_H_
