#ifndef EBI_UTIL_SYNC_H_
#define EBI_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "util/thread_annotations.h"

/// Annotated synchronization primitives: `ebi::Mutex`, `ebi::MutexLock`,
/// and `ebi::CondVar` wrap the std equivalents with
///
///  1. Clang Thread Safety Analysis capability annotations, so guarded
///     fields and `...Locked()` contracts are compiler-checked (see
///     thread_annotations.h and DESIGN.md §13), and
///  2. an optional debug lock-rank registry: every mutex declares a rank
///     from the table below, and acquiring a mutex whose rank is not
///     strictly greater than every rank already held by the thread
///     aborts the process. Compiled in only when EBI_LOCK_RANK_DEBUG is
///     defined (Debug builds; release builds pay nothing per lock).
///
/// Raw `std::mutex` / `std::condition_variable` / `std::lock_guard` are
/// banned outside this header by the ebi-lint `raw-mutex` rule.

namespace ebi {

/// The global lock order. A thread may only acquire mutexes in strictly
/// increasing rank; two mutexes of equal rank must never be held
/// together (sibling shards and ring slots are locked sequentially).
/// Ranks are spaced so future subsystems can slot in between.
namespace lock_rank {

/// Rank 0 opts a mutex out of ordering checks entirely. No mutex in the
/// tree should use it; it exists for tests and short-lived local locks.
inline constexpr uint32_t kUnranked = 0;

// -- serve/cluster/ (acquired before anything else: the sharded tier
//    fronts the per-shard services, so its locks are held while shard
//    QueryService locks — rank 100+ — are taken underneath) ------------
/// Serializes cluster appends end-to-end (global row-id assignment plus
/// the per-shard Append fan-out must stay in one order everywhere).
inline constexpr uint32_t kClusterAppend = 60;
/// Guards the router's copy-on-write placement pointer.
inline constexpr uint32_t kClusterRouter = 70;

// -- serve/ (the per-shard service: fronts every request) --------------
inline constexpr uint32_t kQueryServiceAppend = 100;
inline constexpr uint32_t kQueryServiceExport = 110;
inline constexpr uint32_t kQueryServiceDrain = 120;
inline constexpr uint32_t kQueryServicePublished = 130;
inline constexpr uint32_t kSnapshotRetire = 140;
inline constexpr uint32_t kServeTicket = 150;

// -- storage/engine/ ---------------------------------------------------
inline constexpr uint32_t kStorageEngine = 200;
inline constexpr uint32_t kWal = 210;
inline constexpr uint32_t kBufferPool = 220;
inline constexpr uint32_t kPageFile = 230;

// -- exec/ -------------------------------------------------------------
inline constexpr uint32_t kThreadPool = 300;

// -- obs/ (leaf-most subsystem: every layer records into it) -----------
inline constexpr uint32_t kWorkloadRecorder = 400;
inline constexpr uint32_t kTelemetrySlot = 410;
inline constexpr uint32_t kMetricsShard = 500;

// -- short-lived leaf helpers (ParallelFor barrier, tests) -------------
inline constexpr uint32_t kLeafBarrier = 1000;

}  // namespace lock_rank

namespace lock_rank_internal {

/// Aborts (fprintf + abort) if `rank` is not strictly greater than every
/// rank currently held by this thread. `name` labels the message.
void CheckAcquire(uint32_t rank, const char* name);

/// Pushes `rank` (with `name` for diagnostics) onto the thread's
/// held-mutex stack.
void NoteAcquired(uint32_t rank, const char* name);

/// Removes the most recent occurrence of `rank` from the stack
/// (out-of-order release of distinct mutexes is legal).
void NoteReleased(uint32_t rank);

/// Number of ranked mutexes the current thread holds (test hook).
size_t HeldCount();

}  // namespace lock_rank_internal

/// A std::mutex with a capability annotation, a debug lock rank, and a
/// name for diagnostics. Not copyable or movable (guarded fields name it
/// in annotations); movable owners hold it behind std::unique_ptr.
class EBI_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(uint32_t rank = lock_rank::kUnranked,
                 const char* name = "ebi::Mutex")
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() EBI_ACQUIRE() {
#ifdef EBI_LOCK_RANK_DEBUG
    if (rank_ != lock_rank::kUnranked) {
      lock_rank_internal::CheckAcquire(rank_, name_);
    }
#endif
    mu_.lock();
#ifdef EBI_LOCK_RANK_DEBUG
    if (rank_ != lock_rank::kUnranked) {
      lock_rank_internal::NoteAcquired(rank_, name_);
    }
#endif
  }

  void Unlock() EBI_RELEASE() {
    // Bookkeeping strictly before the unlock: the moment mu_.unlock()
    // returns, a thread blocked in Lock() may proceed and legally
    // destroy this Mutex (the ParallelFor stack barrier does exactly
    // that), so no member may be read afterwards.
#ifdef EBI_LOCK_RANK_DEBUG
    if (rank_ != lock_rank::kUnranked) {
      lock_rank_internal::NoteReleased(rank_);
    }
#endif
    mu_.unlock();
  }

  /// Non-blocking acquire. A try-lock cannot deadlock, so the rank check
  /// is skipped, but a successful acquisition is still recorded so later
  /// blocking acquisitions are checked against it.
  bool TryLock() EBI_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      return false;
    }
#ifdef EBI_LOCK_RANK_DEBUG
    if (rank_ != lock_rank::kUnranked) {
      lock_rank_internal::NoteAcquired(rank_, name_);
    }
#endif
    return true;
  }

  uint32_t rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const uint32_t rank_;
  const char* const name_;
};

/// RAII lock with the scoped-capability annotation. Supports the
/// unlock-work-relock pattern (the serve combiner releases the append
/// lock around snapshot cloning) via Unlock()/Lock().
class EBI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) EBI_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
    held_ = true;
  }

  ~MutexLock() EBI_RELEASE() {
    if (held_) {
      mu_.Unlock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() EBI_RELEASE() {
    mu_.Unlock();
    held_ = false;
  }

  void Lock() EBI_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_ = false;
};

/// Condition variable that waits on an ebi::MutexLock. Only the plain
/// (predicate-free) Wait is offered: call sites spell the guard as an
/// explicit `while (!condition) cv.Wait(lock);` loop so the condition
/// read happens in the annotated caller, where the analysis can see the
/// lock is held (a predicate lambda would be analyzed as a separate,
/// unannotated function).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the lock, waits, and re-acquires before
  /// returning. Rank bookkeeping mirrors the release/re-acquire.
  void Wait(MutexLock& lock) {
    LockAdapter adapter{lock.mu_};
    cv_.wait(adapter);
  }

  /// Timed wait: returns false when `timeout_ms` elapsed without a
  /// notification, true otherwise (including spurious wakeups — callers
  /// loop on their predicate with the remaining time, the pattern
  /// ServeTicket::WaitFor spells out). A non-positive timeout still
  /// releases and re-acquires the lock, so the predicate can be
  /// re-checked race-free.
  bool WaitFor(MutexLock& lock, double timeout_ms) {
    LockAdapter adapter{lock.mu_};
    return cv_.wait_for(adapter,
                        std::chrono::duration<double, std::milli>(
                            timeout_ms)) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  /// BasicLockable shim routing condition_variable_any's unlock/relock
  /// through Mutex so rank accounting stays exact across the wait.
  struct LockAdapter {
    Mutex& mu;
    void lock() EBI_NO_THREAD_SAFETY_ANALYSIS { mu.Lock(); }
    void unlock() EBI_NO_THREAD_SAFETY_ANALYSIS { mu.Unlock(); }
  };

  std::condition_variable_any cv_;
};

}  // namespace ebi

#endif  // EBI_UTIL_SYNC_H_
