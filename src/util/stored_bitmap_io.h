#ifndef EBI_UTIL_STORED_BITMAP_IO_H_
#define EBI_UTIL_STORED_BITMAP_IO_H_

#include <iosfwd>

#include "util/bitvector.h"
#include "util/status.h"
#include "util/stored_bitmap.h"

namespace ebi {

/// Stream (de)serialization of bitmap vectors — the byte format shared
/// by index persistence (index/persistence.h) and the storage engine's
/// page payloads (src/storage/engine/). Lives in util so the storage
/// layer can use it without depending on the index layer.
///
/// Format: little-endian, magic-guarded sections. Loading is hardened
/// against hostile streams: counts are never trusted before the bytes
/// backing them have actually been read, so a truncated or garbage
/// stream fails with a descriptive Status (OutOfRange for truncation,
/// InvalidArgument for corruption) — never an assert, overflow, or
/// attempted multi-gigabyte allocation.

/// Bitmap vectors.
[[nodiscard]] Status SaveBitVector(std::ostream& out, const BitVector& bits);
[[nodiscard]] Result<BitVector> LoadBitVector(std::istream& in);

/// Stored bitmaps in their physical format. The stream carries a format
/// tag after the magic; RLE bitmaps serialize their run array and EWAH
/// bitmaps their marker/literal words, so a compressed vector
/// round-trips without a decompress/recompress cycle and keeps the
/// exact physical layout (and therefore SizeBytes / I/O charge) it had
/// when saved. Loading validates the compressed form: RLE runs must sum
/// to the declared bit size, and EWAH words must decode to exactly the
/// declared word count (EwahBitmap::FromWords); corrupt buffers are
/// rejected rather than trusted.
[[nodiscard]] Status SaveStoredBitmap(std::ostream& out,
                                      const StoredBitmap& bitmap);
[[nodiscard]] Result<StoredBitmap> LoadStoredBitmap(std::istream& in);

/// Zero-copy load from caller-owned bytes — the storage engine's warm
/// read path, where the payload is already assembled in memory and an
/// istringstream round-trip would cost an extra full copy. Identical
/// format and hardening to the stream overload.
[[nodiscard]] Result<StoredBitmap> LoadStoredBitmap(const uint8_t* data,
                                                    size_t size);

}  // namespace ebi

#endif  // EBI_UTIL_STORED_BITMAP_IO_H_
