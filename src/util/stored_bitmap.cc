#include "util/stored_bitmap.h"

#include <utility>

namespace ebi {

StoredBitmap StoredBitmap::Make(BitVector bits, BitmapFormat format) {
  StoredBitmap out;
  switch (format) {
    case BitmapFormat::kPlain:
      out.rep_ = std::move(bits);
      break;
    case BitmapFormat::kRle:
      out.rep_ = RleBitmap::Compress(bits);
      break;
    case BitmapFormat::kEwah:
      out.rep_ = EwahBitmap::Compress(bits);
      break;
  }
  return out;
}

StoredBitmap StoredBitmap::FromRle(RleBitmap rle) {
  StoredBitmap out;
  out.rep_ = std::move(rle);
  return out;
}

StoredBitmap StoredBitmap::FromEwah(EwahBitmap ewah) {
  StoredBitmap out;
  out.rep_ = std::move(ewah);
  return out;
}

size_t StoredBitmap::size() const {
  return std::visit([](const auto& rep) { return rep.size(); }, rep_);
}

size_t StoredBitmap::Count() const {
  return std::visit([](const auto& rep) { return rep.Count(); }, rep_);
}

size_t StoredBitmap::SizeBytes() const {
  return std::visit([](const auto& rep) { return rep.SizeBytes(); }, rep_);
}

double StoredBitmap::Sparsity() const {
  const size_t n = size();
  if (n == 0) {
    return 0.0;
  }
  return 1.0 -
         static_cast<double>(Count()) / static_cast<double>(n);
}

BitVector StoredBitmap::ToBitVector() const {
  if (const BitVector* plain = std::get_if<BitVector>(&rep_)) {
    return *plain;
  }
  if (const RleBitmap* rle = std::get_if<RleBitmap>(&rep_)) {
    return rle->Decompress();
  }
  return std::get<EwahBitmap>(rep_).Decompress();
}

void StoredBitmap::AppendBit(bool value) {
  if (BitVector* plain = std::get_if<BitVector>(&rep_)) {
    plain->PushBack(value);
    return;
  }
  const BitmapFormat fmt = format();
  BitVector bits = ToBitVector();
  bits.PushBack(value);
  *this = Make(std::move(bits), fmt);
}

namespace {

Status FormatMismatch(const StoredBitmap& a, const StoredBitmap& b) {
  return Status::InvalidArgument(
      std::string("StoredBitmap: operand formats differ (") +
      BitmapFormatName(a.format()) + " vs " + BitmapFormatName(b.format()) +
      ")");
}

}  // namespace

Result<StoredBitmap> StoredBitmap::And(const StoredBitmap& a,
                                       const StoredBitmap& b) {
  if (a.format() != b.format()) {
    return FormatMismatch(a, b);
  }
  switch (a.format()) {
    case BitmapFormat::kPlain: {
      if (a.size() != b.size()) {
        return Status::InvalidArgument(
            "StoredBitmap::And: operand sizes differ");
      }
      BitVector out = *a.AsPlain();
      out.AndWith(*b.AsPlain());
      StoredBitmap stored;
      stored.rep_ = std::move(out);
      return stored;
    }
    case BitmapFormat::kRle: {
      EBI_ASSIGN_OR_RETURN(
          RleBitmap out,
          RleBitmap::AndChecked(std::get<RleBitmap>(a.rep_),
                                std::get<RleBitmap>(b.rep_)));
      StoredBitmap stored;
      stored.rep_ = std::move(out);
      return stored;
    }
    case BitmapFormat::kEwah: {
      EBI_ASSIGN_OR_RETURN(
          EwahBitmap out,
          EwahBitmap::AndChecked(std::get<EwahBitmap>(a.rep_),
                                 std::get<EwahBitmap>(b.rep_)));
      StoredBitmap stored;
      stored.rep_ = std::move(out);
      return stored;
    }
  }
  return Status::Internal("unreachable bitmap format");
}

Result<StoredBitmap> StoredBitmap::Or(const StoredBitmap& a,
                                      const StoredBitmap& b) {
  if (a.format() != b.format()) {
    return FormatMismatch(a, b);
  }
  switch (a.format()) {
    case BitmapFormat::kPlain: {
      if (a.size() != b.size()) {
        return Status::InvalidArgument(
            "StoredBitmap::Or: operand sizes differ");
      }
      BitVector out = *a.AsPlain();
      out.OrWith(*b.AsPlain());
      StoredBitmap stored;
      stored.rep_ = std::move(out);
      return stored;
    }
    case BitmapFormat::kRle: {
      EBI_ASSIGN_OR_RETURN(
          RleBitmap out,
          RleBitmap::OrChecked(std::get<RleBitmap>(a.rep_),
                               std::get<RleBitmap>(b.rep_)));
      StoredBitmap stored;
      stored.rep_ = std::move(out);
      return stored;
    }
    case BitmapFormat::kEwah: {
      EBI_ASSIGN_OR_RETURN(
          EwahBitmap out,
          EwahBitmap::OrChecked(std::get<EwahBitmap>(a.rep_),
                                std::get<EwahBitmap>(b.rep_)));
      StoredBitmap stored;
      stored.rep_ = std::move(out);
      return stored;
    }
  }
  return Status::Internal("unreachable bitmap format");
}

}  // namespace ebi
