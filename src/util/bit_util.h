#ifndef EBI_UTIL_BIT_UTIL_H_
#define EBI_UTIL_BIT_UTIL_H_

#include <bit>
#include <cstdint>

namespace ebi {

/// Number of bits needed to address `n` distinct codewords:
/// ceil(log2 n), with the conventions Log2Ceil(0) == 0 and
/// Log2Ceil(1) == 1 (one value still needs one bit vector; the paper uses
/// k = ceil(log2 m) >= 1 for any non-empty domain).
[[nodiscard]] inline int Log2Ceil(uint64_t n) {
  if (n <= 2) {
    return n == 0 ? 0 : 1;
  }
  return 64 - std::countl_zero(n - 1);
}

/// Floor of log2(n); Log2Floor(0) is defined as 0 for convenience.
[[nodiscard]] inline int Log2Floor(uint64_t n) {
  if (n == 0) {
    return 0;
  }
  return 63 - std::countl_zero(n);
}

/// Number of set bits.
[[nodiscard]] inline int PopCount(uint64_t x) { return std::popcount(x); }

/// Binary distance of Definition 2.2: lambda(x, y) = Count(x XOR y),
/// i.e. the Hamming distance of the two codewords.
[[nodiscard]] inline int BinaryDistance(uint64_t x, uint64_t y) {
  return std::popcount(x ^ y);
}

/// i-th codeword of the reflected binary Gray code: consecutive codewords
/// have binary distance exactly 1, so any 2^p consecutive Gray codewords
/// form a chain (Definition 2.3).
[[nodiscard]] inline uint64_t BinaryToGray(uint64_t i) { return i ^ (i >> 1); }

/// Inverse of BinaryToGray.
[[nodiscard]] inline uint64_t GrayToBinary(uint64_t g) {
  uint64_t b = g;
  for (int shift = 1; shift < 64; shift <<= 1) {
    b ^= b >> shift;
  }
  return b;
}

}  // namespace ebi

#endif  // EBI_UTIL_BIT_UTIL_H_
