#ifndef EBI_UTIL_BITVECTOR_H_
#define EBI_UTIL_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ebi {

/// A densely packed, word-aligned bit vector.
///
/// This is the physical representation of every bitmap vector in the
/// library: one bit per tuple position, bit j set iff tuple j satisfies the
/// vector's property (Section 2.1 of the paper). Logical operations are
/// word-parallel; bits past `size()` in the last word are kept at zero so
/// that Count() and IsZero() never need masking.
class BitVector {
 public:
  BitVector() = default;
  /// Creates a vector of `size` bits, all zero (or all one).
  explicit BitVector(size_t size, bool value = false);

  BitVector(const BitVector&) = default;
  BitVector& operator=(const BitVector&) = default;
  BitVector(BitVector&&) = default;
  BitVector& operator=(BitVector&&) = default;

  /// Parses a string of '0'/'1' characters, index 0 first. Other characters
  /// are rejected by returning an empty vector; intended for tests.
  [[nodiscard]] static BitVector FromString(const std::string& bits);

  /// Adopts `words` as the backing array of a `size`-bit vector without
  /// copying — the bulk-load path for file reads and decompression. The
  /// vector is resized to the exact word count for `size` (truncating or
  /// zero-extending) and the tail is masked, so the tail invariant holds
  /// regardless of what the caller read into the array.
  [[nodiscard]] static BitVector FromWords(size_t size,
                                           std::vector<uint64_t> words);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  [[nodiscard]] bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }
  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Reset(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void Assign(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Reset(i);
    }
  }

  /// Grows or shrinks to `size` bits; new bits are zero.
  void Resize(size_t size);
  /// Appends one bit at the end.
  void PushBack(bool value);
  /// Sets all bits to zero without changing the size.
  void Clear();
  /// Sets all bits to one.
  void SetAll();

  /// Number of set bits.
  [[nodiscard]] size_t Count() const;
  /// True iff no bit is set.
  [[nodiscard]] bool IsZero() const;
  /// Fraction of zero bits, the paper's "sparsity" measure (Section 2.1).
  [[nodiscard]] double Sparsity() const;

  /// In-place logical operations, dispatched through the active bitmap
  /// kernel backend (util/kernels, DESIGN.md §10). The operand must have
  /// the same size (asserted in debug builds). If the sizes nevertheless
  /// differ, the shorter operand is treated as zero-extended — the
  /// operations stay memory-safe, never read past either word array, and
  /// always re-mask the tail so padding bits stay zero even when the
  /// longer operand carried set bits in this vector's padding range.
  BitVector& AndWith(const BitVector& other);
  BitVector& OrWith(const BitVector& other);
  BitVector& XorWith(const BitVector& other);
  /// In-place complement (bits past size() stay zero).
  BitVector& FlipAll();
  /// this &= ~other.
  BitVector& AndNotWith(const BitVector& other);

  /// Fused multi-operand merges: one pass over memory instead of a chain
  /// of binary ops, the shape of the paper's min-term OR chains and of
  /// conjunctive predicate merges. Every operand must be non-null and
  /// match size() (asserted in debug builds; an operand of a different
  /// size falls back to the binary op's zero-extension semantics).
  BitVector& OrWithMany(const std::vector<const BitVector*>& operands);
  BitVector& AndWithMany(const std::vector<const BitVector*>& operands);

  /// Calls `fn(index)` for every set bit in increasing order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<size_t>(w * 64 + bit));
        word &= word - 1;
      }
    }
  }

  /// Materializes the positions of the set bits.
  [[nodiscard]] std::vector<uint32_t> ToPositions() const;

  /// Renders as a '0'/'1' string, index 0 first; intended for tests.
  std::string ToString() const;

  /// Number of heap bytes used by the word array (the index size metric).
  size_t SizeBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Read access to the backing words (e.g. for compression).
  const std::vector<uint64_t>& words() const { return words_; }

  /// Number of backing 64-bit words.
  size_t NumWords() const { return words_.size(); }

  /// Overwrites backing word `w` wholesale (word-granular decompression
  /// and file reads). Bits past size() in the last word are masked off so
  /// the tail invariant is preserved.
  void SetWord(size_t w, uint64_t bits);

  /// Bulk word-granular writes for decompression fast paths: overwrite
  /// `count` backing words starting at `first` with `value` /
  /// with `words[0..count)`. Like SetWord, writes that touch the last
  /// word are masked so the tail invariant is preserved. The range must
  /// lie within NumWords() (asserted in debug builds; clamped otherwise).
  void FillWordRange(size_t first, size_t count, uint64_t value);
  void SetWordRange(size_t first, const uint64_t* words, size_t count);

  /// True iff every padding bit above size() in the last word is zero —
  /// the tail invariant Count()/IsZero()/ForEachSetBit rely on. Asserted
  /// after every mutating operation in debug builds; public so tests and
  /// the InvariantAuditor can verify it.
  [[nodiscard]] bool TailIsClean() const;

  /// ORs all bits of `src` into positions [offset, offset + src.size())
  /// — the segment-order concatenation of per-segment result bitmaps.
  /// The destination must already span the range (asserted in debug
  /// builds; out-of-range source bits are dropped otherwise). Works
  /// word-at-a-time with shifts, so unaligned offsets cost one extra OR
  /// per word, not per bit. Not safe for concurrent calls that share a
  /// destination word: merge serially, in segment order.
  void BlitFrom(const BitVector& src, size_t offset);

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  /// Zeroes the unused high bits of the last word.
  void MaskTail();

  /// Debug-build assertion that the tail invariant held after a mutating
  /// operation; compiles to nothing under NDEBUG.
  void DebugCheckTail() const;

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// Out-of-place logical operations.
[[nodiscard]] BitVector And(const BitVector& a, const BitVector& b);
[[nodiscard]] BitVector Or(const BitVector& a, const BitVector& b);
[[nodiscard]] BitVector Xor(const BitVector& a, const BitVector& b);
[[nodiscard]] BitVector Not(const BitVector& a);

}  // namespace ebi

#endif  // EBI_UTIL_BITVECTOR_H_
