#include "util/ewah_bitmap.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/kernels/kernels.h"

namespace ebi {

namespace {
constexpr size_t WordsFor(size_t bits) { return (bits + 63) / 64; }
constexpr uint64_t kAllOnes = ~uint64_t{0};
}  // namespace

/// Accumulates words into marker groups. Runs extend the pending marker
/// while it has no literals yet; a run arriving after literals closes the
/// group and opens a new one (a marker's run always precedes its
/// literals).
class EwahBuilder {
 public:
  void AddWord(uint64_t word) {
    if (word == 0) {
      AddRun(false, 1);
    } else if (word == kAllOnes) {
      AddRun(true, 1);
    } else {
      AddLiteral(word);
    }
  }

  void AddRun(bool value, uint64_t num_words) {
    while (num_words > 0) {
      if (!literals_.empty() ||
          (run_len_ > 0 && run_value_ != value) ||
          run_len_ == EwahBitmap::kRunLenMax) {
        Flush();
      }
      run_value_ = value;
      const uint64_t take =
          std::min(num_words, EwahBitmap::kRunLenMax - run_len_);
      run_len_ += take;
      num_words -= take;
    }
  }

  void AddLiteral(uint64_t word) {
    if (literals_.size() == EwahBitmap::kLiteralMax) {
      Flush();
    }
    literals_.push_back(word);
  }

  EwahBitmap Finish(size_t bits) {
    Flush();
    EwahBitmap out;
    out.size_ = bits;
    out.words_ = std::move(buffer_);
    buffer_.clear();
    return out;
  }

 private:
  void Flush() {
    if (run_len_ == 0 && literals_.empty()) {
      return;
    }
    buffer_.push_back(EwahBitmap::MakeMarker(
        run_value_, run_len_, static_cast<uint64_t>(literals_.size())));
    buffer_.insert(buffer_.end(), literals_.begin(), literals_.end());
    run_value_ = false;
    run_len_ = 0;
    literals_.clear();
  }

  std::vector<uint64_t> buffer_;
  bool run_value_ = false;
  uint64_t run_len_ = 0;
  std::vector<uint64_t> literals_;
};

/// Streams the uncompressed words of an EwahBitmap buffer. Clean runs can
/// be consumed wholesale (the word-aligned fast path); literals are
/// yielded one word at a time.
class EwahWordCursor {
 public:
  explicit EwahWordCursor(const std::vector<uint64_t>& words)
      : words_(words) {
    LoadMarker();
  }

  bool Done() const {
    return run_left_ == 0 && literals_left_ == 0 && pos_ >= words_.size();
  }
  /// True while positioned inside a clean run.
  bool InRun() const { return run_left_ > 0; }
  bool RunValue() const { return run_value_; }
  uint64_t RunRemaining() const { return run_left_; }

  /// Consumes `n` words of the current clean run (n <= RunRemaining()).
  void SkipRunWords(uint64_t n) {
    run_left_ -= n;
    if (run_left_ == 0 && literals_left_ == 0) {
      LoadMarker();
    }
  }

  /// Skips up to `n` words of any kind without materializing them: clean
  /// runs are consumed wholesale and literal stretches are jumped over by
  /// advancing the buffer position — the skip never touches the literal
  /// words themselves. Stops early at the end of the stream. This is the
  /// primitive behind the galloping compressed intersection: a zero run
  /// on one side lets the other side fast-forward in O(groups) instead of
  /// O(words).
  void SkipWords(uint64_t n) {
    while (n > 0 && !Done()) {
      if (run_left_ > 0) {
        const uint64_t take = std::min(run_left_, n);
        SkipRunWords(take);
        n -= take;
      } else {
        // Invariant: a non-done cursor outside a run has literals_left_
        // > 0 (LoadMarker never parks on an empty marker).
        const uint64_t take = std::min(literals_left_, n);
        pos_ += take;
        literals_left_ -= take;
        n -= take;
        if (literals_left_ == 0) {
          LoadMarker();
        }
      }
    }
  }

  /// Consumes and materializes the next word (run word or literal).
  uint64_t NextWord() {
    if (run_left_ > 0) {
      const uint64_t word = run_value_ ? kAllOnes : 0;
      SkipRunWords(1);
      return word;
    }
    const uint64_t word = words_[pos_++];
    --literals_left_;
    if (literals_left_ == 0) {
      LoadMarker();
    }
    return word;
  }

 private:
  void LoadMarker() {
    while (pos_ < words_.size()) {
      const uint64_t marker = words_[pos_++];
      run_value_ = EwahBitmap::RunValue(marker);
      run_left_ = EwahBitmap::RunLength(marker);
      literals_left_ = EwahBitmap::LiteralCount(marker);
      if (run_left_ > 0 || literals_left_ > 0) {
        return;
      }
    }
    run_left_ = 0;
    literals_left_ = 0;
  }

  const std::vector<uint64_t>& words_;
  size_t pos_ = 0;
  bool run_value_ = false;
  uint64_t run_left_ = 0;
  uint64_t literals_left_ = 0;
};

EwahBitmap EwahBitmap::Compress(const BitVector& bits) {
  EwahBuilder builder;
  for (uint64_t word : bits.words()) {
    builder.AddWord(word);
  }
  return builder.Finish(bits.size());
}

BitVector EwahBitmap::Decompress() const {
  BitVector out(size_);
  size_t word_pos = 0;
  size_t i = 0;
  while (i < words_.size()) {
    const uint64_t marker = words_[i++];
    const size_t run_len = static_cast<size_t>(RunLength(marker));
    if (RunValue(marker)) {
      // Bulk fill through the active kernel instead of word-at-a-time
      // SetWord; zero runs are already zero in the fresh BitVector.
      out.FillWordRange(word_pos, run_len, kAllOnes);
    }
    word_pos += run_len;
    const size_t literals = static_cast<size_t>(LiteralCount(marker));
    if (literals > 0) {
      out.SetWordRange(word_pos, words_.data() + i, literals);
      word_pos += literals;
      i += literals;
    }
  }
  return out;
}

namespace {

/// Word-granular merge of two compressed streams: while both cursors sit
/// in clean runs the combined run is emitted wholesale; otherwise one
/// word is materialized from each side and combined bitwise. A finished
/// cursor contributes zero words (zero-extension of a shorter operand).
template <typename WordOp>
EwahBitmap MergeWords(const EwahBitmap& a, const EwahBitmap& b,
                      WordOp op) {
  assert(a.size() == b.size() && "EWAH operand size mismatch");
  EwahBuilder builder;
  EwahWordCursor ca(a.words());
  EwahWordCursor cb(b.words());
  while (!ca.Done() && !cb.Done()) {
    if (ca.InRun() && cb.InRun()) {
      const uint64_t n = std::min(ca.RunRemaining(), cb.RunRemaining());
      const uint64_t word = op(ca.RunValue() ? kAllOnes : 0,
                               cb.RunValue() ? kAllOnes : 0);
      builder.AddRun(word != 0, n);
      ca.SkipRunWords(n);
      cb.SkipRunWords(n);
    } else {
      builder.AddWord(op(ca.NextWord(), cb.NextWord()));
    }
  }
  while (!ca.Done()) {
    builder.AddWord(op(ca.NextWord(), uint64_t{0}));
  }
  while (!cb.Done()) {
    builder.AddWord(op(uint64_t{0}, cb.NextWord()));
  }
  return builder.Finish(std::max(a.size(), b.size()));
}

}  // namespace

EwahBitmap EwahBitmap::And(const EwahBitmap& a, const EwahBitmap& b) {
  // Specialized galloping intersection: a clean zero run on either side
  // zeroes that stretch of the result regardless of the other operand, so
  // the other cursor skips the whole stretch via SkipWords without ever
  // materializing it. For sparse operands (long zero runs) this makes And
  // O(compressed groups), not O(uncompressed words) like MergeWords.
  assert(a.size() == b.size() && "EWAH operand size mismatch");
  const uint64_t total_words =
      static_cast<uint64_t>(WordsFor(std::max(a.size(), b.size())));
  EwahBuilder builder;
  EwahWordCursor ca(a.words());
  EwahWordCursor cb(b.words());
  uint64_t emitted = 0;
  while (!ca.Done() && !cb.Done()) {
    if (ca.InRun() && !ca.RunValue()) {
      const uint64_t n = ca.RunRemaining();
      builder.AddRun(false, n);
      ca.SkipRunWords(n);
      cb.SkipWords(n);
      emitted += n;
    } else if (cb.InRun() && !cb.RunValue()) {
      const uint64_t n = cb.RunRemaining();
      builder.AddRun(false, n);
      cb.SkipRunWords(n);
      ca.SkipWords(n);
      emitted += n;
    } else if (ca.InRun() && cb.InRun()) {
      // Both sides in ones-runs: the intersection is a ones-run too.
      const uint64_t n = std::min(ca.RunRemaining(), cb.RunRemaining());
      builder.AddRun(true, n);
      ca.SkipRunWords(n);
      cb.SkipRunWords(n);
      emitted += n;
    } else {
      builder.AddWord(ca.NextWord() & cb.NextWord());
      ++emitted;
    }
  }
  // A finished cursor zero-extends, and zero AND anything is zero: pad
  // the result out to the full word span with one zero run.
  if (emitted < total_words) {
    builder.AddRun(false, total_words - emitted);
  }
  return builder.Finish(std::max(a.size(), b.size()));
}

EwahBitmap EwahBitmap::Or(const EwahBitmap& a, const EwahBitmap& b) {
  return MergeWords(a, b, [](uint64_t x, uint64_t y) { return x | y; });
}

EwahBitmap EwahBitmap::Xor(const EwahBitmap& a, const EwahBitmap& b) {
  return MergeWords(a, b, [](uint64_t x, uint64_t y) { return x ^ y; });
}

EwahBitmap EwahBitmap::AndNot(const EwahBitmap& a, const EwahBitmap& b) {
  return MergeWords(a, b, [](uint64_t x, uint64_t y) { return x & ~y; });
}

namespace {

Status SizeMismatch(const char* op, size_t a, size_t b) {
  return Status::InvalidArgument(
      std::string("EwahBitmap::") + op + ": operand sizes differ (" +
      std::to_string(a) + " vs " + std::to_string(b) + ")");
}

}  // namespace

Result<EwahBitmap> EwahBitmap::AndChecked(const EwahBitmap& a,
                                          const EwahBitmap& b) {
  if (a.size_ != b.size_) {
    return SizeMismatch("And", a.size_, b.size_);
  }
  return And(a, b);
}

Result<EwahBitmap> EwahBitmap::OrChecked(const EwahBitmap& a,
                                         const EwahBitmap& b) {
  if (a.size_ != b.size_) {
    return SizeMismatch("Or", a.size_, b.size_);
  }
  return Or(a, b);
}

Result<EwahBitmap> EwahBitmap::XorChecked(const EwahBitmap& a,
                                          const EwahBitmap& b) {
  if (a.size_ != b.size_) {
    return SizeMismatch("Xor", a.size_, b.size_);
  }
  return Xor(a, b);
}

Result<EwahBitmap> EwahBitmap::AndNotChecked(const EwahBitmap& a,
                                             const EwahBitmap& b) {
  if (a.size_ != b.size_) {
    return SizeMismatch("AndNot", a.size_, b.size_);
  }
  return AndNot(a, b);
}

EwahBitmap EwahBitmap::Not() const {
  const size_t total_words = WordsFor(size_);
  const size_t tail_bits = size_ & 63;
  const uint64_t tail_mask =
      tail_bits == 0 ? kAllOnes : (uint64_t{1} << tail_bits) - 1;
  EwahBuilder builder;
  EwahWordCursor cursor(words_);
  size_t word_idx = 0;
  while (!cursor.Done()) {
    if (cursor.InRun()) {
      const bool value = cursor.RunValue();
      uint64_t n = cursor.RunRemaining();
      // A complemented run of zeros becomes a run of ones; if it covers
      // the partial last word, that word must be emitted masked instead.
      const bool covers_tail =
          tail_bits != 0 && word_idx + n == total_words;
      if (covers_tail) {
        --n;
      }
      if (n > 0) {
        builder.AddRun(!value, n);
        cursor.SkipRunWords(n);
        word_idx += n;
      }
      if (covers_tail) {
        builder.AddWord(~(value ? kAllOnes : 0) & tail_mask);
        cursor.SkipRunWords(1);
        ++word_idx;
      }
    } else {
      uint64_t word = ~cursor.NextWord();
      if (tail_bits != 0 && word_idx + 1 == total_words) {
        word &= tail_mask;
      }
      builder.AddWord(word);
      ++word_idx;
    }
  }
  return builder.Finish(size_);
}

size_t EwahBitmap::Count() const {
  const kernels::BitmapKernels& k = kernels::Active();
  size_t count = 0;
  size_t i = 0;
  while (i < words_.size()) {
    const uint64_t marker = words_[i++];
    if (RunValue(marker)) {
      // Runs of ones never cover the partial last word (tail invariant),
      // so every run word contributes exactly 64 set bits.
      count += static_cast<size_t>(RunLength(marker)) * 64;
    }
    // Each marker's literals are contiguous in the buffer: popcount the
    // whole span through the active kernel in one call.
    const size_t literals = static_cast<size_t>(LiteralCount(marker));
    count += k.popcount_words(words_.data() + i, literals);
    i += literals;
  }
  return count;
}

double EwahBitmap::CompressionRatio() const {
  if (SizeBytes() == 0) {
    return 1.0;
  }
  const double plain = static_cast<double>((size_ + 7) / 8);
  return plain / static_cast<double>(SizeBytes());
}

Result<EwahBitmap> EwahBitmap::FromWords(std::vector<uint64_t> words,
                                         size_t bits) {
  const size_t expect_words = WordsFor(bits);
  const size_t tail_bits = bits & 63;
  const uint64_t tail_mask =
      tail_bits == 0 ? kAllOnes : (uint64_t{1} << tail_bits) - 1;
  size_t covered = 0;
  size_t i = 0;
  while (i < words.size()) {
    const uint64_t marker = words[i++];
    const uint64_t run_len = RunLength(marker);
    const uint64_t literals = LiteralCount(marker);
    if (literals > words.size() - i) {
      return Status::InvalidArgument(
          "EwahBitmap::FromWords: literal count exceeds buffer");
    }
    if (RunValue(marker) && tail_bits != 0 &&
        covered + run_len == expect_words && run_len > 0) {
      return Status::InvalidArgument(
          "EwahBitmap::FromWords: ones-run covers the partial last word");
    }
    covered += run_len + literals;
    if (covered > expect_words) {
      return Status::InvalidArgument(
          "EwahBitmap::FromWords: buffer covers more words than the "
          "bit size allows");
    }
    if (literals > 0) {
      const size_t last_literal = i + literals - 1;
      if (covered == expect_words &&
          (words[last_literal] & ~tail_mask) != 0) {
        return Status::InvalidArgument(
            "EwahBitmap::FromWords: set bits past the logical size");
      }
      i += literals;
    }
  }
  if (covered != expect_words) {
    return Status::InvalidArgument(
        "EwahBitmap::FromWords: buffer covers " + std::to_string(covered) +
        " words, expected " + std::to_string(expect_words));
  }
  EwahBitmap out;
  out.size_ = bits;
  out.words_ = std::move(words);
  return out;
}

}  // namespace ebi
