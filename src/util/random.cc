#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace ebi {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

/// splitmix64, used to expand the single seed into xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), rng_(seed) {
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  for (uint64_t i = 0; i < n; ++i) {
    cdf_[i] /= total;
  }
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace ebi
