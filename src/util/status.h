#ifndef EBI_UTIL_STATUS_H_
#define EBI_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace ebi {

/// Error categories used across the library. The library does not use C++
/// exceptions; every fallible operation returns a `Status` or a `Result<T>`.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  /// The serving layer's admission controller shed the request (queue at
  /// capacity). Retryable by the client after backoff.
  kOverloaded = 8,
  /// The request's deadline passed before (or while) it ran.
  kDeadlineExceeded = 9,
};

/// Returns a short stable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Value-type error carrier. An engaged non-OK `Status` holds a code and a
/// human-readable message; the OK status is cheap to copy and compare.
///
/// The class itself is [[nodiscard]]: any call that returns a Status and
/// ignores it is a compile-time warning (an error under -DEBI_WERROR=ON).
/// A deliberately ignored Status must be spelled out, e.g.
/// `status.IgnoreError()` — greppable, and auditable by ebi-lint.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Explicitly discards this status. The only sanctioned way to drop a
  /// Status on the floor: call sites read `FooBar().IgnoreError();` and
  /// every occurrence is enumerable with `git grep IgnoreError`.
  void IgnoreError() const {}

  /// Renders "<CodeName>: <message>" ("OK" for the OK status).
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error holder, analogous to absl::StatusOr. Exactly one of the
/// value and a non-OK status is engaged. [[nodiscard]] like Status: a
/// dropped Result is a dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from a non-OK status (implicit so `return status;` works).
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    // A Result must never hold an OK status without a value; degrade to an
    // internal error so misuse is observable rather than undefined.
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ is engaged.
};

}  // namespace ebi

/// Propagates a non-OK Status from the evaluated expression.
#define EBI_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::ebi::Status ebi_status_internal_ = (expr);    \
    if (!ebi_status_internal_.ok()) {               \
      return ebi_status_internal_;                  \
    }                                               \
  } while (false)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
/// move-assigns the value into `lhs`.
#define EBI_ASSIGN_OR_RETURN(lhs, rexpr)          \
  EBI_ASSIGN_OR_RETURN_IMPL_(                     \
      EBI_STATUS_CONCAT_(ebi_result_, __LINE__), lhs, rexpr)

#define EBI_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()

#define EBI_STATUS_CONCAT_(a, b) EBI_STATUS_CONCAT_IMPL_(a, b)
#define EBI_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // EBI_UTIL_STATUS_H_
