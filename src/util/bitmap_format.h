#ifndef EBI_UTIL_BITMAP_FORMAT_H_
#define EBI_UTIL_BITMAP_FORMAT_H_

#include <optional>
#include <string>

namespace ebi {

/// Physical representation of a stored bitmap vector.
///
/// Every bitmap-backed index answers queries over the same logical bit
/// vectors; this knob selects how those vectors are materialized (and
/// therefore how many bytes a vector read charges to the IoAccountant):
///
///   kPlain — one bit per tuple, word-aligned (BitVector).
///   kRle   — alternating 0/1 run lengths (RleBitmap); best for the very
///            sparse vectors of simple indexes on high-cardinality
///            attributes (Section 4 of the paper).
///   kEwah  — word-aligned hybrid (EwahBitmap): marker words carry a
///            clean-run length plus a literal count, so logical operations
///            run directly on the compressed form at word granularity.
enum class BitmapFormat : uint8_t {
  kPlain = 0,
  kRle = 1,
  kEwah = 2,
};

/// Short stable name, e.g. "plain", "rle", "ewah".
inline const char* BitmapFormatName(BitmapFormat format) {
  switch (format) {
    case BitmapFormat::kPlain:
      return "plain";
    case BitmapFormat::kRle:
      return "rle";
    case BitmapFormat::kEwah:
      return "ewah";
  }
  return "?";
}

/// Index-name suffix: "" for the default plain format, "-rle" / "-ewah"
/// otherwise, so e.g. SimpleBitmapIndex reports "simple-bitmap-ewah".
inline std::string BitmapFormatSuffix(BitmapFormat format) {
  return format == BitmapFormat::kPlain
             ? std::string()
             : std::string("-") + BitmapFormatName(format);
}

/// Parses a format name; empty optional on unknown names.
inline std::optional<BitmapFormat> ParseBitmapFormat(
    const std::string& name) {
  if (name == "plain") {
    return BitmapFormat::kPlain;
  }
  if (name == "rle") {
    return BitmapFormat::kRle;
  }
  if (name == "ewah") {
    return BitmapFormat::kEwah;
  }
  return std::nullopt;
}

}  // namespace ebi

#endif  // EBI_UTIL_BITMAP_FORMAT_H_
