#include "util/stored_bitmap_io.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <streambuf>
#include <utility>
#include <vector>

#include "util/ewah_bitmap.h"
#include "util/rle_bitmap.h"

namespace ebi {

namespace {

constexpr uint32_t kBitVectorMagic = 0x45424956;  // "EBIV".
constexpr uint32_t kStoredMagic = 0x45424953;     // "EBIS".

// Format tags in the StoredBitmap stream. Distinct from BitmapFormat so
// enum reordering never silently changes the on-disk format.
constexpr uint32_t kTagPlain = 0;
constexpr uint32_t kTagRle = 1;
constexpr uint32_t kTagEwah = 2;

// Cap on the elements a read trusts from a length prefix before the
// bytes backing them have been consumed. Bulk reads proceed in chunks
// of this many elements, so a garbage count can only waste this much
// allocation up-front — the stream runs dry long before a hostile
// length turns into a giant allocation.
constexpr uint64_t kMaxTrustedReserve = 1u << 16;

// An istream view over caller-owned bytes: the zero-copy front end for
// LoadStoredBitmap(data, size). istringstream would copy the payload;
// this streambuf reads straight out of the buffer.
class MemoryStreamBuf : public std::streambuf {
 public:
  MemoryStreamBuf(const char* data, size_t size) {
    char* p = const_cast<char*>(data);
    setg(p, p, p + size);
  }
};

void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out.write(buf, 4);
}

void WriteU64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out.write(buf, 8);
}

Result<uint32_t> ReadU32(std::istream& in) {
  char buf[4];
  if (!in.read(buf, 4)) {
    return Status::OutOfRange("truncated stream reading u32");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}

Result<uint64_t> ReadU64(std::istream& in) {
  char buf[8];
  if (!in.read(buf, 8)) {
    return Status::OutOfRange("truncated stream reading u64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}

// Bulk little-endian array reads. One in.read() per chunk instead of
// one per element — the difference between stream-call overhead and
// memcpy speed on the storage engine's warm path. Chunking preserves
// the hardening contract: allocation only grows after the bytes backing
// it were actually read, bounded by kMaxTrustedReserve elements per step.
Status ReadU64Array(std::istream& in, uint64_t count,
                    std::vector<uint64_t>* out) {
  out->clear();
  out->reserve(static_cast<size_t>(
      std::min<uint64_t>(count, kMaxTrustedReserve)));
  std::vector<char> buf;
  uint64_t remaining = count;
  while (remaining > 0) {
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(remaining, kMaxTrustedReserve));
    buf.resize(chunk * 8);
    if (!in.read(buf.data(), static_cast<std::streamsize>(buf.size()))) {
      return Status::OutOfRange("truncated stream reading u64 array");
    }
    const size_t base = out->size();
    out->resize(base + chunk);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out->data() + base, buf.data(), buf.size());
    } else {
      for (size_t i = 0; i < chunk; ++i) {
        uint64_t v = 0;
        for (int b = 0; b < 8; ++b) {
          v |= static_cast<uint64_t>(
                   static_cast<unsigned char>(buf[i * 8 + b]))
               << (8 * b);
        }
        (*out)[base + i] = v;
      }
    }
    remaining -= chunk;
  }
  return Status::OK();
}

Status ReadU32Array(std::istream& in, uint64_t count,
                    std::vector<uint32_t>* out) {
  out->clear();
  out->reserve(static_cast<size_t>(
      std::min<uint64_t>(count, kMaxTrustedReserve)));
  std::vector<char> buf;
  uint64_t remaining = count;
  while (remaining > 0) {
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(remaining, kMaxTrustedReserve));
    buf.resize(chunk * 4);
    if (!in.read(buf.data(), static_cast<std::streamsize>(buf.size()))) {
      return Status::OutOfRange("truncated stream reading u32 array");
    }
    const size_t base = out->size();
    out->resize(base + chunk);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out->data() + base, buf.data(), buf.size());
    } else {
      for (size_t i = 0; i < chunk; ++i) {
        uint32_t v = 0;
        for (int b = 0; b < 4; ++b) {
          v |= static_cast<uint32_t>(
                   static_cast<unsigned char>(buf[i * 4 + b]))
               << (8 * b);
        }
        (*out)[base + i] = v;
      }
    }
    remaining -= chunk;
  }
  return Status::OK();
}

Status ExpectMagic(std::istream& in, uint32_t magic, const char* what) {
  EBI_ASSIGN_OR_RETURN(const uint32_t got, ReadU32(in));
  if (got != magic) {
    return Status::InvalidArgument(std::string("bad magic for ") + what);
  }
  return Status::OK();
}

}  // namespace

Status SaveBitVector(std::ostream& out, const BitVector& bits) {
  WriteU32(out, kBitVectorMagic);
  WriteU64(out, bits.size());
  for (uint64_t word : bits.words()) {
    WriteU64(out, word);
  }
  if (!out) {
    return Status::Internal("stream write failed");
  }
  return Status::OK();
}

Result<BitVector> LoadBitVector(std::istream& in) {
  EBI_RETURN_IF_ERROR(ExpectMagic(in, kBitVectorMagic, "BitVector"));
  EBI_ASSIGN_OR_RETURN(const uint64_t size, ReadU64(in));
  // Read the words before sizing the vector: a garbage `size` then dies
  // on stream truncation instead of on a huge allocation.
  const uint64_t num_words = (size + 63) / 64;
  std::vector<uint64_t> words;
  EBI_RETURN_IF_ERROR(ReadU64Array(in, num_words, &words));
  // Bits past `size` in the last word must be zero (BitVector's tail
  // invariant holds on every save); set padding bits mean corruption.
  if (size % 64 != 0 && !words.empty() &&
      (words.back() >> (size % 64)) != 0) {
    return Status::InvalidArgument(
        "BitVector: set padding bits past the declared size");
  }
  // FromWords adopts the array — no per-word copy into the vector.
  return BitVector::FromWords(static_cast<size_t>(size), std::move(words));
}

Status SaveStoredBitmap(std::ostream& out, const StoredBitmap& bitmap) {
  WriteU32(out, kStoredMagic);
  switch (bitmap.format()) {
    case BitmapFormat::kPlain:
      WriteU32(out, kTagPlain);
      return SaveBitVector(out, *bitmap.AsPlain());
    case BitmapFormat::kRle: {
      const RleBitmap* rle = bitmap.AsRle();
      WriteU32(out, kTagRle);
      WriteU64(out, rle->size());
      WriteU64(out, rle->runs().size());
      for (uint32_t run : rle->runs()) {
        WriteU32(out, run);
      }
      break;
    }
    case BitmapFormat::kEwah: {
      const EwahBitmap* ewah = bitmap.AsEwah();
      WriteU32(out, kTagEwah);
      WriteU64(out, ewah->size());
      WriteU64(out, ewah->words().size());
      for (uint64_t word : ewah->words()) {
        WriteU64(out, word);
      }
      break;
    }
  }
  if (!out) {
    return Status::Internal("stream write failed");
  }
  return Status::OK();
}

Result<StoredBitmap> LoadStoredBitmap(std::istream& in) {
  EBI_RETURN_IF_ERROR(ExpectMagic(in, kStoredMagic, "StoredBitmap"));
  EBI_ASSIGN_OR_RETURN(const uint32_t tag, ReadU32(in));
  switch (tag) {
    case kTagPlain: {
      EBI_ASSIGN_OR_RETURN(BitVector bits, LoadBitVector(in));
      return StoredBitmap::Make(std::move(bits), BitmapFormat::kPlain);
    }
    case kTagRle: {
      EBI_ASSIGN_OR_RETURN(const uint64_t size, ReadU64(in));
      EBI_ASSIGN_OR_RETURN(const uint64_t num_runs, ReadU64(in));
      std::vector<uint32_t> runs;
      EBI_RETURN_IF_ERROR(ReadU32Array(in, num_runs, &runs));
      uint64_t total = 0;
      for (const uint32_t run : runs) {
        total += run;
      }
      if (total != size) {
        return Status::InvalidArgument(
            "StoredBitmap: RLE runs do not sum to the declared size");
      }
      return StoredBitmap::FromRle(RleBitmap::FromRuns(runs));
    }
    case kTagEwah: {
      EBI_ASSIGN_OR_RETURN(const uint64_t size, ReadU64(in));
      EBI_ASSIGN_OR_RETURN(const uint64_t num_words, ReadU64(in));
      std::vector<uint64_t> words;
      EBI_RETURN_IF_ERROR(ReadU64Array(in, num_words, &words));
      EBI_ASSIGN_OR_RETURN(
          EwahBitmap ewah,
          EwahBitmap::FromWords(std::move(words),
                                static_cast<size_t>(size)));
      return StoredBitmap::FromEwah(std::move(ewah));
    }
    default:
      return Status::InvalidArgument("StoredBitmap: unknown format tag");
  }
}

Result<StoredBitmap> LoadStoredBitmap(const uint8_t* data, size_t size) {
  MemoryStreamBuf buf(reinterpret_cast<const char*>(data), size);
  std::istream in(&buf);
  return LoadStoredBitmap(in);
}

}  // namespace ebi
