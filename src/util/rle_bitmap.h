#ifndef EBI_UTIL_RLE_BITMAP_H_
#define EBI_UTIL_RLE_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitvector.h"
#include "util/status.h"

namespace ebi {

/// Run-length compressed bitmap.
///
/// Section 4 of the paper points at run-length compression as the standard
/// remedy for the sparsity of simple bitmap indexes on high-cardinality
/// attributes. This class stores a bitmap as alternating runs of 0s and 1s
/// (the first run is a run of 0s and may be empty) and supports the logical
/// operations used in query evaluation directly on the compressed form.
class RleBitmap {
 public:
  RleBitmap() = default;

  /// Compresses a plain bit vector.
  [[nodiscard]] static RleBitmap Compress(const BitVector& bits);

  /// Builds directly from run lengths (alternating, starting with a 0-run).
  /// The sum of the runs is the bitmap size.
  [[nodiscard]] static RleBitmap FromRuns(const std::vector<uint32_t>& runs);

  /// Expands back to a plain bit vector.
  [[nodiscard]] BitVector Decompress() const;

  /// Logical operations on the compressed form (two-pointer run merge).
  /// Operands must have equal bit sizes (asserted in debug builds); if
  /// they nevertheless differ, the shorter operand is treated as
  /// zero-extended and the result takes the larger size — never the
  /// silently truncated result of stopping at the shorter input.
  [[nodiscard]] static RleBitmap And(const RleBitmap& a, const RleBitmap& b);
  [[nodiscard]] static RleBitmap Or(const RleBitmap& a, const RleBitmap& b);

  /// Status-returning variants that reject mismatched operand sizes with
  /// InvalidArgument instead of asserting.
  static Result<RleBitmap> AndChecked(const RleBitmap& a,
                                      const RleBitmap& b);
  static Result<RleBitmap> OrChecked(const RleBitmap& a,
                                     const RleBitmap& b);

  /// Complement.
  [[nodiscard]] RleBitmap Not() const;

  /// Number of logical bits.
  size_t size() const { return size_; }
  /// Number of set bits, computed from the runs.
  [[nodiscard]] size_t Count() const;
  /// Heap bytes of the run array: the compressed-size metric.
  size_t SizeBytes() const { return runs_.size() * sizeof(uint32_t); }
  /// Number of stored runs (after normalization).
  size_t NumRuns() const { return runs_.size(); }

  /// Read access to the alternating run lengths, for serialization.
  const std::vector<uint32_t>& runs() const { return runs_; }

  /// Compression ratio relative to the plain representation
  /// (plain bytes / compressed bytes); > 1 means compression helped.
  [[nodiscard]] double CompressionRatio() const;

  /// Calls `fn(index)` for every set bit in increasing order, walking the
  /// runs without decompressing.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    size_t pos = 0;
    for (size_t i = 0; i < runs_.size(); ++i) {
      if ((i & 1) != 0) {
        for (uint32_t j = 0; j < runs_[i]; ++j) {
          fn(pos + j);
        }
      }
      pos += runs_[i];
    }
  }

  friend bool operator==(const RleBitmap& a, const RleBitmap& b) {
    return a.size_ == b.size_ && a.runs_ == b.runs_;
  }

 private:
  /// Merges adjacent equal-value runs and drops a trailing empty run; keeps
  /// the invariant that runs_[0] is a (possibly empty) 0-run and all other
  /// runs are non-empty.
  void Normalize();

  size_t size_ = 0;
  /// Alternating run lengths; runs_[i] describes 0-bits for even i and
  /// 1-bits for odd i.
  std::vector<uint32_t> runs_;
};

}  // namespace ebi

#endif  // EBI_UTIL_RLE_BITMAP_H_
