#include "util/rle_bitmap.h"

#include <algorithm>
#include <cassert>

namespace ebi {

namespace {

/// Cursor over the alternating runs of an RleBitmap, yielding
/// (bit value, remaining length) pairs.
class RunCursor {
 public:
  explicit RunCursor(const std::vector<uint32_t>& runs) : runs_(runs) {
    SkipEmpty();
  }

  bool Done() const { return index_ >= runs_.size(); }
  bool value() const { return (index_ & 1) != 0; }
  uint32_t remaining() const { return runs_[index_] - consumed_; }

  void Advance(uint32_t n) {
    consumed_ += n;
    if (consumed_ == runs_[index_]) {
      ++index_;
      consumed_ = 0;
      SkipEmpty();
    }
  }

 private:
  void SkipEmpty() {
    while (index_ < runs_.size() && runs_[index_] == 0) {
      ++index_;
    }
  }

  const std::vector<uint32_t>& runs_;
  size_t index_ = 0;
  uint32_t consumed_ = 0;
};

/// Appends `len` bits of `value` to an alternating-run vector.
void AppendRun(std::vector<uint32_t>* runs, bool value, uint32_t len) {
  if (len == 0) {
    return;
  }
  if (runs->empty()) {
    runs->push_back(0);  // Leading (possibly empty) 0-run.
  }
  const bool last_value = ((runs->size() - 1) & 1) != 0;
  if (last_value == value) {
    runs->back() += len;
  } else {
    runs->push_back(len);
  }
}

}  // namespace

RleBitmap RleBitmap::Compress(const BitVector& bits) {
  RleBitmap out;
  out.size_ = bits.size();
  bool current = false;
  uint32_t run = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    const bool bit = bits.Get(i);
    if (bit == current) {
      ++run;
    } else {
      AppendRun(&out.runs_, current, run);
      current = bit;
      run = 1;
    }
  }
  AppendRun(&out.runs_, current, run);
  out.Normalize();
  return out;
}

RleBitmap RleBitmap::FromRuns(const std::vector<uint32_t>& runs) {
  RleBitmap out;
  out.runs_ = runs;
  for (uint32_t r : runs) {
    out.size_ += r;
  }
  out.Normalize();
  return out;
}

BitVector RleBitmap::Decompress() const {
  BitVector out(size_);
  size_t pos = 0;
  for (size_t i = 0; i < runs_.size(); ++i) {
    const bool value = (i & 1) != 0;
    if (value) {
      for (uint32_t j = 0; j < runs_[i]; ++j) {
        out.Set(pos + j);
      }
    }
    pos += runs_[i];
  }
  return out;
}

namespace {

template <typename Op>
RleBitmap Merge(const std::vector<uint32_t>& a_runs,
                const std::vector<uint32_t>& b_runs, Op op) {
  std::vector<uint32_t> out_runs;
  RunCursor ca(a_runs);
  RunCursor cb(b_runs);
  while (!ca.Done() && !cb.Done()) {
    const uint32_t step = std::min(ca.remaining(), cb.remaining());
    AppendRun(&out_runs, op(ca.value(), cb.value()), step);
    ca.Advance(step);
    cb.Advance(step);
  }
  // Drain the longer operand against implicit zeros so a size mismatch
  // can never silently truncate the result (the sum of the output runs is
  // the result size — it must reach max(|a|, |b|)).
  while (!ca.Done()) {
    const uint32_t step = ca.remaining();
    AppendRun(&out_runs, op(ca.value(), false), step);
    ca.Advance(step);
  }
  while (!cb.Done()) {
    const uint32_t step = cb.remaining();
    AppendRun(&out_runs, op(false, cb.value()), step);
    cb.Advance(step);
  }
  return RleBitmap::FromRuns(out_runs);
}

}  // namespace

RleBitmap RleBitmap::And(const RleBitmap& a, const RleBitmap& b) {
  assert(a.size_ == b.size_ && "RleBitmap::And operand size mismatch");
  RleBitmap out =
      Merge(a.runs_, b.runs_, [](bool x, bool y) { return x && y; });
  // Pin the logical size so the result never depends on run bookkeeping.
  out.size_ = std::max(a.size_, b.size_);
  return out;
}

RleBitmap RleBitmap::Or(const RleBitmap& a, const RleBitmap& b) {
  assert(a.size_ == b.size_ && "RleBitmap::Or operand size mismatch");
  RleBitmap out =
      Merge(a.runs_, b.runs_, [](bool x, bool y) { return x || y; });
  out.size_ = std::max(a.size_, b.size_);
  return out;
}

Result<RleBitmap> RleBitmap::AndChecked(const RleBitmap& a,
                                        const RleBitmap& b) {
  if (a.size_ != b.size_) {
    return Status::InvalidArgument(
        "RleBitmap::And: operand sizes differ (" +
        std::to_string(a.size_) + " vs " + std::to_string(b.size_) + ")");
  }
  return And(a, b);
}

Result<RleBitmap> RleBitmap::OrChecked(const RleBitmap& a,
                                       const RleBitmap& b) {
  if (a.size_ != b.size_) {
    return Status::InvalidArgument(
        "RleBitmap::Or: operand sizes differ (" +
        std::to_string(a.size_) + " vs " + std::to_string(b.size_) + ")");
  }
  return Or(a, b);
}

RleBitmap RleBitmap::Not() const {
  RleBitmap out;
  out.size_ = size_;
  out.runs_ = runs_;
  // Complementing flips the role of even/odd runs; re-anchor by prepending
  // an empty 0-run so former 0-runs land at odd positions.
  out.runs_.insert(out.runs_.begin(), 0);
  out.Normalize();
  return out;
}

size_t RleBitmap::Count() const {
  size_t count = 0;
  for (size_t i = 1; i < runs_.size(); i += 2) {
    count += runs_[i];
  }
  return count;
}

double RleBitmap::CompressionRatio() const {
  if (SizeBytes() == 0) {
    return 1.0;
  }
  const double plain = static_cast<double>((size_ + 7) / 8);
  return plain / static_cast<double>(SizeBytes());
}

void RleBitmap::Normalize() {
  std::vector<uint32_t> merged;
  for (size_t i = 0; i < runs_.size(); ++i) {
    const bool value = (i & 1) != 0;
    AppendRun(&merged, value, runs_[i]);
    if (i == 0 && merged.empty()) {
      merged.push_back(0);
    }
  }
  // Drop the leading placeholder if nothing follows it.
  if (merged.size() == 1 && merged[0] == 0) {
    merged.clear();
  }
  runs_ = std::move(merged);
}

}  // namespace ebi
