#include "util/sync.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

// Violation reports carry a raw backtrace when the platform offers one:
// the aborting stack is the whole diagnosis (symbolize with addr2line).
#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define EBI_HAVE_EXECINFO 1
#endif
#endif

namespace ebi {
namespace lock_rank_internal {

// The tracker is always compiled (not gated on EBI_LOCK_RANK_DEBUG):
// call sites in sync.h are inline and per-TU gated, so a Release-built
// library must still export these symbols for a Debug-defined test TU.
namespace {

struct HeldMutex {
  uint32_t rank;
  const char* name;
};

/// Mutexes currently held by this thread, in acquisition order.
thread_local std::vector<HeldMutex> held;

}  // namespace

void CheckAcquire(uint32_t rank, const char* name) {
  for (const HeldMutex& h : held) {
    if (rank <= h.rank) {
      std::fprintf(stderr,
                   "ebi: lock-rank violation: acquiring \"%s\" (rank %u) "
                   "while holding \"%s\" (rank %u); mutexes must be "
                   "acquired in strictly increasing rank (see the table "
                   "in util/sync.h)\n",
                   name, rank, h.name, h.rank);
#ifdef EBI_HAVE_EXECINFO
      void* frames[32];
      const int n = backtrace(frames, 32);
      backtrace_symbols_fd(frames, n, /*fd=*/2);
#endif
      std::abort();
    }
  }
}

void NoteAcquired(uint32_t rank, const char* name) {
  held.push_back({rank, name});
}

void NoteReleased(uint32_t rank) {
  for (size_t i = held.size(); i > 0; --i) {
    if (held[i - 1].rank == rank) {
      held.erase(held.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
}

size_t HeldCount() { return held.size(); }

}  // namespace lock_rank_internal
}  // namespace ebi
