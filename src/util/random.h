#ifndef EBI_UTIL_RANDOM_H_
#define EBI_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ebi {

/// Deterministic, fast pseudo-random generator (xoshiro256**). All workload
/// generators and benchmark harnesses seed this explicitly so experiments
/// are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// Zipf-distributed integers over {0, ..., n-1} with skew parameter `theta`
/// (theta = 0 is uniform; around 1 is the classic skew used in DW
/// workloads). Uses the cumulative-probability inversion method with a
/// precomputed table, so draws are O(log n).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  /// Next rank in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace ebi

#endif  // EBI_UTIL_RANDOM_H_
