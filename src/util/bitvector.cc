#include "util/bitvector.h"

#include <algorithm>
#include <cassert>

#include "util/kernels/kernels.h"

namespace ebi {

namespace {
constexpr size_t WordsFor(size_t bits) { return (bits + 63) / 64; }

const kernels::BitmapKernels& K() { return kernels::Active(); }
}  // namespace

BitVector::BitVector(size_t size, bool value)
    : size_(size), words_(WordsFor(size), value ? ~uint64_t{0} : 0) {
  MaskTail();
}

BitVector BitVector::FromString(const std::string& bits) {
  BitVector v(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      v.Set(i);
    } else if (bits[i] != '0') {
      return BitVector();
    }
  }
  return v;
}

BitVector BitVector::FromWords(size_t size, std::vector<uint64_t> words) {
  BitVector v;
  v.size_ = size;
  words.resize(WordsFor(size), 0);
  v.words_ = std::move(words);
  v.MaskTail();
  v.DebugCheckTail();
  return v;
}

void BitVector::Resize(size_t size) {
  size_ = size;
  words_.resize(WordsFor(size), 0);
  MaskTail();
  DebugCheckTail();
}

void BitVector::PushBack(bool value) {
  const size_t i = size_;
  ++size_;
  if (WordsFor(size_) > words_.size()) {
    words_.push_back(0);
  }
  if (value) {
    Set(i);
  }
}

void BitVector::Clear() {
  K().fill_words(words_.data(), 0, words_.size());
}

void BitVector::SetAll() {
  K().fill_words(words_.data(), ~uint64_t{0}, words_.size());
  MaskTail();
  DebugCheckTail();
}

size_t BitVector::Count() const {
  return K().popcount_words(words_.data(), words_.size());
}

bool BitVector::IsZero() const {
  // Scalar on purpose: the early exit on the first non-zero word beats a
  // full-span kernel pass for the common "hit in the first words" case.
  for (uint64_t w : words_) {
    if (w != 0) {
      return false;
    }
  }
  return true;
}

double BitVector::Sparsity() const {
  if (size_ == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(Count()) / static_cast<double>(size_);
}

BitVector& BitVector::AndWith(const BitVector& other) {
  assert(size_ == other.size_ && "AndWith operand size mismatch");
  const size_t shared = std::min(words_.size(), other.words_.size());
  K().and_words(words_.data(), other.words_.data(), shared);
  // Zero-extension of a shorter operand: the words it lacks AND to zero.
  K().fill_words(words_.data() + shared, 0, words_.size() - shared);
  DebugCheckTail();
  return *this;
}

BitVector& BitVector::OrWith(const BitVector& other) {
  assert(size_ == other.size_ && "OrWith operand size mismatch");
  const size_t shared = std::min(words_.size(), other.words_.size());
  K().or_words(words_.data(), other.words_.data(), shared);
  // A longer operand legitimately carries set bits inside this vector's
  // padding range of the shared last word; without this mask they would
  // silently corrupt Count()/ForEachSetBit (the tail-word hygiene bug).
  MaskTail();
  DebugCheckTail();
  return *this;
}

BitVector& BitVector::XorWith(const BitVector& other) {
  assert(size_ == other.size_ && "XorWith operand size mismatch");
  const size_t shared = std::min(words_.size(), other.words_.size());
  K().xor_words(words_.data(), other.words_.data(), shared);
  // Same padding hazard as OrWith: XOR with a longer operand can flip
  // bits above size().
  MaskTail();
  DebugCheckTail();
  return *this;
}

BitVector& BitVector::FlipAll() {
  K().not_words(words_.data(), words_.size());
  MaskTail();
  DebugCheckTail();
  return *this;
}

BitVector& BitVector::AndNotWith(const BitVector& other) {
  assert(size_ == other.size_ && "AndNotWith operand size mismatch");
  const size_t shared = std::min(words_.size(), other.words_.size());
  K().andnot_words(words_.data(), other.words_.data(), shared);
  // AND-NOT can only clear bits, but keep the op self-certifying: a
  // pre-existing dirty tail must not survive a mutating call unnoticed.
  MaskTail();
  DebugCheckTail();
  return *this;
}

BitVector& BitVector::OrWithMany(
    const std::vector<const BitVector*>& operands) {
  // Equal-word-count operands merge in one fused pass (this vector rides
  // along as srcs[0]); ragged ones take the binary zero-extension path.
  std::vector<const uint64_t*> srcs;
  srcs.reserve(operands.size() + 1);
  srcs.push_back(words_.data());
  for (const BitVector* operand : operands) {
    assert(operand != nullptr && "OrWithMany null operand");
    assert(operand->size_ == size_ && "OrWithMany operand size mismatch");
    if (operand->words_.size() == words_.size()) {
      srcs.push_back(operand->words_.data());
    }
  }
  if (srcs.size() > 1) {
    K().or_many(words_.data(), srcs.data(), srcs.size(), words_.size());
  }
  for (const BitVector* operand : operands) {
    if (operand->words_.size() != words_.size()) {
      OrWith(*operand);
    }
  }
  MaskTail();
  DebugCheckTail();
  return *this;
}

BitVector& BitVector::AndWithMany(
    const std::vector<const BitVector*>& operands) {
  std::vector<const uint64_t*> srcs;
  srcs.reserve(operands.size() + 1);
  srcs.push_back(words_.data());
  for (const BitVector* operand : operands) {
    assert(operand != nullptr && "AndWithMany null operand");
    assert(operand->size_ == size_ && "AndWithMany operand size mismatch");
    if (operand->words_.size() == words_.size()) {
      srcs.push_back(operand->words_.data());
    }
  }
  if (srcs.size() > 1) {
    K().and_many(words_.data(), srcs.data(), srcs.size(), words_.size());
  }
  for (const BitVector* operand : operands) {
    if (operand->words_.size() != words_.size()) {
      AndWith(*operand);
    }
  }
  MaskTail();
  DebugCheckTail();
  return *this;
}

void BitVector::BlitFrom(const BitVector& src, size_t offset) {
  assert(offset + src.size_ <= size_ && "BlitFrom range exceeds destination");
  if (src.size_ == 0) {
    return;
  }
  const size_t word0 = offset >> 6;
  const size_t shift = offset & 63;
  if (shift == 0 && word0 + src.words_.size() <= words_.size()) {
    // Word-aligned segment concat (the ShardedIndex fan-out fast path):
    // one fused bulk OR instead of a shift-and-carry loop.
    K().or_words(words_.data() + word0, src.words_.data(),
                 src.words_.size());
  } else {
    for (size_t i = 0; i < src.words_.size(); ++i) {
      const uint64_t w = src.words_[i];
      if (word0 + i < words_.size()) {
        words_[word0 + i] |= shift == 0 ? w : (w << shift);
      }
      if (shift != 0 && word0 + i + 1 < words_.size()) {
        words_[word0 + i + 1] |= w >> (64 - shift);
      }
    }
  }
  MaskTail();
  DebugCheckTail();
}

void BitVector::SetWord(size_t w, uint64_t bits) {
  words_[w] = bits;
  if (w + 1 == words_.size()) {
    MaskTail();
  }
  DebugCheckTail();
}

void BitVector::FillWordRange(size_t first, size_t count, uint64_t value) {
  assert(first + count <= words_.size() && "FillWordRange out of bounds");
  if (first >= words_.size()) {
    return;
  }
  count = std::min(count, words_.size() - first);
  K().fill_words(words_.data() + first, value, count);
  if (first + count == words_.size()) {
    MaskTail();
  }
  DebugCheckTail();
}

void BitVector::SetWordRange(size_t first, const uint64_t* words,
                             size_t count) {
  assert(first + count <= words_.size() && "SetWordRange out of bounds");
  if (first >= words_.size()) {
    return;
  }
  count = std::min(count, words_.size() - first);
  K().copy_words(words_.data() + first, words, count);
  if (first + count == words_.size()) {
    MaskTail();
  }
  DebugCheckTail();
}

bool BitVector::TailIsClean() const {
  if (words_.empty()) {
    return true;
  }
  const size_t tail = size_ & 63;
  if (tail == 0) {
    return true;
  }
  return (words_.back() & ~((uint64_t{1} << tail) - 1)) == 0;
}

std::vector<uint32_t> BitVector::ToPositions() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEachSetBit([&out](size_t i) { out.push_back(static_cast<uint32_t>(i)); });
  return out;
}

std::string BitVector::ToString() const {
  std::string out(size_, '0');
  ForEachSetBit([&out](size_t i) { out[i] = '1'; });
  return out;
}

void BitVector::MaskTail() {
  const size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

void BitVector::DebugCheckTail() const {
  assert(TailIsClean() && "padding bits above size() must stay zero");
}

BitVector And(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.AndWith(b);
  return out;
}

BitVector Or(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.OrWith(b);
  return out;
}

BitVector Xor(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.XorWith(b);
  return out;
}

BitVector Not(const BitVector& a) {
  BitVector out = a;
  out.FlipAll();
  return out;
}

}  // namespace ebi
