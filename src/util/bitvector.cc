#include "util/bitvector.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace ebi {

namespace {
constexpr size_t WordsFor(size_t bits) { return (bits + 63) / 64; }
}  // namespace

BitVector::BitVector(size_t size, bool value)
    : size_(size), words_(WordsFor(size), value ? ~uint64_t{0} : 0) {
  MaskTail();
}

BitVector BitVector::FromString(const std::string& bits) {
  BitVector v(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      v.Set(i);
    } else if (bits[i] != '0') {
      return BitVector();
    }
  }
  return v;
}

void BitVector::Resize(size_t size) {
  size_ = size;
  words_.resize(WordsFor(size), 0);
  MaskTail();
}

void BitVector::PushBack(bool value) {
  const size_t i = size_;
  ++size_;
  if (WordsFor(size_) > words_.size()) {
    words_.push_back(0);
  }
  if (value) {
    Set(i);
  }
}

void BitVector::Clear() {
  for (uint64_t& w : words_) {
    w = 0;
  }
}

void BitVector::SetAll() {
  for (uint64_t& w : words_) {
    w = ~uint64_t{0};
  }
  MaskTail();
}

size_t BitVector::Count() const {
  size_t count = 0;
  for (uint64_t w : words_) {
    count += static_cast<size_t>(std::popcount(w));
  }
  return count;
}

bool BitVector::IsZero() const {
  for (uint64_t w : words_) {
    if (w != 0) {
      return false;
    }
  }
  return true;
}

double BitVector::Sparsity() const {
  if (size_ == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(Count()) / static_cast<double>(size_);
}

BitVector& BitVector::AndWith(const BitVector& other) {
  assert(size_ == other.size_ && "AndWith operand size mismatch");
  const size_t shared = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < shared; ++i) {
    words_[i] &= other.words_[i];
  }
  // Zero-extension of a shorter operand: the words it lacks AND to zero.
  for (size_t i = shared; i < words_.size(); ++i) {
    words_[i] = 0;
  }
  return *this;
}

BitVector& BitVector::OrWith(const BitVector& other) {
  assert(size_ == other.size_ && "OrWith operand size mismatch");
  const size_t shared = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < shared; ++i) {
    words_[i] |= other.words_[i];
  }
  return *this;
}

BitVector& BitVector::XorWith(const BitVector& other) {
  assert(size_ == other.size_ && "XorWith operand size mismatch");
  const size_t shared = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < shared; ++i) {
    words_[i] ^= other.words_[i];
  }
  return *this;
}

BitVector& BitVector::FlipAll() {
  for (uint64_t& w : words_) {
    w = ~w;
  }
  MaskTail();
  return *this;
}

BitVector& BitVector::AndNotWith(const BitVector& other) {
  assert(size_ == other.size_ && "AndNotWith operand size mismatch");
  const size_t shared = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < shared; ++i) {
    words_[i] &= ~other.words_[i];
  }
  return *this;
}

void BitVector::BlitFrom(const BitVector& src, size_t offset) {
  assert(offset + src.size_ <= size_ && "BlitFrom range exceeds destination");
  if (src.size_ == 0) {
    return;
  }
  const size_t word0 = offset >> 6;
  const size_t shift = offset & 63;
  for (size_t i = 0; i < src.words_.size(); ++i) {
    const uint64_t w = src.words_[i];
    if (word0 + i < words_.size()) {
      words_[word0 + i] |= shift == 0 ? w : (w << shift);
    }
    if (shift != 0 && word0 + i + 1 < words_.size()) {
      words_[word0 + i + 1] |= w >> (64 - shift);
    }
  }
  MaskTail();
}

void BitVector::SetWord(size_t w, uint64_t bits) {
  words_[w] = bits;
  if (w + 1 == words_.size()) {
    MaskTail();
  }
}

std::vector<uint32_t> BitVector::ToPositions() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEachSetBit([&out](size_t i) { out.push_back(static_cast<uint32_t>(i)); });
  return out;
}

std::string BitVector::ToString() const {
  std::string out(size_, '0');
  ForEachSetBit([&out](size_t i) { out[i] = '1'; });
  return out;
}

void BitVector::MaskTail() {
  const size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

BitVector And(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.AndWith(b);
  return out;
}

BitVector Or(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.OrWith(b);
  return out;
}

BitVector Xor(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.XorWith(b);
  return out;
}

BitVector Not(const BitVector& a) {
  BitVector out = a;
  out.FlipAll();
  return out;
}

}  // namespace ebi
