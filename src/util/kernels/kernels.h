#ifndef EBI_UTIL_KERNELS_KERNELS_H_
#define EBI_UTIL_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ebi {
namespace kernels {

/// A complete set of bulk bitmap primitives over spans of 64-bit words.
///
/// Every BitVector / EwahBitmap hot loop funnels through one of these
/// function pointers instead of open-coding the word loop, so the whole
/// Boolean evaluation stack (min-term covers, fan-out merges, compressed
/// decode) picks up SIMD for free once a vectorized backend is selected.
///
/// Contracts shared by every implementation:
///   * `n` is a count of 64-bit words; n == 0 is a no-op (pointers may
///     then be null).
///   * Pointers are 8-byte aligned (they come from std::vector<uint64_t>)
///     but carry no wider alignment guarantee — backends must use
///     unaligned vector loads/stores.
///   * Binary ops allow dst == src (they are element-wise in-place safe);
///     distinct dst/src spans must not partially overlap.
///   * `or_many` / `and_many` take `k >= 1` source spans and fully
///     overwrite dst. srcs[j] == dst is allowed for any j (dst[i] is
///     written only after every srcs[j][i] is read).
///
/// The scalar backend is the oracle: tests/kernel_differential_test.cc
/// proves every other backend bit-identical to it before any benchmark
/// number is trusted (DESIGN.md §10).
struct BitmapKernels {
  /// Stable lower-case backend id: "scalar", "avx2", "avx512", "neon".
  const char* name;

  /// dst[i] &= src[i].
  void (*and_words)(uint64_t* dst, const uint64_t* src, size_t n);
  /// dst[i] |= src[i].
  void (*or_words)(uint64_t* dst, const uint64_t* src, size_t n);
  /// dst[i] ^= src[i].
  void (*xor_words)(uint64_t* dst, const uint64_t* src, size_t n);
  /// dst[i] &= ~src[i].
  void (*andnot_words)(uint64_t* dst, const uint64_t* src, size_t n);
  /// dst[i] = ~dst[i].
  void (*not_words)(uint64_t* dst, size_t n);
  /// dst[i] = value.
  void (*fill_words)(uint64_t* dst, uint64_t value, size_t n);
  /// dst[i] = src[i] (non-overlapping).
  void (*copy_words)(uint64_t* dst, const uint64_t* src, size_t n);
  /// Total set bits over the span.
  size_t (*popcount_words)(const uint64_t* src, size_t n);
  /// dst[i] = srcs[0][i] | ... | srcs[k-1][i], k >= 1. One pass over
  /// memory instead of k-1 chained binary ORs (the paper's min-term OR
  /// chains and DNF merges are exactly this shape).
  void (*or_many)(uint64_t* dst, const uint64_t* const* srcs, size_t k,
                  size_t n);
  /// dst[i] = srcs[0][i] & ... & srcs[k-1][i], k >= 1.
  void (*and_many)(uint64_t* dst, const uint64_t* const* srcs, size_t k,
                   size_t n);
};

/// The backend the running CPU supports best, selected exactly once (on
/// first call, thread-safe) in priority order avx512 > avx2 > neon >
/// scalar. The environment variable EBI_FORCE_KERNEL overrides the pick
/// for testing; an unknown or unsupported name is diagnosed on stderr and
/// ignored, so a mis-pinned CI leg degrades to auto-detection instead of
/// dying on SIGILL.
const BitmapKernels& Active();

/// The portable reference backend (always available, the differential
/// oracle).
const BitmapKernels& Scalar();

/// Every backend the running CPU can execute, scalar first. The
/// differential harness and the throughput bench iterate this, so a new
/// backend is covered by registering it here.
const std::vector<const BitmapKernels*>& Supported();

/// Looks up a supported backend by name; nullptr if unknown or not
/// executable on this CPU.
const BitmapKernels* ByName(const char* name);

}  // namespace kernels
}  // namespace ebi

#endif  // EBI_UTIL_KERNELS_KERNELS_H_
