#include "util/kernels/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/kernels/backends.h"

namespace ebi {
namespace kernels {

namespace {

std::vector<const BitmapKernels*> BuildSupported() {
  // Registration order doubles as preference order: the auto-detected
  // backend is the last entry. scalar < neon < avx2 < avx512.
  std::vector<const BitmapKernels*> supported;
  supported.push_back(&Scalar());
  if (const BitmapKernels* k = NeonIfSupported()) {
    supported.push_back(k);
  }
  if (const BitmapKernels* k = Avx2IfSupported()) {
    supported.push_back(k);
  }
  if (const BitmapKernels* k = Avx512IfSupported()) {
    supported.push_back(k);
  }
  return supported;
}

const BitmapKernels* SelectActive() {
  if (const char* forced = std::getenv("EBI_FORCE_KERNEL")) {
    if (const BitmapKernels* k = ByName(forced)) {
      return k;
    }
    // Degrade loudly but safely: a typo'd or unsupported pin must not
    // SIGILL, and must not silently pretend the forced backend ran.
    std::fprintf(stderr,
                 "ebi: EBI_FORCE_KERNEL=%s is unknown or unsupported on "
                 "this CPU; falling back to auto-detection\n",
                 forced);
  }
  return Supported().back();
}

}  // namespace

const std::vector<const BitmapKernels*>& Supported() {
  static const std::vector<const BitmapKernels*> kSupported =
      BuildSupported();
  return kSupported;
}

const BitmapKernels* ByName(const char* name) {
  if (name == nullptr) {
    return nullptr;
  }
  for (const BitmapKernels* k : Supported()) {
    if (std::strcmp(k->name, name) == 0) {
      return k;
    }
  }
  return nullptr;
}

const BitmapKernels& Active() {
  // Selected exactly once; function-local static initialization is
  // thread-safe, so concurrent first calls agree on the pick.
  static const BitmapKernels* kActive = SelectActive();
  return *kActive;
}

}  // namespace kernels
}  // namespace ebi
