// AVX-512 backend: 512-bit lanes, 8 words per vector op. Compiled with
// -mavx512f -mavx512bw (see src/CMakeLists.txt); selected at runtime only
// when the CPU reports both features, so the table is never reachable on
// hardware that would fault.

#include "util/kernels/backends.h"
#include "util/kernels/kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && \
    (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>

namespace ebi {
namespace kernels {
namespace {

void AndWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i a = _mm512_loadu_si512(dst + i);
    const __m512i b = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_and_si512(a, b));
  }
  for (; i < n; ++i) {
    dst[i] &= src[i];
  }
}

void OrWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i a = _mm512_loadu_si512(dst + i);
    const __m512i b = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_or_si512(a, b));
  }
  for (; i < n; ++i) {
    dst[i] |= src[i];
  }
}

void XorWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i a = _mm512_loadu_si512(dst + i);
    const __m512i b = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(a, b));
  }
  for (; i < n; ++i) {
    dst[i] ^= src[i];
  }
}

void AndNotWords(uint64_t* dst, const uint64_t* src, size_t n) {
  // a & ~b spelled as a & (b ^ ones): gcc-12's _mm512_andnot_si512
  // expands through a masked builtin whose _mm512_undefined_epi32 operand
  // trips -Wmaybe-uninitialized under the EBI_WERROR build.
  const __m512i ones = _mm512_set1_epi64(-1);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i a = _mm512_loadu_si512(dst + i);
    const __m512i b = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i,
                        _mm512_and_si512(a, _mm512_xor_si512(b, ones)));
  }
  for (; i < n; ++i) {
    dst[i] &= ~src[i];
  }
}

void NotWords(uint64_t* dst, size_t n) {
  const __m512i ones = _mm512_set1_epi64(-1);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i a = _mm512_loadu_si512(dst + i);
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(a, ones));
  }
  for (; i < n; ++i) {
    dst[i] = ~dst[i];
  }
}

void FillWords(uint64_t* dst, uint64_t value, size_t n) {
  const __m512i v = _mm512_set1_epi64(static_cast<long long>(value));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i, v);
  }
  for (; i < n; ++i) {
    dst[i] = value;
  }
}

void CopyWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i, _mm512_loadu_si512(src + i));
  }
  for (; i < n; ++i) {
    dst[i] = src[i];
  }
}

/// Mula's nibble-lookup popcount widened to 512-bit lanes (needs
/// AVX512BW for the byte shuffle/add/SAD).
inline __m512i PopcountLanes(__m512i v) {
  const __m512i lookup = _mm512_set4_epi32(
      0x04030302, 0x03020201, 0x03020201, 0x02010100);
  const __m512i low_mask = _mm512_set1_epi8(0x0f);
  const __m512i lo = _mm512_and_si512(v, low_mask);
  const __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), low_mask);
  const __m512i counts = _mm512_add_epi8(_mm512_shuffle_epi8(lookup, lo),
                                         _mm512_shuffle_epi8(lookup, hi));
  return _mm512_sad_epu8(counts, _mm512_setzero_si512());
}

size_t PopcountWords(const uint64_t* src, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, PopcountLanes(_mm512_loadu_si512(src + i)));
  }
  // Not _mm512_reduce_add_epi64: gcc-12's inline expansion of it trips
  // -Wuninitialized on the header's _mm256_undefined_si256, which the
  // EBI_WERROR CI build promotes to an error.
  alignas(64) uint64_t lanes[8];
  _mm512_store_si512(lanes, acc);
  size_t count = 0;
  for (uint64_t lane : lanes) {
    count += static_cast<size_t>(lane);
  }
  for (; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(src[i]));
  }
  return count;
}

void OrMany(uint64_t* dst, const uint64_t* const* srcs, size_t k,
            size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i acc = _mm512_loadu_si512(srcs[0] + i);
    for (size_t j = 1; j < k; ++j) {
      acc = _mm512_or_si512(acc, _mm512_loadu_si512(srcs[j] + i));
    }
    _mm512_storeu_si512(dst + i, acc);
  }
  for (; i < n; ++i) {
    uint64_t acc = srcs[0][i];
    for (size_t j = 1; j < k; ++j) {
      acc |= srcs[j][i];
    }
    dst[i] = acc;
  }
}

void AndMany(uint64_t* dst, const uint64_t* const* srcs, size_t k,
             size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i acc = _mm512_loadu_si512(srcs[0] + i);
    for (size_t j = 1; j < k; ++j) {
      acc = _mm512_and_si512(acc, _mm512_loadu_si512(srcs[j] + i));
    }
    _mm512_storeu_si512(dst + i, acc);
  }
  for (; i < n; ++i) {
    uint64_t acc = srcs[0][i];
    for (size_t j = 1; j < k; ++j) {
      acc &= srcs[j][i];
    }
    dst[i] = acc;
  }
}

constexpr BitmapKernels kAvx512Kernels = {
    "avx512",   AndWords,  OrWords,   XorWords, AndNotWords,
    NotWords,   FillWords, CopyWords, PopcountWords,
    OrMany,     AndMany,
};

}  // namespace

const BitmapKernels* Avx512IfSupported() {
  return (__builtin_cpu_supports("avx512f") &&
          __builtin_cpu_supports("avx512bw"))
             ? &kAvx512Kernels
             : nullptr;
}

}  // namespace kernels
}  // namespace ebi

#else  // !(__AVX512F__ && __AVX512BW__ && x86)

namespace ebi {
namespace kernels {

const BitmapKernels* Avx512IfSupported() { return nullptr; }

}  // namespace kernels
}  // namespace ebi

#endif
