#ifndef EBI_UTIL_KERNELS_BACKENDS_H_
#define EBI_UTIL_KERNELS_BACKENDS_H_

#include "util/kernels/kernels.h"

namespace ebi {
namespace kernels {

/// Internal registration points, one per backend translation unit. Each
/// returns its kernel table iff (a) the compiler could build the backend
/// for the target architecture and (b) the running CPU can execute it —
/// both checks live inside the backend's own file, so adding a backend
/// means adding one .cc and one line to BuildSupported() in kernels.cc.
const BitmapKernels* Avx2IfSupported();
const BitmapKernels* Avx512IfSupported();
const BitmapKernels* NeonIfSupported();

}  // namespace kernels
}  // namespace ebi

#endif  // EBI_UTIL_KERNELS_BACKENDS_H_
