// AVX2 backend: 256-bit lanes, 4 words per vector op. This translation
// unit is compiled with -mavx2 (see src/CMakeLists.txt); nothing in it
// may run before Avx2IfSupported() has confirmed the CPU, which is why
// the kernel table is reached only through that accessor.

#include "util/kernels/backends.h"
#include "util/kernels/kernels.h"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>

namespace ebi {
namespace kernels {
namespace {

void AndWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(a, b));
  }
  for (; i < n; ++i) {
    dst[i] &= src[i];
  }
}

void OrWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a, b));
  }
  for (; i < n; ++i) {
    dst[i] |= src[i];
  }
}

void XorWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
  for (; i < n; ++i) {
    dst[i] ^= src[i];
  }
}

void AndNotWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // _mm256_andnot_si256(b, a) computes (~b) & a.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(b, a));
  }
  for (; i < n; ++i) {
    dst[i] &= ~src[i];
  }
}

void NotWords(uint64_t* dst, size_t n) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, ones));
  }
  for (; i < n; ++i) {
    dst[i] = ~dst[i];
  }
}

void FillWords(uint64_t* dst, uint64_t value, size_t n) {
  const __m256i v = _mm256_set1_epi64x(static_cast<long long>(value));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < n; ++i) {
    dst[i] = value;
  }
}

void CopyWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
  }
  for (; i < n; ++i) {
    dst[i] = src[i];
  }
}

/// Per-byte popcount via two 16-entry nibble lookups (Mula's method),
/// horizontally summed into four 64-bit lanes by SAD against zero.
inline __m256i PopcountLanes(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

size_t PopcountWords(const uint64_t* src, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    acc = _mm256_add_epi64(acc, PopcountLanes(v));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  size_t count = static_cast<size_t>(lanes[0] + lanes[1] + lanes[2] +
                                     lanes[3]);
  for (; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(src[i]));
  }
  return count;
}

void OrMany(uint64_t* dst, const uint64_t* const* srcs, size_t k,
            size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i acc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[0] + i));
    for (size_t j = 1; j < k; ++j) {
      acc = _mm256_or_si256(
          acc,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc);
  }
  for (; i < n; ++i) {
    uint64_t acc = srcs[0][i];
    for (size_t j = 1; j < k; ++j) {
      acc |= srcs[j][i];
    }
    dst[i] = acc;
  }
}

void AndMany(uint64_t* dst, const uint64_t* const* srcs, size_t k,
             size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i acc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[0] + i));
    for (size_t j = 1; j < k; ++j) {
      acc = _mm256_and_si256(
          acc,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc);
  }
  for (; i < n; ++i) {
    uint64_t acc = srcs[0][i];
    for (size_t j = 1; j < k; ++j) {
      acc &= srcs[j][i];
    }
    dst[i] = acc;
  }
}

constexpr BitmapKernels kAvx2Kernels = {
    "avx2",     AndWords,  OrWords,   XorWords, AndNotWords,
    NotWords,   FillWords, CopyWords, PopcountWords,
    OrMany,     AndMany,
};

}  // namespace

const BitmapKernels* Avx2IfSupported() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Kernels : nullptr;
}

}  // namespace kernels
}  // namespace ebi

#else  // !(__AVX2__ && x86)

namespace ebi {
namespace kernels {

const BitmapKernels* Avx2IfSupported() { return nullptr; }

}  // namespace kernels
}  // namespace ebi

#endif
