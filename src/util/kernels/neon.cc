// NEON backend for aarch64: 128-bit lanes, 2 words per vector op. NEON is
// architecturally mandatory on aarch64, so the only gate is the target
// architecture itself — no runtime feature probe is needed.

#include "util/kernels/backends.h"
#include "util/kernels/kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <bit>
#include <cstddef>
#include <cstdint>

namespace ebi {
namespace kernels {
namespace {

void AndWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) {
    dst[i] &= src[i];
  }
}

void OrWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) {
    dst[i] |= src[i];
  }
}

void XorWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, veorq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) {
    dst[i] ^= src[i];
  }
}

void AndNotWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // vbicq_u64(a, b) computes a & ~b.
    vst1q_u64(dst + i, vbicq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) {
    dst[i] &= ~src[i];
  }
}

void NotWords(uint64_t* dst, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t a = vreinterpretq_u8_u64(vld1q_u64(dst + i));
    vst1q_u64(dst + i, vreinterpretq_u64_u8(vmvnq_u8(a)));
  }
  for (; i < n; ++i) {
    dst[i] = ~dst[i];
  }
}

void FillWords(uint64_t* dst, uint64_t value, size_t n) {
  const uint64x2_t v = vdupq_n_u64(value);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, v);
  }
  for (; i < n; ++i) {
    dst[i] = value;
  }
}

void CopyWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vld1q_u64(src + i));
  }
  for (; i < n; ++i) {
    dst[i] = src[i];
  }
}

size_t PopcountWords(const uint64_t* src, size_t n) {
  size_t count = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t bytes = vreinterpretq_u8_u64(vld1q_u64(src + i));
    count += static_cast<size_t>(vaddvq_u8(vcntq_u8(bytes)));
  }
  for (; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(src[i]));
  }
  return count;
}

void OrMany(uint64_t* dst, const uint64_t* const* srcs, size_t k,
            size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t acc = vld1q_u64(srcs[0] + i);
    for (size_t j = 1; j < k; ++j) {
      acc = vorrq_u64(acc, vld1q_u64(srcs[j] + i));
    }
    vst1q_u64(dst + i, acc);
  }
  for (; i < n; ++i) {
    uint64_t acc = srcs[0][i];
    for (size_t j = 1; j < k; ++j) {
      acc |= srcs[j][i];
    }
    dst[i] = acc;
  }
}

void AndMany(uint64_t* dst, const uint64_t* const* srcs, size_t k,
             size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t acc = vld1q_u64(srcs[0] + i);
    for (size_t j = 1; j < k; ++j) {
      acc = vandq_u64(acc, vld1q_u64(srcs[j] + i));
    }
    vst1q_u64(dst + i, acc);
  }
  for (; i < n; ++i) {
    uint64_t acc = srcs[0][i];
    for (size_t j = 1; j < k; ++j) {
      acc &= srcs[j][i];
    }
    dst[i] = acc;
  }
}

constexpr BitmapKernels kNeonKernels = {
    "neon",     AndWords,  OrWords,   XorWords, AndNotWords,
    NotWords,   FillWords, CopyWords, PopcountWords,
    OrMany,     AndMany,
};

}  // namespace

const BitmapKernels* NeonIfSupported() { return &kNeonKernels; }

}  // namespace kernels
}  // namespace ebi

#else  // !__aarch64__

namespace ebi {
namespace kernels {

const BitmapKernels* NeonIfSupported() { return nullptr; }

}  // namespace kernels
}  // namespace ebi

#endif
