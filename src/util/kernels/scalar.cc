#include <bit>
#include <cstddef>
#include <cstdint>

#include "util/kernels/kernels.h"

namespace ebi {
namespace kernels {
namespace {

// Portable word-at-a-time reference backend. Deliberately plain loops:
// this is the oracle the differential harness holds every vectorized
// backend against, so it favors being obviously correct over being fast
// (the compiler's autovectorizer still does fine on it).

void AndWords(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] &= src[i];
  }
}

void OrWords(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] |= src[i];
  }
}

void XorWords(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] ^= src[i];
  }
}

void AndNotWords(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] &= ~src[i];
  }
}

void NotWords(uint64_t* dst, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] = ~dst[i];
  }
}

void FillWords(uint64_t* dst, uint64_t value, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] = value;
  }
}

void CopyWords(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] = src[i];
  }
}

size_t PopcountWords(const uint64_t* src, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(src[i]));
  }
  return count;
}

void OrMany(uint64_t* dst, const uint64_t* const* srcs, size_t k,
            size_t n) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t acc = srcs[0][i];
    for (size_t j = 1; j < k; ++j) {
      acc |= srcs[j][i];
    }
    dst[i] = acc;
  }
}

void AndMany(uint64_t* dst, const uint64_t* const* srcs, size_t k,
             size_t n) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t acc = srcs[0][i];
    for (size_t j = 1; j < k; ++j) {
      acc &= srcs[j][i];
    }
    dst[i] = acc;
  }
}

constexpr BitmapKernels kScalarKernels = {
    "scalar",    AndWords, OrWords,        XorWords, AndNotWords,
    NotWords,    FillWords, CopyWords,     PopcountWords,
    OrMany,      AndMany,
};

}  // namespace

const BitmapKernels& Scalar() { return kScalarKernels; }

}  // namespace kernels
}  // namespace ebi
