#ifndef EBI_UTIL_THREAD_ANNOTATIONS_H_
#define EBI_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros (no-ops elsewhere).
///
/// The locking protocol of every concurrent subsystem is declared with
/// these macros and checked at compile time by `clang++ -Wthread-safety`
/// (the EBI_THREAD_SAFETY CMake option turns the warnings into errors).
/// GCC and MSVC compile the annotations away, so the annotations cost
/// nothing outside the dedicated CI leg.
///
/// The vocabulary follows the Clang documentation
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
///
///  - EBI_GUARDED_BY(mu): field may only be read/written while `mu` is
///    held by the current thread.
///  - EBI_PT_GUARDED_BY(mu): the *pointee* of a pointer field is guarded.
///  - EBI_REQUIRES(mu): the function must be called with `mu` held (the
///    `...Locked()` helper convention).
///  - EBI_ACQUIRE/EBI_RELEASE: the function takes/drops the capability.
///  - EBI_EXCLUDES(mu): the function must NOT be called with `mu` held
///    (it acquires the mutex itself; catches self-deadlock).
///  - EBI_NO_THREAD_SAFETY_ANALYSIS: opt a function out, with a comment
///    justifying why the invariant holds anyway.

#if defined(__clang__) && (!defined(SWIG))
#define EBI_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define EBI_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define EBI_CAPABILITY(x) EBI_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define EBI_SCOPED_CAPABILITY \
  EBI_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define EBI_GUARDED_BY(x) EBI_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define EBI_PT_GUARDED_BY(x) \
  EBI_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define EBI_ACQUIRED_BEFORE(...) \
  EBI_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define EBI_ACQUIRED_AFTER(...) \
  EBI_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define EBI_REQUIRES(...) \
  EBI_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define EBI_REQUIRES_SHARED(...) \
  EBI_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define EBI_ACQUIRE(...) \
  EBI_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define EBI_ACQUIRE_SHARED(...) \
  EBI_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define EBI_RELEASE(...) \
  EBI_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define EBI_RELEASE_SHARED(...) \
  EBI_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define EBI_TRY_ACQUIRE(...) \
  EBI_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define EBI_EXCLUDES(...) \
  EBI_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define EBI_ASSERT_CAPABILITY(x) \
  EBI_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define EBI_RETURN_CAPABILITY(x) \
  EBI_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define EBI_NO_THREAD_SAFETY_ANALYSIS \
  EBI_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

/// Documentation marker for members of a mutex-owning class that are
/// deliberately NOT guarded by that mutex: immutable after construction,
/// internally synchronized (std::atomic, another lock), or confined to
/// one thread. The ebi-lint `mutex-guarded-fields` rule requires every
/// mutable member of such a class to carry either EBI_GUARDED_BY or this
/// marker, so unprotected state is always a recorded decision. Expands
/// to nothing; the reason string is for the reader and the linter.
#define EBI_UNGUARDED(reason)  // not guarded: reason

#endif  // EBI_UTIL_THREAD_ANNOTATIONS_H_
