#ifndef EBI_UTIL_EWAH_BITMAP_H_
#define EBI_UTIL_EWAH_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitvector.h"
#include "util/status.h"

namespace ebi {

/// Word-aligned hybrid compressed bitmap (EWAH-style).
///
/// The buffer is a sequence of groups, each a marker word followed by its
/// literal words. A marker encodes
///
///   bit  0      value of the clean run (all-zero or all-one words),
///   bits 1..32  clean-run length in 64-bit words,
///   bits 33..63 number of verbatim literal words that follow.
///
/// Unlike the bit-granular RleBitmap, every logical operation works at
/// word granularity directly on the compressed form: clean runs are
/// skipped or emitted wholesale and only literal words are combined
/// bitwise. This is the compression family of Wu/Lemire-style bitmap
/// engines (see "Sorting improves word-aligned bitmap indexes" in
/// PAPERS.md) and the second compressed backend behind BitmapFormat.
///
/// Invariants mirror BitVector: bits at positions >= size() are zero, so
/// Count() and equality never need masking; a partial last word is always
/// stored as a literal or inside a run of zeros, never a run of ones.
class EwahBitmap {
 public:
  EwahBitmap() = default;

  /// Compresses a plain bit vector.
  [[nodiscard]] static EwahBitmap Compress(const BitVector& bits);

  /// Expands back to a plain bit vector.
  [[nodiscard]] BitVector Decompress() const;

  /// Logical operations on the compressed form. Operands must have equal
  /// bit sizes (asserted in debug builds); if they nevertheless differ,
  /// the shorter operand is treated as zero-extended and the result takes
  /// the larger size — memory-safe, never reads past either buffer.
  [[nodiscard]] static EwahBitmap And(const EwahBitmap& a, const EwahBitmap& b);
  [[nodiscard]] static EwahBitmap Or(const EwahBitmap& a, const EwahBitmap& b);
  [[nodiscard]] static EwahBitmap Xor(const EwahBitmap& a, const EwahBitmap& b);
  /// a AND NOT b.
  [[nodiscard]] static EwahBitmap AndNot(const EwahBitmap& a, const EwahBitmap& b);

  /// Status-returning variants that reject mismatched operand sizes with
  /// InvalidArgument instead of asserting.
  static Result<EwahBitmap> AndChecked(const EwahBitmap& a,
                                       const EwahBitmap& b);
  static Result<EwahBitmap> OrChecked(const EwahBitmap& a,
                                      const EwahBitmap& b);
  static Result<EwahBitmap> XorChecked(const EwahBitmap& a,
                                       const EwahBitmap& b);
  static Result<EwahBitmap> AndNotChecked(const EwahBitmap& a,
                                          const EwahBitmap& b);

  /// Complement on the compressed form (bits past size() stay zero).
  [[nodiscard]] EwahBitmap Not() const;

  /// Number of logical bits.
  size_t size() const { return size_; }
  /// Number of set bits, computed on the compressed form.
  [[nodiscard]] size_t Count() const;
  /// Heap bytes of the word buffer: the compressed-size metric.
  size_t SizeBytes() const { return words_.size() * sizeof(uint64_t); }
  /// Number of buffer words (markers + literals).
  size_t NumWords() const { return words_.size(); }

  /// Compression ratio relative to the plain representation
  /// (plain bytes / compressed bytes); > 1 means compression helped.
  [[nodiscard]] double CompressionRatio() const;

  /// Calls `fn(index)` for every set bit in increasing order, decoding
  /// runs and literals on the fly.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    size_t word_pos = 0;
    size_t i = 0;
    while (i < words_.size()) {
      const uint64_t marker = words_[i++];
      const uint64_t run_len = RunLength(marker);
      if (RunValue(marker)) {
        const size_t begin = word_pos * 64;
        const size_t end = (word_pos + run_len) * 64;
        for (size_t b = begin; b < end; ++b) {
          fn(b);
        }
      }
      word_pos += run_len;
      const uint64_t literals = LiteralCount(marker);
      for (uint64_t l = 0; l < literals; ++l) {
        uint64_t word = words_[i++];
        while (word != 0) {
          const int bit = __builtin_ctzll(word);
          fn(word_pos * 64 + static_cast<size_t>(bit));
          word &= word - 1;
        }
        ++word_pos;
      }
    }
  }

  /// Reconstructs a bitmap from a serialized buffer (e.g. read back from a
  /// BitmapStore slot). Validates that the markers are well formed and
  /// cover exactly ceil(bits / 64) words; rejects corrupt buffers.
  static Result<EwahBitmap> FromWords(std::vector<uint64_t> words,
                                      size_t bits);

  /// Read access to the buffer (markers + literals), for serialization.
  const std::vector<uint64_t>& words() const { return words_; }

  friend bool operator==(const EwahBitmap& a, const EwahBitmap& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  friend class EwahBuilder;
  friend class EwahWordCursor;

  static constexpr int kRunLenShift = 1;
  static constexpr int kLiteralShift = 33;
  static constexpr uint64_t kRunLenMax = (uint64_t{1} << 32) - 1;
  static constexpr uint64_t kLiteralMax = (uint64_t{1} << 31) - 1;

  static bool RunValue(uint64_t marker) { return (marker & 1) != 0; }
  static uint64_t RunLength(uint64_t marker) {
    return (marker >> kRunLenShift) & kRunLenMax;
  }
  static uint64_t LiteralCount(uint64_t marker) {
    return marker >> kLiteralShift;
  }
  static uint64_t MakeMarker(bool value, uint64_t run_len,
                             uint64_t literals) {
    return (value ? uint64_t{1} : 0) | (run_len << kRunLenShift) |
           (literals << kLiteralShift);
  }

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace ebi

#endif  // EBI_UTIL_EWAH_BITMAP_H_
