#include "storage/csv.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <sstream>

namespace ebi {

namespace {

bool ParseInt(const std::string& cell, int64_t* out) {
  if (cell.empty()) {
    return false;
  }
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == delimiter) {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

Result<std::unique_ptr<Table>> LoadCsv(std::istream& in,
                                       const std::string& table_name,
                                       const CsvOptions& options) {
  std::string line;
  std::vector<std::string> names;
  size_t columns = 0;

  if (options.header) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("empty CSV input");
    }
    names = SplitCsvLine(line, options.delimiter);
    columns = names.size();
  }

  // Buffer rows until every column's type is known (NULLs defer
  // inference), then create the table and flush.
  std::vector<std::vector<std::string>> pending;
  std::vector<int> types;  // -1 unknown, 0 int, 1 string.
  auto table = std::make_unique<Table>(table_name);
  bool table_ready = false;
  size_t line_number = options.header ? 1 : 0;

  auto cell_is_null = [&options](const std::string& cell) {
    return cell.empty() || cell == options.null_token;
  };

  auto flush = [&]() -> Status {
    for (size_t c = 0; c < columns; ++c) {
      const std::string name =
          c < names.size() ? names[c] : "col" + std::to_string(c);
      const Column::Type type =
          types[c] == 0 ? Column::Type::kInt64 : Column::Type::kString;
      EBI_RETURN_IF_ERROR(table->AddColumn(name, type));
    }
    for (const auto& cells : pending) {
      std::vector<Value> row(columns);
      for (size_t c = 0; c < columns; ++c) {
        if (cell_is_null(cells[c])) {
          row[c] = Value::Null();
        } else if (types[c] == 0) {
          int64_t v = 0;
          if (!ParseInt(cells[c], &v)) {
            return Status::InvalidArgument("non-integer cell '" + cells[c] +
                                           "' in integer column " +
                                           std::to_string(c));
          }
          row[c] = Value::Int(v);
        } else {
          row[c] = Value::Str(cells[c]);
        }
      }
      EBI_RETURN_IF_ERROR(table->AppendRow(row));
    }
    pending.clear();
    table_ready = true;
    return Status::OK();
  };

  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    std::vector<std::string> cells = SplitCsvLine(line, options.delimiter);
    if (columns == 0) {
      columns = cells.size();
      types.assign(columns, -1);
    } else if (cells.size() != columns) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + " has " +
          std::to_string(cells.size()) + " cells, expected " +
          std::to_string(columns));
    }
    if (types.empty()) {
      types.assign(columns, -1);
    }

    if (!table_ready) {
      // Update inference with this row.
      for (size_t c = 0; c < columns; ++c) {
        if (types[c] != -1 || cell_is_null(cells[c])) {
          continue;
        }
        int64_t v = 0;
        types[c] = ParseInt(cells[c], &v) ? 0 : 1;
      }
      pending.push_back(std::move(cells));
      bool all_known = true;
      for (int t : types) {
        all_known &= t != -1;
      }
      if (all_known) {
        EBI_RETURN_IF_ERROR(flush());
      }
      continue;
    }

    std::vector<Value> row(columns);
    for (size_t c = 0; c < columns; ++c) {
      if (cell_is_null(cells[c])) {
        row[c] = Value::Null();
      } else if (types[c] == 0) {
        int64_t v = 0;
        if (!ParseInt(cells[c], &v)) {
          return Status::InvalidArgument(
              "non-integer cell '" + cells[c] + "' at line " +
              std::to_string(line_number));
        }
        row[c] = Value::Int(v);
      } else {
        row[c] = Value::Str(cells[c]);
      }
    }
    EBI_RETURN_IF_ERROR(table->AppendRow(row));
  }

  if (!table_ready) {
    if (columns == 0) {
      return Status::InvalidArgument("CSV has no columns");
    }
    // Columns that never saw a non-NULL cell (or no data rows at all)
    // default to string.
    types.resize(columns, -1);
    for (int& t : types) {
      if (t == -1) {
        t = 1;
      }
    }
    EBI_RETURN_IF_ERROR(flush());
  }
  return table;
}

Result<std::unique_ptr<Table>> LoadCsvFile(const std::string& path,
                                           const std::string& table_name,
                                           const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  return LoadCsv(in, table_name, options);
}

}  // namespace ebi
