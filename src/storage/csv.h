#ifndef EBI_STORAGE_CSV_H_
#define EBI_STORAGE_CSV_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace ebi {

/// Options for CSV ingestion.
struct CsvOptions {
  char delimiter = ',';
  /// Treat the first row as column names.
  bool header = true;
  /// Cells equal to this string (case-sensitive) load as NULL, in addition
  /// to empty cells.
  std::string null_token = "NULL";
};

/// Loads a CSV stream into a new table. Column types are inferred from the
/// first data row: cells that parse fully as integers make kInt64 columns,
/// everything else kString (NULL cells defer inference to the next row;
/// columns that never see a value default to kString). Later type
/// mismatches are an error, not a coercion.
Result<std::unique_ptr<Table>> LoadCsv(std::istream& in,
                                       const std::string& table_name,
                                       const CsvOptions& options =
                                           CsvOptions());

/// Convenience file wrapper around LoadCsv.
Result<std::unique_ptr<Table>> LoadCsvFile(const std::string& path,
                                           const std::string& table_name,
                                           const CsvOptions& options =
                                               CsvOptions());

/// Splits one CSV line (no quoting support; delimiter split only).
std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter);

}  // namespace ebi

#endif  // EBI_STORAGE_CSV_H_
