#include "storage/segmented_table.h"

#include <algorithm>
#include <string>

namespace ebi {

Result<SegmentedTable> SegmentedTable::Partition(const Table& source,
                                                 size_t segment_rows) {
  if (segment_rows == 0) {
    return Status::InvalidArgument("segment_rows must be > 0");
  }
  SegmentedTable out;
  out.source_ = &source;
  out.segment_rows_ = segment_rows;
  out.num_rows_ = source.NumRows();

  const size_t num_segments =
      (source.NumRows() + segment_rows - 1) / segment_rows;
  out.segments_.reserve(num_segments);
  std::vector<Value> row_values(source.NumColumns());
  for (size_t s = 0; s < num_segments; ++s) {
    const size_t begin = s * segment_rows;
    const size_t end = std::min(begin + segment_rows, source.NumRows());
    auto segment = std::make_unique<Table>(source.name() + "[" +
                                           std::to_string(s) + "]");
    for (size_t c = 0; c < source.NumColumns(); ++c) {
      EBI_RETURN_IF_ERROR(segment->AddColumn(source.column(c).name(),
                                             source.column(c).type()));
    }
    for (size_t row = begin; row < end; ++row) {
      for (size_t c = 0; c < source.NumColumns(); ++c) {
        row_values[c] = source.column(c).ValueAt(row);
      }
      EBI_RETURN_IF_ERROR(segment->AppendRow(row_values));
      if (!source.RowExists(row)) {
        EBI_RETURN_IF_ERROR(segment->DeleteRow(row - begin));
      }
    }
    out.segments_.push_back(std::move(segment));
  }
  return out;
}

}  // namespace ebi
