#include "storage/table.h"

namespace ebi {

Status Table::AddColumn(std::string name, Column::Type type) {
  if (num_rows_ != 0) {
    return Status::FailedPrecondition(
        "cannot add column to non-empty table " + name_);
  }
  for (const auto& c : columns_) {
    if (c->name() == name) {
      return Status::AlreadyExists("column " + name + " already exists");
    }
  }
  columns_.push_back(std::make_unique<Column>(std::move(name), type));
  return Status::OK();
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) + " != " +
        std::to_string(columns_.size()) + " columns");
  }
  // Validate all appends would succeed before mutating (columns stay
  // aligned even on type errors).
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    if (v.is_null()) {
      continue;
    }
    const bool ok =
        (columns_[i]->type() == Column::Type::kInt64 &&
         v.kind == Value::Kind::kInt64) ||
        (columns_[i]->type() == Column::Type::kString &&
         v.kind == Value::Kind::kString);
    if (!ok) {
      return Status::InvalidArgument("type mismatch in column " +
                                     columns_[i]->name());
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    EBI_RETURN_IF_ERROR(columns_[i]->Append(values[i]));
  }
  ++num_rows_;
  existence_.PushBack(true);
  return Status::OK();
}

Status Table::DeleteRow(size_t row) {
  if (row >= num_rows_) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range");
  }
  existence_.Reset(row);
  return Status::OK();
}

Table Table::Clone() const {
  Table copy(name_);
  copy.columns_.reserve(columns_.size());
  for (const auto& c : columns_) {
    copy.columns_.push_back(std::make_unique<Column>(*c));
  }
  copy.num_rows_ = num_rows_;
  copy.existence_ = existence_;
  return copy;
}

Result<const Column*> Table::FindColumn(const std::string& name) const {
  for (const auto& c : columns_) {
    if (c->name() == name) {
      return static_cast<const Column*>(c.get());
    }
  }
  return Status::NotFound("column " + name + " not found in " + name_);
}

Result<Column*> Table::FindColumn(const std::string& name) {
  for (const auto& c : columns_) {
    if (c->name() == name) {
      return c.get();
    }
  }
  return Status::NotFound("column " + name + " not found in " + name_);
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i]->name() == name) {
      return i;
    }
  }
  return Status::NotFound("column " + name + " not found in " + name_);
}

}  // namespace ebi
