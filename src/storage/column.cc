#include "storage/column.h"

namespace ebi {

std::string Value::ToString() const {
  switch (kind) {
    case Kind::kNull:
      return "NULL";
    case Kind::kInt64:
      return std::to_string(int_value);
    case Kind::kString:
      return string_value;
  }
  return "?";
}

Status Column::Append(const Value& value) {
  if (value.is_null()) {
    has_nulls_ = true;
    rows_.push_back(kNullValueId);
    return Status::OK();
  }
  if ((type_ == Type::kInt64 && value.kind != Value::Kind::kInt64) ||
      (type_ == Type::kString && value.kind != Value::Kind::kString)) {
    return Status::InvalidArgument("type mismatch appending to column " +
                                   name_);
  }

  ValueId id;
  if (type_ == Type::kInt64) {
    auto [it, inserted] =
        int_ids_.try_emplace(value.int_value, static_cast<ValueId>(dict_size_));
    id = it->second;
    if (inserted) {
      dictionary_.push_back(value);
      ++dict_size_;
    }
  } else {
    auto [it, inserted] = string_ids_.try_emplace(
        value.string_value, static_cast<ValueId>(dict_size_));
    id = it->second;
    if (inserted) {
      dictionary_.push_back(value);
      ++dict_size_;
    }
  }
  rows_.push_back(id);
  return Status::OK();
}

Value Column::ValueAt(size_t row) const {
  const ValueId id = rows_[row];
  if (id == kNullValueId) {
    return Value::Null();
  }
  return dictionary_[id];
}

std::optional<ValueId> Column::Lookup(const Value& value) const {
  if (value.is_null()) {
    return std::nullopt;
  }
  if (type_ == Type::kInt64) {
    const auto it = int_ids_.find(value.int_value);
    if (it == int_ids_.end()) {
      return std::nullopt;
    }
    return it->second;
  }
  const auto it = string_ids_.find(value.string_value);
  if (it == string_ids_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<ValueId> Column::IdsInRange(int64_t lo, int64_t hi) const {
  std::vector<ValueId> out;
  for (ValueId id = 0; id < dictionary_.size(); ++id) {
    const int64_t v = dictionary_[id].int_value;
    if (v >= lo && v <= hi) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace ebi
