#include "storage/bitmap_store.h"

#include <utility>

namespace ebi {

Result<BitmapStore> BitmapStore::Open(const std::string& path,
                                      size_t capacity_vectors,
                                      IoAccountant* io) {
  if (capacity_vectors == 0) {
    return Status::InvalidArgument("pool capacity must be > 0");
  }
  BitmapStore store;
  store.path_ = path;
  store.capacity_ = capacity_vectors;
  store.io_ = io;
  store.file_ = std::fopen(path.c_str(), "w+b");
  if (store.file_ == nullptr) {
    return Status::Internal("cannot open " + path);
  }
  return store;
}

BitmapStore::BitmapStore(BitmapStore&& other) noexcept {
  *this = std::move(other);
}

BitmapStore& BitmapStore::operator=(BitmapStore&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
    path_ = std::move(other.path_);
    file_ = other.file_;
    other.file_ = nullptr;
    capacity_ = other.capacity_;
    io_ = other.io_;
    next_offset_ = other.next_offset_;
    directory_ = std::move(other.directory_);
    pool_ = std::move(other.pool_);
    pool_index_ = std::move(other.pool_index_);
    stats_ = other.stats_;
  }
  return *this;
}

BitmapStore::~BitmapStore() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(path_.c_str());
  }
}

Status BitmapStore::WriteSlot(const Slot& slot, const BitVector& bits) {
  if (std::fseek(file_, static_cast<long>(slot.offset), SEEK_SET) != 0) {
    return Status::Internal("seek failed");
  }
  const auto& words = bits.words();
  if (!words.empty() &&
      std::fwrite(words.data(), sizeof(uint64_t), words.size(), file_) !=
          words.size()) {
    return Status::Internal("write failed");
  }
  ++stats_.writebacks;
  return Status::OK();
}

Result<BitVector> BitmapStore::ReadSlot(const Slot& slot) {
  if (std::fseek(file_, static_cast<long>(slot.offset), SEEK_SET) != 0) {
    return Status::Internal("seek failed");
  }
  const size_t words = (slot.bits + 63) / 64;
  std::vector<uint64_t> buffer(words);
  if (words != 0 &&
      std::fread(buffer.data(), sizeof(uint64_t), words, file_) != words) {
    return Status::Internal("read failed");
  }
  BitVector bits(static_cast<size_t>(slot.bits));
  for (size_t w = 0; w < words; ++w) {
    uint64_t word = buffer[w];
    while (word != 0) {
      const int b = __builtin_ctzll(word);
      const size_t pos = w * 64 + static_cast<size_t>(b);
      if (pos < slot.bits) {
        bits.Set(pos);
      }
      word &= word - 1;
    }
  }
  io_->ChargeVectorRead(static_cast<size_t>(slot.bytes));
  return bits;
}

void BitmapStore::Touch(VectorId id, BitVector bits) {
  const auto it = pool_index_.find(id);
  if (it != pool_index_.end()) {
    pool_.erase(it->second);
    pool_index_.erase(it);
  }
  pool_.emplace_front(id, std::move(bits));
  pool_index_[id] = pool_.begin();
  while (pool_.size() > capacity_) {
    pool_index_.erase(pool_.back().first);
    pool_.pop_back();
    ++stats_.evictions;
  }
}

Result<BitmapStore::VectorId> BitmapStore::Put(const BitVector& bits) {
  Slot slot;
  slot.offset = next_offset_;
  slot.bits = bits.size();
  slot.bytes = bits.SizeBytes();
  EBI_RETURN_IF_ERROR(WriteSlot(slot, bits));
  next_offset_ += slot.bytes;
  const VectorId id = static_cast<VectorId>(directory_.size());
  directory_.push_back(slot);
  Touch(id, bits);
  return id;
}

Status BitmapStore::Update(VectorId id, const BitVector& bits) {
  if (id >= directory_.size()) {
    return Status::OutOfRange("vector id out of range");
  }
  Slot& slot = directory_[id];
  if (bits.SizeBytes() > slot.bytes) {
    // Relocate to the end of the file; the old slot becomes garbage (no
    // compaction — stores are rebuilt, not edited, in this workload).
    slot.offset = next_offset_;
    slot.bytes = bits.SizeBytes();
    next_offset_ += slot.bytes;
  }
  slot.bits = bits.size();
  EBI_RETURN_IF_ERROR(WriteSlot(slot, bits));
  Touch(id, bits);
  return Status::OK();
}

Result<BitVector> BitmapStore::Get(VectorId id) {
  if (id >= directory_.size()) {
    return Status::OutOfRange("vector id out of range");
  }
  const auto it = pool_index_.find(id);
  if (it != pool_index_.end()) {
    ++stats_.hits;
    BitVector bits = it->second->second;
    Touch(id, bits);
    return bits;
  }
  ++stats_.misses;
  EBI_ASSIGN_OR_RETURN(BitVector bits, ReadSlot(directory_[id]));
  Touch(id, bits);
  return bits;
}

}  // namespace ebi
