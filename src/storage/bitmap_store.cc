#include "storage/bitmap_store.h"

#include <utility>

#include "obs/trace.h"
#include "util/ewah_bitmap.h"
#include "util/rle_bitmap.h"

namespace ebi {

Result<BitmapStore> BitmapStore::Open(const std::string& path,
                                      size_t capacity_pages,
                                      IoAccountant* io,
                                      BitmapFormat format,
                                      exec::ThreadPool* prefetch_pool) {
  if (capacity_pages == 0) {
    return Status::InvalidArgument("pool capacity must be > 0");
  }
  engine::StorageEngineOptions options;
  options.pool_pages = capacity_pages;
  options.io = io;
  options.prefetch_pool = prefetch_pool;
  options.remove_on_close = true;
  EBI_ASSIGN_OR_RETURN(std::unique_ptr<engine::StorageEngine> engine,
                       engine::StorageEngine::Open(path, options));
  BitmapStore store;
  store.engine_ = std::move(engine);
  store.io_ = io;
  store.format_ = format;
  return store;
}

StoredBitmap BitmapStore::ToStored(const BitVector& bits) const {
  switch (format_) {
    case BitmapFormat::kPlain:
      break;
    case BitmapFormat::kRle:
      return StoredBitmap::FromRle(RleBitmap::Compress(bits));
    case BitmapFormat::kEwah:
      return StoredBitmap::FromEwah(EwahBitmap::Compress(bits));
  }
  return StoredBitmap::Make(bits, BitmapFormat::kPlain);
}

Result<BitmapStore::VectorId> BitmapStore::Put(const BitVector& bits) {
  return engine_->PutSlice(ToStored(bits));
}

Status BitmapStore::Update(VectorId id, const BitVector& bits) {
  return engine_->UpdateSlice(id, ToStored(bits));
}

Result<BitVector> BitmapStore::Get(VectorId id) {
  obs::ScopedSpan span("store.get");
  size_t pages_faulted = 0;
  EBI_ASSIGN_OR_RETURN(StoredBitmap stored,
                       engine_->GetSlice(id, &pages_faulted));
  if (pages_faulted == 0) {
    ++gets_hit_;
  } else {
    ++gets_missed_;
    // The faulted pages already charged their bytes; the Get itself is
    // one logical vector read on top.
    if (io_ != nullptr) {
      io_->ChargeVectorTouch();
    }
  }
  if (span.active()) {
    span.Attr("id", static_cast<uint64_t>(id));
    span.Attr("hit", pages_faulted == 0);
    span.Attr("pages_faulted", static_cast<uint64_t>(pages_faulted));
  }
  return stored.ToBitVector();
}

void BitmapStore::Prefetch(const std::vector<VectorId>& ids) {
  engine_->PrefetchSlices(ids);
}

BitmapStoreStats BitmapStore::stats() const {
  const engine::BufferPoolStats pool = engine_->pool_stats();
  BitmapStoreStats out;
  out.hits = gets_hit_;
  out.misses = gets_missed_;
  out.evictions = pool.evictions - pool_baseline_.evictions;
  out.writebacks = pool.writebacks - pool_baseline_.writebacks;
  return out;
}

void BitmapStore::ResetStats() {
  gets_hit_ = 0;
  gets_missed_ = 0;
  pool_baseline_ = engine_->pool_stats();
}

}  // namespace ebi
