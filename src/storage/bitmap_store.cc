#include "storage/bitmap_store.h"

#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/ewah_bitmap.h"
#include "util/rle_bitmap.h"

namespace ebi {

Result<BitmapStore> BitmapStore::Open(const std::string& path,
                                      size_t capacity_vectors,
                                      IoAccountant* io,
                                      BitmapFormat format) {
  if (capacity_vectors == 0) {
    return Status::InvalidArgument("pool capacity must be > 0");
  }
  BitmapStore store;
  store.path_ = path;
  store.capacity_ = capacity_vectors;
  store.io_ = io;
  store.format_ = format;
  store.file_ = std::fopen(path.c_str(), "w+b");
  if (store.file_ == nullptr) {
    return Status::Internal("cannot open " + path);
  }
  return store;
}

BitmapStore::BitmapStore(BitmapStore&& other) noexcept {
  *this = std::move(other);
}

BitmapStore& BitmapStore::operator=(BitmapStore&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
    path_ = std::move(other.path_);
    file_ = other.file_;
    other.file_ = nullptr;
    capacity_ = other.capacity_;
    format_ = other.format_;
    io_ = other.io_;
    next_offset_ = other.next_offset_;
    directory_ = std::move(other.directory_);
    pool_ = std::move(other.pool_);
    pool_index_ = std::move(other.pool_index_);
    stats_ = other.stats_;
  }
  return *this;
}

BitmapStore::~BitmapStore() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(path_.c_str());
  }
}

namespace {

template <typename Word>
std::vector<uint8_t> WordsToBytes(const std::vector<Word>& words) {
  std::vector<uint8_t> out(words.size() * sizeof(Word));
  if (!words.empty()) {
    std::memcpy(out.data(), words.data(), out.size());
  }
  return out;
}

template <typename Word>
Result<std::vector<Word>> BytesToWords(const std::vector<uint8_t>& bytes,
                                       const char* what) {
  if (bytes.size() % sizeof(Word) != 0) {
    return Status::Internal(std::string("corrupt ") + what +
                            " slot payload size");
  }
  std::vector<Word> out(bytes.size() / sizeof(Word));
  if (!out.empty()) {
    std::memcpy(out.data(), bytes.data(), bytes.size());
  }
  return out;
}

}  // namespace

std::vector<uint8_t> BitmapStore::Serialize(const BitVector& bits) const {
  switch (format_) {
    case BitmapFormat::kPlain:
      return WordsToBytes(bits.words());
    case BitmapFormat::kRle:
      return WordsToBytes(RleBitmap::Compress(bits).runs());
    case BitmapFormat::kEwah:
      return WordsToBytes(EwahBitmap::Compress(bits).words());
  }
  return {};
}

Result<BitVector> BitmapStore::Deserialize(
    const std::vector<uint8_t>& payload, uint64_t bits) const {
  switch (format_) {
    case BitmapFormat::kPlain: {
      EBI_ASSIGN_OR_RETURN(const std::vector<uint64_t> words,
                           BytesToWords<uint64_t>(payload, "plain"));
      BitVector out(static_cast<size_t>(bits));
      if (words.size() != out.NumWords()) {
        return Status::Internal("plain slot word count mismatch");
      }
      for (size_t w = 0; w < words.size(); ++w) {
        out.SetWord(w, words[w]);
      }
      return out;
    }
    case BitmapFormat::kRle: {
      EBI_ASSIGN_OR_RETURN(const std::vector<uint32_t> runs,
                           BytesToWords<uint32_t>(payload, "rle"));
      const RleBitmap rle = RleBitmap::FromRuns(runs);
      if (rle.size() != bits) {
        return Status::Internal("rle slot decodes to " +
                                std::to_string(rle.size()) + " bits, want " +
                                std::to_string(bits));
      }
      return rle.Decompress();
    }
    case BitmapFormat::kEwah: {
      EBI_ASSIGN_OR_RETURN(std::vector<uint64_t> words,
                           BytesToWords<uint64_t>(payload, "ewah"));
      EBI_ASSIGN_OR_RETURN(
          const EwahBitmap ewah,
          EwahBitmap::FromWords(std::move(words),
                                static_cast<size_t>(bits)));
      return ewah.Decompress();
    }
  }
  return Status::Internal("unreachable bitmap format");
}

Status BitmapStore::WriteSlot(const Slot& slot,
                              const std::vector<uint8_t>& payload) {
  if (std::fseek(file_, static_cast<long>(slot.offset), SEEK_SET) != 0) {
    return Status::Internal("seek failed");
  }
  if (!payload.empty() &&
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::Internal("write failed");
  }
  ++stats_.writebacks;
  static obs::Counter* const writeback_counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricStoreWritebacks);
  writeback_counter->Increment();
  return Status::OK();
}

Result<BitVector> BitmapStore::ReadSlot(const Slot& slot) {
  if (std::fseek(file_, static_cast<long>(slot.offset), SEEK_SET) != 0) {
    return Status::Internal("seek failed");
  }
  std::vector<uint8_t> payload(static_cast<size_t>(slot.bytes));
  if (!payload.empty() &&
      std::fread(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::Internal("read failed");
  }
  EBI_ASSIGN_OR_RETURN(BitVector bits, Deserialize(payload, slot.bits));
  // A miss charges the physical slot size: compressed formats make the
  // same logical read cheaper, which is the whole point of the knob.
  io_->ChargeVectorRead(static_cast<size_t>(slot.bytes));
  return bits;
}

void BitmapStore::Touch(VectorId id, BitVector bits) {
  const auto it = pool_index_.find(id);
  if (it != pool_index_.end()) {
    pool_.erase(it->second);
    pool_index_.erase(it);
  }
  pool_.emplace_front(id, std::move(bits));
  pool_index_[id] = pool_.begin();
  static obs::Counter* const eviction_counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricStoreEvictions);
  while (pool_.size() > capacity_) {
    pool_index_.erase(pool_.back().first);
    pool_.pop_back();
    ++stats_.evictions;
    eviction_counter->Increment();
  }
}

Result<BitmapStore::VectorId> BitmapStore::Put(const BitVector& bits) {
  const std::vector<uint8_t> payload = Serialize(bits);
  Slot slot;
  slot.offset = next_offset_;
  slot.bits = bits.size();
  slot.bytes = payload.size();
  EBI_RETURN_IF_ERROR(WriteSlot(slot, payload));
  next_offset_ += slot.bytes;
  const VectorId id = static_cast<VectorId>(directory_.size());
  directory_.push_back(slot);
  Touch(id, bits);
  return id;
}

Status BitmapStore::Update(VectorId id, const BitVector& bits) {
  if (id >= directory_.size()) {
    return Status::OutOfRange("vector id out of range");
  }
  const std::vector<uint8_t> payload = Serialize(bits);
  Slot& slot = directory_[id];
  if (payload.size() > slot.bytes) {
    // Relocate to the end of the file; the old slot becomes garbage (no
    // compaction — stores are rebuilt, not edited, in this workload).
    slot.offset = next_offset_;
    next_offset_ += payload.size();
  }
  slot.bytes = payload.size();
  slot.bits = bits.size();
  EBI_RETURN_IF_ERROR(WriteSlot(slot, payload));
  Touch(id, bits);
  return Status::OK();
}

Result<BitVector> BitmapStore::Get(VectorId id) {
  if (id >= directory_.size()) {
    return Status::OutOfRange("vector id out of range");
  }
  obs::ScopedSpan span("store.get");
  static obs::Counter* const hit_counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricStoreHits);
  static obs::Counter* const miss_counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricStoreMisses);
  const auto it = pool_index_.find(id);
  if (it != pool_index_.end()) {
    ++stats_.hits;
    hit_counter->Increment();
    BitVector bits = it->second->second;
    Touch(id, bits);
    if (span.active()) {
      span.Attr("id", static_cast<uint64_t>(id));
      span.Attr("hit", true);
    }
    return bits;
  }
  ++stats_.misses;
  miss_counter->Increment();
  EBI_ASSIGN_OR_RETURN(BitVector bits, ReadSlot(directory_[id]));
  Touch(id, bits);
  if (span.active()) {
    span.Attr("id", static_cast<uint64_t>(id));
    span.Attr("hit", false);
    span.Attr("bytes", directory_[id].bytes);
  }
  return bits;
}

Result<size_t> BitmapStore::StoredBytes(VectorId id) const {
  if (id >= directory_.size()) {
    return Status::OutOfRange("vector id out of range");
  }
  return static_cast<size_t>(directory_[id].bytes);
}

}  // namespace ebi
