#include "storage/catalog.h"

#include <algorithm>

namespace ebi {

Result<Table*> Catalog::CreateTable(const std::string& name) {
  if (tables_.contains(name)) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  auto table = std::make_unique<Table>(name);
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  return raw;
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not found");
  }
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not found");
  }
  return static_cast<const Table*>(it->second.get());
}

Status Catalog::AddForeignKey(const ForeignKey& fk) {
  EBI_ASSIGN_OR_RETURN(Table * fact, GetTable(fk.fact_table));
  EBI_ASSIGN_OR_RETURN(Table * dim, GetTable(fk.dim_table));
  EBI_RETURN_IF_ERROR(fact->ColumnIndex(fk.fact_column).status());
  EBI_RETURN_IF_ERROR(dim->ColumnIndex(fk.dim_column).status());
  foreign_keys_.push_back(fk);
  return Status::OK();
}

std::vector<const Table*> Catalog::DimensionsOf(
    const std::string& fact_table) const {
  std::vector<const Table*> out;
  for (const ForeignKey& fk : foreign_keys_) {
    if (fk.fact_table != fact_table) {
      continue;
    }
    const auto it = tables_.find(fk.dim_table);
    if (it != tables_.end()) {
      out.push_back(it->second.get());
    }
  }
  return out;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace ebi
