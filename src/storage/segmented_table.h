#ifndef EBI_STORAGE_SEGMENTED_TABLE_H_
#define EBI_STORAGE_SEGMENTED_TABLE_H_

#include <memory>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace ebi {

/// A horizontal partition of a Table into fixed-row-count segments.
///
/// Segment i covers global rows [i * segment_rows, min((i+1) *
/// segment_rows, NumRows())); the last segment is ragged. Each segment is
/// a self-contained Table — its own columns (with a segment-local
/// dictionary), its own existence bitmap mirroring the source's deleted
/// rows — so every existing index family can be built per segment through
/// the normal construction path, unchanged.
///
/// This is the data-parallel unit of the execution engine: a selection
/// evaluated independently per segment and concatenated in segment order
/// is bit-identical to the same selection on the unpartitioned table,
/// because the row spans are disjoint, ordered, and exhaustive.
///
/// The partition is a materialized snapshot: rows appended to or deleted
/// from the source afterwards are not reflected — repartition to pick
/// them up.
class SegmentedTable {
 public:
  /// Partitions `source` into segments of `segment_rows` rows (the last
  /// one ragged). segment_rows must be > 0; an empty source yields zero
  /// segments. The source must outlive the partition.
  static Result<SegmentedTable> Partition(const Table& source,
                                          size_t segment_rows);

  SegmentedTable(SegmentedTable&&) = default;
  SegmentedTable& operator=(SegmentedTable&&) = default;
  SegmentedTable(const SegmentedTable&) = delete;
  SegmentedTable& operator=(const SegmentedTable&) = delete;

  size_t NumSegments() const { return segments_.size(); }
  /// Total rows across all segments (== source rows at partition time).
  size_t NumRows() const { return num_rows_; }
  /// The fixed segment size (the last segment may hold fewer rows).
  size_t SegmentRows() const { return segment_rows_; }

  const Table& segment(size_t i) const { return *segments_[i]; }
  /// Global row index of segment i's first row.
  size_t RowBegin(size_t i) const { return i * segment_rows_; }
  /// Rows in segment i (== SegmentRows() except possibly the last).
  size_t RowsInSegment(size_t i) const { return segments_[i]->NumRows(); }

  /// The table this partition was built from.
  const Table& source() const { return *source_; }

 private:
  SegmentedTable() = default;

  const Table* source_ = nullptr;
  size_t segment_rows_ = 0;
  size_t num_rows_ = 0;
  std::vector<std::unique_ptr<Table>> segments_;
};

}  // namespace ebi

#endif  // EBI_STORAGE_SEGMENTED_TABLE_H_
