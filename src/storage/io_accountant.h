#ifndef EBI_STORAGE_IO_ACCOUNTANT_H_
#define EBI_STORAGE_IO_ACCOUNTANT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ebi {

/// Aggregated I/O counters for one query or one experiment run.
struct IoStats {
  /// Number of bitmap vectors read — the paper's primary cost metric
  /// (c_s / c_e in Section 3.1).
  uint64_t vectors_read = 0;
  /// Number of simulated disk pages read.
  uint64_t pages_read = 0;
  /// Raw bytes read.
  uint64_t bytes_read = 0;
  /// Number of index-structure nodes visited (B-tree traversals).
  uint64_t nodes_read = 0;
  /// Raw bytes written (buffer-pool writebacks, WAL appends). Appended
  /// after the read counters so positional aggregate initializers of the
  /// original four fields keep compiling.
  uint64_t bytes_written = 0;
  /// Number of disk pages written — symmetric with pages_read.
  uint64_t pages_written = 0;

  /// Per-counter difference, clamped at zero: counters are cumulative, so
  /// a subtrahend can only exceed the minuend after an interleaved
  /// Reset() — clamping keeps such deltas at zero instead of wrapping to
  /// ~2^64 (see IoScope::Delta()).
  IoStats operator-(const IoStats& other) const {
    const auto sub = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
    return IoStats{sub(vectors_read, other.vectors_read),
                   sub(pages_read, other.pages_read),
                   sub(bytes_read, other.bytes_read),
                   sub(nodes_read, other.nodes_read),
                   sub(bytes_written, other.bytes_written),
                   sub(pages_written, other.pages_written)};
  }

  /// Per-counter sum — re-aggregates per-span deltas (e.g. summing the
  /// predicate spans of a trace back into the query total) without
  /// touching the live accountant.
  IoStats operator+(const IoStats& other) const {
    return IoStats{vectors_read + other.vectors_read,
                   pages_read + other.pages_read,
                   bytes_read + other.bytes_read,
                   nodes_read + other.nodes_read,
                   bytes_written + other.bytes_written,
                   pages_written + other.pages_written};
  }

  IoStats& operator+=(const IoStats& other) {
    *this = *this + other;
    return *this;
  }

  /// Named form of operator+= for call sites that read better with a verb.
  IoStats& Merge(const IoStats& other) { return *this += other; }

  friend bool operator==(const IoStats& a, const IoStats& b) {
    return a.vectors_read == b.vectors_read &&
           a.pages_read == b.pages_read && a.bytes_read == b.bytes_read &&
           a.nodes_read == b.nodes_read &&
           a.bytes_written == b.bytes_written &&
           a.pages_written == b.pages_written;
  }

  std::string ToString() const;
};

/// Charges simulated I/O. Every index implementation routes its reads
/// through one of these so that experiments can *measure* the paper's cost
/// metric (bitmap vectors / pages accessed) instead of estimating it.
///
/// Storage is in-memory; only the accounting is "disk-shaped". Page size
/// defaults to the 4 KB the paper assumes in its Section 2.1 cost analysis.
///
/// Thread-safe: the counters are relaxed atomics, so index shards running
/// on pool workers can charge one shared accountant without tearing.
/// stats() snapshots the four counters individually — under concurrent
/// charging the snapshot is per-counter consistent, not cross-counter;
/// code that needs an exact delta (IoScope) should read at points where
/// the accountant is quiescent, as the parallel executor does (it gives
/// every segment a private accountant and merges after the barrier).
class IoAccountant {
 public:
  static constexpr size_t kDefaultPageSize = 4096;

  /// A page size of zero would divide-by-zero in ChargeBytes; reject it
  /// up front and fall back to the default rather than crash later.
  explicit IoAccountant(size_t page_size = kDefaultPageSize)
      : page_size_(page_size > 0 ? page_size : kDefaultPageSize),
        page_size_valid_(page_size > 0) {}

  /// False when the constructor was handed page_size == 0 and substituted
  /// kDefaultPageSize. Callers that must hard-fail on bad configuration
  /// check this right after construction.
  bool page_size_valid() const { return page_size_valid_; }

  /// Charges the read of one whole bitmap vector of `bytes` length.
  void ChargeVectorRead(size_t bytes) {
    vectors_read_.fetch_add(1, std::memory_order_relaxed);
    ChargeBytes(bytes);
  }

  /// Charges one index node (e.g. a B-tree page).
  void ChargeNodeRead(size_t bytes) {
    nodes_read_.fetch_add(1, std::memory_order_relaxed);
    ChargeBytes(bytes);
  }

  /// Charges a raw byte range (e.g. a projection-index scan).
  void ChargeBytes(size_t bytes) {
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    pages_read_.fetch_add((bytes + page_size_ - 1) / page_size_,
                          std::memory_order_relaxed);
  }

  /// Charges one physical page fault of `payload_bytes` stored bytes —
  /// the buffer pool's miss path. Exactly one page regardless of payload
  /// length, and exactly the stored bytes (so faulting a whole extent
  /// sums to the slice's StoredBytes, matching the paper's cost model).
  void ChargePageRead(size_t payload_bytes) {
    pages_read_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(payload_bytes, std::memory_order_relaxed);
  }

  /// Charges one physical page write of `payload_bytes` stored bytes —
  /// buffer-pool writebacks and initial extent writes.
  void ChargePageWrite(size_t payload_bytes) {
    pages_written_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(payload_bytes, std::memory_order_relaxed);
  }

  /// Charges a raw write byte range (WAL appends), page count rounded up.
  void ChargeBytesWritten(size_t bytes) {
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    pages_written_.fetch_add((bytes + page_size_ - 1) / page_size_,
                             std::memory_order_relaxed);
  }

  /// Charges one logical vector materialization with no byte traffic —
  /// the store facade uses this when a Get faults pages (which were
  /// already charged individually via ChargePageRead).
  void ChargeVectorTouch() {
    vectors_read_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Charges a whole pre-aggregated delta — how per-segment accountant
  /// deltas are merged back into the query's accountant after a parallel
  /// fan-out. Pages are taken as counted by the segment accountants, not
  /// recomputed from bytes.
  void ChargeStats(const IoStats& stats) {
    vectors_read_.fetch_add(stats.vectors_read, std::memory_order_relaxed);
    pages_read_.fetch_add(stats.pages_read, std::memory_order_relaxed);
    bytes_read_.fetch_add(stats.bytes_read, std::memory_order_relaxed);
    nodes_read_.fetch_add(stats.nodes_read, std::memory_order_relaxed);
    bytes_written_.fetch_add(stats.bytes_written, std::memory_order_relaxed);
    pages_written_.fetch_add(stats.pages_written, std::memory_order_relaxed);
  }

  IoStats stats() const {
    return IoStats{vectors_read_.load(std::memory_order_relaxed),
                   pages_read_.load(std::memory_order_relaxed),
                   bytes_read_.load(std::memory_order_relaxed),
                   nodes_read_.load(std::memory_order_relaxed),
                   bytes_written_.load(std::memory_order_relaxed),
                   pages_written_.load(std::memory_order_relaxed)};
  }
  size_t page_size() const { return page_size_; }
  void Reset() {
    vectors_read_.store(0, std::memory_order_relaxed);
    pages_read_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
    nodes_read_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
    pages_written_.store(0, std::memory_order_relaxed);
  }

 private:
  size_t page_size_;
  bool page_size_valid_;
  std::atomic<uint64_t> vectors_read_{0};
  std::atomic<uint64_t> pages_read_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> nodes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> pages_written_{0};
};

/// RAII helper measuring the I/O a scoped block performed.
class IoScope {
 public:
  explicit IoScope(IoAccountant* accountant)
      : accountant_(accountant), start_(accountant->stats()) {}

  /// I/O performed since construction. If the accountant was Reset()
  /// mid-scope, counters restart below the snapshot; the clamped
  /// subtraction then reports zero until post-Reset activity exceeds the
  /// snapshot (it never underflows to ~2^64).
  IoStats Delta() const { return accountant_->stats() - start_; }

 private:
  IoAccountant* accountant_;
  IoStats start_;
};

}  // namespace ebi

#endif  // EBI_STORAGE_IO_ACCOUNTANT_H_
