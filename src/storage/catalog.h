#ifndef EBI_STORAGE_CATALOG_H_
#define EBI_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace ebi {

/// Declares that fact_table.fact_column is a foreign key into
/// dim_table.dim_column (a star-schema edge).
struct ForeignKey {
  std::string fact_table;
  std::string fact_column;
  std::string dim_table;
  std::string dim_column;
};

/// Owns tables and star-schema metadata.
///
/// Data-warehouse data "is usually modeled as a star schema, which consists
/// of one (or more) fact table(s) and some dimensions" (Section 2.3); the
/// catalog records which is which so hierarchy-aware indexes and the OLAP
/// examples can navigate the schema.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Creates and owns a new table; fails on duplicate names.
  Result<Table*> CreateTable(const std::string& name);

  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  /// Registers a star edge; both endpoints must exist.
  Status AddForeignKey(const ForeignKey& fk);

  const std::vector<ForeignKey>& foreign_keys() const {
    return foreign_keys_;
  }

  /// All dimension tables referenced from `fact_table`.
  std::vector<const Table*> DimensionsOf(const std::string& fact_table) const;

  std::vector<std::string> TableNames() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace ebi

#endif  // EBI_STORAGE_CATALOG_H_
