#include "storage/engine/page_file.h"

#include <cstring>
#include <utility>

#include "storage/engine/crc32.h"

// The page file is the raw-I/O floor of the storage engine: POSIX fsync
// gives Sync() its durability meaning, everything else is portable stdio.
#include <unistd.h>

namespace ebi {
namespace engine {

namespace {

/// Little-endian field codec for the fixed 24-byte page header.
void PutU32(uint8_t* at, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    at[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xFF);
  }
}

uint32_t GetU32(const uint8_t* at) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(at[i]) << (8 * i);
  }
  return v;
}

}  // namespace

Result<PageFile> PageFile::Open(const std::string& path,
                                const PageFileOptions& options) {
  if (options.page_size <= kHeaderBytes) {
    return Status::InvalidArgument(
        "PageFile: page_size " + std::to_string(options.page_size) +
        " does not fit the " + std::to_string(kHeaderBytes) +
        "-byte page header");
  }
  PageFile file;
  file.path_ = path;
  file.options_ = options;
  // The file is private to this factory until returned; the guarded
  // fields are still initialized under its mutex so the capability
  // analysis can verify every access uniformly.
  const MutexLock lock(*file.mu_);
  file.file_ = std::fopen(path.c_str(), options.truncate ? "w+b" : "r+b");
  if (file.file_ == nullptr && !options.truncate) {
    // Recovery of a file that never existed: start empty.
    file.file_ = std::fopen(path.c_str(), "w+b");
  }
  if (file.file_ == nullptr) {
    return Status::Internal("PageFile: cannot open " + path);
  }
  if (!options.truncate) {
    if (std::fseek(file.file_, 0, SEEK_END) != 0) {
      return Status::Internal("PageFile: seek-to-end failed on " + path);
    }
    const long size = std::ftell(file.file_);
    if (size < 0) {
      return Status::Internal("PageFile: ftell failed on " + path);
    }
    // A torn final page (crash mid-write) rounds down: the partial page
    // is unreachable and will be reused by the next Allocate.
    file.next_page_ = static_cast<uint32_t>(
        static_cast<size_t>(size) / options.page_size);
  }
  return file;
}

// Moves transfer the mutex along with the stream, so they cannot lock it
// through the analysis; by contract they only run before the file is
// shared (factory return, engine construction).
PageFile::PageFile(PageFile&& other) noexcept { *this = std::move(other); }

PageFile& PageFile::operator=(PageFile&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
    path_ = std::move(other.path_);
    options_ = other.options_;
    mu_ = std::move(other.mu_);
    file_ = other.file_;
    other.file_ = nullptr;
    next_page_ = other.next_page_;
    pages_written_ = other.pages_written_;
  }
  return *this;
}

PageFile::~PageFile() {
  // A moved-from file has surrendered its mutex; it also has no stream.
  if (mu_ == nullptr) {
    return;
  }
  const MutexLock lock(*mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

uint32_t PageFile::NumPages() const {
  const MutexLock lock(*mu_);
  return next_page_;
}

uint64_t PageFile::PagesWritten() const {
  const MutexLock lock(*mu_);
  return pages_written_;
}

uint32_t PageFile::Allocate(uint32_t count) {
  const MutexLock lock(*mu_);
  const uint32_t first = next_page_;
  next_page_ += count;
  return first;
}

Status PageFile::WritePage(uint32_t page_no, uint32_t slice,
                           const uint8_t* data, size_t bytes) {
  if (bytes > PayloadCapacity()) {
    return Status::InvalidArgument(
        "PageFile: payload of " + std::to_string(bytes) +
        " bytes exceeds page capacity " +
        std::to_string(PayloadCapacity()));
  }
  std::vector<uint8_t> page(options_.page_size, 0);
  PutU32(page.data(), kPageMagic);
  PutU32(page.data() + 4, page_no);
  PutU32(page.data() + 8, slice);
  PutU32(page.data() + 12, static_cast<uint32_t>(bytes));
  PutU32(page.data() + 16, Crc32(data, bytes));
  // Bytes 20..23 reserved (zero).
  if (bytes > 0) {
    std::memcpy(page.data() + kHeaderBytes, data, bytes);
  }
  // Seek and write are one critical section: the stream position is
  // shared with every other reader/writer of this file.
  const MutexLock lock(*mu_);
  const uint64_t offset =
      static_cast<uint64_t>(page_no) * options_.page_size;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::Internal("PageFile: seek to page " +
                            std::to_string(page_no) + " failed");
  }
  ++pages_written_;
  if (options_.fail_after_page_writes > 0 &&
      pages_written_ >= options_.fail_after_page_writes) {
    // Fault injection: persist a torn page — the header and half the
    // payload — exactly what a crash mid-write leaves behind. The
    // checksum then fails on the next read, which is the property the
    // recovery tests assert.
    const size_t torn = kHeaderBytes + bytes / 2;
    if (std::fwrite(page.data(), 1, torn, file_) != torn) {
      return Status::Internal("PageFile: torn write failed");
    }
    std::fflush(file_);
    return Status::Internal(
        "PageFile: fault injection tore the write of page " +
        std::to_string(page_no));
  }
  if (std::fwrite(page.data(), 1, page.size(), file_) != page.size()) {
    return Status::Internal("PageFile: write of page " +
                            std::to_string(page_no) + " failed");
  }
  return Status::OK();
}

Status PageFile::ReadPage(uint32_t page_no, std::vector<uint8_t>* out,
                          uint32_t* slice) {
  const MutexLock lock(*mu_);
  if (page_no >= next_page_) {
    return Status::OutOfRange("PageFile: page " + std::to_string(page_no) +
                              " of " + std::to_string(next_page_));
  }
  const uint64_t offset =
      static_cast<uint64_t>(page_no) * options_.page_size;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::Internal("PageFile: seek to page " +
                            std::to_string(page_no) + " failed");
  }
  std::vector<uint8_t> page(options_.page_size);
  const size_t got = std::fread(page.data(), 1, page.size(), file_);
  if (got < kHeaderBytes) {
    return Status::Internal("PageFile: short read of page " +
                            std::to_string(page_no) + " (" +
                            std::to_string(got) + " bytes)");
  }
  if (GetU32(page.data()) != kPageMagic) {
    return Status::Internal("PageFile: bad magic on page " +
                            std::to_string(page_no));
  }
  if (GetU32(page.data() + 4) != page_no) {
    return Status::Internal(
        "PageFile: page " + std::to_string(page_no) +
        " self-identifies as " + std::to_string(GetU32(page.data() + 4)) +
        " (misdirected write)");
  }
  const uint32_t payload_bytes = GetU32(page.data() + 12);
  if (payload_bytes > PayloadCapacity() ||
      kHeaderBytes + payload_bytes > got) {
    return Status::Internal("PageFile: page " + std::to_string(page_no) +
                            " declares " + std::to_string(payload_bytes) +
                            " payload bytes beyond the page (torn write)");
  }
  const uint32_t want_crc = GetU32(page.data() + 16);
  const uint32_t got_crc = Crc32(page.data() + kHeaderBytes, payload_bytes);
  if (want_crc != got_crc) {
    return Status::Internal("PageFile: checksum mismatch on page " +
                            std::to_string(page_no) +
                            " (torn or corrupt write)");
  }
  if (slice != nullptr) {
    *slice = GetU32(page.data() + 8);
  }
  out->assign(page.begin() + kHeaderBytes,
              page.begin() + kHeaderBytes + payload_bytes);
  return Status::OK();
}

Status PageFile::Sync() {
  const MutexLock lock(*mu_);
  if (std::fflush(file_) != 0) {
    return Status::Internal("PageFile: fflush failed on " + path_);
  }
  if (fsync(fileno(file_)) != 0) {
    return Status::Internal("PageFile: fsync failed on " + path_);
  }
  return Status::OK();
}

}  // namespace engine
}  // namespace ebi
