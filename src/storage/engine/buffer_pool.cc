#include "storage/engine/buffer_pool.h"

#include <cstring>
#include <utility>

#include "exec/thread_pool.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace ebi {
namespace engine {

namespace {

uint64_t FrameKey(uint32_t file_id, uint32_t page_no) {
  return (static_cast<uint64_t>(file_id) << 32) | page_no;
}

}  // namespace

// --- PageRef -------------------------------------------------------------

PageRef::PageRef(PageRef&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
  }
  return *this;
}

PageRef::~PageRef() { Release(); }

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->UnpinFrame(frame_);
    pool_ = nullptr;
  }
}

const uint8_t* PageRef::data() const {
  return pool_->frames_[frame_].payload.data();
}

size_t PageRef::size() const { return pool_->frames_[frame_].payload.size(); }

uint32_t PageRef::slice() const { return pool_->frames_[frame_].slice; }

void PageRef::MarkDirty() {
  const MutexLock lock(pool_->mu_);
  pool_->frames_[frame_].dirty = true;
}

// --- BufferPool ----------------------------------------------------------

Result<std::unique_ptr<BufferPool>> BufferPool::Create(
    const BufferPoolOptions& options) {
  if (options.capacity_pages == 0) {
    return Status::InvalidArgument(
        "BufferPool: capacity_pages must be positive");
  }
  return std::unique_ptr<BufferPool>(new BufferPool(options));
}

BufferPool::BufferPool(const BufferPoolOptions& options) : options_(options) {
  const MutexLock lock(mu_);
  frames_.resize(options_.capacity_pages);
  free_frames_.reserve(options_.capacity_pages);
  for (size_t i = options_.capacity_pages; i > 0; --i) {
    free_frames_.push_back(i - 1);
  }
}

BufferPool::~BufferPool() {
  MutexLock lock(mu_);
  while (outstanding_prefetches_ != 0) {
    prefetch_cv_.Wait(lock);
  }
}

uint32_t BufferPool::Register(PageFile* file) {
  const MutexLock lock(mu_);
  files_.push_back(file);
  return static_cast<uint32_t>(files_.size() - 1);
}

void BufferPool::LruPushBackLocked(size_t frame) {
  Frame& f = frames_[frame];
  f.lru_prev = lru_tail_;
  f.lru_next = kNullFrame;
  if (lru_tail_ != kNullFrame) {
    frames_[lru_tail_].lru_next = frame;
  } else {
    lru_head_ = frame;
  }
  lru_tail_ = frame;
  f.in_lru = true;
}

void BufferPool::LruRemoveLocked(size_t frame) {
  Frame& f = frames_[frame];
  if (f.lru_prev != kNullFrame) {
    frames_[f.lru_prev].lru_next = f.lru_next;
  } else {
    lru_head_ = f.lru_next;
  }
  if (f.lru_next != kNullFrame) {
    frames_[f.lru_next].lru_prev = f.lru_prev;
  } else {
    lru_tail_ = f.lru_prev;
  }
  f.lru_prev = kNullFrame;
  f.lru_next = kNullFrame;
  f.in_lru = false;
}

void BufferPool::TouchLocked(size_t frame) {
  Frame& f = frames_[frame];
  if (f.in_lru && lru_tail_ != frame) {
    LruRemoveLocked(frame);
    LruPushBackLocked(frame);
  }
}

void BufferPool::PinFrameLocked(size_t frame) {
  Frame& f = frames_[frame];
  if (f.pins == 0 && f.in_lru) {
    LruRemoveLocked(frame);
  }
  ++f.pins;
}

void BufferPool::UnpinFrame(size_t frame) {
  const MutexLock lock(mu_);
  Frame& f = frames_[frame];
  --f.pins;
  if (f.pins == 0 && f.occupied) {
    LruPushBackLocked(frame);
  }
}

Status BufferPool::WritebackLocked(size_t frame) {
  Frame& f = frames_[frame];
  if (!f.dirty) {
    return Status::OK();
  }
  PageFile* file = files_[f.file_id];
  EBI_RETURN_IF_ERROR(
      file->WritePage(f.page_no, f.slice, f.payload.data(), f.payload.size()));
  if (options_.io != nullptr) {
    options_.io->ChargePageWrite(f.payload.size());
  }
  f.dirty = false;
  ++stats_.writebacks;
  static obs::Counter* writebacks =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricBufferPoolWritebacks);
  writebacks->Increment();
  return Status::OK();
}

Result<size_t> BufferPool::FreeFrameLocked() {
  if (!free_frames_.empty()) {
    const size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  if (lru_head_ == kNullFrame) {
    return Status::FailedPrecondition(
        "BufferPool: every frame is pinned; cannot evict");
  }
  // Strict LRU: the victim is the least-recently-touched unpinned frame.
  const size_t victim = lru_head_;
  EBI_RETURN_IF_ERROR(WritebackLocked(victim));
  LruRemoveLocked(victim);
  Frame& f = frames_[victim];
  table_.erase(FrameKey(f.file_id, f.page_no));
  f.occupied = false;
  f.payload.clear();
  ++stats_.evictions;
  static obs::Counter* evictions =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricBufferPoolEvictions);
  evictions->Increment();
  return victim;
}

Result<size_t> BufferPool::FaultLocked(uint32_t file_id, uint32_t page_no) {
  if (file_id >= files_.size()) {
    return Status::InvalidArgument("BufferPool: unknown file id " +
                                   std::to_string(file_id));
  }
  EBI_ASSIGN_OR_RETURN(const size_t frame, FreeFrameLocked());
  Frame& f = frames_[frame];
  PageFile* file = files_[file_id];
  const Status read = file->ReadPage(page_no, &f.payload, &f.slice);
  if (!read.ok()) {
    free_frames_.push_back(frame);
    return read;
  }
  if (options_.io != nullptr) {
    // One physical page, exactly the stored payload bytes: faulting a
    // whole extent therefore sums to the slice's StoredBytes.
    options_.io->ChargePageRead(f.payload.size());
  }
  f.occupied = true;
  f.dirty = false;
  f.file_id = file_id;
  f.page_no = page_no;
  f.pins = 0;
  // Freshly faulted frames enter the LRU immediately so they are
  // evictable even when the caller never pins them (ReadRange,
  // Prefetch); Pin unlinks the frame right after when it takes a pin.
  LruPushBackLocked(frame);
  table_[FrameKey(file_id, page_no)] = frame;
  ++stats_.misses;
  static obs::Counter* misses =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricBufferPoolMisses);
  misses->Increment();
  return frame;
}

Result<size_t> BufferPool::LookupLocked(uint32_t file_id, uint32_t page_no) {
  const auto it = table_.find(FrameKey(file_id, page_no));
  if (it != table_.end()) {
    ++stats_.hits;
    static obs::Counter* hits =
        obs::MetricsRegistry::Global().GetCounter(obs::kMetricBufferPoolHits);
    hits->Increment();
    TouchLocked(it->second);
    return it->second;
  }
  return FaultLocked(file_id, page_no);
}

Result<PageRef> BufferPool::Pin(uint32_t file_id, uint32_t page_no) {
  const MutexLock lock(mu_);
  EBI_ASSIGN_OR_RETURN(const size_t frame, LookupLocked(file_id, page_no));
  PinFrameLocked(frame);
  return PageRef(this, frame);
}

Status BufferPool::ReadRange(uint32_t file_id, uint32_t first_page,
                             uint32_t count, std::string* out,
                             size_t* pages_faulted) {
  const MutexLock lock(mu_);
  const uint64_t misses_before = stats_.misses;
  for (uint32_t p = 0; p < count; ++p) {
    EBI_ASSIGN_OR_RETURN(const size_t frame,
                         LookupLocked(file_id, first_page + p));
    const Frame& f = frames_[frame];
    out->append(reinterpret_cast<const char*>(f.payload.data()),
                f.payload.size());
  }
  if (pages_faulted != nullptr) {
    *pages_faulted = static_cast<size_t>(stats_.misses - misses_before);
  }
  return Status::OK();
}

Status BufferPool::WriteThrough(uint32_t file_id, uint32_t page_no,
                                uint32_t slice, const uint8_t* data,
                                size_t bytes) {
  const MutexLock lock(mu_);
  if (file_id >= files_.size()) {
    return Status::InvalidArgument("BufferPool: unknown file id " +
                                   std::to_string(file_id));
  }
  if (bytes > files_[file_id]->PayloadCapacity()) {
    return Status::InvalidArgument(
        "BufferPool: payload exceeds page capacity");
  }
  const auto it = table_.find(FrameKey(file_id, page_no));
  size_t frame;
  if (it != table_.end()) {
    frame = it->second;
    TouchLocked(frame);
  } else {
    EBI_ASSIGN_OR_RETURN(frame, FreeFrameLocked());
    Frame& f = frames_[frame];
    f.occupied = true;
    f.file_id = file_id;
    f.page_no = page_no;
    f.pins = 0;
    LruPushBackLocked(frame);
    table_[FrameKey(file_id, page_no)] = frame;
  }
  Frame& f = frames_[frame];
  f.slice = slice;
  f.payload.assign(data, data + bytes);
  f.dirty = true;
  return Status::OK();
}

void BufferPool::Prefetch(uint32_t file_id,
                          const std::vector<uint32_t>& pages) {
  static obs::Counter* prefetches =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricBufferPoolPrefetches);
  const auto warm = [this, file_id](uint32_t page_no) {
    const MutexLock lock(mu_);
    if (table_.count(FrameKey(file_id, page_no)) != 0) {
      return;  // Already resident; do not perturb LRU order.
    }
    // Best-effort: a failed prefetch is surfaced by the later Pin.
    // FaultLocked leaves the frame in the LRU, unpinned — exactly the
    // state a prefetched page should be in.
    Result<size_t> frame = FaultLocked(file_id, page_no);
    if (frame.ok()) {
      ++stats_.prefetches;
    }
  };
  if (options_.prefetch_pool == nullptr) {
    for (const uint32_t page_no : pages) {
      warm(page_no);
      prefetches->Increment();
    }
    return;
  }
  for (const uint32_t page_no : pages) {
    {
      const MutexLock lock(mu_);
      ++outstanding_prefetches_;
    }
    options_.prefetch_pool->Submit([this, warm, page_no] {
      warm(page_no);
      const MutexLock lock(mu_);
      --outstanding_prefetches_;
      prefetch_cv_.NotifyAll();
    });
    prefetches->Increment();
  }
}

Status BufferPool::Flush(uint32_t file_id) {
  const MutexLock lock(mu_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.occupied && f.dirty &&
        (file_id == kAllFiles || f.file_id == file_id)) {
      EBI_RETURN_IF_ERROR(WritebackLocked(i));
    }
  }
  return Status::OK();
}

Status BufferPool::Evict(uint32_t file_id) {
  const MutexLock lock(mu_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (!f.occupied || f.file_id != file_id) {
      continue;
    }
    if (f.pins > 0) {
      return Status::FailedPrecondition(
          "BufferPool: cannot evict pinned page " +
          std::to_string(f.page_no));
    }
    EBI_RETURN_IF_ERROR(WritebackLocked(i));
    if (f.in_lru) {
      LruRemoveLocked(i);
    }
    table_.erase(FrameKey(f.file_id, f.page_no));
    f.occupied = false;
    f.payload.clear();
    free_frames_.push_back(i);
  }
  return Status::OK();
}

BufferPoolStats BufferPool::stats() const {
  const MutexLock lock(mu_);
  return stats_;
}

size_t BufferPool::Resident() const {
  const MutexLock lock(mu_);
  return options_.capacity_pages - free_frames_.size();
}

}  // namespace engine
}  // namespace ebi
