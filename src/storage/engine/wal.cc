#include "storage/engine/wal.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "storage/engine/crc32.h"

#include <unistd.h>

namespace ebi {
namespace engine {

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetU32(const uint8_t* at) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(at[i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const uint8_t* at) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(at[i]) << (8 * i);
  }
  return v;
}

/// Frame = {magic, crc, payload_len, type, lsn(8), payload}. The crc
/// covers everything after itself: {payload_len, type, lsn, payload}.
std::vector<uint8_t> EncodeFrame(uint32_t type, uint64_t lsn,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> covered;
  covered.reserve(16 + payload.size());
  PutU32(&covered, static_cast<uint32_t>(payload.size()));
  PutU32(&covered, type);
  PutU64(&covered, lsn);
  covered.insert(covered.end(), payload.begin(), payload.end());

  std::vector<uint8_t> frame;
  frame.reserve(8 + covered.size());
  PutU32(&frame, Wal::kRecordMagic);
  PutU32(&frame, Crc32(covered.data(), covered.size()));
  frame.insert(frame.end(), covered.begin(), covered.end());
  return frame;
}

}  // namespace

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       const WalOptions& options) {
  EBI_ASSIGN_OR_RETURN(WalReplayResult existing, Replay(path));

  std::unique_ptr<Wal> wal(new Wal());
  wal->path_ = path;
  wal->options_ = options;
  // The Wal is private to this factory until returned, but the guarded
  // fields are initialized under its mutex anyway so the capability
  // analysis can verify every access uniformly.
  const MutexLock lock(wal->mu_);
  wal->next_lsn_ = existing.records.empty()
                       ? 0
                       : existing.records.back().lsn + 1;

  // "a+b" would force appends to the end, which is right, but we must
  // first drop a torn tail so the next record starts at a valid frame
  // boundary; stdio cannot truncate, so reopen via "r+b" and rewrite the
  // length with ftruncate when needed.
  wal->file_ = std::fopen(path.c_str(), "r+b");
  if (wal->file_ == nullptr) {
    wal->file_ = std::fopen(path.c_str(), "w+b");
  }
  if (wal->file_ == nullptr) {
    return Status::Internal("Wal: cannot open " + path);
  }
  if (existing.torn_tail) {
    if (ftruncate(fileno(wal->file_),
                  static_cast<off_t>(existing.valid_bytes)) != 0) {
      return Status::Internal("Wal: cannot truncate torn tail of " + path);
    }
    static obs::Counter* torn =
        obs::MetricsRegistry::Global().GetCounter(obs::kMetricWalTornTails);
    torn->Increment();
  }
  if (std::fseek(wal->file_, 0, SEEK_END) != 0) {
    return Status::Internal("Wal: seek-to-end failed on " + path);
  }
  return wal;
}

Wal::~Wal() {
  const MutexLock lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Result<uint64_t> Wal::Append(uint32_t type,
                             const std::vector<uint8_t>& payload) {
  const MutexLock lock(mu_);
  const uint64_t lsn = next_lsn_;
  const std::vector<uint8_t> frame = EncodeFrame(type, lsn, payload);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::Internal("Wal: append of record " + std::to_string(lsn) +
                            " failed");
  }
  ++next_lsn_;
  ++appends_;
  if (options_.io != nullptr) {
    options_.io->ChargeBytesWritten(frame.size());
  }
  static obs::Counter* appends =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricWalAppends);
  static obs::Counter* append_bytes =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricWalAppendBytes);
  appends->Increment();
  append_bytes->Increment(frame.size());
  if (options_.sync_on_append) {
    EBI_RETURN_IF_ERROR(SyncLocked());
  }
  if (options_.fail_after_appends > 0 &&
      appends_ >= options_.fail_after_appends) {
    // Fault injection: the record IS durable (written + synced above);
    // the failure models a crash after the WAL write but before the
    // caller's in-memory publish, which recovery must then replay.
    return Status::Internal(
        "Wal: fault injection crashed after append of record " +
        std::to_string(lsn));
  }
  return lsn;
}

Status Wal::SyncLocked() {
  if (std::fflush(file_) != 0) {
    return Status::Internal("Wal: fflush failed on " + path_);
  }
  if (fsync(fileno(file_)) != 0) {
    return Status::Internal("Wal: fsync failed on " + path_);
  }
  static obs::Counter* syncs =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricWalSyncs);
  syncs->Increment();
  return Status::OK();
}

Status Wal::Sync() {
  const MutexLock lock(mu_);
  return SyncLocked();
}

Status Wal::Reset() {
  const MutexLock lock(mu_);
  if (ftruncate(fileno(file_), 0) != 0) {
    return Status::Internal("Wal: cannot truncate " + path_);
  }
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::Internal("Wal: rewind failed on " + path_);
  }
  next_lsn_ = 0;
  return Status::OK();
}

uint64_t Wal::next_lsn() const {
  const MutexLock lock(mu_);
  return next_lsn_;
}

Result<WalReplayResult> Wal::Replay(const std::string& path) {
  WalReplayResult result;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return result;  // No log yet: nothing to replay.
  }
  static obs::Counter* replayed =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricWalReplayedRecords);
  std::vector<uint8_t> header(kFrameHeaderBytes);
  for (;;) {
    const size_t got = std::fread(header.data(), 1, header.size(), file);
    if (got == 0) {
      break;  // Clean end of log.
    }
    if (got < header.size() || GetU32(header.data()) != kRecordMagic) {
      result.torn_tail = true;
      break;
    }
    const uint32_t want_crc = GetU32(header.data() + 4);
    const uint32_t payload_len = GetU32(header.data() + 8);
    WalRecord record;
    record.type = GetU32(header.data() + 12);
    record.lsn = GetU64(header.data() + 16);
    record.payload.resize(payload_len);
    if (payload_len > 0 &&
        std::fread(record.payload.data(), 1, payload_len, file) !=
            payload_len) {
      result.torn_tail = true;
      break;
    }
    // Recompute the checksum over {payload_len, type, lsn, payload} —
    // bytes 8.. of the header plus the payload.
    uint32_t crc = Crc32(header.data() + 8, kFrameHeaderBytes - 8);
    crc = Crc32(record.payload.data(), record.payload.size(), crc);
    if (crc != want_crc) {
      result.torn_tail = true;
      break;
    }
    result.valid_bytes += kFrameHeaderBytes + payload_len;
    result.records.push_back(std::move(record));
    replayed->Increment();
  }
  std::fclose(file);
  return result;
}

std::vector<uint8_t> EncodeRowBatch(
    uint64_t first_row, const std::vector<std::vector<Value>>& rows) {
  std::vector<uint8_t> out;
  PutU64(&out, first_row);
  PutU32(&out, static_cast<uint32_t>(rows.size()));
  for (const auto& row : rows) {
    PutU32(&out, static_cast<uint32_t>(row.size()));
    for (const Value& value : row) {
      out.push_back(static_cast<uint8_t>(value.kind));
      switch (value.kind) {
        case Value::Kind::kNull:
          break;
        case Value::Kind::kInt64:
          PutU64(&out, static_cast<uint64_t>(value.int_value));
          break;
        case Value::Kind::kString:
          PutU32(&out, static_cast<uint32_t>(value.string_value.size()));
          out.insert(out.end(), value.string_value.begin(),
                     value.string_value.end());
          break;
      }
    }
  }
  return out;
}

Result<RowBatch> DecodeRowBatch(const std::vector<uint8_t>& payload) {
  RowBatch batch;
  size_t at = 0;
  const auto need = [&](size_t bytes) {
    return at + bytes <= payload.size();
  };
  if (!need(12)) {
    return Status::Internal("RowBatch: payload shorter than its header");
  }
  batch.first_row = GetU64(payload.data() + at);
  at += 8;
  const uint32_t num_rows = GetU32(payload.data() + at);
  at += 4;
  batch.rows.reserve(std::min<uint32_t>(num_rows, 1u << 16));
  for (uint32_t r = 0; r < num_rows; ++r) {
    if (!need(4)) {
      return Status::Internal("RowBatch: truncated at row " +
                              std::to_string(r));
    }
    const uint32_t num_values = GetU32(payload.data() + at);
    at += 4;
    std::vector<Value> row;
    row.reserve(std::min<uint32_t>(num_values, 1u << 12));
    for (uint32_t v = 0; v < num_values; ++v) {
      if (!need(1)) {
        return Status::Internal("RowBatch: truncated value kind");
      }
      const uint8_t kind = payload[at++];
      Value value;
      switch (kind) {
        case static_cast<uint8_t>(Value::Kind::kNull):
          break;
        case static_cast<uint8_t>(Value::Kind::kInt64): {
          if (!need(8)) {
            return Status::Internal("RowBatch: truncated int64 value");
          }
          value = Value::Int(static_cast<int64_t>(GetU64(payload.data() + at)));
          at += 8;
          break;
        }
        case static_cast<uint8_t>(Value::Kind::kString): {
          if (!need(4)) {
            return Status::Internal("RowBatch: truncated string length");
          }
          const uint32_t len = GetU32(payload.data() + at);
          at += 4;
          if (!need(len)) {
            return Status::Internal("RowBatch: string of " +
                                    std::to_string(len) +
                                    " bytes overruns the payload");
          }
          value = Value::Str(std::string(
              reinterpret_cast<const char*>(payload.data() + at), len));
          at += len;
          break;
        }
        default:
          return Status::Internal("RowBatch: unknown value kind " +
                                  std::to_string(kind));
      }
      row.push_back(std::move(value));
    }
    batch.rows.push_back(std::move(row));
  }
  if (at != payload.size()) {
    return Status::Internal("RowBatch: " +
                            std::to_string(payload.size() - at) +
                            " trailing bytes after the last row");
  }
  return batch;
}

}  // namespace engine
}  // namespace ebi
