#ifndef EBI_STORAGE_ENGINE_WAL_H_
#define EBI_STORAGE_ENGINE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "storage/column.h"
#include "storage/io_accountant.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ebi {
namespace engine {

/// WAL record types. Payload interpretation is up to the layer that
/// appended the record; the WAL itself only guarantees integrity and
/// ordering.
inline constexpr uint32_t kWalRecordRowBatch = 1;
inline constexpr uint32_t kWalRecordCheckpoint = 2;

struct WalRecord {
  uint32_t type = 0;
  uint64_t lsn = 0;
  std::vector<uint8_t> payload;
};

struct WalOptions {
  /// fsync after every Append. Turning this off trades the durability of
  /// the last few records for append throughput (group commit callers
  /// Sync() explicitly instead).
  bool sync_on_append = true;
  /// Fault injection (crash-recovery tests): when > 0, the Nth Append
  /// persists its record and then fails with kInternal before reporting
  /// success — simulating a crash after the WAL write but before the
  /// in-memory publish. 0 disables the hook.
  uint64_t fail_after_appends = 0;
  /// When set, append bytes are charged here.
  IoAccountant* io = nullptr;
};

/// Result of scanning a WAL file front-to-back.
struct WalReplayResult {
  std::vector<WalRecord> records;
  /// True when the scan stopped at a torn/corrupt record before the end
  /// of the file — the expected signature of a crash mid-append.
  bool torn_tail = false;
  /// Bytes of valid records consumed (the offset a torn tail should be
  /// truncated to).
  uint64_t valid_bytes = 0;
};

/// Append-only write-ahead log (DESIGN.md §12). Record framing:
///
///   {u32 magic, u32 crc, u32 payload_len, u32 type, u64 lsn, payload}
///
/// with crc = CRC-32 over {payload_len, type, lsn, payload}. Replay
/// walks records front-to-back and stops at the first frame whose magic,
/// length, or checksum does not hold — a torn tail — so a crash
/// mid-append loses at most the record being written, never an earlier
/// one. Append+Sync returning OK is the commit point for durable serve
/// mode: everything WAL-durable is replayed on restart.
///
/// Thread-safe: Append/Sync/Reset serialize on one mutex.
class Wal {
 public:
  static constexpr uint32_t kRecordMagic = 0x4C415745;  // "EWAL" LE.
  static constexpr size_t kFrameHeaderBytes = 24;

  /// Opens (creating if absent) the log at `path`, scanning existing
  /// records to find the next LSN and truncating a torn tail if one is
  /// found.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           const WalOptions& options = {});

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;
  ~Wal();

  /// Appends one record, returning its LSN. Durable once Append returns
  /// when sync_on_append is set, otherwise once the next Sync returns.
  [[nodiscard]] Result<uint64_t> Append(uint32_t type,
                                        const std::vector<uint8_t>& payload);

  /// fsyncs appended records to disk.
  [[nodiscard]] Status Sync();

  /// Truncates the log to empty (after a checkpoint has made its
  /// contents redundant) and resets the LSN counter.
  [[nodiscard]] Status Reset();

  uint64_t next_lsn() const;
  const std::string& path() const { return path_; }

  /// Scans the log at `path` front-to-back without opening it for
  /// appending — the recovery path. Missing file yields an empty result.
  static Result<WalReplayResult> Replay(const std::string& path);

 private:
  Wal() = default;

  [[nodiscard]] Status SyncLocked() EBI_REQUIRES(mu_);

  std::string path_
      EBI_UNGUARDED("set once in Open before the Wal is shared");
  WalOptions options_
      EBI_UNGUARDED("set once in Open before the Wal is shared");
  mutable Mutex mu_{lock_rank::kWal, "Wal::mu_"};
  std::FILE* file_ EBI_GUARDED_BY(mu_) = nullptr;
  uint64_t next_lsn_ EBI_GUARDED_BY(mu_) = 0;
  uint64_t appends_ EBI_GUARDED_BY(mu_) = 0;
};

/// Row-batch payload codec for kWalRecordRowBatch. `first_row` is the
/// table row count at append time — replay uses it to skip batches that
/// are already reflected in the base table (idempotent replay).
std::vector<uint8_t> EncodeRowBatch(uint64_t first_row,
                                    const std::vector<std::vector<Value>>& rows);

struct RowBatch {
  uint64_t first_row = 0;
  std::vector<std::vector<Value>> rows;
};

/// Decodes a row-batch payload, rejecting truncated or garbage bytes
/// with a descriptive Status.
Result<RowBatch> DecodeRowBatch(const std::vector<uint8_t>& payload);

}  // namespace engine
}  // namespace ebi

#endif  // EBI_STORAGE_ENGINE_WAL_H_
