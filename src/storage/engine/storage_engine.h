#ifndef EBI_STORAGE_ENGINE_STORAGE_ENGINE_H_
#define EBI_STORAGE_ENGINE_STORAGE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/engine/buffer_pool.h"
#include "storage/engine/page_file.h"
#include "storage/io_accountant.h"
#include "util/status.h"
#include "util/stored_bitmap.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ebi {

namespace exec {
class ThreadPool;
}  // namespace exec

namespace engine {

struct StorageEngineOptions {
  /// Physical page size of the backing file.
  size_t page_size = 4096;
  /// Buffer-pool capacity in pages.
  size_t pool_pages = 64;
  IoAccountant* io = nullptr;
  /// When set, PrefetchSlices faults pages asynchronously.
  exec::ThreadPool* prefetch_pool = nullptr;
  /// true: reopen an existing engine — load the extent-map sidecar and
  /// keep the page file's contents. false: create/truncate fresh files.
  bool recover = false;
  /// Unlink the page file and sidecar on destruction (scratch stores).
  bool remove_on_close = false;
  /// Fault-injection hooks, forwarded to PageFile / guarding the sidecar
  /// rename (crash-recovery tests).
  uint64_t fail_after_page_writes = 0;
  bool fail_before_map_rename = false;
};

/// One bitmap slice's location in the page file.
struct SliceExtent {
  uint32_t first_page = 0;
  /// Pages reserved for the slice (its in-place update capacity).
  uint32_t num_pages = 0;
  /// Serialized StoredBitmap bytes actually used.
  uint64_t payload_bytes = 0;
};

/// The tiered storage engine (DESIGN.md §12): StoredBitmap slices
/// chunked over fixed-size checksummed pages in one PageFile, cached by
/// a shared BufferPool, located by a per-slice extent map persisted in a
/// checksummed sidecar file (`<path>.map`, written atomically via
/// tmp + fsync + rename).
///
/// Durability: page payloads reach disk through pool writeback + Sync;
/// the sidecar is rewritten by Sync, so after Sync() returns OK the
/// engine reopens with `recover = true` to exactly this state. A crash
/// between page writes and the sidecar rename leaves the previous
/// sidecar in place — pages past its extents are unreferenced garbage,
/// never a corrupt slice.
class StorageEngine {
 public:
  using SliceId = uint32_t;

  static Result<std::unique_ptr<StorageEngine>> Open(
      const std::string& path, const StorageEngineOptions& options);

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;
  ~StorageEngine();

  /// Appends a slice, returning its id. The payload lands in dirty pool
  /// frames (write-back caching); Sync() makes it durable.
  Result<SliceId> PutSlice(const StoredBitmap& bitmap);

  /// Overwrites slice `id`. Reuses the extent when the new payload fits
  /// its reserved pages, else relocates to a fresh extent (the old one
  /// becomes garbage; engines are rebuilt, not compacted).
  [[nodiscard]] Status UpdateSlice(SliceId id, const StoredBitmap& bitmap);

  /// Reconstructs slice `id` from its pages (pool hits are free; misses
  /// charge one page read each). When `pages_faulted` is non-null it
  /// receives the number of pages that missed the pool.
  Result<StoredBitmap> GetSlice(SliceId id, size_t* pages_faulted = nullptr);

  /// Serialized bytes slice `id` occupies (the sum its cold read charges).
  Result<size_t> SliceBytes(SliceId id) const;
  /// Pages slice `id` spans — the planner's page estimate for one slice.
  Result<uint32_t> SlicePages(SliceId id) const;

  /// Warms the pool with every page of the given slices (asynchronously
  /// when a prefetch pool is configured). Unknown ids are ignored.
  void PrefetchSlices(const std::vector<SliceId>& ids);

  /// Re-reads every page of slice `id` and validates its checksums.
  [[nodiscard]] Status VerifySlice(SliceId id);

  size_t NumSlices() const;

  /// Flushes dirty pool frames, fsyncs the page file and atomically
  /// persists the extent-map sidecar — the engine's commit point.
  [[nodiscard]] Status Sync();

  BufferPoolStats pool_stats() const { return pool_->stats(); }
  size_t PoolResident() const { return pool_->Resident(); }
  size_t page_size() const { return file_.page_size(); }
  const std::string& path() const { return path_; }

 private:
  StorageEngine(std::string path, const StorageEngineOptions& options,
                PageFile file, std::unique_ptr<BufferPool> pool);

  Result<SliceExtent> WriteExtentLocked(const StoredBitmap& bitmap,
                                        SliceId id, SliceExtent* reuse)
      EBI_REQUIRES(mu_);
  [[nodiscard]] Status PersistMapLocked() EBI_REQUIRES(mu_);
  [[nodiscard]] Status LoadMap() EBI_EXCLUDES(mu_);

  std::string path_
      EBI_UNGUARDED("set once in Open before the engine is shared");
  StorageEngineOptions options_
      EBI_UNGUARDED("set once in Open before the engine is shared");
  PageFile file_ EBI_UNGUARDED("internally synchronized");
  std::unique_ptr<BufferPool> pool_
      EBI_UNGUARDED("internally synchronized; pointer set in Open");
  uint32_t pool_file_id_
      EBI_UNGUARDED("set once in the constructor") = 0;
  /// Guards the extent directory; the pool and the page file carry their
  /// own mutexes (ranks kBufferPool and kPageFile, both acquired after
  /// this one — see util/sync.h).
  mutable Mutex mu_{lock_rank::kStorageEngine, "StorageEngine::mu_"};
  std::vector<SliceExtent> extents_ EBI_GUARDED_BY(mu_);
};

}  // namespace engine
}  // namespace ebi

#endif  // EBI_STORAGE_ENGINE_STORAGE_ENGINE_H_
