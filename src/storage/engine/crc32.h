#ifndef EBI_STORAGE_ENGINE_CRC32_H_
#define EBI_STORAGE_ENGINE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace ebi {
namespace engine {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte range. Every
/// checksummed unit the storage engine persists — page headers, WAL
/// records, the extent-map sidecar — goes through this one function, so
/// the on-disk format has exactly one checksum definition.
///
/// `seed` chains partial computations: Crc32(b, n2, Crc32(a, n1)) equals
/// Crc32 over the concatenation of a and b.
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  static const auto table = [] {
    struct Table {
      uint32_t entry[256];
    } t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t.entry[i] = crc;
    }
    return t;
  }();
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table.entry[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace engine
}  // namespace ebi

#endif  // EBI_STORAGE_ENGINE_CRC32_H_
