#ifndef EBI_STORAGE_ENGINE_BUFFER_POOL_H_
#define EBI_STORAGE_ENGINE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/engine/page_file.h"
#include "storage/io_accountant.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ebi {

namespace exec {
class ThreadPool;
}  // namespace exec

namespace engine {

/// Cumulative counters for one pool instance (mirrored into the global
/// MetricsRegistry as ebi.buffer_pool.*).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t prefetches = 0;
};

struct BufferPoolOptions {
  /// Frame-table capacity in pages. Must be > 0.
  size_t capacity_pages = 64;
  /// When set, every physical page read/write is charged here.
  IoAccountant* io = nullptr;
  /// When set, Prefetch() faults pages asynchronously on this pool;
  /// otherwise prefetch degrades to a synchronous warm-up loop.
  exec::ThreadPool* prefetch_pool = nullptr;
};

class BufferPool;

/// A pinned page: holds the frame resident and grants access to its
/// payload until destroyed. Copyable handles would complicate pin
/// accounting, so it is move-only.
class PageRef {
 public:
  PageRef() = default;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  PageRef(PageRef&& other) noexcept;
  PageRef& operator=(PageRef&& other) noexcept;
  ~PageRef();

  bool valid() const { return pool_ != nullptr; }
  /// The payload accessors read the frame without the pool lock: the pin
  /// this ref holds keeps the frame resident and its payload immutable
  /// (writers to a pinned frame go through WriteThrough, which replaces
  /// payload bytes only under the lock while no reader can hold a ref to
  /// a freed frame). Opted out of the capability analysis for that
  /// reason — the guard here is the pin, not the mutex.
  const uint8_t* data() const EBI_NO_THREAD_SAFETY_ANALYSIS;
  size_t size() const EBI_NO_THREAD_SAFETY_ANALYSIS;
  uint32_t slice() const EBI_NO_THREAD_SAFETY_ANALYSIS;
  /// Marks the frame dirty so eviction/flush writes it back.
  void MarkDirty();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, size_t frame) : pool_(pool), frame_(frame) {}
  void Release();

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
};

/// Page-granular cache over one or more PageFiles (DESIGN.md §12):
/// a frame table keyed by (file_id, page_no), pin counts, strict-LRU
/// eviction of unpinned frames, and dirty-page writeback on eviction or
/// Flush. All physical I/O flows through the registered PageFiles, all
/// accounting through the configured IoAccountant: a hit charges
/// nothing, a miss charges exactly one page and the page's stored
/// payload bytes.
///
/// Thread-safe; one mutex guards the frame table. Callers must drop (or
/// move-from) every PageRef before destroying the pool.
class BufferPool {
 public:
  static Result<std::unique_ptr<BufferPool>> Create(
      const BufferPoolOptions& options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  /// Registers a page file the pool may read from / write back to. The
  /// returned file id keys all subsequent Pin/Prefetch calls. The caller
  /// keeps ownership and must outlive the pool.
  uint32_t Register(PageFile* file);

  /// Returns the page pinned in a frame, faulting it from disk on a
  /// miss (possibly evicting the LRU unpinned frame, writing it back
  /// first if dirty). Fails if every frame is pinned.
  [[nodiscard]] Result<PageRef> Pin(uint32_t file_id, uint32_t page_no);

  /// Appends the payloads of `count` consecutive pages to `*out` under a
  /// single lock acquisition — the slice-assembly fast path. Each page
  /// is a hit or a fault exactly as through Pin, but nothing stays
  /// pinned: bytes are copied out while the lock protects the frame, so
  /// per-page pin/unpin round-trips (two mutex acquisitions each) are
  /// avoided. `*pages_faulted` (optional) receives the miss count.
  /// Works at any capacity: a page read earlier in the range may be
  /// evicted by a later fault, its bytes having already been copied.
  [[nodiscard]] Status ReadRange(uint32_t file_id, uint32_t first_page,
                                 uint32_t count, std::string* out,
                                 size_t* pages_faulted = nullptr);

  /// Installs fresh payload bytes for (file_id, page_no) directly into a
  /// dirty frame — the write path. The bytes reach disk on eviction or
  /// Flush, not before.
  [[nodiscard]] Status WriteThrough(uint32_t file_id, uint32_t page_no,
                                    uint32_t slice, const uint8_t* data,
                                    size_t bytes);

  /// Warms the cache with the given pages. Asynchronous when a prefetch
  /// pool is configured; faults are best-effort (errors are dropped —
  /// the later Pin surfaces them).
  void Prefetch(uint32_t file_id, const std::vector<uint32_t>& pages);

  /// Writes back every dirty frame of `file_id` (all files when
  /// file_id == kAllFiles) without evicting.
  static constexpr uint32_t kAllFiles = UINT32_MAX;
  [[nodiscard]] Status Flush(uint32_t file_id = kAllFiles);

  /// Drops every unpinned frame of `file_id`, writing back dirty ones.
  /// Fails if a frame of that file is still pinned.
  [[nodiscard]] Status Evict(uint32_t file_id);

  BufferPoolStats stats() const;
  /// Frames currently holding a page.
  size_t Resident() const;
  size_t capacity_pages() const { return options_.capacity_pages; }

 private:
  friend class PageRef;

  /// Sentinel for "not linked" in the intrusive LRU list.
  static constexpr size_t kNullFrame = SIZE_MAX;

  struct Frame {
    bool occupied = false;
    bool dirty = false;
    bool in_lru = false;
    uint32_t file_id = 0;
    uint32_t page_no = 0;
    uint32_t slice = 0;
    uint32_t pins = 0;
    std::vector<uint8_t> payload;
    /// Intrusive LRU links (frame indices); valid iff in_lru. An
    /// index-linked list instead of std::list<size_t> keeps every LRU
    /// touch allocation-free — hot-path Pin/Unpin never hits the heap.
    size_t lru_prev = kNullFrame;
    size_t lru_next = kNullFrame;
  };

  explicit BufferPool(const BufferPoolOptions& options);

  Result<size_t> FaultLocked(uint32_t file_id, uint32_t page_no)
      EBI_REQUIRES(mu_);
  Result<size_t> FreeFrameLocked() EBI_REQUIRES(mu_);
  Status WritebackLocked(size_t frame) EBI_REQUIRES(mu_);
  void TouchLocked(size_t frame) EBI_REQUIRES(mu_);
  void PinFrameLocked(size_t frame) EBI_REQUIRES(mu_);
  void UnpinFrame(size_t frame) EBI_EXCLUDES(mu_);
  /// Intrusive LRU list ops (LRU at head, MRU at tail).
  void LruPushBackLocked(size_t frame) EBI_REQUIRES(mu_);
  void LruRemoveLocked(size_t frame) EBI_REQUIRES(mu_);
  /// Hit-or-fault lookup shared by Pin and ReadRange: returns the frame
  /// holding (file_id, page_no), counting a hit or a miss.
  Result<size_t> LookupLocked(uint32_t file_id, uint32_t page_no)
      EBI_REQUIRES(mu_);

  const BufferPoolOptions options_;
  mutable Mutex mu_{lock_rank::kBufferPool, "BufferPool::mu_"};
  std::vector<PageFile*> files_ EBI_GUARDED_BY(mu_);
  std::vector<Frame> frames_ EBI_GUARDED_BY(mu_);
  /// Intrusive list of unpinned occupied frames; head is the eviction
  /// victim, tail the most recently used.
  size_t lru_head_ EBI_GUARDED_BY(mu_) = kNullFrame;
  size_t lru_tail_ EBI_GUARDED_BY(mu_) = kNullFrame;
  std::vector<size_t> free_frames_ EBI_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, size_t> table_
      EBI_GUARDED_BY(mu_);  // (file_id<<32|page_no).
  BufferPoolStats stats_ EBI_GUARDED_BY(mu_);

  /// Outstanding async prefetch tasks; the destructor drains them so a
  /// worker never touches a dead pool.
  CondVar prefetch_cv_;
  size_t outstanding_prefetches_ EBI_GUARDED_BY(mu_) = 0;
};

}  // namespace engine
}  // namespace ebi

#endif  // EBI_STORAGE_ENGINE_BUFFER_POOL_H_
