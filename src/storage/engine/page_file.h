#ifndef EBI_STORAGE_ENGINE_PAGE_FILE_H_
#define EBI_STORAGE_ENGINE_PAGE_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ebi {
namespace engine {

/// Knobs for one page file, fixed at Open.
struct PageFileOptions {
  /// Physical page size in bytes. Must exceed the page-header size; the
  /// paper's cost model (and IoAccountant) assume 4 KB.
  size_t page_size = 4096;
  /// true: create/truncate a fresh file. false: open an existing file for
  /// recovery — the page count is derived from the file length.
  bool truncate = true;
  /// Fault injection (crash-recovery tests): when > 0, the Nth WritePage
  /// call writes a *torn* page — the header plus roughly half the payload
  /// — flushes it to disk and fails with kInternal, simulating a crash
  /// mid-page-write. 0 disables the hook.
  uint64_t fail_after_page_writes = 0;
};

/// A file of fixed-size, checksummed pages — the raw I/O floor of the
/// storage engine (DESIGN.md §12). Everything above it (buffer pool,
/// slice extents) deals in page numbers; this class owns the only
/// fopen/fread/fwrite/fsync calls on the data path, which the raw-file-io
/// lint rule enforces.
///
/// Page layout: a 24-byte header {magic, page_no, slice, payload_bytes,
/// crc32(payload), reserved} followed by up to page_size - 24 payload
/// bytes. ReadPage verifies the magic, the self-identifying page number
/// (catches misdirected writes) and the payload checksum (catches torn
/// writes), so a page either reads back exactly as written or fails with
/// a descriptive kInternal — never silently returns garbage.
///
/// Thread-safe: every page operation serializes on an internal mutex.
/// The stdio stream position is shared state — a seek and the read/write
/// that follows it must be one critical section, so concurrent callers
/// (the buffer pool writing back under its own lock while the engine's
/// verify path reads directly) cannot interleave mid-sequence. Moving a
/// PageFile is NOT thread-safe; moves happen only before the file is
/// shared (factory returns, engine construction).
class PageFile {
 public:
  static constexpr size_t kHeaderBytes = 24;
  static constexpr uint32_t kPageMagic = 0x45504147;  // "GAPE" LE.

  /// Opens (or creates) `path` per the options. page_size must leave
  /// room for at least one payload byte.
  static Result<PageFile> Open(const std::string& path,
                               const PageFileOptions& options);

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;
  PageFile(PageFile&& other) noexcept;
  /// Opted out of the analysis: the move transfers the mutex itself, so
  /// there is no stable capability to hold across it. Moves are only
  /// legal before the file is shared between threads.
  PageFile& operator=(PageFile&& other) noexcept
      EBI_NO_THREAD_SAFETY_ANALYSIS;
  ~PageFile();

  size_t page_size() const { return options_.page_size; }
  /// Payload bytes one page can carry.
  size_t PayloadCapacity() const {
    return options_.page_size - kHeaderBytes;
  }
  /// Pages allocated so far (the file is exactly this many pages long,
  /// modulo a torn final write).
  uint32_t NumPages() const;
  const std::string& path() const { return path_; }

  /// Reserves `count` fresh pages, returning the first page number.
  uint32_t Allocate(uint32_t count);

  /// Writes `bytes` payload bytes (<= PayloadCapacity) into `page_no`
  /// under a checksummed header tagged with the owning slice.
  [[nodiscard]] Status WritePage(uint32_t page_no, uint32_t slice,
                                 const uint8_t* data, size_t bytes);

  /// Reads page `page_no`, validates header + checksum, and returns the
  /// payload in `out` (resized to the stored payload length). When
  /// `slice` is non-null the owning slice tag is returned too.
  [[nodiscard]] Status ReadPage(uint32_t page_no, std::vector<uint8_t>* out,
                                uint32_t* slice = nullptr);

  /// Flushes userspace buffers and fsyncs the file descriptor — after
  /// Sync returns OK the pages written so far survive a crash.
  [[nodiscard]] Status Sync();

  /// Pages physically written over the file's lifetime (fault-hook and
  /// test bookkeeping).
  uint64_t PagesWritten() const;

 private:
  PageFile() = default;

  std::string path_
      EBI_UNGUARDED("set once in Open before the file is shared");
  PageFileOptions options_
      EBI_UNGUARDED("set once in Open before the file is shared");
  /// Behind unique_ptr because PageFile is movable and a mutex is not;
  /// the mutex travels with the moved-to object.
  std::unique_ptr<Mutex> mu_ =
      std::make_unique<Mutex>(lock_rank::kPageFile, "PageFile::mu_");
  std::FILE* file_ EBI_GUARDED_BY(*mu_) = nullptr;
  uint32_t next_page_ EBI_GUARDED_BY(*mu_) = 0;
  uint64_t pages_written_ EBI_GUARDED_BY(*mu_) = 0;
};

}  // namespace engine
}  // namespace ebi

#endif  // EBI_STORAGE_ENGINE_PAGE_FILE_H_
