#include "storage/engine/storage_engine.h"

#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "storage/engine/crc32.h"
#include "util/stored_bitmap_io.h"

#include <unistd.h>

namespace ebi {
namespace engine {

namespace {

constexpr uint32_t kMapMagic = 0x50414D45;  // "EMAP" LE.

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetU32(const uint8_t* at) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(at[i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const uint8_t* at) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(at[i]) << (8 * i);
  }
  return v;
}

std::string MapPath(const std::string& path) { return path + ".map"; }
std::string MapTmpPath(const std::string& path) { return path + ".map.tmp"; }

/// Serializes a StoredBitmap through the shared persistence format, so
/// the hardening of LoadStoredBitmap (truncation/garbage rejection)
/// covers the engine's pages too.
Result<std::string> SerializeSlice(const StoredBitmap& bitmap) {
  std::ostringstream out;
  EBI_RETURN_IF_ERROR(SaveStoredBitmap(out, bitmap));
  return std::move(out).str();
}

}  // namespace

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const std::string& path, const StorageEngineOptions& options) {
  if (options.pool_pages == 0) {
    return Status::InvalidArgument(
        "StorageEngine: pool_pages must be positive");
  }
  PageFileOptions file_options;
  file_options.page_size = options.page_size;
  file_options.truncate = !options.recover;
  file_options.fail_after_page_writes = options.fail_after_page_writes;
  EBI_ASSIGN_OR_RETURN(PageFile file, PageFile::Open(path, file_options));

  BufferPoolOptions pool_options;
  pool_options.capacity_pages = options.pool_pages;
  pool_options.io = options.io;
  pool_options.prefetch_pool = options.prefetch_pool;
  EBI_ASSIGN_OR_RETURN(std::unique_ptr<BufferPool> pool,
                       BufferPool::Create(pool_options));

  std::unique_ptr<StorageEngine> engine(new StorageEngine(
      path, options, std::move(file), std::move(pool)));
  if (options.recover) {
    EBI_RETURN_IF_ERROR(engine->LoadMap());
  }
  return engine;
}

StorageEngine::StorageEngine(std::string path,
                             const StorageEngineOptions& options,
                             PageFile file, std::unique_ptr<BufferPool> pool)
    : path_(std::move(path)),
      options_(options),
      file_(std::move(file)),
      pool_(std::move(pool)) {
  pool_file_id_ = pool_->Register(&file_);
}

StorageEngine::~StorageEngine() {
  // The pool must die first (it drains async prefetches that read
  // file_); member order guarantees that, so here we only clean up the
  // on-disk artifacts of scratch engines.
  if (options_.remove_on_close) {
    pool_.reset();
    std::remove(path_.c_str());
    std::remove(MapPath(path_).c_str());
    std::remove(MapTmpPath(path_).c_str());
  }
}

Result<SliceExtent> StorageEngine::WriteExtentLocked(
    const StoredBitmap& bitmap, SliceId id, SliceExtent* reuse) {
  EBI_ASSIGN_OR_RETURN(const std::string payload, SerializeSlice(bitmap));
  const size_t capacity = file_.PayloadCapacity();
  const uint32_t pages_needed = static_cast<uint32_t>(
      payload.empty() ? 1 : (payload.size() + capacity - 1) / capacity);

  SliceExtent extent;
  if (reuse != nullptr && pages_needed <= reuse->num_pages) {
    extent = *reuse;
  } else {
    extent.first_page = file_.Allocate(pages_needed);
    extent.num_pages = pages_needed;
  }
  extent.payload_bytes = payload.size();

  const auto* bytes = reinterpret_cast<const uint8_t*>(payload.data());
  size_t remaining = payload.size();
  for (uint32_t p = 0; p < pages_needed; ++p) {
    const size_t chunk = remaining < capacity ? remaining : capacity;
    EBI_RETURN_IF_ERROR(pool_->WriteThrough(
        pool_file_id_, extent.first_page + p, id, bytes, chunk));
    bytes += chunk;
    remaining -= chunk;
  }
  return extent;
}

Result<StorageEngine::SliceId> StorageEngine::PutSlice(
    const StoredBitmap& bitmap) {
  const MutexLock lock(mu_);
  const SliceId id = static_cast<SliceId>(extents_.size());
  EBI_ASSIGN_OR_RETURN(const SliceExtent extent,
                       WriteExtentLocked(bitmap, id, nullptr));
  extents_.push_back(extent);
  return id;
}

Status StorageEngine::UpdateSlice(SliceId id, const StoredBitmap& bitmap) {
  const MutexLock lock(mu_);
  if (id >= extents_.size()) {
    return Status::OutOfRange("StorageEngine: slice id out of range");
  }
  EBI_ASSIGN_OR_RETURN(const SliceExtent extent,
                       WriteExtentLocked(bitmap, id, &extents_[id]));
  extents_[id] = extent;
  return Status::OK();
}

Result<StoredBitmap> StorageEngine::GetSlice(SliceId id,
                                             size_t* pages_faulted) {
  SliceExtent extent;
  {
    const MutexLock lock(mu_);
    if (id >= extents_.size()) {
      return Status::OutOfRange("StorageEngine: slice id out of range");
    }
    extent = extents_[id];
  }
  const size_t capacity = file_.PayloadCapacity();
  const uint32_t pages_used = static_cast<uint32_t>(
      extent.payload_bytes == 0
          ? 1
          : (extent.payload_bytes + capacity - 1) / capacity);

  // One ReadRange call assembles the whole extent under a single pool
  // lock acquisition, and the buffer overload of LoadStoredBitmap
  // parses it without an istringstream copy — together the warm-path
  // cost is one payload memcpy plus the decode itself.
  std::string payload;
  payload.reserve(extent.payload_bytes);
  EBI_RETURN_IF_ERROR(pool_->ReadRange(pool_file_id_, extent.first_page,
                                       pages_used, &payload, pages_faulted));
  if (payload.size() != extent.payload_bytes) {
    return Status::Internal(
        "StorageEngine: slice " + std::to_string(id) + " pages hold " +
        std::to_string(payload.size()) + " bytes, extent map says " +
        std::to_string(extent.payload_bytes));
  }
  return LoadStoredBitmap(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
}

Result<size_t> StorageEngine::SliceBytes(SliceId id) const {
  const MutexLock lock(mu_);
  if (id >= extents_.size()) {
    return Status::OutOfRange("StorageEngine: slice id out of range");
  }
  return static_cast<size_t>(extents_[id].payload_bytes);
}

Result<uint32_t> StorageEngine::SlicePages(SliceId id) const {
  const MutexLock lock(mu_);
  if (id >= extents_.size()) {
    return Status::OutOfRange("StorageEngine: slice id out of range");
  }
  const size_t capacity = file_.PayloadCapacity();
  const SliceExtent& extent = extents_[id];
  return static_cast<uint32_t>(
      extent.payload_bytes == 0
          ? 1
          : (extent.payload_bytes + capacity - 1) / capacity);
}

void StorageEngine::PrefetchSlices(const std::vector<SliceId>& ids) {
  std::vector<uint32_t> pages;
  {
    const MutexLock lock(mu_);
    const size_t capacity = file_.PayloadCapacity();
    for (const SliceId id : ids) {
      if (id >= extents_.size()) {
        continue;
      }
      const SliceExtent& extent = extents_[id];
      const uint32_t pages_used = static_cast<uint32_t>(
          extent.payload_bytes == 0
              ? 1
              : (extent.payload_bytes + capacity - 1) / capacity);
      for (uint32_t p = 0; p < pages_used; ++p) {
        pages.push_back(extent.first_page + p);
      }
    }
  }
  if (!pages.empty()) {
    pool_->Prefetch(pool_file_id_, pages);
  }
}

Status StorageEngine::VerifySlice(SliceId id) {
  // Verification audits the *on-disk* bytes, so dirty frames must reach
  // the file first.
  EBI_RETURN_IF_ERROR(pool_->Flush(pool_file_id_));
  SliceExtent extent;
  {
    const MutexLock lock(mu_);
    if (id >= extents_.size()) {
      return Status::OutOfRange("StorageEngine: slice id out of range");
    }
    extent = extents_[id];
  }
  const size_t capacity = file_.PayloadCapacity();
  const uint32_t pages_used = static_cast<uint32_t>(
      extent.payload_bytes == 0
          ? 1
          : (extent.payload_bytes + capacity - 1) / capacity);
  std::string payload;
  for (uint32_t p = 0; p < pages_used; ++p) {
    std::vector<uint8_t> bytes;
    uint32_t slice = 0;
    EBI_RETURN_IF_ERROR(file_.ReadPage(extent.first_page + p, &bytes, &slice));
    if (slice != id) {
      return Status::Internal("StorageEngine: page " +
                              std::to_string(extent.first_page + p) +
                              " is tagged for slice " + std::to_string(slice) +
                              ", expected " + std::to_string(id));
    }
    payload.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }
  if (payload.size() != extent.payload_bytes) {
    return Status::Internal("StorageEngine: slice " + std::to_string(id) +
                            " on-disk size mismatch");
  }
  return LoadStoredBitmap(reinterpret_cast<const uint8_t*>(payload.data()),
                          payload.size())
      .status();
}

size_t StorageEngine::NumSlices() const {
  const MutexLock lock(mu_);
  return extents_.size();
}

Status StorageEngine::PersistMapLocked() {
  std::vector<uint8_t> body;
  PutU32(&body, static_cast<uint32_t>(extents_.size()));
  for (const SliceExtent& extent : extents_) {
    PutU32(&body, extent.first_page);
    PutU32(&body, extent.num_pages);
    PutU64(&body, extent.payload_bytes);
  }
  std::vector<uint8_t> blob;
  blob.reserve(8 + body.size());
  PutU32(&blob, kMapMagic);
  PutU32(&blob, Crc32(body.data(), body.size()));
  blob.insert(blob.end(), body.begin(), body.end());

  // tmp + fsync + rename: the sidecar flips atomically from the old map
  // to the new one; a crash in between leaves the old map valid.
  const std::string tmp = MapTmpPath(path_);
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    return Status::Internal("StorageEngine: cannot open " + tmp);
  }
  const bool wrote =
      std::fwrite(blob.data(), 1, blob.size(), out) == blob.size();
  const bool flushed = wrote && std::fflush(out) == 0;
  const bool synced = flushed && fsync(fileno(out)) == 0;
  std::fclose(out);
  if (!synced) {
    return Status::Internal("StorageEngine: cannot persist " + tmp);
  }
  if (options_.fail_before_map_rename) {
    return Status::Internal(
        "StorageEngine: fault injection crashed before the sidecar rename");
  }
  if (std::rename(tmp.c_str(), MapPath(path_).c_str()) != 0) {
    return Status::Internal("StorageEngine: cannot rename " + tmp);
  }
  return Status::OK();
}

Status StorageEngine::LoadMap() {
  const MutexLock lock(mu_);
  std::FILE* in = std::fopen(MapPath(path_).c_str(), "rb");
  if (in == nullptr) {
    // Never synced: an empty engine is the correct recovered state.
    extents_.clear();
    return Status::OK();
  }
  std::vector<uint8_t> blob;
  uint8_t chunk[4096];
  size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), in)) > 0) {
    blob.insert(blob.end(), chunk, chunk + got);
  }
  std::fclose(in);
  if (blob.size() < 12 || GetU32(blob.data()) != kMapMagic) {
    return Status::Internal("StorageEngine: corrupt extent map sidecar");
  }
  const uint32_t want_crc = GetU32(blob.data() + 4);
  if (Crc32(blob.data() + 8, blob.size() - 8) != want_crc) {
    return Status::Internal(
        "StorageEngine: extent map sidecar checksum mismatch");
  }
  const uint32_t count = GetU32(blob.data() + 8);
  if (blob.size() != 12 + static_cast<size_t>(count) * 16) {
    return Status::Internal("StorageEngine: extent map sidecar truncated");
  }
  extents_.clear();
  extents_.reserve(count);
  const uint8_t* at = blob.data() + 12;
  for (uint32_t i = 0; i < count; ++i) {
    SliceExtent extent;
    extent.first_page = GetU32(at);
    extent.num_pages = GetU32(at + 4);
    extent.payload_bytes = GetU64(at + 8);
    extents_.push_back(extent);
    at += 16;
  }
  return Status::OK();
}

Status StorageEngine::Sync() {
  EBI_RETURN_IF_ERROR(pool_->Flush(pool_file_id_));
  EBI_RETURN_IF_ERROR(file_.Sync());
  const MutexLock lock(mu_);
  return PersistMapLocked();
}

}  // namespace engine
}  // namespace ebi
