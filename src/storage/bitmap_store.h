#ifndef EBI_STORAGE_BITMAP_STORE_H_
#define EBI_STORAGE_BITMAP_STORE_H_

#include <cstdint>
#include <cstdio>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/io_accountant.h"
#include "util/bitmap_format.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace ebi {

/// Statistics of one BitmapStore.
struct BitmapStoreStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;

  [[nodiscard]] double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

/// A file-backed store for bitmap vectors with an LRU buffer pool — the
/// disk-resident storage DW indexes actually live on. The in-memory
/// indexes of this library are the hot path; BitmapStore demonstrates the
/// same structures working at larger-than-memory scale, with every miss
/// charged to the IoAccountant as a real vector read.
///
/// Vectors land in the file in the store's physical format: plain word
/// arrays, RLE run arrays or EWAH buffers (BitmapFormat). Compressed
/// slots shrink both the file footprint and the bytes a pool miss charges
/// to the accountant — the store's I/O cost is format-dependent, while
/// Get() always hands back the decompressed BitVector. Usage:
///
///   BitmapStore store("/tmp/ebi.bin", /*capacity_vectors=*/8, &io,
///                     BitmapFormat::kEwah);
///   auto id = store.Put(bitvector);         // Compress + write through.
///   auto bits = store.Get(*id);             // Cached or re-read.
class BitmapStore {
 public:
  using VectorId = uint32_t;

  /// Opens (creates/truncates) the backing file. `capacity_vectors` is the
  /// number of vectors the buffer pool may keep in memory; `format` is the
  /// physical representation vectors take on disk.
  static Result<BitmapStore> Open(const std::string& path,
                                  size_t capacity_vectors,
                                  IoAccountant* io,
                                  BitmapFormat format = BitmapFormat::kPlain);

  BitmapStore(const BitmapStore&) = delete;
  BitmapStore& operator=(const BitmapStore&) = delete;
  BitmapStore(BitmapStore&& other) noexcept;
  BitmapStore& operator=(BitmapStore&& other) noexcept;
  ~BitmapStore();

  /// Appends a vector to the store, returning its id. Writes through to
  /// the file and installs it in the pool.
  Result<VectorId> Put(const BitVector& bits);

  /// Overwrites an existing vector (same id), e.g. after maintenance.
  Status Update(VectorId id, const BitVector& bits);

  /// Fetches a vector: pool hit is free, a miss reads the file and charges
  /// the accountant one vector read.
  Result<BitVector> Get(VectorId id);

  /// Number of vectors stored.
  size_t Size() const { return directory_.size(); }
  /// Vectors currently resident in the pool.
  size_t Resident() const { return pool_.size(); }
  /// Physical on-disk representation.
  BitmapFormat format() const { return format_; }
  /// Physical bytes vector `id` occupies on disk (the per-miss charge).
  Result<size_t> StoredBytes(VectorId id) const;

  const BitmapStoreStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BitmapStoreStats(); }

 private:
  struct Slot {
    uint64_t offset = 0;
    uint64_t bits = 0;
    uint64_t bytes = 0;
  };

  BitmapStore() = default;

  /// Serializes `bits` in the store's physical format.
  std::vector<uint8_t> Serialize(const BitVector& bits) const;
  /// Reconstructs a vector of `bits` logical bits from a slot payload.
  Result<BitVector> Deserialize(const std::vector<uint8_t>& payload,
                                uint64_t bits) const;

  Status WriteSlot(const Slot& slot, const std::vector<uint8_t>& payload);
  Result<BitVector> ReadSlot(const Slot& slot);
  /// Moves `id` to the front of the LRU, evicting beyond capacity.
  void Touch(VectorId id, BitVector bits);

  std::string path_;
  std::FILE* file_ = nullptr;
  size_t capacity_ = 0;
  BitmapFormat format_ = BitmapFormat::kPlain;
  IoAccountant* io_ = nullptr;
  uint64_t next_offset_ = 0;
  std::vector<Slot> directory_;
  /// LRU pool: front = most recent.
  std::list<std::pair<VectorId, BitVector>> pool_;
  std::unordered_map<VectorId,
                     std::list<std::pair<VectorId, BitVector>>::iterator>
      pool_index_;
  BitmapStoreStats stats_;
};

}  // namespace ebi

#endif  // EBI_STORAGE_BITMAP_STORE_H_
