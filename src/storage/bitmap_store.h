#ifndef EBI_STORAGE_BITMAP_STORE_H_
#define EBI_STORAGE_BITMAP_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/engine/storage_engine.h"
#include "storage/io_accountant.h"
#include "util/bitmap_format.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace ebi {

/// Statistics of one BitmapStore. Hits/misses are per-Get (a Get that
/// faulted no pages is a hit); evictions/writebacks are page-granular,
/// forwarded from the underlying buffer pool.
struct BitmapStoreStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;

  [[nodiscard]] double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

/// A file-backed store for bitmap vectors — the disk-resident storage DW
/// indexes actually live on. Since the tiered storage engine landed
/// (DESIGN.md §12) this is a thin facade over engine::StorageEngine: one
/// vector is one slice, chunked over checksummed 4 KB pages and cached
/// by a page-granular buffer pool.
///
/// Vectors land on disk in the store's physical format: plain word
/// arrays, RLE run arrays or EWAH buffers (BitmapFormat). Compressed
/// slots shrink both the file footprint and the bytes a cold read
/// charges to the accountant — the store's I/O cost is format-dependent,
/// while Get() always hands back the decompressed BitVector. Usage:
///
///   BitmapStore store("/tmp/ebi.bin", /*capacity_pages=*/8, &io,
///                     BitmapFormat::kEwah);
///   auto id = store.Put(bitvector);         // Compress + install.
///   auto bits = store.Get(*id);             // Cached or re-read.
class BitmapStore {
 public:
  using VectorId = uint32_t;

  /// Opens (creates/truncates) the backing file. `capacity_pages` is the
  /// number of 4 KB pages the buffer pool may keep in memory; `format` is
  /// the physical representation vectors take on disk. The backing file
  /// (and its extent-map sidecar) is removed when the store dies — use
  /// engine::StorageEngine directly for durable stores. When
  /// `prefetch_pool` is set, Prefetch() warms pages asynchronously.
  static Result<BitmapStore> Open(const std::string& path,
                                  size_t capacity_pages,
                                  IoAccountant* io,
                                  BitmapFormat format = BitmapFormat::kPlain,
                                  exec::ThreadPool* prefetch_pool = nullptr);

  BitmapStore(const BitmapStore&) = delete;
  BitmapStore& operator=(const BitmapStore&) = delete;
  BitmapStore(BitmapStore&&) noexcept = default;
  BitmapStore& operator=(BitmapStore&&) noexcept = default;
  ~BitmapStore() = default;

  /// Appends a vector to the store, returning its id. The payload lands
  /// in pool frames and reaches disk on eviction or engine Sync.
  Result<VectorId> Put(const BitVector& bits);

  /// Overwrites an existing vector (same id), e.g. after maintenance.
  [[nodiscard]] Status Update(VectorId id, const BitVector& bits);

  /// Fetches a vector: a Get whose pages are all pool-resident is free;
  /// otherwise each faulted page charges the accountant, plus one
  /// logical vector read for the Get itself.
  Result<BitVector> Get(VectorId id);

  /// Warms the pool with the pages of the given vectors (asynchronous
  /// when the engine has a prefetch pool).
  void Prefetch(const std::vector<VectorId>& ids);

  /// Number of vectors stored.
  size_t Size() const { return engine_->NumSlices(); }
  /// Pages currently resident in the pool.
  size_t Resident() const { return engine_->PoolResident(); }
  /// Physical on-disk representation.
  BitmapFormat format() const { return format_; }
  /// Physical bytes vector `id` occupies on disk (the sum a cold read
  /// charges).
  Result<size_t> StoredBytes(VectorId id) const {
    return engine_->SliceBytes(id);
  }
  /// Pages vector `id` spans — the per-vector page cost of a cold read.
  Result<uint32_t> StoredPages(VectorId id) const {
    return engine_->SlicePages(id);
  }

  /// The engine underneath, e.g. for Sync or verification.
  engine::StorageEngine* storage_engine() { return engine_.get(); }

  BitmapStoreStats stats() const;
  void ResetStats();

 private:
  BitmapStore() = default;

  /// Converts to the store's physical format.
  StoredBitmap ToStored(const BitVector& bits) const;

  std::unique_ptr<engine::StorageEngine> engine_;
  IoAccountant* io_ = nullptr;
  BitmapFormat format_ = BitmapFormat::kPlain;
  /// Get-level hit/miss counts (page-level counters live in the pool).
  uint64_t gets_hit_ = 0;
  uint64_t gets_missed_ = 0;
  /// Pool counter baseline set by ResetStats().
  engine::BufferPoolStats pool_baseline_;
};

}  // namespace ebi

#endif  // EBI_STORAGE_BITMAP_STORE_H_
