#include "storage/io_accountant.h"

namespace ebi {

std::string IoStats::ToString() const {
  std::string out = "vectors=";
  out += std::to_string(vectors_read);
  out += " pages=";
  out += std::to_string(pages_read);
  out += " bytes=";
  out += std::to_string(bytes_read);
  out += " nodes=";
  out += std::to_string(nodes_read);
  out += " bytes_w=";
  out += std::to_string(bytes_written);
  out += " pages_w=";
  out += std::to_string(pages_written);
  return out;
}

}  // namespace ebi
