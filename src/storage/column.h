#ifndef EBI_STORAGE_COLUMN_H_
#define EBI_STORAGE_COLUMN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace ebi {

/// A typed cell value. NULLs are first-class because the paper devotes
/// explicit treatment to NULL/NotExist codewords (Theorem 2.1).
struct Value {
  enum class Kind : uint8_t { kNull, kInt64, kString };

  Kind kind = Kind::kNull;
  int64_t int_value = 0;
  std::string string_value;

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.kind = Kind::kInt64;
    out.int_value = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.kind = Kind::kString;
    out.string_value = std::move(v);
    return out;
  }

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    if (a.kind != b.kind) {
      return false;
    }
    switch (a.kind) {
      case Kind::kNull:
        return true;
      case Kind::kInt64:
        return a.int_value == b.int_value;
      case Kind::kString:
        return a.string_value == b.string_value;
    }
    return false;
  }
};

/// Dense identifier of a distinct value within one column's dictionary.
using ValueId = uint32_t;

/// Sentinel ValueId for NULL cells (never allocated to a dictionary entry).
inline constexpr ValueId kNullValueId = UINT32_MAX;

/// A dictionary-encoded in-memory column.
///
/// Every distinct non-NULL value gets a dense ValueId in insertion order;
/// rows store ValueIds. Indexes are built over (row -> ValueId), which is
/// exactly the "attribute domain" the paper's encodings map. The dictionary
/// doubles as the mapping-table value side.
class Column {
 public:
  enum class Type : uint8_t { kInt64, kString };

  Column(std::string name, Type type)
      : name_(std::move(name)), type_(type) {}

  const std::string& name() const { return name_; }
  Type type() const { return type_; }
  size_t size() const { return rows_.size(); }
  /// Number of distinct non-NULL values seen so far (the paper's |A|).
  size_t Cardinality() const { return dict_size_; }
  bool HasNulls() const { return has_nulls_; }

  /// Appends a value; type must match the column type (or be NULL).
  Status Append(const Value& value);
  Status AppendInt64(int64_t v) { return Append(Value::Int(v)); }
  Status AppendString(std::string v) {
    return Append(Value::Str(std::move(v)));
  }
  Status AppendNull() { return Append(Value::Null()); }

  /// ValueId of row `row`; kNullValueId for NULL cells.
  [[nodiscard]] ValueId ValueIdAt(size_t row) const { return rows_[row]; }

  /// The dictionary value for `id`.
  const Value& ValueOf(ValueId id) const { return dictionary_[id]; }

  /// The (possibly NULL) value stored at `row`.
  [[nodiscard]] Value ValueAt(size_t row) const;

  /// Looks up the ValueId of a value; nullopt if the value never occurred.
  [[nodiscard]] std::optional<ValueId> Lookup(const Value& value) const;

  /// All ValueIds whose (int64) dictionary value lies in [lo, hi].
  /// Only valid for kInt64 columns.
  [[nodiscard]] std::vector<ValueId> IdsInRange(int64_t lo, int64_t hi) const;

  /// Raw row -> ValueId array (for index builds and projection scans).
  const std::vector<ValueId>& rows() const { return rows_; }

  /// All distinct values in ValueId order.
  const std::vector<Value>& dictionary() const { return dictionary_; }

  /// Approximate heap footprint of the row array in bytes.
  size_t RowBytes() const { return rows_.size() * sizeof(ValueId); }

 private:
  std::string name_;
  Type type_;
  std::vector<ValueId> rows_;
  std::vector<Value> dictionary_;
  std::unordered_map<int64_t, ValueId> int_ids_;
  std::unordered_map<std::string, ValueId> string_ids_;
  size_t dict_size_ = 0;
  bool has_nulls_ = false;
};

}  // namespace ebi

#endif  // EBI_STORAGE_COLUMN_H_
