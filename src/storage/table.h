#ifndef EBI_STORAGE_TABLE_H_
#define EBI_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/column.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace ebi {

/// An in-memory table of dictionary-encoded columns, appended row-wise.
///
/// Tables model both fact and dimension tables of a star schema. Rows can
/// be logically deleted; the existence bitmap backs the paper's NotExist
/// discussion (void tuples, Theorem 2.1).
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const std::string& name() const { return name_; }
  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return columns_.size(); }

  /// Adds a column; must be called before any rows are appended.
  Status AddColumn(std::string name, Column::Type type);

  /// Appends one row; `values` must have one entry per column.
  Status AppendRow(const std::vector<Value>& values);

  /// Marks a row as deleted (void). The physical slot remains.
  Status DeleteRow(size_t row);

  /// True if `row` exists (appended and not deleted).
  [[nodiscard]] bool RowExists(size_t row) const {
    return existence_.Get(row);
  }

  /// Bitmap with bit j set iff row j exists.
  const BitVector& existence() const { return existence_; }

  /// Column access by position or name.
  const Column& column(size_t i) const { return *columns_[i]; }
  Column& column(size_t i) { return *columns_[i]; }
  Result<const Column*> FindColumn(const std::string& name) const;
  Result<Column*> FindColumn(const std::string& name);

  /// Index of a column by name, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Deep copy: columns (rows, dictionaries), existence bitmap and row
  /// count. The copy shares nothing with the source — the serving layer
  /// clones the current snapshot's table before applying an append batch
  /// so published snapshots stay immutable (DESIGN.md §9).
  [[nodiscard]] Table Clone() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Column>> columns_;
  size_t num_rows_ = 0;
  BitVector existence_;
};

}  // namespace ebi

#endif  // EBI_STORAGE_TABLE_H_
