#ifndef EBI_EXEC_THREAD_POOL_H_
#define EBI_EXEC_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ebi {
namespace exec {

/// A fixed-size worker pool for data-parallel query execution.
///
/// The execution engine partitions work by row range (one task per table
/// segment) and the pool is the only place threads are created: segments,
/// shards and executors all borrow it, so total parallelism is bounded by
/// one knob. Tasks are plain closures; results travel through caller-owned
/// slots, never through the pool.
///
/// Shutdown is graceful: the destructor lets every already-submitted task
/// finish before joining the workers, so a caller blocked in ParallelFor
/// can never be abandoned mid-barrier.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (a request for 0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue — every task submitted before destruction runs —
  /// then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Enqueues one task for asynchronous execution. Tasks must not throw
  /// (the library is Status-based and compiles without exception use).
  void Submit(std::function<void()> task) EBI_EXCLUDES(mu_);

  /// Runs `body(i)` for every i in [begin, end) on the pool and blocks
  /// until all iterations finish. Iterations may run in any order and
  /// concurrently; callers that need a deterministic result must merge
  /// per-iteration outputs by index after the call returns (the pattern
  /// ShardedIndex and ParallelSelectionExecutor use).
  ///
  /// Must not be called from inside a pool task: the caller blocks on the
  /// barrier and with every worker blocked the same way the pool would
  /// deadlock.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body);

  /// The hardware thread count, or 1 when it cannot be determined — the
  /// default pool size for benches and tools.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  Mutex mu_{lock_rank::kThreadPool, "ThreadPool::mu_"};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ EBI_GUARDED_BY(mu_);
  bool shutting_down_ EBI_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_
      EBI_UNGUARDED("filled in the constructor before any worker can race, "
                    "then only read (size) or joined (destructor)");
};

}  // namespace exec
}  // namespace ebi

#endif  // EBI_EXEC_THREAD_POOL_H_
