#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

namespace ebi {
namespace exec {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mu_);
    shutting_down_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    const MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body) {
  if (begin >= end) {
    return;
  }
  if (end - begin == 1) {
    // A single iteration gains nothing from a queue round-trip.
    body(begin);
    return;
  }
  // The caller blocks until `remaining` hits zero, so stack storage is
  // safe: workers touch it only under `mu`, and the final decrement
  // happens before the caller's wait can observe zero and return.
  struct Barrier {
    Mutex mu{lock_rank::kLeafBarrier, "ParallelFor::Barrier::mu"};
    CondVar done;
    size_t remaining EBI_GUARDED_BY(mu) = 0;
  } barrier;
  {
    const MutexLock lock(barrier.mu);
    barrier.remaining = end - begin;
  }
  for (size_t i = begin; i < end; ++i) {
    Submit([i, &body, &barrier] {
      body(i);
      const MutexLock lock(barrier.mu);
      if (--barrier.remaining == 0) {
        barrier.done.NotifyAll();
      }
    });
  }
  MutexLock lock(barrier.mu);
  while (barrier.remaining != 0) {
    barrier.done.Wait(lock);
  }
}

size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) {
        cv_.Wait(lock);
      }
      if (queue_.empty()) {
        return;  // Shutting down and fully drained.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace exec
}  // namespace ebi
