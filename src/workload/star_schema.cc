#include "workload/star_schema.h"

#include <algorithm>

#include "util/random.h"

namespace ebi {

namespace {

/// Figure 5(a)'s memberships for exactly 12 branches (ValueIds 0-11 for
/// branches 1-12); otherwise consecutive chunks.
Status BuildHierarchy(size_t num_branches, Hierarchy* hierarchy) {
  HierarchyLevel company{"company", {}};
  HierarchyLevel alliance{"alliance", {}};
  if (num_branches == 12) {
    company.groups = {
        {"a", {0, 1, 2, 3}},  {"b", {4, 5}},
        {"c", {6, 7}},        {"d", {2, 3, 8, 9}},
        {"e", {8, 9, 10, 11}},
    };
    alliance.groups = {
        {"X", {0, 1, 2, 3, 4, 5, 6, 7}},  // companies a, b, c.
        {"Y", {6, 7, 2, 3, 8, 9}},        // companies c, d.
        {"Z", {2, 3, 8, 9, 10, 11}},      // companies d, e.
    };
  } else {
    // Generic shape: companies of 4 consecutive branches, alliances of 3
    // consecutive companies.
    std::vector<std::vector<ValueId>> companies;
    for (size_t start = 0; start < num_branches; start += 4) {
      std::vector<ValueId> members;
      for (size_t b = start; b < std::min(start + 4, num_branches); ++b) {
        members.push_back(static_cast<ValueId>(b));
      }
      company.groups.push_back(
          {"company" + std::to_string(companies.size()), members});
      companies.push_back(std::move(members));
    }
    for (size_t start = 0; start < companies.size(); start += 3) {
      std::vector<ValueId> members;
      for (size_t c = start; c < std::min(start + 3, companies.size());
           ++c) {
        members.insert(members.end(), companies[c].begin(),
                       companies[c].end());
      }
      alliance.groups.push_back(
          {"alliance" + std::to_string(start / 3), std::move(members)});
    }
  }
  EBI_RETURN_IF_ERROR(hierarchy->AddLevel(std::move(company)));
  EBI_RETURN_IF_ERROR(hierarchy->AddLevel(std::move(alliance)));
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<StarSchema>> BuildStarSchema(
    const StarSchemaConfig& config) {
  if (config.num_products == 0 || config.num_branches == 0 ||
      config.num_days == 0) {
    return Status::InvalidArgument("star schema dimensions must be > 0");
  }
  const size_t seeding_rows =
      std::max(config.num_products, config.num_branches);
  if (config.fact_rows < seeding_rows) {
    return Status::InvalidArgument(
        "fact_rows must be at least max(num_products, num_branches) so "
        "every dimension member occurs");
  }

  auto schema = std::make_unique<StarSchema>();

  // PRODUCTS dimension.
  EBI_ASSIGN_OR_RETURN(schema->products,
                       schema->catalog.CreateTable("PRODUCTS"));
  EBI_RETURN_IF_ERROR(
      schema->products->AddColumn("product_id", Column::Type::kInt64));
  EBI_RETURN_IF_ERROR(
      schema->products->AddColumn("category", Column::Type::kInt64));
  for (size_t p = 0; p < config.num_products; ++p) {
    EBI_RETURN_IF_ERROR(schema->products->AppendRow(
        {Value::Int(static_cast<int64_t>(p)),
         Value::Int(static_cast<int64_t>(p / 50))}));
  }

  // SALESPOINT dimension with the Figure 4/5 hierarchy.
  EBI_ASSIGN_OR_RETURN(schema->salespoints,
                       schema->catalog.CreateTable("SALESPOINT"));
  EBI_RETURN_IF_ERROR(
      schema->salespoints->AddColumn("branch_id", Column::Type::kInt64));
  schema->salespoint_hierarchy = Hierarchy(config.num_branches);
  EBI_RETURN_IF_ERROR(
      BuildHierarchy(config.num_branches, &schema->salespoint_hierarchy));
  for (size_t b = 0; b < config.num_branches; ++b) {
    EBI_RETURN_IF_ERROR(schema->salespoints->AppendRow(
        {Value::Int(static_cast<int64_t>(b))}));
  }

  // SALES fact table. The first max(P, B) rows sweep the dimension keys
  // round-robin so every fact column's ValueId equals the key value —
  // hierarchy member sets (ValueId-based) then apply directly to indexes
  // on the fact columns.
  EBI_ASSIGN_OR_RETURN(schema->sales, schema->catalog.CreateTable("SALES"));
  EBI_RETURN_IF_ERROR(
      schema->sales->AddColumn("product", Column::Type::kInt64));
  EBI_RETURN_IF_ERROR(
      schema->sales->AddColumn("branch", Column::Type::kInt64));
  EBI_RETURN_IF_ERROR(schema->sales->AddColumn("day", Column::Type::kInt64));
  EBI_RETURN_IF_ERROR(
      schema->sales->AddColumn("quantity", Column::Type::kInt64));

  Rng rng(config.seed);
  ZipfGenerator product_zipf(config.num_products, config.product_zipf_theta,
                             config.seed + 17);
  for (size_t r = 0; r < config.fact_rows; ++r) {
    int64_t product;
    int64_t branch;
    if (r < seeding_rows) {
      product = static_cast<int64_t>(r % config.num_products);
      branch = static_cast<int64_t>(r % config.num_branches);
    } else {
      product = static_cast<int64_t>(product_zipf.Next());
      branch = static_cast<int64_t>(rng.UniformInt(config.num_branches));
    }
    const int64_t day =
        static_cast<int64_t>(rng.UniformInt(config.num_days));
    const int64_t quantity = rng.UniformRange(1, 100);
    EBI_RETURN_IF_ERROR(schema->sales->AppendRow(
        {Value::Int(product), Value::Int(branch), Value::Int(day),
         Value::Int(quantity)}));
  }

  EBI_RETURN_IF_ERROR(schema->catalog.AddForeignKey(
      {"SALES", "product", "PRODUCTS", "product_id"}));
  EBI_RETURN_IF_ERROR(schema->catalog.AddForeignKey(
      {"SALES", "branch", "SALESPOINT", "branch_id"}));
  return schema;
}

}  // namespace ebi
