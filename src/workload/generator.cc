#include "workload/generator.h"

#include "util/random.h"

namespace ebi {

Result<std::unique_ptr<Table>> GenerateTable(
    const std::string& name, size_t rows,
    const std::vector<ColumnSpec>& columns, uint64_t seed) {
  auto table = std::make_unique<Table>(name);
  for (const ColumnSpec& spec : columns) {
    if (spec.cardinality == 0) {
      return Status::InvalidArgument("column " + spec.name +
                                     " has zero cardinality");
    }
    EBI_RETURN_IF_ERROR(table->AddColumn(spec.name, Column::Type::kInt64));
  }

  // One generator per column so column streams are independent of each
  // other and of column order.
  std::vector<Rng> rngs;
  std::vector<std::unique_ptr<ZipfGenerator>> zipfs;
  for (size_t c = 0; c < columns.size(); ++c) {
    rngs.emplace_back(seed + 0x1000 * (c + 1));
    if (columns[c].distribution == Distribution::kZipf) {
      zipfs.push_back(std::make_unique<ZipfGenerator>(
          columns[c].cardinality, columns[c].zipf_theta,
          seed + 0x2000 * (c + 1)));
    } else {
      zipfs.push_back(nullptr);
    }
  }

  std::vector<Value> row(columns.size());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      const ColumnSpec& spec = columns[c];
      if (spec.null_fraction > 0.0 && rngs[c].Bernoulli(spec.null_fraction)) {
        row[c] = Value::Null();
        continue;
      }
      int64_t v = 0;
      switch (spec.distribution) {
        case Distribution::kUniform:
          v = static_cast<int64_t>(rngs[c].UniformInt(spec.cardinality));
          break;
        case Distribution::kZipf:
          v = static_cast<int64_t>(zipfs[c]->Next());
          break;
        case Distribution::kRoundRobin:
          v = static_cast<int64_t>(r % spec.cardinality);
          break;
      }
      row[c] = Value::Int(v);
    }
    EBI_RETURN_IF_ERROR(table->AppendRow(row));
  }
  return table;
}

}  // namespace ebi
