#include "workload/query_mix.h"

#include <algorithm>

#include "util/random.h"

namespace ebi {

std::vector<Predicate> GenerateQueryMix(const std::string& column_name,
                                        size_t cardinality,
                                        const QueryMixConfig& config) {
  std::vector<Predicate> queries;
  queries.reserve(config.num_queries);
  Rng rng(config.seed);
  const size_t max_delta =
      std::min(std::max<size_t>(config.max_delta, 2), cardinality);
  const size_t min_delta = std::clamp<size_t>(config.min_delta, 2, max_delta);

  for (size_t q = 0; q < config.num_queries; ++q) {
    if (!rng.Bernoulli(config.range_fraction)) {
      // Point query.
      queries.push_back(Predicate::Eq(
          column_name,
          Value::Int(static_cast<int64_t>(rng.UniformInt(cardinality)))));
      continue;
    }
    const size_t delta = static_cast<size_t>(
        rng.UniformRange(static_cast<int64_t>(min_delta),
                         static_cast<int64_t>(max_delta)));
    const int64_t lo = static_cast<int64_t>(
        rng.UniformInt(cardinality - delta + 1));
    if (rng.Bernoulli(config.in_list_fraction)) {
      std::vector<Value> values;
      values.reserve(delta);
      for (size_t i = 0; i < delta; ++i) {
        values.push_back(Value::Int(lo + static_cast<int64_t>(i)));
      }
      queries.push_back(Predicate::In(column_name, std::move(values)));
    } else {
      queries.push_back(Predicate::Between(
          column_name, lo, lo + static_cast<int64_t>(delta) - 1));
    }
  }
  return queries;
}

}  // namespace ebi
