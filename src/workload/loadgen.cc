#include "workload/loadgen.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/random.h"

namespace ebi {
namespace workload {

namespace {

/// Exponential interarrival draw at `rate_qps`, in milliseconds.
double NextInterarrivalMs(Rng& rng, double rate_qps) {
  // Inverse-CDF with the draw pinned away from 0 so log() stays finite.
  const double u = std::max(rng.UniformDouble(), 1e-12);
  return -std::log(u) / rate_qps * 1000.0;
}

}  // namespace

LoadSchedule GenerateLoad(const LoadGenOptions& options) {
  LoadSchedule schedule;
  if (options.operations == 0 || options.tenants == 0 ||
      options.keys_per_tenant <= 0) {
    return schedule;
  }
  Rng rng(options.seed);
  ZipfGenerator tenant_pick(options.tenants, options.zipf_theta,
                            options.seed ^ 0x5eedULL);

  const double rate = std::max(options.offered_qps, 1e-6);
  const double burst = std::max(options.burst_factor, 1.0);
  double clock_ms = 0.0;

  schedule.ops.reserve(options.operations);
  for (size_t i = 0; i < options.operations; ++i) {
    LoadOp op;
    op.adversarial = options.adversary_fraction > 0.0 &&
                     rng.Bernoulli(options.adversary_fraction);
    op.tenant = op.adversarial ? options.adversary_tenant
                               : static_cast<size_t>(tenant_pick.Next());

    const int64_t lo =
        static_cast<int64_t>(op.tenant) * options.keys_per_tenant;
    const int64_t hi = lo + options.keys_per_tenant - 1;
    op.predicates.push_back(Predicate::Between(options.key_column, lo, hi));
    if (options.value_cardinality > 0) {
      if (op.adversarial) {
        // The adversary ORs a wide IN-list: every literal is one more
        // bitmap fetched and unioned, so width converts directly into
        // shard-side service time.
        std::vector<Value> literals;
        const size_t width = std::max<size_t>(options.adversary_in_width, 1);
        literals.reserve(width);
        for (size_t v = 0; v < width; ++v) {
          literals.push_back(Value::Int(static_cast<int64_t>(
              rng.UniformInt(static_cast<uint64_t>(
                  options.value_cardinality)))));
        }
        op.predicates.push_back(
            Predicate::In(options.value_column, std::move(literals)));
      } else {
        op.predicates.push_back(Predicate::Eq(
            options.value_column,
            Value::Int(static_cast<int64_t>(rng.UniformInt(
                static_cast<uint64_t>(options.value_cardinality))))));
      }
    }

    if (options.arrivals == ArrivalProcess::kOpenLoop) {
      // Two-phase modulated Poisson: the on-phase compresses
      // interarrivals by burst_factor, the off-phase stretches them by
      // the same factor, so the mean rate stays offered_qps while the
      // on-phase slams the admission queue.
      double phase_rate = rate;
      if (burst > 1.0 && options.burst_period_ms > 0.0) {
        const double phase =
            std::fmod(clock_ms, 2.0 * options.burst_period_ms);
        phase_rate =
            phase < options.burst_period_ms ? rate * burst : rate / burst;
      }
      clock_ms += NextInterarrivalMs(rng, phase_rate);
      op.arrival_ms = clock_ms;
    }
    schedule.ops.push_back(std::move(op));
  }
  schedule.duration_ms =
      options.arrivals == ArrivalProcess::kOpenLoop ? clock_ms : 0.0;
  return schedule;
}

}  // namespace workload
}  // namespace ebi
