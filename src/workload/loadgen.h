#ifndef EBI_WORKLOAD_LOADGEN_H_
#define EBI_WORKLOAD_LOADGEN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "query/predicate.h"

namespace ebi {
namespace workload {

/// How the load generator paces requests.
enum class ArrivalProcess : uint8_t {
  /// Fixed client population, each issuing its next request the moment
  /// the previous one returns. Arrival times are unused; throughput is
  /// whatever the system sustains (the classic saturation mode).
  kClosedLoop,
  /// Requests arrive on a precomputed timeline regardless of completion
  /// — the mode that exposes queueing collapse, since arrivals do not
  /// slow down when the system does (coordinated omission avoided).
  kOpenLoop,
};

/// One scheduled request of a generated workload.
struct LoadOp {
  /// Arrival offset from schedule start (open loop; 0 in closed loop).
  double arrival_ms = 0.0;
  /// Tenant the request belongs to (Zipf-skewed).
  size_t tenant = 0;
  /// The conjunctive selection to issue.
  std::vector<Predicate> predicates;
  /// True for the slow-query adversary's deliberately wide requests.
  bool adversarial = false;
};

/// Deterministic multi-tenant workload description. Everything derives
/// from `seed`: two schedules with equal options are identical op for
/// op, which is what makes bench runs comparable across shard counts.
struct LoadGenOptions {
  uint64_t seed = 1;
  /// Requests in the schedule.
  size_t operations = 1000;
  /// Tenant population; tenant t owns keys
  /// [t*keys_per_tenant, (t+1)*keys_per_tenant).
  size_t tenants = 8;
  /// Zipf skew across tenants (0 = uniform; 0.99 = classic YCSB skew).
  double zipf_theta = 0.99;
  /// Key-space width per tenant.
  int64_t keys_per_tenant = 1024;
  /// Partition-key column every request carries a tenant-range
  /// predicate on.
  std::string key_column = "k";
  /// Secondary column for the selective equality conjunct.
  std::string value_column = "v";
  /// Distinct values of value_column (equality literals are drawn from
  /// [0, cardinality)); 0 drops the secondary conjunct entirely.
  int64_t value_cardinality = 16;
  ArrivalProcess arrivals = ArrivalProcess::kClosedLoop;
  /// Mean offered rate for kOpenLoop (requests per second).
  double offered_qps = 1000.0;
  /// Burstiness: interarrival rate alternates between
  /// offered_qps*burst_factor (on-phase) and offered_qps/burst_factor
  /// (off-phase) every burst_period_ms. 1.0 = plain Poisson arrivals.
  double burst_factor = 1.0;
  double burst_period_ms = 100.0;
  /// Fraction of requests issued by the slow-query adversary.
  double adversary_fraction = 0.0;
  /// The adversary always targets this tenant — under range
  /// partitioning its load pins to one shard, which is the isolation
  /// story BENCH_serve_cluster measures.
  size_t adversary_tenant = 0;
  /// IN-list width of adversarial requests (each literal is one more
  /// bitmap to OR: width buys slowness).
  size_t adversary_in_width = 64;
};

/// A fully materialized request timeline.
struct LoadSchedule {
  std::vector<LoadOp> ops;
  /// Arrival horizon: last arrival_ms (0 for closed loop).
  double duration_ms = 0.0;
};

/// Generates the schedule for `options`. Pure computation — no clocks,
/// no threads, no I/O — so it is freely callable anywhere; executing the
/// schedule against a service (threads, pacing) is the bench's job
/// (bench/serve_cluster.cc).
LoadSchedule GenerateLoad(const LoadGenOptions& options);

}  // namespace workload
}  // namespace ebi

#endif  // EBI_WORKLOAD_LOADGEN_H_
