#ifndef EBI_WORKLOAD_GENERATOR_H_
#define EBI_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace ebi {

/// Value distribution of a generated column.
enum class Distribution {
  kUniform,
  /// Zipf-skewed (theta ~ 1), the DW-typical skew the range-based bitmap
  /// index of [19] is designed around.
  kZipf,
  /// Round-robin 0,1,...,m-1,0,1,... — every value occurs, evenly.
  kRoundRobin,
};

/// Specification of one synthetic integer column.
struct ColumnSpec {
  std::string name;
  /// Values are drawn from [0, cardinality).
  size_t cardinality = 100;
  Distribution distribution = Distribution::kUniform;
  double zipf_theta = 1.0;
  /// Fraction of NULL cells.
  double null_fraction = 0.0;
};

/// Generates a table of `rows` rows with the given integer columns,
/// deterministically from `seed`.
Result<std::unique_ptr<Table>> GenerateTable(
    const std::string& name, size_t rows,
    const std::vector<ColumnSpec>& columns, uint64_t seed);

}  // namespace ebi

#endif  // EBI_WORKLOAD_GENERATOR_H_
