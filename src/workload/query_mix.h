#ifndef EBI_WORKLOAD_QUERY_MIX_H_
#define EBI_WORKLOAD_QUERY_MIX_H_

#include <cstdint>
#include <vector>

#include "query/predicate.h"
#include "storage/column.h"

namespace ebi {

/// Configuration of a synthetic selection workload against one integer
/// column with values in [0, cardinality).
struct QueryMixConfig {
  size_t num_queries = 100;
  /// Fraction of range-search queries (range predicates and IN-lists).
  /// Defaults to the paper's TPC-D observation: 12 of 17 query types
  /// involve range search (Section 3.2).
  double range_fraction = 12.0 / 17.0;
  /// Among range searches, fraction expressed as IN-lists (vs BETWEEN).
  double in_list_fraction = 0.3;
  /// Range widths δ are drawn uniformly from [min_delta, max_delta].
  size_t min_delta = 2;
  size_t max_delta = 64;
  uint64_t seed = 7;
};

/// Generates a deterministic mix of point and range selections on
/// `column_name`, whose domain is [0, cardinality).
std::vector<Predicate> GenerateQueryMix(const std::string& column_name,
                                        size_t cardinality,
                                        const QueryMixConfig& config);

}  // namespace ebi

#endif  // EBI_WORKLOAD_QUERY_MIX_H_
