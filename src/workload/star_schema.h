#ifndef EBI_WORKLOAD_STAR_SCHEMA_H_
#define EBI_WORKLOAD_STAR_SCHEMA_H_

#include <cstdint>
#include <memory>

#include "encoding/hierarchy.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace ebi {

/// Configuration of the synthetic SALES star schema (the running example
/// of Sections 2.2/2.3: a SALES fact table, a PRODUCTS dimension, and a
/// SALESPOINT dimension carrying the branch/company/alliance hierarchy of
/// Figures 4 and 5).
struct StarSchemaConfig {
  size_t fact_rows = 10000;
  /// Distinct products (the paper's motivating example uses 12000).
  size_t num_products = 1000;
  /// Branches; 12 reproduces Figure 5's hierarchy exactly.
  size_t num_branches = 12;
  size_t num_days = 365;
  double product_zipf_theta = 0.5;
  uint64_t seed = 1998;
};

/// The generated schema: tables owned by the catalog plus the SALESPOINT
/// hierarchy metadata.
struct StarSchema {
  Catalog catalog;
  Table* sales = nullptr;        // product, branch, day, quantity.
  Table* products = nullptr;     // product_id, category.
  Table* salespoints = nullptr;  // branch_id, company, alliance.
  Hierarchy salespoint_hierarchy{0};
};

/// Builds the schema deterministically. With num_branches == 12 the
/// company/alliance memberships are exactly Figure 5(a) — including the
/// m:N edges (branches 3,4 in companies a and d; company c in alliances
/// X and Y; company d in Y and Z).
Result<std::unique_ptr<StarSchema>> BuildStarSchema(
    const StarSchemaConfig& config);

}  // namespace ebi

#endif  // EBI_WORKLOAD_STAR_SCHEMA_H_
