#include "analysis/auditor.h"

#include <istream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "boolean/cube.h"
#include "encoding/well_defined.h"
#include "index/cold_encoded_bitmap_index.h"
#include "index/persistence.h"
#include "util/ewah_bitmap.h"
#include "util/rle_bitmap.h"

namespace ebi {

namespace {

std::string VectorLabel(const char* role, size_t ordinal) {
  return std::string(role) + " #" + std::to_string(ordinal);
}

}  // namespace

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kDuplicateCodeword:
      return "DuplicateCodeword";
    case ViolationKind::kCodewordOutOfWidth:
      return "CodewordOutOfWidth";
    case ViolationKind::kInverseMapMismatch:
      return "InverseMapMismatch";
    case ViolationKind::kReservedCodeAssigned:
      return "ReservedCodeAssigned";
    case ViolationKind::kRetrievalFunctionMismatch:
      return "RetrievalFunctionMismatch";
    case ViolationKind::kSelectionNotWellDefined:
      return "SelectionNotWellDefined";
    case ViolationKind::kBitmapLengthMismatch:
      return "BitmapLengthMismatch";
    case ViolationKind::kBitmapTailDirty:
      return "BitmapTailDirty";
    case ViolationKind::kRleRunSumMismatch:
      return "RleRunSumMismatch";
    case ViolationKind::kEwahFormatMismatch:
      return "EwahFormatMismatch";
    case ViolationKind::kPersistedBitmapCorrupt:
      return "PersistedBitmapCorrupt";
    case ViolationKind::kShardPartitionMismatch:
      return "ShardPartitionMismatch";
    case ViolationKind::kClusterPartitionMismatch:
      return "ClusterPartitionMismatch";
  }
  return "Unknown";
}

bool AuditReport::Has(ViolationKind kind) const {
  for (const Violation& v : violations) {
    if (v.kind == kind) {
      return true;
    }
  }
  return false;
}

size_t AuditReport::CountOf(ViolationKind kind) const {
  size_t n = 0;
  for (const Violation& v : violations) {
    if (v.kind == kind) {
      ++n;
    }
  }
  return n;
}

void AuditReport::Merge(AuditReport other) {
  checks_run += other.checks_run;
  violations.insert(violations.end(),
                    std::make_move_iterator(other.violations.begin()),
                    std::make_move_iterator(other.violations.end()));
}

std::string AuditReport::ToString() const {
  std::string out = "audit: ";
  out += std::to_string(checks_run);
  out += " checks, ";
  out += std::to_string(violations.size());
  out += " violations";
  for (const Violation& v : violations) {
    out += "\n  [";
    out += ViolationKindName(v.kind);
    out += "] entity ";
    out += std::to_string(v.entity);
    out += ": ";
    out += v.detail;
  }
  return out;
}

AuditReport InvariantAuditor::AuditMappingParts(
    int width, const std::vector<uint64_t>& codes,
    std::optional<uint64_t> void_code, std::optional<uint64_t> null_code) {
  AuditReport report;
  const uint64_t limit =
      width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  std::unordered_map<uint64_t, size_t> first_owner;

  // Reserved codewords participate in the distinctness and width checks
  // like any other codeword of the mapping.
  std::vector<std::pair<uint64_t, size_t>> all;
  all.reserve(codes.size() + 2);
  for (size_t id = 0; id < codes.size(); ++id) {
    all.emplace_back(codes[id], id);
  }
  constexpr size_t kVoidEntity = ~size_t{0};
  constexpr size_t kNullEntity = ~size_t{0} - 1;
  if (void_code.has_value()) {
    all.emplace_back(*void_code, kVoidEntity);
  }
  if (null_code.has_value()) {
    all.emplace_back(*null_code, kNullEntity);
  }

  for (const auto& [code, entity] : all) {
    ++report.checks_run;
    if (code > limit) {
      report.violations.push_back(
          {ViolationKind::kCodewordOutOfWidth, entity,
           "codeword " + std::to_string(code) + " does not fit in " +
               std::to_string(width) + " bits"});
    }
    ++report.checks_run;
    auto [it, inserted] = first_owner.emplace(code, entity);
    if (!inserted) {
      report.violations.push_back(
          {ViolationKind::kDuplicateCodeword, entity,
           "codeword " + std::to_string(code) +
               " already assigned to entity " + std::to_string(it->second)});
    }
  }

  // Theorem 2.1: a reserved codeword must not double as a live value's
  // codeword. The duplicate check above catches collisions when the
  // reservation is declared; here we additionally flag the canonical
  // "code 0 assigned to a live value while 0 is meant to be void" shape
  // when a reservation for 0 exists.
  for (size_t id = 0; id < codes.size(); ++id) {
    ++report.checks_run;
    if ((void_code.has_value() && codes[id] == *void_code) ||
        (null_code.has_value() && codes[id] == *null_code)) {
      report.violations.push_back(
          {ViolationKind::kReservedCodeAssigned, id,
           "value " + std::to_string(id) + " occupies reserved codeword " +
               std::to_string(codes[id])});
    }
  }
  return report;
}

AuditReport InvariantAuditor::AuditMapping(const MappingTable& mapping) {
  AuditReport report = AuditMappingParts(mapping.width(), mapping.codes(),
                                         mapping.void_code(),
                                         mapping.null_code());
  const std::vector<uint64_t>& codes = mapping.codes();
  for (size_t id = 0; id < codes.size(); ++id) {
    // Inverse map: ValueOfCode(CodeOf(v)) == v (Definition 2.1's
    // one-to-one requirement, checked through the public API).
    ++report.checks_run;
    const std::optional<ValueId> back = mapping.ValueOfCode(codes[id]);
    if (!back.has_value() || *back != static_cast<ValueId>(id)) {
      report.violations.push_back(
          {ViolationKind::kInverseMapMismatch, id,
           "ValueOfCode(" + std::to_string(codes[id]) + ") = " +
               (back.has_value() ? std::to_string(*back) : "nullopt") +
               ", expected " + std::to_string(id)});
    }
    // Retrieval function: f_v must be exactly the min-term of v's
    // codeword over the mapping's width (Definition 2.1).
    ++report.checks_run;
    const Result<Cube> fv = mapping.RetrievalFunction(id);
    if (!fv.ok() ||
        !(fv.value() == Cube::MinTerm(codes[id], mapping.width()))) {
      report.violations.push_back(
          {ViolationKind::kRetrievalFunctionMismatch, id,
           "retrieval function of value " + std::to_string(id) +
               " is not the min-term of codeword " +
               std::to_string(codes[id])});
    }
  }
  return report;
}

AuditReport InvariantAuditor::AuditSelection(
    const MappingTable& mapping, const std::vector<ValueId>& subdomain) {
  AuditReport report;
  ++report.checks_run;
  const Result<bool> wd =
      IsWellDefined(mapping, subdomain, mapping.NumValues());
  if (!wd.ok()) {
    report.violations.push_back(
        {ViolationKind::kSelectionNotWellDefined, subdomain.size(),
         "well-definedness check failed: " + wd.status().ToString()});
  } else if (!wd.value()) {
    report.violations.push_back(
        {ViolationKind::kSelectionNotWellDefined, subdomain.size(),
         "mapping is not well defined for the selection (Definition 2.5): "
         "no subexpression ordering evaluates it without extra vectors"});
  }
  return report;
}

AuditReport InvariantAuditor::AuditBitVector(const BitVector& bits,
                                             size_t expected_bits,
                                             size_t ordinal) {
  AuditReport report;
  ++report.checks_run;
  if (bits.size() != expected_bits) {
    report.violations.push_back(
        {ViolationKind::kBitmapLengthMismatch, ordinal,
         VectorLabel("vector", ordinal) + " holds " +
             std::to_string(bits.size()) + " bits, expected " +
             std::to_string(expected_bits)});
  }
  ++report.checks_run;
  if (bits.NumWords() != (bits.size() + 63) / 64) {
    report.violations.push_back(
        {ViolationKind::kBitmapLengthMismatch, ordinal,
         VectorLabel("vector", ordinal) + " backing array holds " +
             std::to_string(bits.NumWords()) + " words for " +
             std::to_string(bits.size()) + " bits"});
  }
  ++report.checks_run;
  if (!bits.TailIsClean()) {
    report.violations.push_back(
        {ViolationKind::kBitmapTailDirty, ordinal,
         VectorLabel("vector", ordinal) +
             " has set padding bits above its size of " +
             std::to_string(bits.size())});
  }
  return report;
}

AuditReport InvariantAuditor::AuditBitVectorWords(
    const std::vector<uint64_t>& words, size_t declared_bits,
    size_t ordinal) {
  AuditReport report;
  ++report.checks_run;
  if (words.size() != (declared_bits + 63) / 64) {
    report.violations.push_back(
        {ViolationKind::kBitmapLengthMismatch, ordinal,
         VectorLabel("vector", ordinal) + " word buffer holds " +
             std::to_string(words.size()) + " words for " +
             std::to_string(declared_bits) + " declared bits"});
  }
  ++report.checks_run;
  const size_t tail = declared_bits % 64;
  if (tail != 0 && !words.empty() &&
      (words.back() & ~((uint64_t{1} << tail) - 1)) != 0) {
    report.violations.push_back(
        {ViolationKind::kBitmapTailDirty, ordinal,
         VectorLabel("vector", ordinal) +
             " word buffer has set padding bits above declared bit " +
             std::to_string(declared_bits)});
  }
  return report;
}

AuditReport InvariantAuditor::AuditRleRuns(const std::vector<uint32_t>& runs,
                                           size_t declared_bits,
                                           size_t ordinal) {
  AuditReport report;
  ++report.checks_run;
  size_t sum = 0;
  for (uint32_t run : runs) {
    sum += run;
  }
  if (sum != declared_bits) {
    report.violations.push_back(
        {ViolationKind::kRleRunSumMismatch, ordinal,
         VectorLabel("rle vector", ordinal) + " runs sum to " +
             std::to_string(sum) + ", declared size is " +
             std::to_string(declared_bits)});
  }
  return report;
}

AuditReport InvariantAuditor::AuditEwahWords(
    const std::vector<uint64_t>& words, size_t declared_bits,
    size_t ordinal) {
  AuditReport report;
  ++report.checks_run;
  const Result<EwahBitmap> decoded =
      EwahBitmap::FromWords(words, declared_bits);
  if (!decoded.ok()) {
    report.violations.push_back(
        {ViolationKind::kEwahFormatMismatch, ordinal,
         VectorLabel("ewah vector", ordinal) +
             " rejected: " + decoded.status().ToString()});
  }
  return report;
}

AuditReport InvariantAuditor::AuditStoredBitmap(const StoredBitmap& bitmap,
                                                size_t expected_bits,
                                                size_t ordinal) {
  AuditReport report;
  ++report.checks_run;
  if (bitmap.size() != expected_bits) {
    report.violations.push_back(
        {ViolationKind::kBitmapLengthMismatch, ordinal,
         VectorLabel("stored vector", ordinal) + " holds " +
             std::to_string(bitmap.size()) + " bits, expected " +
             std::to_string(expected_bits)});
  }
  if (const BitVector* plain = bitmap.AsPlain()) {
    report.Merge(AuditBitVector(*plain, expected_bits, ordinal));
  } else if (const RleBitmap* rle = bitmap.AsRle()) {
    report.Merge(AuditRleRuns(rle->runs(), rle->size(), ordinal));
  } else if (const EwahBitmap* ewah = bitmap.AsEwah()) {
    report.Merge(AuditEwahWords(ewah->words(), ewah->size(), ordinal));
  }
  return report;
}

AuditReport InvariantAuditor::AuditPersistedBitmap(std::istream& in,
                                                   size_t expected_bits) {
  AuditReport report;
  ++report.checks_run;
  Result<StoredBitmap> loaded = LoadStoredBitmap(in);
  if (!loaded.ok()) {
    report.violations.push_back(
        {ViolationKind::kPersistedBitmapCorrupt, 0,
         "persisted bitmap failed to load: " + loaded.status().ToString()});
    return report;
  }
  report.Merge(AuditStoredBitmap(loaded.value(), expected_bits));
  return report;
}

AuditReport InvariantAuditor::AuditIndex(SecondaryIndex& index,
                                         size_t expected_rows) {
  AuditReport report;
  index.ForEachAuditVector([&](const AuditableVector& v) {
    if (v.plain != nullptr) {
      report.Merge(AuditBitVector(*v.plain, expected_rows, v.ordinal));
    }
    if (v.stored != nullptr) {
      report.Merge(AuditStoredBitmap(*v.stored, expected_rows, v.ordinal));
    }
  });
  if (const MappingTable* mapping = index.audit_mapping()) {
    report.Merge(AuditMapping(*mapping));
  }
  // Cold indexes keep their slices in the backing store; fetch each one
  // back through the pool (validating the compressed form on the way in)
  // and hold it to the same length contract.
  if (auto* cold = dynamic_cast<ColdEncodedBitmapIndex*>(&index)) {
    for (size_t i = 0; i < cold->NumSlices(); ++i) {
      ++report.checks_run;
      Result<BitVector> slice = cold->FetchSlice(i);
      if (!slice.ok()) {
        report.violations.push_back(
            {ViolationKind::kPersistedBitmapCorrupt, i,
             VectorLabel("cold slice", i) +
                 " failed to load: " + slice.status().ToString()});
        continue;
      }
      report.Merge(AuditBitVector(slice.value(), expected_rows, i));
    }
  }
  return report;
}

AuditReport InvariantAuditor::AuditShardedIndex(ShardedIndex& index,
                                                size_t expected_rows) {
  AuditReport report;
  size_t rows_covered = 0;
  for (size_t i = 0; i < index.NumShards(); ++i) {
    SecondaryIndex* shard = index.shard(i);
    const size_t shard_rows = shard->column().size();
    rows_covered += shard_rows;
    AuditReport shard_report = AuditIndex(*shard, shard_rows);
    // Re-anchor shard-local violations so the report names the shard.
    for (Violation& v : shard_report.violations) {
      v.detail = "shard " + std::to_string(i) + ": " + v.detail;
    }
    report.Merge(std::move(shard_report));
  }
  ++report.checks_run;
  if (rows_covered != expected_rows) {
    report.violations.push_back(
        {ViolationKind::kShardPartitionMismatch, index.NumShards(),
         "shard segments cover " + std::to_string(rows_covered) +
             " rows, source table has " + std::to_string(expected_rows)});
  }
  return report;
}

AuditReport InvariantAuditor::AuditClusterPartition(
    const std::vector<std::vector<uint64_t>>& shard_rows,
    uint64_t total_rows) {
  AuditReport report;
  // owners[g] = 1 + shard that claimed global id g; 0 = unclaimed.
  std::vector<size_t> owners(total_rows, 0);
  for (size_t s = 0; s < shard_rows.size(); ++s) {
    uint64_t previous = 0;
    bool first = true;
    for (uint64_t global : shard_rows[s]) {
      ++report.checks_run;
      if (global >= total_rows) {
        report.violations.push_back(
            {ViolationKind::kClusterPartitionMismatch, s,
             "shard " + std::to_string(s) + " claims global row " +
                 std::to_string(global) + " beyond total_rows " +
                 std::to_string(total_rows)});
        continue;
      }
      if (!first && global <= previous) {
        report.violations.push_back(
            {ViolationKind::kClusterPartitionMismatch, s,
             "shard " + std::to_string(s) +
                 "'s map is not strictly increasing at global row " +
                 std::to_string(global) +
                 " (local order must equal cluster append order)"});
      }
      if (owners[global] != 0) {
        report.violations.push_back(
            {ViolationKind::kClusterPartitionMismatch, s,
             "global row " + std::to_string(global) +
                 " claimed by both shard " +
                 std::to_string(owners[global] - 1) + " and shard " +
                 std::to_string(s)});
      } else {
        owners[global] = s + 1;
      }
      previous = global;
      first = false;
    }
  }
  for (uint64_t g = 0; g < total_rows; ++g) {
    ++report.checks_run;
    if (owners[g] == 0) {
      report.violations.push_back(
          {ViolationKind::kClusterPartitionMismatch,
           static_cast<size_t>(g),
           "global row " + std::to_string(g) + " is owned by no shard"});
    }
  }
  return report;
}

}  // namespace ebi
