#ifndef EBI_ANALYSIS_COST_MODEL_H_
#define EBI_ANALYSIS_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

#include "boolean/reduction.h"

namespace ebi {

/// Closed-form and computed cost models from Sections 2.1 and 3 of the
/// paper. These regenerate the analytical curves (Figures 9 and 10, the
/// B-tree crossover, the worst-case savings) which the benches then compare
/// against measured index behaviour.

// ---------------------------------------------------------------------------
// Section 3.1: bitmap vectors accessed per range selection of width δ.
// ---------------------------------------------------------------------------

/// Simple bitmap indexing reads one vector per selected value: c_s = δ.
inline size_t CsForDelta(size_t delta) { return delta; }

/// Encoded bitmap indexing reads at most all k = ceil(log2 m) vectors.
int CeWorst(size_t m);

/// Best-case c_e for a δ-value selection on an m-value domain under an
/// optimal encoding: the selected values occupy the codeword prefix
/// [0, δ) of the k-cube (consecutive codewords) and the retrieval
/// expression is reduced exactly (Quine-McCluskey). This re-derives the
/// paper's Property-3.1 curve: e.g. m=50, δ=32 gives c_e = 1 against
/// c_e_worst = 6 — the "83% saving"; m=1000, δ=512 gives 1 vs 10 — "90%".
/// Matching the paper, unused codewords are NOT exploited here (see
/// CeBestWithDontCares for the strictly better variant our implementation
/// also supports).
int CeBest(size_t delta, size_t m);

/// Like CeBest, but additionally injects the unused codewords [m, 2^k) as
/// don't-cares — what our index implementation actually does. Always
/// <= CeBest; in particular a whole-domain selection costs 0 vectors.
int CeBestWithDontCares(size_t delta, size_t m);

/// δ above which encoded beats simple even in the worst case
/// (c_e <= ceil(log2 m) < δ = c_s), per Section 3.1's
/// "c_e < c_s if δ > log2 |A| + 1".
double CrossoverDelta(size_t m);

// ---------------------------------------------------------------------------
// Section 2.1 / Figure 10: space models.
// ---------------------------------------------------------------------------

/// Bytes of a simple bitmap index on n rows, cardinality m: n*m/8.
double SimpleBitmapBytes(size_t n, size_t m);

/// Bytes of an encoded bitmap index: n*ceil(log2 m)/8.
double EncodedBitmapBytes(size_t n, size_t m);

/// Bytes of a B-tree per Section 2.1: 1.44 * n / M * p.
double BTreeBytes(size_t n, size_t page_size, size_t degree);

/// Cardinality below which a simple bitmap index is smaller than a B-tree:
/// m < 11.52 p / M (93 for p = 4 KB, M = 512).
double BitmapVsBTreeCrossoverCardinality(size_t page_size, size_t degree);

/// Number of bitmap vectors: m for simple, ceil(log2 m) for encoded
/// (Figure 10's y-axis).
inline size_t SimpleBitmapVectors(size_t m) { return m; }
size_t EncodedBitmapVectors(size_t m);

// ---------------------------------------------------------------------------
// Section 2.1: build-time complexity terms.
// ---------------------------------------------------------------------------

/// O(n*m) unit cost of building a simple bitmap index.
double SimpleBuildCost(size_t n, size_t m);

/// O(n*ceil(log2 m)) unit cost of building an encoded bitmap index.
double EncodedBuildCost(size_t n, size_t m);

/// B-tree build cost: n*log_{M/2}(m) + n*log2(p/4) (traversal + leaf
/// insertion terms of Section 2.1).
double BTreeBuildCost(size_t n, size_t m, size_t page_size, size_t degree);

// ---------------------------------------------------------------------------
// Section 3.1: sparsity.
// ---------------------------------------------------------------------------

/// Average sparsity of simple bitmap vectors: (m-1)/m.
inline double SimpleSparsity(size_t m) {
  return m == 0 ? 0.0
               : static_cast<double>(m - 1) / static_cast<double>(m);
}

/// Sparsity of encoded bitmap vectors: about 1/2, independent of m.
inline double EncodedSparsityApprox() { return 0.5; }

// ---------------------------------------------------------------------------
// Section 3.2: worst-case analysis.
// ---------------------------------------------------------------------------

/// Area under the best-case c_e curve over δ = 1..m divided by the area
/// under the worst-case line c_e_w = ceil(log2 m) — 0.84 for m = 50 and
/// 0.90 for m = 1000 in the paper. `step` subsamples δ for speed (1 =
/// exact).
double BestToWorstAreaRatio(size_t m, size_t step = 1);

/// Largest single-δ saving 1 - c_e_best/c_e_worst over δ = 1..m
/// (0.83 at δ=32 for m=50; 0.90 at δ=512 for m=1000). `step` subsamples δ;
/// powers of two are always included since the peak falls on one.
double PeakSaving(size_t m, size_t step = 1);

}  // namespace ebi

#endif  // EBI_ANALYSIS_COST_MODEL_H_
