#ifndef EBI_ANALYSIS_AUDITOR_H_
#define EBI_ANALYSIS_AUDITOR_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "encoding/mapping_table.h"
#include "index/index.h"
#include "index/sharded_index.h"
#include "storage/column.h"
#include "util/bitvector.h"
#include "util/stored_bitmap.h"

namespace ebi {

/// The structural invariant a check found broken. Each kind maps to one of
/// the paper's correctness guarantees (see DESIGN.md §8):
///   * bijectivity / width / inverse-map kinds — Definition 2.1's
///     one-to-one mapping M^A;
///   * kReservedCodeAssigned — Theorem 2.1's reserved void/NULL codewords
///     (code 0 assigned to a live value breaks the existence-free
///     selection guarantee);
///   * kRetrievalFunctionMismatch — Definition 2.1's retrieval function
///     f_v must be exactly the min-term of v's codeword;
///   * kSelectionNotWellDefined — Definition 2.5 / Theorems 2.2-2.3;
///   * the bitmap kinds — every vector spans the table, RLE runs sum to
///     the declared size, EWAH words decode to the declared word count,
///     and (kBitmapTailDirty) no padding bit above size() is set — the
///     tail invariant Count()/IsZero() rely on to skip masking;
///   * kShardPartitionMismatch — a ShardedIndex's segments must tile the
///     source table exactly;
///   * kClusterPartitionMismatch — a cluster placement's per-shard
///     global-row-id maps must tile [0, total_rows) exactly: every row
///     owned by exactly one shard, in append order.
enum class ViolationKind : uint8_t {
  kDuplicateCodeword,
  kCodewordOutOfWidth,
  kInverseMapMismatch,
  kReservedCodeAssigned,
  kRetrievalFunctionMismatch,
  kSelectionNotWellDefined,
  kBitmapLengthMismatch,
  kBitmapTailDirty,
  kRleRunSumMismatch,
  kEwahFormatMismatch,
  kPersistedBitmapCorrupt,
  kShardPartitionMismatch,
  kClusterPartitionMismatch,
};

/// Short stable name, e.g. "DuplicateCodeword".
const char* ViolationKindName(ViolationKind kind);

/// One broken invariant: the kind, the entity it anchors to (ValueId,
/// slice/bucket ordinal, shard number — context-dependent) and a
/// human-readable account.
struct Violation {
  ViolationKind kind;
  size_t entity = 0;
  std::string detail;
};

/// Outcome of an audit pass. `checks_run` counts individual invariant
/// checks so a clean report on an empty structure is distinguishable from
/// a pass that checked nothing.
struct AuditReport {
  std::vector<Violation> violations;
  size_t checks_run = 0;

  [[nodiscard]] bool clean() const { return violations.empty(); }
  [[nodiscard]] bool Has(ViolationKind kind) const;
  [[nodiscard]] size_t CountOf(ViolationKind kind) const;

  /// Folds another report into this one.
  void Merge(AuditReport other);

  /// One line per violation plus a summary header; for test failures and
  /// the shell's `audit` command.
  std::string ToString() const;
};

/// Debug/verify-mode structural auditor for the paper's invariants.
///
/// The high-level entry points (AuditIndex, AuditShardedIndex,
/// AuditMapping) walk real structures through the SecondaryIndex audit
/// hooks; the raw-part overloads (AuditMappingParts, AuditRleRuns,
/// AuditEwahWords, AuditPersistedBitmap) exist so tests can seed known-bad
/// inputs that the constructing APIs themselves reject.
class InvariantAuditor {
 public:
  /// Audits raw mapping parts: codeword distinctness (including the
  /// reserved codewords), width fit, and reserved-code liveness (a live
  /// value occupying the void/NULL codeword, e.g. code 0 under Theorem
  /// 2.1's recommended reservation).
  static AuditReport AuditMappingParts(
      int width, const std::vector<uint64_t>& codes,
      std::optional<uint64_t> void_code = std::nullopt,
      std::optional<uint64_t> null_code = std::nullopt);

  /// Audits a built MappingTable: the raw-part checks plus inverse-map
  /// consistency (ValueOfCode o CodeOf == identity) and retrieval-function
  /// min-term consistency (f_v == MinTerm(code_v, width), Definition 2.1).
  static AuditReport AuditMapping(const MappingTable& mapping);

  /// Checks Definition 2.5 well-definedness of "A IN subdomain" under
  /// `mapping`. Exact but exponential in |subdomain| (see
  /// encoding/well_defined.h); intended for hand-written IN-lists.
  static AuditReport AuditSelection(const MappingTable& mapping,
                                    const std::vector<ValueId>& subdomain);

  /// Length contract of a plain vector: size == expected_bits, the word
  /// array spans exactly ceil(size / 64) words, and the tail invariant
  /// holds (every padding bit above size() in the last word is zero).
  static AuditReport AuditBitVector(const BitVector& bits,
                                    size_t expected_bits,
                                    size_t ordinal = 0);

  /// Raw tail-invariant contract: audits a bare word array claiming to
  /// hold `declared_bits` bits, so tests can seed padding-bit corruption
  /// that BitVector's own mutators always mask away.
  static AuditReport AuditBitVectorWords(const std::vector<uint64_t>& words,
                                         size_t declared_bits,
                                         size_t ordinal = 0);

  /// Length + compressed-form contracts of a stored bitmap in any
  /// physical format (plain / RLE run-sum / EWAH marker decode).
  static AuditReport AuditStoredBitmap(const StoredBitmap& bitmap,
                                       size_t expected_bits,
                                       size_t ordinal = 0);

  /// Raw RLE contract: alternating runs must sum to `declared_bits`.
  static AuditReport AuditRleRuns(const std::vector<uint32_t>& runs,
                                  size_t declared_bits, size_t ordinal = 0);

  /// Raw EWAH contract: `words` must decode to exactly
  /// ceil(declared_bits / 64) words (EwahBitmap::FromWords).
  static AuditReport AuditEwahWords(const std::vector<uint64_t>& words,
                                    size_t declared_bits,
                                    size_t ordinal = 0);

  /// Reads one persisted StoredBitmap from `in` (index/persistence.h
  /// format) and audits it: truncated or format-mismatched streams report
  /// kPersistedBitmapCorrupt, a loadable bitmap of the wrong length
  /// reports kBitmapLengthMismatch.
  static AuditReport AuditPersistedBitmap(std::istream& in,
                                          size_t expected_bits);

  /// Audits one index against the table it is bound to: every vector the
  /// audit hooks surface (length + compressed form), the mapping table if
  /// the family has one, and — for cold indexes — every slice fetched
  /// back from the backing store. `expected_rows` is the table's row
  /// count. Non-const because cold-store fetches go through the LRU pool.
  static AuditReport AuditIndex(SecondaryIndex& index, size_t expected_rows);

  /// Audits a ShardedIndex: each shard as a full index against its own
  /// segment's row count, plus the partition contract that the shard row
  /// counts sum to `expected_rows` of the source table.
  static AuditReport AuditShardedIndex(ShardedIndex& index,
                                       size_t expected_rows);

  /// Audits a cluster placement's raw global-row-id maps
  /// (serve/cluster's ShardRouter::Placement::shard_rows, passed as raw
  /// parts so the analysis layer needs no serve dependency): the maps
  /// must tile [0, total_rows) exactly — every global id claimed by
  /// exactly one shard, each shard's map strictly increasing (cluster
  /// append order), and the sizes summing to `total_rows`.
  static AuditReport AuditClusterPartition(
      const std::vector<std::vector<uint64_t>>& shard_rows,
      uint64_t total_rows);
};

}  // namespace ebi

#endif  // EBI_ANALYSIS_AUDITOR_H_
