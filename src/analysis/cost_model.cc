#include "analysis/cost_model.h"

#include <algorithm>
#include <cmath>

#include "boolean/cover.h"
#include "util/bit_util.h"

namespace ebi {

int CeWorst(size_t m) { return Log2Ceil(m); }

namespace {

int ReducedPrefixCost(size_t delta, size_t m, bool with_dontcares) {
  if (delta == 0) {
    return 0;
  }
  delta = std::min(delta, m);
  const int k = Log2Ceil(m);
  std::vector<uint64_t> onset(delta);
  for (size_t i = 0; i < delta; ++i) {
    onset[i] = i;
  }
  const uint64_t space = uint64_t{1} << k;
  std::vector<uint64_t> dontcare;
  if (with_dontcares) {
    dontcare.reserve(space - m);
    for (uint64_t c = m; c < space; ++c) {
      dontcare.push_back(c);
    }
  }
  ReductionOptions options;
  options.exact_max_terms = space;  // Always exact for model curves.
  const Cover cover = ReduceRetrievalFunction(onset, dontcare, k, options);
  return DistinctVariables(cover);
}

}  // namespace

int CeBest(size_t delta, size_t m) {
  return ReducedPrefixCost(delta, m, /*with_dontcares=*/false);
}

int CeBestWithDontCares(size_t delta, size_t m) {
  return ReducedPrefixCost(delta, m, /*with_dontcares=*/true);
}

double CrossoverDelta(size_t m) {
  return std::log2(static_cast<double>(m)) + 1.0;
}

double SimpleBitmapBytes(size_t n, size_t m) {
  return static_cast<double>(n) * static_cast<double>(m) / 8.0;
}

double EncodedBitmapBytes(size_t n, size_t m) {
  return static_cast<double>(n) * CeWorst(m) / 8.0;
}

double BTreeBytes(size_t n, size_t page_size, size_t degree) {
  return 1.44 * static_cast<double>(n) / static_cast<double>(degree) *
         static_cast<double>(page_size);
}

double BitmapVsBTreeCrossoverCardinality(size_t page_size, size_t degree) {
  return 11.52 * static_cast<double>(page_size) /
         static_cast<double>(degree);
}

size_t EncodedBitmapVectors(size_t m) {
  return static_cast<size_t>(Log2Ceil(m));
}

double SimpleBuildCost(size_t n, size_t m) {
  return static_cast<double>(n) * static_cast<double>(m);
}

double EncodedBuildCost(size_t n, size_t m) {
  return static_cast<double>(n) * CeWorst(m);
}

double BTreeBuildCost(size_t n, size_t m, size_t page_size, size_t degree) {
  const double half_degree = static_cast<double>(degree) / 2.0;
  const double traverse =
      std::log(std::max<double>(2.0, static_cast<double>(m))) /
      std::log(half_degree);
  const double leaf_insert =
      std::log2(static_cast<double>(page_size) / 4.0);
  return static_cast<double>(n) * (traverse + leaf_insert);
}

double BestToWorstAreaRatio(size_t m, size_t step) {
  const int worst = CeWorst(m);
  if (worst == 0 || m == 0) {
    return 1.0;
  }
  double best_area = 0.0;
  double worst_area = 0.0;
  size_t samples = 0;
  for (size_t delta = 1; delta <= m; delta += step) {
    best_area += CeBest(delta, m);
    worst_area += worst;
    ++samples;
  }
  (void)samples;
  return worst_area == 0.0 ? 1.0 : best_area / worst_area;
}

double PeakSaving(size_t m, size_t step) {
  const int worst = CeWorst(m);
  if (worst == 0) {
    return 0.0;
  }
  double peak = 0.0;
  for (size_t delta = 1; delta <= m; delta += step) {
    const double saving =
        1.0 - static_cast<double>(CeBest(delta, m)) / worst;
    peak = std::max(peak, saving);
  }
  // The peak falls on a power of two (a full subcube reduces to one
  // literal); make sure subsampling cannot miss it.
  for (size_t delta = 1; delta <= m; delta *= 2) {
    const double saving =
        1.0 - static_cast<double>(CeBest(delta, m)) / worst;
    peak = std::max(peak, saving);
  }
  return peak;
}

}  // namespace ebi
