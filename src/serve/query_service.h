#ifndef EBI_SERVE_QUERY_SERVICE_H_
#define EBI_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/workload_recorder.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "serve/snapshot.h"
#include "storage/engine/wal.h"
#include "storage/table.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ebi {
namespace serve {

/// Production-telemetry knobs (DESIGN.md §11), fixed at construction.
/// With `enabled` false the serve path keeps only its always-on stage
/// histograms and counters — no sampling draw, no ring, no recorder —
/// which is the "no sink" baseline BENCH_obs_overhead compares against.
struct ServeTelemetryOptions {
  /// Master switch for sampling, the slow-query log and the workload
  /// recorder.
  bool enabled = false;
  /// Fraction of requests whose trace is captured into the ring
  /// (deterministic, see obs::TraceSampler). 0 disables sampling while
  /// keeping the slow-query log and recorder live.
  double sample_rate = 0.01;
  /// Completed-trace ring capacity (most recent captures win).
  size_t trace_ring_capacity = 256;
  /// Requests at or above this end-to-end latency enter the slow-query
  /// log unconditionally — sampled or not.
  double slow_threshold_ms = 100.0;
  size_t slow_log_capacity = 64;
  /// When non-empty, every executed query appends one JSONL record here
  /// (obs::WorkloadRecorder; rotation per workload_options).
  std::string workload_log_path;
  obs::WorkloadRecorderOptions workload_options;
  /// Every N completed requests one worker flushes the metrics registry
  /// to `export_path_prefix`.prom/.json (best-effort, try-lock — workers
  /// never queue behind an export). 0 disables the periodic flush;
  /// ExportTelemetry() can always be called directly.
  size_t export_every = 0;
  std::string export_path_prefix;
};

/// Service-wide knobs, fixed at construction.
struct ServeOptions {
  /// Workers in the service-owned request pool.
  size_t worker_threads = 2;
  /// Admission bound: selections queued or running. One past this and
  /// Submit sheds with kOverloaded instead of queueing.
  size_t queue_depth = 64;
  /// Deadline applied to requests that do not carry their own; 0 = none.
  double default_deadline_ms = 0.0;
  /// Concurrent-reader capacity of the snapshot manager. Keep at least
  /// queue_depth + appenders; Acquire spins when all slots are claimed.
  size_t reader_slots = SnapshotManager::kDefaultReaderSlots;
  /// Forwarded to SnapshotOptions: > 0 serves through sharded snapshots.
  size_t segment_rows = 0;
  /// Pool sharded evaluation fans out on. Must be a different pool from
  /// the service's own (requests run on pool workers, and a nested
  /// ParallelFor on the running pool deadlocks); required iff
  /// segment_rows > 0.
  exec::ThreadPool* shard_pool = nullptr;
  /// Production telemetry (sampled tracing, slow-query log, workload
  /// recorder, periodic exporter).
  ServeTelemetryOptions telemetry;
  /// Durable serve mode (DESIGN.md §12): when non-empty, every combined
  /// append batch is written to this WAL — append + fsync — *before* the
  /// new snapshot publishes, and Start() replays committed batches from
  /// it onto the base table. WAL durability is the commit point: a batch
  /// whose WAL write succeeded survives a crash even if the process dies
  /// before the publish.
  std::string wal_path;
  /// fsync the WAL on every append (group-commit callers may turn this
  /// off and rely on the Shutdown sync, trading tail durability away).
  bool wal_sync_on_append = true;
  /// Fault injection for crash-recovery tests: forwarded to
  /// engine::WalOptions::fail_after_appends.
  uint64_t wal_fail_after_appends = 0;
};

/// Per-request knobs.
struct RequestOptions {
  /// Deadline measured from submission. Unset: the service default
  /// applies. <= 0: already expired (tests use 0 for a deterministic
  /// kDeadlineExceeded). The deadline is checked when a worker picks the
  /// request up — a request that started in time is never cancelled
  /// mid-query.
  std::optional<double> deadline_ms;
  /// When set, the request's serve.request span tree is recorded here
  /// (the EXPLAIN path through the service).
  obs::QueryTrace* trace = nullptr;
};

/// What a completed selection hands back.
struct ServeResult {
  SelectionResult selection;
  /// Epoch of the snapshot the query ran against.
  uint64_t epoch = 0;
  /// Time spent queued before a worker picked the request up.
  double queue_ms = 0.0;
  /// Time spent executing.
  double run_ms = 0.0;
};

/// Async completion handle for one submitted request. Wait() blocks until
/// the worker finishes (or the request is shed post-admission) and may be
/// called repeatedly; the outcome is retained.
class ServeTicket {
 public:
  Result<ServeResult> Wait();

  /// Bounded wait: the outcome if the request resolved within
  /// `timeout_ms`, nullopt on timeout (the request keeps running — the
  /// cluster gather uses this to decide when to hedge, then comes back
  /// for the straggler). A non-positive timeout polls.
  std::optional<Result<ServeResult>> WaitFor(double timeout_ms);

 private:
  friend class QueryService;
  void Complete(Result<ServeResult> outcome);

  Mutex mu_{lock_rank::kServeTicket, "ServeTicket::mu_"};
  CondVar cv_;
  std::optional<Result<ServeResult>> outcome_ EBI_GUARDED_BY(mu_);
};

/// Concurrent query service over one table: multiplexes selections across
/// a thread pool, isolates every request on a pinned immutable snapshot,
/// and funnels appends through a single-writer combining pipeline that
/// publishes new snapshots copy-on-write (DESIGN.md §9).
///
/// Readers never block on the writer and the writer never blocks on
/// readers: a publish swaps one pointer, and superseded snapshots are
/// reclaimed by epoch once their last pin drops.
class QueryService {
 public:
  explicit QueryService(const ServeOptions& options = ServeOptions());
  /// Drains in-flight work (Shutdown) before tearing down.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Takes ownership of `table`, builds the serving indexes and publishes
  /// the initial snapshot at epoch 0. Must be called (once) before any
  /// Submit/Append. In durable mode (ServeOptions::wal_path) the WAL is
  /// replayed first: committed row batches not yet reflected in `table`
  /// are re-applied, so the initial snapshot equals the pre-crash
  /// committed state. Replay is idempotent — batches whose rows the base
  /// table already contains are skipped by their first_row key.
  Status Start(std::unique_ptr<Table> table, std::vector<IndexSpec> specs);

  /// Admits a conjunctive selection. Sheds with kOverloaded when the
  /// queue is full, kFailedPrecondition before Start or while draining.
  /// The returned ticket resolves to the result, kDeadlineExceeded, or
  /// the executor's error.
  Result<std::shared_ptr<ServeTicket>> Submit(
      std::vector<Predicate> predicates,
      const RequestOptions& options = RequestOptions());

  /// Submit + Wait. Blocks the calling thread, not a pool worker.
  Result<ServeResult> Select(
      const std::vector<Predicate>& predicates,
      const RequestOptions& options = RequestOptions());

  /// Appends `rows` atomically and returns the epoch whose snapshot first
  /// contains them. Blocks until published. Concurrent appenders combine:
  /// one caller becomes the writer, applies every staged batch onto one
  /// table clone and publishes once. Rows are validated against the
  /// schema up front so one bad batch cannot poison the others.
  Result<uint64_t> Append(std::vector<std::vector<Value>> rows);

  /// Stops admission and blocks until every admitted request completed
  /// and every staged append published. Idempotent; also run by the
  /// destructor.
  Status Shutdown();

  /// Epoch of the currently published snapshot.
  uint64_t CurrentEpoch() const { return snapshots_.CurrentEpoch(); }
  /// Row count of each published epoch, indexed by epoch — the ground
  /// truth stress tests check reader-visible counts against.
  std::vector<size_t> PublishedRowCounts() const;
  /// Selections admitted but not yet completed.
  size_t InFlight() const {
    return in_flight_.load(std::memory_order_seq_cst);
  }
  /// Direct access for tests (pinning across publishes, reclaim counts).
  SnapshotManager& snapshots() { return snapshots_; }
  /// The write-ahead log, or nullptr outside durable mode.
  engine::Wal* wal() { return wal_.get(); }

  /// Telemetry sinks; nullptr when telemetry is disabled (and the
  /// recorder also when no workload_log_path was configured).
  obs::TraceRing* trace_ring() { return trace_ring_.get(); }
  obs::SlowQueryLog* slow_log() { return slow_log_.get(); }
  obs::WorkloadRecorder* workload_recorder() {
    return workload_recorder_.get();
  }

  /// Writes the global metrics registry to
  /// `<export_path_prefix>.prom` (Prometheus text exposition) and
  /// `<export_path_prefix>.json` (RenderJson with quantiles), and
  /// flushes the workload recorder. Requires a configured
  /// export_path_prefix. Also runs periodically when export_every > 0,
  /// and once during Shutdown.
  Status ExportTelemetry();

 private:
  struct StagedAppend {
    std::vector<std::vector<Value>> rows;
    uint64_t ticket = 0;
  };
  struct AppendOutcome {
    uint64_t epoch = 0;
    Status status = Status::OK();
  };

  void RunRequest(std::shared_ptr<ServeTicket> ticket,
                  std::vector<Predicate> predicates, obs::QueryTrace* trace,
                  std::chrono::steady_clock::time_point submitted,
                  std::optional<std::chrono::steady_clock::time_point>
                      deadline);
  /// Decrements in_flight_ and wakes Shutdown at zero.
  void FinishRequest();
  /// Periodic flush: every export_every completions one worker wins the
  /// try-lock and exports; the rest skip (telemetry must never queue the
  /// serve path behind file I/O).
  void MaybeExportTelemetry() EBI_EXCLUDES(export_mu_);
  /// Export body.
  Status ExportTelemetryLocked() EBI_REQUIRES(export_mu_);
  /// Arity/type check against the (immutable) schema of `table`.
  static Status ValidateRows(const Table& table,
                             const std::vector<std::vector<Value>>& rows);
  /// Durable-mode recovery: replays committed WAL row batches onto the
  /// base table (skipping those it already contains) and opens the WAL
  /// for appending. Called by Start before the initial snapshot is built.
  Status RecoverFromWal(Table& table);
  /// One combining-writer round: pins the current snapshot, makes the
  /// batch WAL-durable, clones + publishes the successor, and reports the
  /// new epoch through `next_epoch`. Runs *without* append_mu_ — the
  /// writer loop in Append releases the lock around each round so staging
  /// never queues behind a publish.
  Status CombineAndPublish(std::vector<StagedAppend>& batch,
                           uint64_t* next_epoch) EBI_EXCLUDES(append_mu_);

  const ServeOptions options_;
  SnapshotManager snapshots_
      EBI_UNGUARDED("RCU-style: internally synchronized (atomics + its own "
                    "retire mutex)");
  /// Claimed by the first Start call; started_ flips only once the
  /// initial snapshot is published.
  std::atomic<bool> start_guard_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  /// Reclaims already forwarded to the snapshots-reclaimed counter.
  std::atomic<uint64_t> reclaim_reported_{0};

  std::atomic<size_t> in_flight_{0};
  Mutex drain_mu_{lock_rank::kQueryServiceDrain, "QueryService::drain_mu_"};
  CondVar drain_cv_;

  // Append pipeline state, all under append_mu_.
  Mutex append_mu_{lock_rank::kQueryServiceAppend,
                   "QueryService::append_mu_"};
  CondVar append_cv_;
  std::vector<StagedAppend> staged_ EBI_GUARDED_BY(append_mu_);
  uint64_t next_append_ticket_ EBI_GUARDED_BY(append_mu_) = 0;
  bool writer_active_ EBI_GUARDED_BY(append_mu_) = false;
  std::unordered_map<uint64_t, AppendOutcome> append_outcomes_
      EBI_GUARDED_BY(append_mu_);

  mutable Mutex published_mu_{lock_rank::kQueryServicePublished,
                              "QueryService::published_mu_"};
  std::vector<size_t> published_row_counts_ EBI_GUARDED_BY(published_mu_);

  /// Write-ahead log; non-null only in durable mode. The combiner is the
  /// sole appender (single-writer), so Append ordering matches publish
  /// ordering.
  std::unique_ptr<engine::Wal> wal_
      EBI_UNGUARDED("set once in Start before any Append can run; the Wal "
                    "serializes itself internally");

  // Telemetry sinks (null when ServeTelemetryOptions::enabled is false).
  // All four are created in the constructor and internally synchronized
  // (atomics or their own locks), so the serve path reads the pointers
  // without a guard.
  std::unique_ptr<obs::TraceSampler> sampler_
      EBI_UNGUARDED("constructed before the pool; internally atomic");
  std::unique_ptr<obs::TraceRing> trace_ring_
      EBI_UNGUARDED("constructed before the pool; per-slot locks inside");
  std::unique_ptr<obs::SlowQueryLog> slow_log_
      EBI_UNGUARDED("constructed before the pool; per-slot locks inside");
  std::unique_ptr<obs::WorkloadRecorder> workload_recorder_
      EBI_UNGUARDED("constructed before the pool; has its own mutex");
  /// Completed requests (any outcome); drives the periodic export.
  std::atomic<uint64_t> completed_{0};
  /// Workload-recorder rotations already forwarded to the rotation
  /// counter.
  std::atomic<uint64_t> rotations_reported_{0};
  Mutex export_mu_{lock_rank::kQueryServiceExport,
                   "QueryService::export_mu_"};

  /// Last member: destroyed first, so tasks still draining during
  /// destruction see every other member alive.
  exec::ThreadPool pool_
      EBI_UNGUARDED("internally synchronized worker pool");
};

}  // namespace serve
}  // namespace ebi

#endif  // EBI_SERVE_QUERY_SERVICE_H_
