#ifndef EBI_SERVE_CLUSTER_SHARD_ROUTER_H_
#define EBI_SERVE_CLUSTER_SHARD_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "query/predicate.h"
#include "serve/cluster/partitioner.h"
#include "storage/column.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ebi {
namespace serve {
namespace cluster {

/// Routes rows and selections to the shards that own them.
///
/// The router carries two responsibilities (DESIGN.md §14):
///
///  1. **Row routing.** `RouteAppend` splits a batch of rows into
///     per-shard sub-batches by the partition key and assigns each row a
///     *global* row id (its position in cluster append order). The
///     per-shard id maps are the cluster's merge metadata: a shard-local
///     result bit `i` on shard `s` names global row
///     `placement->shard_rows[s][i]`, which is how scatter-gather
///     reassembles a BitVector bit-identical to the single-service path.
///  2. **Fan-out pruning.** `OwningShards` narrows a conjunctive
///     selection to the shards whose key ranges the partition-key
///     predicates can touch. Predicates on other columns never prune
///     (any shard may hold matching rows).
///
/// Placement snapshots are copy-on-write: `RouteAppend` builds a new
/// Placement and swaps one shared_ptr under `mu_`; readers grab the
/// pointer and never block appenders. NULL partition keys are pinned to
/// shard 0 so the tiling stays total.
class ShardRouter {
 public:
  /// Per-shard global-row-id maps at one moment in cluster append order.
  /// Immutable once published.
  struct Placement {
    /// shard_rows[s][i] = global row id of shard s's local row i.
    std::vector<std::vector<uint64_t>> shard_rows;
    /// Total rows routed so far (== sum of shard_rows sizes).
    uint64_t total_rows = 0;
  };

  /// One routed append batch: rows regrouped by owning shard, in the
  /// original batch's relative order within each shard.
  struct RoutedBatch {
    std::vector<std::vector<std::vector<Value>>> per_shard_rows;
  };

  ShardRouter(std::unique_ptr<Partitioner> partitioner,
              std::string key_column);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  [[nodiscard]] const Partitioner& partitioner() const {
    return *partitioner_;
  }
  [[nodiscard]] const std::string& key_column() const { return key_column_; }
  [[nodiscard]] size_t shards() const { return partitioner_->shards(); }

  /// Shard owning a partition-key value. NULL keys pin to shard 0;
  /// string keys are rejected by RouteAppend before they reach here.
  [[nodiscard]] size_t ShardOfKey(const Value& key) const;

  /// Splits `rows` by owning shard and publishes the extended placement.
  /// `key_index` is the partition-key column's position in each row.
  /// Callers must serialize RouteAppend invocations (ClusterQueryService
  /// holds its kClusterAppend mutex across the route + shard fan-out so
  /// global id order equals publish order on every shard).
  ///
  /// The placement publishes *before* any shard sees the rows: a shard
  /// result observed later can only be a prefix of the id map, never
  /// longer, which MergeShardResult relies on.
  Result<RoutedBatch> RouteAppend(
      const std::vector<std::vector<Value>>& rows, size_t key_index);

  /// Current placement snapshot (never null; starts empty).
  [[nodiscard]] std::shared_ptr<const Placement> placement() const;

  /// Shards a conjunctive selection must visit: the intersection over
  /// partition-key predicates of each one's owning set, or every shard
  /// when no key predicate narrows it. Sorted ascending; may be empty
  /// (a contradictory conjunction visits no shard at all).
  [[nodiscard]] std::vector<size_t> OwningShards(
      const std::vector<Predicate>& predicates) const;

 private:
  const std::unique_ptr<const Partitioner> partitioner_;
  const std::string key_column_;

  mutable Mutex mu_{lock_rank::kClusterRouter, "ShardRouter::mu_"};
  std::shared_ptr<const Placement> placement_ EBI_GUARDED_BY(mu_);
};

}  // namespace cluster
}  // namespace serve
}  // namespace ebi

#endif  // EBI_SERVE_CLUSTER_SHARD_ROUTER_H_
