#include "serve/cluster/cluster_service.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace ebi {
namespace serve {
namespace cluster {

namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Statuses a shard can return that mean "not now" rather than "wrong":
/// eligible for hedging and, under kPartial, for a coverage-masked miss.
/// Hard errors (bad predicate, internal fault) always fail the query.
bool IsUnavailable(StatusCode code) {
  return code == StatusCode::kOverloaded ||
         code == StatusCode::kDeadlineExceeded;
}

/// Polling granularity while a primary and its hedge race: fine enough
/// not to smear sub-ms wins, coarse enough to stay off the profile.
constexpr double kRaceSliceMs = 0.25;

// Metric handles, cached per the registry's hot-path contract.
obs::Counter* QueriesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricClusterQueries);
  return counter;
}
obs::Counter* FanoutCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricClusterFanout);
  return counter;
}
obs::Counter* HedgeIssuedCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      obs::kMetricClusterHedgeIssued);
  return counter;
}
obs::Counter* HedgeWonCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricClusterHedgeWon);
  return counter;
}
obs::Counter* PartialResultsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      obs::kMetricClusterPartialResults);
  return counter;
}
obs::Counter* ShardDeadlineMissCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      obs::kMetricClusterShardDeadlineMiss);
  return counter;
}
obs::Histogram* ShardLatencyHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          obs::kMetricClusterShardLatencyMs,
          obs::MetricsRegistry::LatencyBounds());
  return histogram;
}

/// Derives the per-shard ServeOptions: path-carrying knobs get a
/// ".s<shard>" (replicas ".s<shard>r") suffix so shards never share a
/// WAL, workload log, or export file.
ServeOptions ShardServeOptions(const ServeOptions& base, size_t shard,
                               bool replica) {
  ServeOptions out = base;
  std::string suffix = ".s" + std::to_string(shard) + (replica ? "r" : "");
  if (!out.wal_path.empty()) {
    out.wal_path += suffix;
  }
  if (!out.telemetry.workload_log_path.empty()) {
    out.telemetry.workload_log_path += suffix;
  }
  if (!out.telemetry.export_path_prefix.empty()) {
    out.telemetry.export_path_prefix += suffix;
  }
  return out;
}

}  // namespace

ClusterQueryService::ClusterQueryService(ClusterOptions options)
    : options_(std::move(options)) {}

ClusterQueryService::~ClusterQueryService() { Shutdown().IgnoreError(); }

Status ClusterQueryService::Start(std::unique_ptr<Table> table,
                                  std::vector<IndexSpec> specs) {
  if (started_.load(std::memory_order_seq_cst)) {
    return Status::FailedPrecondition("cluster already started");
  }
  if (options_.shards == 0) {
    return Status::InvalidArgument("cluster needs at least one shard");
  }
  if (options_.hedge && !options_.replicate) {
    return Status::InvalidArgument(
        "hedging requires replicas (ClusterOptions::replicate)");
  }
  if (options_.shard_deadline_fraction <= 0.0 ||
      options_.shard_deadline_fraction > 1.0) {
    return Status::InvalidArgument(
        "shard_deadline_fraction must be in (0, 1]");
  }
  if (table == nullptr) {
    return Status::InvalidArgument("cluster Start needs a table");
  }
  EBI_ASSIGN_OR_RETURN(size_t key_index,
                       table->ColumnIndex(options_.key_column));
  if (table->column(key_index).type() != Column::Type::kInt64) {
    return Status::InvalidArgument("partition key column '" +
                                   options_.key_column +
                                   "' must be int64");
  }
  for (size_t r = 0; r < table->NumRows(); ++r) {
    if (!table->RowExists(r)) {
      return Status::FailedPrecondition(
          "cluster Start cannot partition a table with deleted rows (a "
          "void slot has no owning shard)");
    }
  }

  EBI_ASSIGN_OR_RETURN(
      std::unique_ptr<Partitioner> partitioner,
      MakePartitioner(options_.partition, options_.shards,
                      options_.split_points));
  router_ =
      std::make_unique<ShardRouter>(std::move(partitioner),
                                    options_.key_column);
  key_index_ = key_index;
  schema_.clear();
  schema_.reserve(table->NumColumns());
  for (size_t c = 0; c < table->NumColumns(); ++c) {
    schema_.push_back(table->column(c).type());
  }

  // Materialize rows in table order: row r becomes global id r, so the
  // merged cluster bitmap lines up with a single service on `table`.
  std::vector<std::vector<Value>> rows;
  rows.reserve(table->NumRows());
  for (size_t r = 0; r < table->NumRows(); ++r) {
    std::vector<Value> row;
    row.reserve(table->NumColumns());
    for (size_t c = 0; c < table->NumColumns(); ++c) {
      row.push_back(table->column(c).ValueAt(r));
    }
    rows.push_back(std::move(row));
  }

  MutexLock lock(append_mu_);
  EBI_ASSIGN_OR_RETURN(ShardRouter::RoutedBatch routed,
                       router_->RouteAppend(rows, key_index_));

  primaries_.resize(options_.shards);
  if (options_.replicate) {
    replicas_.resize(options_.shards);
  }
  for (size_t s = 0; s < options_.shards; ++s) {
    const std::string shard_name =
        table->name() + ".shard" + std::to_string(s);
    auto build_table = [&]() -> Result<std::unique_ptr<Table>> {
      auto shard_table = std::make_unique<Table>(shard_name);
      for (size_t c = 0; c < table->NumColumns(); ++c) {
        EBI_RETURN_IF_ERROR(shard_table->AddColumn(
            table->column(c).name(), table->column(c).type()));
      }
      for (const auto& row : routed.per_shard_rows[s]) {
        EBI_RETURN_IF_ERROR(shard_table->AppendRow(row));
      }
      return shard_table;
    };

    primaries_[s] = std::make_unique<QueryService>(
        ShardServeOptions(options_.shard_options, s, /*replica=*/false));
    EBI_ASSIGN_OR_RETURN(std::unique_ptr<Table> primary_table,
                         build_table());
    EBI_RETURN_IF_ERROR(primaries_[s]->Start(std::move(primary_table),
                                             specs));
    if (options_.replicate) {
      replicas_[s] = std::make_unique<QueryService>(
          ShardServeOptions(options_.replica_options, s, /*replica=*/true));
      EBI_ASSIGN_OR_RETURN(std::unique_ptr<Table> replica_table,
                           build_table());
      EBI_RETURN_IF_ERROR(replicas_[s]->Start(std::move(replica_table),
                                              specs));
    }
  }
  started_.store(true, std::memory_order_seq_cst);
  return Status::OK();
}

Result<ClusterResult> ClusterQueryService::Select(
    const std::vector<Predicate>& predicates,
    const RequestOptions& options) {
  if (!started_.load(std::memory_order_seq_cst)) {
    return Status::FailedPrecondition("cluster not started");
  }
  if (poisoned_.load(std::memory_order_seq_cst)) {
    return Status::FailedPrecondition(
        "cluster degraded: a shard append failed after routing");
  }
  QueriesCounter()->Increment();

  const Clock::time_point start = Clock::now();
  std::optional<TimePoint> deadline;
  if (options.deadline_ms.has_value()) {
    // Mirror the per-service admission fix: expired on arrival means no
    // shard is ever contacted.
    if (*options.deadline_ms <= 0.0) {
      return Status::DeadlineExceeded(
          "cluster deadline already expired on arrival");
    }
    deadline = start + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               *options.deadline_ms));
  }

  const std::vector<size_t> owners = router_->OwningShards(predicates);
  FanoutCounter()->Increment(owners.size());

  // Scatter: submit to every owning shard's primary up front (Submit is
  // non-blocking), so shards execute concurrently on their own pools
  // while the gather below walks them in order.
  std::vector<ShardCall> calls;
  calls.reserve(owners.size());
  for (size_t s : owners) {
    ShardCall call;
    call.shard = s;
    call.submitted = Clock::now();
    RequestOptions shard_options;
    if (deadline.has_value()) {
      const double remaining = MsBetween(call.submitted, *deadline);
      shard_options.deadline_ms =
          std::max(0.0, remaining) * options_.shard_deadline_fraction;
    }
    auto submitted = primaries_[s]->Submit(predicates, shard_options);
    if (submitted.ok()) {
      call.primary = std::move(submitted).value();
    } else {
      call.submit_status = submitted.status();
    }
    calls.push_back(std::move(call));
  }

  ClusterResult out;
  out.visited_shards = owners;
  std::vector<std::optional<ServeResult>> responses;
  responses.reserve(calls.size());
  for (ShardCall& call : calls) {
    auto [outcome, response] = GatherShard(predicates, call, deadline);
    responses.push_back(std::move(response));
    out.outcomes.push_back(std::move(outcome));
  }

  // Classify misses; a hard error fails the query under either policy.
  for (size_t i = 0; i < out.outcomes.size(); ++i) {
    const ShardOutcome& outcome = out.outcomes[i];
    if (responses[i].has_value()) {
      continue;
    }
    if (!IsUnavailable(outcome.status.code())) {
      return outcome.status;
    }
    if (options_.partial_policy == PartialResultPolicy::kFail) {
      return outcome.status;
    }
    out.missing_shards.push_back(outcome.shard);
  }
  if (!out.missing_shards.empty()) {
    out.partial = true;
    PartialResultsCounter()->Increment();
  }

  // Merge, against the placement as of now: every shard response was
  // produced before this read, so each shard's global-id map covers all
  // of its local rows (maps extend before shard rows publish).
  std::shared_ptr<const ShardRouter::Placement> placement =
      router_->placement();
  out.total_rows = placement->total_rows;
  out.selection.rows = BitVector(placement->total_rows);
  out.coverage = BitVector(placement->total_rows, true);
  for (size_t shard : out.missing_shards) {
    for (uint64_t global : placement->shard_rows[shard]) {
      out.coverage.Reset(static_cast<size_t>(global));
    }
  }
  for (size_t i = 0; i < responses.size(); ++i) {
    if (!responses[i].has_value()) {
      continue;
    }
    const ServeResult& shard_result = *responses[i];
    const std::vector<uint64_t>& map =
        placement->shard_rows[out.outcomes[i].shard];
    shard_result.selection.rows.ForEachSetBit([&](size_t local) {
      if (local < map.size()) {
        out.selection.rows.Set(static_cast<size_t>(map[local]));
      }
    });
    out.selection.io.vectors_read += shard_result.selection.io.vectors_read;
    out.selection.io.pages_read += shard_result.selection.io.pages_read;
    out.selection.io.bytes_read += shard_result.selection.io.bytes_read;
    out.selection.io.nodes_read += shard_result.selection.io.nodes_read;
    out.selection.io.bytes_written +=
        shard_result.selection.io.bytes_written;
    out.selection.io.pages_written +=
        shard_result.selection.io.pages_written;
    if (out.selection.predicate_stats.empty()) {
      out.selection.predicate_stats = shard_result.selection.predicate_stats;
    } else if (shard_result.selection.predicate_stats.size() ==
               out.selection.predicate_stats.size()) {
      for (size_t p = 0; p < out.selection.predicate_stats.size(); ++p) {
        out.selection.predicate_stats[p].rows +=
            shard_result.selection.predicate_stats[p].rows;
      }
    }
  }
  out.selection.count = out.selection.rows.Count();
  return out;
}

std::pair<ShardOutcome, std::optional<ServeResult>>
ClusterQueryService::GatherShard(const std::vector<Predicate>& predicates,
                                 ShardCall& call,
                                 std::optional<TimePoint> deadline) {
  ShardOutcome out;
  out.shard = call.shard;
  QueryService* replica_service =
      (options_.hedge && options_.replicate) ? replicas_[call.shard].get()
                                             : nullptr;

  std::optional<Result<ServeResult>> primary_outcome;
  std::optional<Result<ServeResult>> hedge_outcome;
  std::shared_ptr<ServeTicket> hedge_ticket;
  bool hedge_resolved_first = false;

  if (call.primary == nullptr) {
    primary_outcome = Result<ServeResult>(call.submit_status);
  }

  const auto past_deadline = [&]() {
    return deadline.has_value() && Clock::now() >= *deadline;
  };

  // Phase 1: wait on the primary until it resolves, the hedge point
  // passes, or the cluster deadline expires.
  if (call.primary != nullptr) {
    if (replica_service != nullptr) {
      TimePoint hedge_at =
          call.submitted +
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double, std::milli>(
                  CurrentHedgeDelayMs()));
      if (deadline.has_value() && *deadline < hedge_at) {
        hedge_at = *deadline;
      }
      const double wait_ms = MsBetween(Clock::now(), hedge_at);
      primary_outcome = call.primary->WaitFor(std::max(0.0, wait_ms));
    } else if (deadline.has_value()) {
      const double wait_ms = MsBetween(Clock::now(), *deadline);
      primary_outcome = call.primary->WaitFor(std::max(0.0, wait_ms));
    } else {
      primary_outcome = call.primary->Wait();
    }
  }

  // Phase 2: hedge when the primary is still out (past the delay) or
  // came back unavailable — the replica may hold the answer the primary
  // cannot produce in time.
  const bool primary_unavailable =
      primary_outcome.has_value() && !(*primary_outcome).ok() &&
      IsUnavailable((*primary_outcome).status().code());
  if (replica_service != nullptr &&
      (!primary_outcome.has_value() || primary_unavailable) &&
      !past_deadline()) {
    RequestOptions hedge_options;
    if (deadline.has_value()) {
      hedge_options.deadline_ms =
          std::max(0.0, MsBetween(Clock::now(), *deadline));
    }
    out.hedged = true;
    HedgeIssuedCounter()->Increment();
    auto submitted = replica_service->Submit(predicates, hedge_options);
    if (submitted.ok()) {
      hedge_ticket = std::move(submitted).value();
    } else {
      hedge_outcome = Result<ServeResult>(submitted.status());
    }
  }

  // Phase 3: race the primary and the hedge to the first OK response
  // (bounded by the cluster deadline). Neither is cancelled — the loser
  // finishes on its own pool and its result is dropped.
  while ((call.primary != nullptr && !primary_outcome.has_value()) ||
         (hedge_ticket != nullptr && !hedge_outcome.has_value())) {
    if (past_deadline()) {
      break;
    }
    if (call.primary != nullptr && !primary_outcome.has_value()) {
      primary_outcome = call.primary->WaitFor(kRaceSliceMs);
      if (primary_outcome.has_value() && (*primary_outcome).ok()) {
        break;
      }
    }
    if (hedge_ticket != nullptr && !hedge_outcome.has_value()) {
      hedge_outcome = hedge_ticket->WaitFor(kRaceSliceMs);
      if (hedge_outcome.has_value() && (*hedge_outcome).ok()) {
        hedge_resolved_first = true;
        break;
      }
    }
  }

  out.latency_ms = MsBetween(call.submitted, Clock::now());

  const bool primary_ok =
      primary_outcome.has_value() && (*primary_outcome).ok();
  const bool hedge_ok = hedge_outcome.has_value() && (*hedge_outcome).ok();
  if (hedge_ok && (hedge_resolved_first || !primary_ok)) {
    out.status = Status::OK();
    out.epoch = (*hedge_outcome).value().epoch;
    out.hedge_won = true;
    HedgeWonCounter()->Increment();
    ShardLatencyHistogram()->Observe(out.latency_ms);
    return {out, std::move(*hedge_outcome).value()};
  }
  if (primary_ok) {
    out.status = Status::OK();
    out.epoch = (*primary_outcome).value().epoch;
    ShardLatencyHistogram()->Observe(out.latency_ms);
    return {out, std::move(*primary_outcome).value()};
  }

  // Miss. Prefer the primary's own error; a pure wait-timeout becomes a
  // synthesized deadline miss.
  if (primary_outcome.has_value()) {
    out.status = (*primary_outcome).status();
  } else if (hedge_outcome.has_value()) {
    out.status = (*hedge_outcome).status();
  } else {
    out.status = Status::DeadlineExceeded(
        "shard " + std::to_string(call.shard) +
        " exhausted its deadline budget");
  }
  if (out.status.code() == StatusCode::kDeadlineExceeded) {
    ShardDeadlineMissCounter()->Increment();
  }
  return {out, std::nullopt};
}

Result<uint64_t> ClusterQueryService::Append(
    std::vector<std::vector<Value>> rows) {
  if (!started_.load(std::memory_order_seq_cst)) {
    return Status::FailedPrecondition("cluster not started");
  }
  if (poisoned_.load(std::memory_order_seq_cst)) {
    return Status::FailedPrecondition(
        "cluster degraded: a shard append failed after routing");
  }
  if (rows.empty()) {
    return AppendEpoch();
  }
  // Validate *before* routing: once the placement assigns global ids, a
  // shard-side rejection would leave ids with no backing rows and shift
  // every later local index off its map entry.
  for (const auto& row : rows) {
    if (row.size() != schema_.size()) {
      return Status::InvalidArgument(
          "append row has " + std::to_string(row.size()) +
          " values; table has " + std::to_string(schema_.size()) +
          " columns");
    }
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].is_null()) {
        continue;
      }
      const bool ok_type =
          (schema_[c] == Column::Type::kInt64 &&
           row[c].kind == Value::Kind::kInt64) ||
          (schema_[c] == Column::Type::kString &&
           row[c].kind == Value::Kind::kString);
      if (!ok_type) {
        return Status::InvalidArgument(
            "append value type mismatch in column " + std::to_string(c));
      }
    }
  }

  MutexLock lock(append_mu_);
  EBI_ASSIGN_OR_RETURN(ShardRouter::RoutedBatch routed,
                       router_->RouteAppend(rows, key_index_));
  for (size_t s = 0; s < options_.shards; ++s) {
    if (routed.per_shard_rows[s].empty()) {
      continue;
    }
    auto primary_result = primaries_[s]->Append(routed.per_shard_rows[s]);
    if (!primary_result.ok()) {
      poisoned_.store(true, std::memory_order_seq_cst);
      return primary_result.status();
    }
    if (options_.replicate) {
      auto replica_result =
          replicas_[s]->Append(std::move(routed.per_shard_rows[s]));
      if (!replica_result.ok()) {
        poisoned_.store(true, std::memory_order_seq_cst);
        return replica_result.status();
      }
    }
  }
  return append_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
}

Status ClusterQueryService::Shutdown() {
  Status first_error = Status::OK();
  for (auto& shard : primaries_) {
    if (shard != nullptr) {
      Status status = shard->Shutdown();
      if (!status.ok() && first_error.ok()) {
        first_error = status;
      }
    }
  }
  for (auto& shard : replicas_) {
    if (shard != nullptr) {
      Status status = shard->Shutdown();
      if (!status.ok() && first_error.ok()) {
        first_error = status;
      }
    }
  }
  return first_error;
}

double ClusterQueryService::CurrentHedgeDelayMs() const {
  obs::Histogram* latency = ShardLatencyHistogram();
  if (latency->TotalCount() < options_.hedge_warmup) {
    return options_.hedge_max_delay_ms;
  }
  return std::clamp(latency->Quantile(0.99), options_.hedge_min_delay_ms,
                    options_.hedge_max_delay_ms);
}

}  // namespace cluster
}  // namespace serve
}  // namespace ebi
