#ifndef EBI_SERVE_CLUSTER_PARTITIONER_H_
#define EBI_SERVE_CLUSTER_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/status.h"

namespace ebi {
namespace serve {
namespace cluster {

/// How the fact table is split across shards.
enum class PartitionKind : uint8_t {
  /// splitmix64 of the key modulo the shard count: spreads any key
  /// distribution evenly, at the cost of losing key locality (range
  /// predicates on the key fan out to every shard).
  kHash,
  /// Ordered key ranges, one per shard: tenant-major key spaces map one
  /// tenant to one shard, so a slow tenant saturates only its own shard
  /// and range predicates prune to the shards their span touches.
  kRange,
};

/// Maps partition-key values to shard ordinals. Implementations are
/// immutable after construction and therefore freely shared across
/// threads. The partition key is always an int64 column; NULL keys are
/// the router's business (it pins them to shard 0).
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Shard owning `key`. Total over the key domain: every key maps to
  /// exactly one shard, which is what makes the cluster result mergeable
  /// bit-for-bit (the partition-tiling invariant AuditClusterPartition
  /// checks).
  [[nodiscard]] virtual size_t ShardOf(int64_t key) const = 0;

  /// Shards that may own any key in [lo, hi] (inclusive). The default is
  /// conservative: every shard. RangePartitioner narrows it to the
  /// boundary span, which is what lets range predicates on the key
  /// column prune their fan-out.
  [[nodiscard]] virtual std::vector<size_t> ShardsForRange(int64_t lo,
                                                           int64_t hi) const;

  /// Stable name for traces and bench labels ("hash" / "range").
  [[nodiscard]] virtual const char* Name() const = 0;

  [[nodiscard]] size_t shards() const { return shards_; }

 protected:
  explicit Partitioner(size_t shards) : shards_(shards) {}

 private:
  size_t shards_;
};

/// Hash partitioner: shard = splitmix64(key) % shards.
class HashPartitioner final : public Partitioner {
 public:
  explicit HashPartitioner(size_t shards) : Partitioner(shards) {}

  [[nodiscard]] size_t ShardOf(int64_t key) const override;
  [[nodiscard]] const char* Name() const override { return "hash"; }
};

/// Range partitioner over sorted split points. With split points
/// s_0 < s_1 < ... < s_{n-2} (one fewer than shards), shard i owns keys
/// in (s_{i-1}, s_i], shard 0 owns keys <= s_0, and the last shard owns
/// everything above the final split point.
class RangePartitioner final : public Partitioner {
 public:
  /// `split_points` must be strictly increasing and hold exactly
  /// shards - 1 entries.
  static Result<std::unique_ptr<RangePartitioner>> Create(
      size_t shards, std::vector<int64_t> split_points);

  /// Passkey: only Create can mint one, so every live RangePartitioner
  /// went through Create's validation — while the constructor stays
  /// public enough for std::make_unique.
  class Validated {
   private:
    Validated() = default;
    friend class RangePartitioner;
  };

  RangePartitioner(Validated, size_t shards,
                   std::vector<int64_t> split_points)
      : Partitioner(shards), split_points_(std::move(split_points)) {}

  [[nodiscard]] size_t ShardOf(int64_t key) const override;
  [[nodiscard]] std::vector<size_t> ShardsForRange(int64_t lo,
                                                   int64_t hi) const override;
  [[nodiscard]] const char* Name() const override { return "range"; }

 private:
  std::vector<int64_t> split_points_;
};

/// Factory keyed by PartitionKind. `split_points` is consumed only by
/// kRange (and required there); kHash ignores it.
Result<std::unique_ptr<Partitioner>> MakePartitioner(
    PartitionKind kind, size_t shards, std::vector<int64_t> split_points = {});

}  // namespace cluster
}  // namespace serve
}  // namespace ebi

#endif  // EBI_SERVE_CLUSTER_PARTITIONER_H_
