#include "serve/cluster/shard_router.h"

#include <algorithm>
#include <utility>

namespace ebi {
namespace serve {
namespace cluster {

ShardRouter::ShardRouter(std::unique_ptr<Partitioner> partitioner,
                         std::string key_column)
    : partitioner_(std::move(partitioner)),
      key_column_(std::move(key_column)) {
  auto initial = std::make_shared<Placement>();
  initial->shard_rows.resize(partitioner_->shards());
  MutexLock lock(mu_);
  placement_ = std::move(initial);
}

size_t ShardRouter::ShardOfKey(const Value& key) const {
  if (key.is_null()) {
    return 0;
  }
  return partitioner_->ShardOf(key.int_value);
}

Result<ShardRouter::RoutedBatch> ShardRouter::RouteAppend(
    const std::vector<std::vector<Value>>& rows, size_t key_index) {
  for (const auto& row : rows) {
    if (key_index >= row.size()) {
      return Status::InvalidArgument(
          "append row is missing the partition-key column");
    }
    if (row[key_index].kind == Value::Kind::kString) {
      return Status::InvalidArgument(
          "partition key must be an int64 (or NULL) value");
    }
  }

  RoutedBatch batch;
  batch.per_shard_rows.resize(shards());

  // Extend a copy of the placement, then publish it before returning —
  // i.e. before the caller hands any sub-batch to a shard. Any reader
  // that later sees shard-local row i has a placement whose map covers i.
  std::shared_ptr<const Placement> current = placement();
  auto next = std::make_shared<Placement>(*current);
  for (const auto& row : rows) {
    size_t shard = ShardOfKey(row[key_index]);
    next->shard_rows[shard].push_back(next->total_rows++);
    batch.per_shard_rows[shard].push_back(row);
  }

  MutexLock lock(mu_);
  placement_ = std::move(next);
  return batch;
}

std::shared_ptr<const ShardRouter::Placement> ShardRouter::placement() const {
  MutexLock lock(mu_);
  return placement_;
}

std::vector<size_t> ShardRouter::OwningShards(
    const std::vector<Predicate>& predicates) const {
  std::vector<size_t> owners(shards());
  for (size_t s = 0; s < owners.size(); ++s) {
    owners[s] = s;
  }

  for (const auto& pred : predicates) {
    if (pred.column != key_column_) {
      continue;
    }
    std::vector<size_t> from_pred;
    switch (pred.kind) {
      case Predicate::Kind::kEquals:
        if (pred.value.kind == Value::Kind::kString) {
          continue;  // Malformed for an int key; let the shards report it.
        }
        from_pred.push_back(ShardOfKey(pred.value));
        break;
      case Predicate::Kind::kIn:
        for (const auto& v : pred.values) {
          if (v.kind == Value::Kind::kString) {
            from_pred.clear();
            break;
          }
          from_pred.push_back(ShardOfKey(v));
        }
        if (from_pred.empty() && !pred.values.empty()) {
          continue;  // String literal seen: no pruning from this one.
        }
        break;
      case Predicate::Kind::kRange:
        from_pred = partitioner_->ShardsForRange(pred.lo, pred.hi);
        break;
      case Predicate::Kind::kIsNull:
        // NULL keys are pinned to shard 0, so only shard 0 can match.
        from_pred.push_back(0);
        break;
      case Predicate::Kind::kNotEquals:
      case Predicate::Kind::kNotIn:
        // Complements span the whole key domain: no pruning.
        continue;
    }

    // Intersect the running owner set with this predicate's (conjunctive
    // semantics: a row must satisfy every predicate, so it must live in
    // every predicate's owning set).
    std::sort(from_pred.begin(), from_pred.end());
    from_pred.erase(std::unique(from_pred.begin(), from_pred.end()),
                    from_pred.end());
    std::vector<size_t> merged;
    std::set_intersection(owners.begin(), owners.end(), from_pred.begin(),
                          from_pred.end(), std::back_inserter(merged));
    owners = std::move(merged);
    if (owners.empty()) {
      break;
    }
  }
  return owners;
}

}  // namespace cluster
}  // namespace serve
}  // namespace ebi
