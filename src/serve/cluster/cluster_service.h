#ifndef EBI_SERVE_CLUSTER_CLUSTER_SERVICE_H_
#define EBI_SERVE_CLUSTER_CLUSTER_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "query/executor.h"
#include "query/predicate.h"
#include "serve/cluster/partitioner.h"
#include "serve/cluster/shard_router.h"
#include "serve/query_service.h"
#include "serve/snapshot.h"
#include "storage/table.h"
#include "util/bitvector.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ebi {
namespace serve {
namespace cluster {

/// What the cluster does when a shard misses its deadline budget or
/// sheds under load (DESIGN.md §14).
enum class PartialResultPolicy : uint8_t {
  /// The whole query fails with the shard's unavailability status.
  kFail,
  /// The query succeeds with the responding shards' rows and a coverage
  /// mask naming the rows the answer actually vouches for.
  kPartial,
};

/// Cluster-wide knobs, fixed at construction.
struct ClusterOptions {
  /// Number of primary QueryService shards.
  size_t shards = 2;
  /// How rows map to shards.
  PartitionKind partition = PartitionKind::kHash;
  /// Split points for PartitionKind::kRange (exactly shards-1, strictly
  /// increasing); ignored for kHash.
  std::vector<int64_t> split_points;
  /// The int64 column rows are partitioned by.
  std::string key_column;
  /// Per-shard service knobs (worker pool, queue depth, snapshots...).
  ServeOptions shard_options;
  /// Run one replica QueryService per shard, fed the same appends in the
  /// same order. Hedged requests land on it; without replicas hedging is
  /// structurally off.
  bool replicate = false;
  /// Replica knobs; typically a smaller pool than the primary.
  ServeOptions replica_options;
  /// Shard-miss behaviour.
  PartialResultPolicy partial_policy = PartialResultPolicy::kFail;
  /// Per-shard deadline budget as a fraction of the request's remaining
  /// cluster deadline: shards get remaining*fraction so the gather keeps
  /// headroom to merge and (under kPartial) to return what it has.
  double shard_deadline_fraction = 1.0;
  /// Issue a duplicate request to the shard's replica when the primary
  /// has not answered after the hedging delay (requires `replicate`).
  bool hedge = false;
  /// Clamp bounds for the p99-derived hedging delay.
  double hedge_min_delay_ms = 1.0;
  double hedge_max_delay_ms = 50.0;
  /// Shard-latency samples required before the p99 is trusted; until
  /// then the delay sits at hedge_max_delay_ms (hedge late, not eagerly,
  /// while the estimate is noise).
  uint64_t hedge_warmup = 64;
};

/// Per-shard view of one gathered cluster query.
struct ShardOutcome {
  size_t shard = 0;
  /// The status that entered the merge: the winning response's, or the
  /// unavailability that made the shard a miss.
  Status status = Status::OK();
  /// Epoch the winning response ran against (0 on miss).
  uint64_t epoch = 0;
  /// Submit-to-resolution latency as the gather saw it.
  double latency_ms = 0.0;
  /// A hedged duplicate was issued to the replica.
  bool hedged = false;
  /// The hedge resolved the shard (its response was used).
  bool hedge_won = false;
};

/// A merged scatter-gather selection. Row ids are *global* (cluster
/// append order), so with every shard responding `selection.rows` is
/// bit-identical to running the same conjunction on one QueryService
/// holding all rows in that order.
struct ClusterResult {
  SelectionResult selection;
  /// Rows in the merge-time placement (`selection.rows` is sized to it).
  uint64_t total_rows = 0;
  /// True iff some owning shard missed and policy kPartial kept going.
  bool partial = false;
  /// Bit g set iff the answer vouches for global row g: its shard
  /// responded, or was pruned (the router proved it holds no match).
  /// All-set when `partial` is false.
  BitVector coverage;
  /// Owning shards that did not respond (unavailable under kPartial).
  std::vector<size_t> missing_shards;
  /// Shards the router fanned out to, ascending.
  std::vector<size_t> visited_shards;
  /// Per-visited-shard details, parallel to visited_shards.
  std::vector<ShardOutcome> outcomes;
};

/// A sharded serving tier over N independent QueryService shards
/// (DESIGN.md §14): routes appends by partition key, scatters selections
/// to the owning shards with per-shard deadline budgets, gathers and
/// merges the per-shard bitmaps into one global-row-id result, and
/// optionally hedges slow shards to replicas after a p99-derived delay.
///
/// Locking: append_mu_ (rank kClusterAppend) serializes the route +
/// per-shard Append fan-out, so global row-id order equals publish order
/// on every shard; it ranks *below* the per-shard service locks because
/// those are taken underneath it. Selections take no cluster lock at all
/// — they read the router's copy-on-write placement.
class ClusterQueryService {
 public:
  explicit ClusterQueryService(ClusterOptions options);
  /// Drains every shard (Shutdown) before tearing down.
  ~ClusterQueryService();

  ClusterQueryService(const ClusterQueryService&) = delete;
  ClusterQueryService& operator=(const ClusterQueryService&) = delete;

  /// Partitions `table` by ClusterOptions::key_column, starts every
  /// shard (and replica) on its slice, and records the global row-id
  /// maps. Must be called once before Select/Append. Rows keep their
  /// original order as global ids, which is what makes cluster results
  /// comparable bit-for-bit with a single service started on `table`.
  /// Fails on tables with deleted rows (a void slot has no shard).
  Status Start(std::unique_ptr<Table> table, std::vector<IndexSpec> specs);

  /// Scatter-gather selection. `options.deadline_ms` bounds the whole
  /// cluster query; expired-on-arrival requests are rejected before any
  /// shard is contacted. Fan-out is pruned by partition-key predicates.
  Result<ClusterResult> Select(
      const std::vector<Predicate>& predicates,
      const RequestOptions& options = RequestOptions());

  /// Routes `rows` by partition key and appends each slice to its owning
  /// shard (and replica). Blocks until every touched shard published.
  /// Returns the cluster append epoch (count of completed appends).
  Result<uint64_t> Append(std::vector<std::vector<Value>> rows);

  /// Stops admission on every shard and blocks until all drained.
  /// Idempotent; also run by the destructor.
  Status Shutdown();

  [[nodiscard]] size_t shards() const { return options_.shards; }
  [[nodiscard]] const ShardRouter& router() const { return *router_; }
  /// Direct shard access for tests (epochs, telemetry, fault drills).
  QueryService& shard(size_t i) { return *primaries_[i]; }
  /// The shard's replica, or nullptr when replication is off.
  QueryService* replica(size_t i) {
    return options_.replicate ? replicas_[i].get() : nullptr;
  }

  /// The hedging delay the next gather would use: the shard-latency
  /// p99 clamped to [hedge_min_delay_ms, hedge_max_delay_ms], or the max
  /// until hedge_warmup samples have been observed.
  [[nodiscard]] double CurrentHedgeDelayMs() const;

  /// Completed cluster appends (Start's initial load is epoch 0).
  [[nodiscard]] uint64_t AppendEpoch() const {
    return append_epoch_.load(std::memory_order_seq_cst);
  }

 private:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// Scatter-side bookkeeping for one owning shard.
  struct ShardCall {
    size_t shard = 0;
    std::shared_ptr<ServeTicket> primary;
    /// Submit-time failure (e.g. shed at admission) when primary is null.
    Status submit_status = Status::OK();
    TimePoint submitted{};
  };

  /// Waits on `call`'s primary — hedging `predicates` to the replica per
  /// policy — until resolution or `deadline`. Returns the ShardOutcome
  /// plus the winning response (nullopt on miss).
  std::pair<ShardOutcome, std::optional<ServeResult>> GatherShard(
      const std::vector<Predicate>& predicates, ShardCall& call,
      std::optional<TimePoint> deadline);

  const ClusterOptions options_;
  std::unique_ptr<ShardRouter> router_
      EBI_UNGUARDED("set once in Start before started_ flips; read-only "
                    "after");
  /// Partition-key column position; set once in Start before any query.
  size_t key_index_ EBI_UNGUARDED("set once in Start, read-only after") = 0;
  /// Column types of the fact table, for pre-route validation (a row
  /// that fails validation *after* routing would desynchronize the
  /// placement's global-id maps from the shard's actual rows).
  std::vector<Column::Type> schema_
      EBI_UNGUARDED("set once in Start, read-only after");

  std::vector<std::unique_ptr<QueryService>> primaries_
      EBI_UNGUARDED("populated in Start before started_ flips");
  std::vector<std::unique_ptr<QueryService>> replicas_
      EBI_UNGUARDED("same lifecycle as primaries_");

  std::atomic<bool> started_{false};
  /// A shard Append failed after the placement was extended: global-id
  /// maps no longer match shard row order, so the cluster fails fast
  /// instead of silently merging misaligned bitmaps.
  std::atomic<bool> poisoned_{false};
  std::atomic<uint64_t> append_epoch_{0};

  /// Serializes route + fan-out so shard-local append order equals
  /// global-id order (the merge's correctness hinges on it).
  Mutex append_mu_{lock_rank::kClusterAppend,
                   "ClusterQueryService::append_mu_"};
};

}  // namespace cluster
}  // namespace serve
}  // namespace ebi

#endif  // EBI_SERVE_CLUSTER_CLUSTER_SERVICE_H_
