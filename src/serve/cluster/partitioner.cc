#include "serve/cluster/partitioner.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace ebi {
namespace serve {
namespace cluster {

namespace {

/// splitmix64 finalizer: full-avalanche mix so sequential keys (the
/// common surrogate-key case) spread evenly instead of landing on
/// consecutive shards mod N.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<size_t> Partitioner::ShardsForRange(int64_t /*lo*/,
                                                int64_t /*hi*/) const {
  std::vector<size_t> all(shards());
  std::iota(all.begin(), all.end(), size_t{0});
  return all;
}

size_t HashPartitioner::ShardOf(int64_t key) const {
  return static_cast<size_t>(Mix64(static_cast<uint64_t>(key)) % shards());
}

Result<std::unique_ptr<RangePartitioner>> RangePartitioner::Create(
    size_t shards, std::vector<int64_t> split_points) {
  if (shards == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "range partitioner needs at least one shard");
  }
  if (split_points.size() + 1 != shards) {
    return Status(StatusCode::kInvalidArgument,
                  "range partitioner over N shards needs exactly N-1 "
                  "split points");
  }
  if (!std::is_sorted(split_points.begin(), split_points.end()) ||
      std::adjacent_find(split_points.begin(), split_points.end()) !=
          split_points.end()) {
    return Status(StatusCode::kInvalidArgument,
                  "range split points must be strictly increasing");
  }
  return std::make_unique<RangePartitioner>(Validated{}, shards,
                                            std::move(split_points));
}

size_t RangePartitioner::ShardOf(int64_t key) const {
  // Shard i owns (s_{i-1}, s_i]: the first split point >= key names the
  // owner, and keys above every split point belong to the last shard.
  auto it =
      std::lower_bound(split_points_.begin(), split_points_.end(), key);
  return static_cast<size_t>(it - split_points_.begin());
}

std::vector<size_t> RangePartitioner::ShardsForRange(int64_t lo,
                                                     int64_t hi) const {
  if (lo > hi) {
    return {};
  }
  size_t first = ShardOf(lo);
  size_t last = ShardOf(hi);
  std::vector<size_t> owners;
  owners.reserve(last - first + 1);
  for (size_t s = first; s <= last; ++s) {
    owners.push_back(s);
  }
  return owners;
}

Result<std::unique_ptr<Partitioner>> MakePartitioner(
    PartitionKind kind, size_t shards, std::vector<int64_t> split_points) {
  if (shards == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "partitioner needs at least one shard");
  }
  switch (kind) {
    case PartitionKind::kHash:
      return std::unique_ptr<Partitioner>(
          std::make_unique<HashPartitioner>(shards));
    case PartitionKind::kRange: {
      auto ranged = RangePartitioner::Create(shards, std::move(split_points));
      if (!ranged.ok()) {
        return ranged.status();
      }
      return std::unique_ptr<Partitioner>(std::move(ranged).value());
    }
  }
  return Status(StatusCode::kInvalidArgument, "unknown partition kind");
}

}  // namespace cluster
}  // namespace serve
}  // namespace ebi
