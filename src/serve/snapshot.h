#ifndef EBI_SERVE_SNAPSHOT_H_
#define EBI_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "index/index.h"
#include "index/index_factory.h"
#include "query/executor.h"
#include "storage/io_accountant.h"
#include "storage/segmented_table.h"
#include "storage/table.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ebi {
namespace serve {

/// One index the serving layer maintains per snapshot.
struct IndexSpec {
  std::string column;
  IndexKind kind = IndexKind::kEncodedBitmap;
};

/// How snapshots are physically laid out.
struct SnapshotOptions {
  /// When > 0, each snapshot also materializes a SegmentedTable partition
  /// of this many rows per segment and serves selections through one
  /// ShardedIndex per spec, fanning out across `shard_pool`.
  size_t segment_rows = 0;
  /// The pool sharded evaluation borrows workers from. Must not be the
  /// pool the requests themselves run on (a nested ParallelFor on the
  /// same pool deadlocks); required iff segment_rows > 0.
  exec::ThreadPool* shard_pool = nullptr;
};

/// An immutable, self-contained version of the database: a deep-copied
/// table, the secondary indexes built over it, and a private IoAccountant
/// every read against this version charges. Snapshots are published by
/// the single writer (QueryService's append pipeline) and shared by many
/// concurrent readers; nothing in here is mutated after construction
/// except the accountant's relaxed counters, so readers need no locks.
///
/// Evaluation entry points on the held indexes are thread-safe for the
/// bitmap families the serving layer certifies (simple, encoded,
/// bit-sliced, range-based): their Evaluate* paths read immutable
/// structure and charge atomics only.
class DatabaseSnapshot {
  struct Passkey {};

 public:
  /// Builds a snapshot from scratch: takes ownership of `table`, builds
  /// one index per spec (sharded when options.segment_rows > 0).
  static Result<std::unique_ptr<DatabaseSnapshot>> Create(
      std::unique_ptr<Table> table, std::vector<IndexSpec> specs,
      uint64_t epoch, const SnapshotOptions& options = SnapshotOptions());

  /// Copy-on-write successor: clones the table, clones every index that
  /// implements CloneRebound (factory-rebuilding the rest), then appends
  /// `rows` through the batched MaintenanceDriver path — so domain
  /// expansion coalesces into one rewrite per column. This snapshot is
  /// never touched; the returned one carries `epoch`. In sharded mode
  /// the partition is re-materialized instead (sharded indexes snapshot
  /// their partition and cannot extend).
  Result<std::unique_ptr<DatabaseSnapshot>> CloneWithRows(
      const std::vector<std::vector<Value>>& rows, uint64_t epoch) const;

  DatabaseSnapshot(const DatabaseSnapshot&) = delete;
  DatabaseSnapshot& operator=(const DatabaseSnapshot&) = delete;

  uint64_t epoch() const { return epoch_; }
  const Table& table() const { return *table_; }
  size_t NumRows() const { return table_->NumRows(); }
  /// The per-snapshot accountant (aggregate I/O of every read served
  /// from this version; per-request deltas are approximate under
  /// concurrency — see DESIGN.md §9).
  IoAccountant* io() const { return io_.get(); }
  IoStats IoSeen() const { return io_->stats(); }

  /// The index serving predicates on `column` (nullptr when none).
  SecondaryIndex* index(const std::string& column) const;

  /// A SelectionExecutor wired to this snapshot's table, accountant and
  /// indexes. The executor (and everything it returns) must not outlive
  /// the reader's pin on this snapshot.
  SelectionExecutor MakeExecutor() const;

  /// Public so Create can make_unique; the passkey keeps construction
  /// confined to the factory methods.
  explicit DatabaseSnapshot(Passkey) {}

 private:
  struct Entry {
    IndexSpec spec;
    std::unique_ptr<SecondaryIndex> index;
  };

  uint64_t epoch_ = 0;
  SnapshotOptions options_;
  std::vector<IndexSpec> specs_;
  std::unique_ptr<IoAccountant> io_;
  std::unique_ptr<Table> table_;
  /// Sharded mode only: the partition the sharded indexes are built over.
  std::unique_ptr<SegmentedTable> segments_;
  std::vector<Entry> entries_;
};

/// Epoch-based publication and reclamation of snapshots (RCU-style).
///
/// One writer publishes; many readers pin. The reader hot path is
/// lock-free: claim a slot (one CAS), announce the global epoch in it
/// (one store), load the current-snapshot pointer (one load) — all
/// seq_cst, so a writer that retires the pointer afterwards is
/// guaranteed to observe the announcement. A retired snapshot is freed
/// only when every in-use slot has announced an epoch at or past the
/// retirement epoch; a pin taken before a publish therefore keeps its
/// snapshot alive arbitrarily long after newer ones supersede it.
class SnapshotManager {
 public:
  static constexpr size_t kDefaultReaderSlots = 256;
  /// Slot value meaning "claimed but not announcing any epoch".
  static constexpr uint64_t kQuiescent = UINT64_MAX;

  explicit SnapshotManager(size_t reader_slots = kDefaultReaderSlots);
  /// Frees the current snapshot and any unreclaimed retirees. All pins
  /// must have been released (the QueryService drain guarantees this).
  ~SnapshotManager();

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// RAII reader pin: keeps one snapshot version alive. Movable; the
  /// destructor releases the slot and opportunistically reclaims.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept;
    ~Pin() { Release(); }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    const DatabaseSnapshot* get() const { return snapshot_; }
    const DatabaseSnapshot* operator->() const { return snapshot_; }
    const DatabaseSnapshot& operator*() const { return *snapshot_; }
    explicit operator bool() const { return snapshot_ != nullptr; }

    /// Unpins early (idempotent).
    void Release();

   private:
    friend class SnapshotManager;
    Pin(SnapshotManager* manager, size_t slot,
        const DatabaseSnapshot* snapshot)
        : manager_(manager), slot_(slot), snapshot_(snapshot) {}

    SnapshotManager* manager_ = nullptr;
    size_t slot_ = 0;
    const DatabaseSnapshot* snapshot_ = nullptr;
  };

  /// Atomically replaces the current snapshot and retires the previous
  /// one (single writer; serialized internally).
  void Publish(std::unique_ptr<DatabaseSnapshot> snapshot);

  /// Pins the current snapshot. Lock-free; spins (with yields) only if
  /// every reader slot is claimed, which admission control prevents.
  /// The pin is empty until the first Publish.
  Pin Acquire();

  /// Epoch of the current snapshot (0 before the first publish).
  uint64_t CurrentEpoch() const;

  /// Blocking reclaim pass. Unpins only *try* to reclaim (they never
  /// block on the writer), so a contended release can leave a retiree
  /// behind; drains call this to guarantee quiescent-state cleanup.
  void Reclaim();

  /// Retired-but-unreclaimed snapshots (for tests and metrics).
  size_t RetiredCount() const;
  /// Snapshots freed so far by epoch reclamation.
  uint64_t ReclaimedCount() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<bool> in_use{false};
    std::atomic<uint64_t> epoch{kQuiescent};
  };

  void ReleaseSlot(size_t slot);
  /// Frees every retiree no in-use slot could still reference.
  void ReclaimLocked() EBI_REQUIRES(retire_mu_);

  std::vector<Slot> slots_
      EBI_UNGUARDED("sized once in the constructor; the elements are "
                    "atomics readers and the writer race by design");
  std::atomic<const DatabaseSnapshot*> current_{nullptr};
  /// Bumped once per publish; readers announce the value they saw.
  std::atomic<uint64_t> global_epoch_{0};
  std::atomic<uint64_t> reclaimed_{0};

  mutable Mutex retire_mu_{lock_rank::kSnapshotRetire,
                           "SnapshotManager::retire_mu_"};
  /// Owner of what current_ points to.
  std::unique_ptr<DatabaseSnapshot> current_owner_ EBI_GUARDED_BY(retire_mu_);
  /// (snapshot, retirement epoch), reclaimed in ReclaimLocked.
  std::vector<std::pair<std::unique_ptr<DatabaseSnapshot>, uint64_t>>
      retired_ EBI_GUARDED_BY(retire_mu_);
};

}  // namespace serve
}  // namespace ebi

#endif  // EBI_SERVE_SNAPSHOT_H_
