#include "serve/snapshot.h"

#include <thread>

#include "index/sharded_index.h"
#include "query/maintenance.h"

namespace ebi {
namespace serve {

// ---------------------------------------------------------------------------
// DatabaseSnapshot
// ---------------------------------------------------------------------------

Result<std::unique_ptr<DatabaseSnapshot>> DatabaseSnapshot::Create(
    std::unique_ptr<Table> table, std::vector<IndexSpec> specs,
    uint64_t epoch, const SnapshotOptions& options) {
  if (table == nullptr) {
    return Status::InvalidArgument("snapshot needs a table");
  }
  if (options.segment_rows > 0 && options.shard_pool == nullptr) {
    return Status::InvalidArgument(
        "sharded snapshots (segment_rows > 0) need a shard_pool");
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    for (size_t j = i + 1; j < specs.size(); ++j) {
      if (specs[i].column == specs[j].column) {
        return Status::InvalidArgument(
            "duplicate serving index on column " + specs[i].column +
            "; the executor answers each column through one index");
      }
    }
  }

  auto snapshot = std::make_unique<DatabaseSnapshot>(Passkey());
  snapshot->epoch_ = epoch;
  snapshot->options_ = options;
  snapshot->specs_ = std::move(specs);
  snapshot->io_ = std::make_unique<IoAccountant>();
  snapshot->table_ = std::move(table);

  if (options.segment_rows > 0) {
    EBI_ASSIGN_OR_RETURN(
        SegmentedTable segments,
        SegmentedTable::Partition(*snapshot->table_, options.segment_rows));
    snapshot->segments_ =
        std::make_unique<SegmentedTable>(std::move(segments));
  }

  const Table& built = *snapshot->table_;
  for (const IndexSpec& spec : snapshot->specs_) {
    EBI_ASSIGN_OR_RETURN(const Column* column, built.FindColumn(spec.column));
    Entry entry;
    entry.spec = spec;
    if (snapshot->segments_ != nullptr) {
      entry.index = std::make_unique<ShardedIndex>(
          snapshot->segments_.get(), column, &built.existence(), spec.kind,
          options.shard_pool, snapshot->io_.get());
    } else {
      entry.index = MakeSecondaryIndex(spec.kind, column, &built.existence(),
                                       snapshot->io_.get());
      if (entry.index == nullptr) {
        return Status::Internal("unknown index kind in serving spec");
      }
    }
    EBI_RETURN_IF_ERROR(entry.index->Build());
    snapshot->entries_.push_back(std::move(entry));
  }
  return snapshot;
}

Result<std::unique_ptr<DatabaseSnapshot>> DatabaseSnapshot::CloneWithRows(
    const std::vector<std::vector<Value>>& rows, uint64_t epoch) const {
  auto table = std::make_unique<Table>(table_->Clone());

  if (segments_ != nullptr) {
    // Sharded indexes snapshot their partition, so the successor
    // re-partitions and rebuilds instead of extending copies.
    for (const std::vector<Value>& values : rows) {
      EBI_RETURN_IF_ERROR(table->AppendRow(values));
    }
    return Create(std::move(table), specs_, epoch, options_);
  }

  auto snapshot = std::make_unique<DatabaseSnapshot>(Passkey());
  snapshot->epoch_ = epoch;
  snapshot->options_ = options_;
  snapshot->specs_ = specs_;
  snapshot->io_ = std::make_unique<IoAccountant>(io_->page_size());
  snapshot->table_ = std::move(table);

  // Clone the indexes before the table grows: a clone must cover exactly
  // the rows its source indexed, and the batched append then extends the
  // copies in lockstep with the table. Families without copy-on-write
  // support are rebuilt from scratch after the append instead.
  MaintenanceDriver driver(snapshot->table_.get());
  std::vector<IndexSpec> rebuild;
  for (const Entry& entry : entries_) {
    EBI_ASSIGN_OR_RETURN(const Column* column,
                         static_cast<const Table&>(*snapshot->table_)
                             .FindColumn(entry.spec.column));
    Result<std::unique_ptr<SecondaryIndex>> cloned = entry.index->CloneRebound(
        column, &snapshot->table_->existence(), snapshot->io_.get());
    if (cloned.ok()) {
      Entry copy;
      copy.spec = entry.spec;
      copy.index = std::move(*cloned);
      EBI_RETURN_IF_ERROR(driver.AttachIndex(copy.index.get()));
      snapshot->entries_.push_back(std::move(copy));
    } else if (cloned.status().code() == StatusCode::kUnimplemented) {
      rebuild.push_back(entry.spec);
    } else {
      return cloned.status();
    }
  }

  EBI_RETURN_IF_ERROR(driver.AppendRows(rows));

  const Table& grown = *snapshot->table_;
  for (const IndexSpec& spec : rebuild) {
    EBI_ASSIGN_OR_RETURN(const Column* column, grown.FindColumn(spec.column));
    Entry entry;
    entry.spec = spec;
    entry.index = MakeSecondaryIndex(spec.kind, column, &grown.existence(),
                                     snapshot->io_.get());
    if (entry.index == nullptr) {
      return Status::Internal("unknown index kind in serving spec");
    }
    EBI_RETURN_IF_ERROR(entry.index->Build());
    snapshot->entries_.push_back(std::move(entry));
  }
  return snapshot;
}

SecondaryIndex* DatabaseSnapshot::index(const std::string& column) const {
  for (const Entry& entry : entries_) {
    if (entry.spec.column == column) {
      return entry.index.get();
    }
  }
  return nullptr;
}

SelectionExecutor DatabaseSnapshot::MakeExecutor() const {
  SelectionExecutor executor(table_.get(), io_.get());
  for (const Entry& entry : entries_) {
    executor.RegisterIndex(entry.spec.column, entry.index.get());
  }
  return executor;
}

// ---------------------------------------------------------------------------
// SnapshotManager
// ---------------------------------------------------------------------------

SnapshotManager::SnapshotManager(size_t reader_slots)
    : slots_(reader_slots == 0 ? 1 : reader_slots) {}

SnapshotManager::~SnapshotManager() = default;

SnapshotManager::Pin& SnapshotManager::Pin::operator=(Pin&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    slot_ = other.slot_;
    snapshot_ = other.snapshot_;
    other.manager_ = nullptr;
    other.snapshot_ = nullptr;
  }
  return *this;
}

void SnapshotManager::Pin::Release() {
  if (manager_ != nullptr) {
    manager_->ReleaseSlot(slot_);
    manager_ = nullptr;
    snapshot_ = nullptr;
  }
}

void SnapshotManager::Publish(std::unique_ptr<DatabaseSnapshot> snapshot) {
  const MutexLock lock(retire_mu_);
  const DatabaseSnapshot* next = snapshot.get();
  std::unique_ptr<DatabaseSnapshot> old = std::move(current_owner_);
  current_owner_ = std::move(snapshot);
  current_.store(next, std::memory_order_seq_cst);
  // Order matters: the pointer swap precedes the epoch bump, so a reader
  // announcing an epoch below the retirement epoch read the global value
  // before this publish — exactly the readers that may still load `old`.
  const uint64_t retire_epoch =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (old != nullptr) {
    retired_.emplace_back(std::move(old), retire_epoch);
  }
  ReclaimLocked();
}

SnapshotManager::Pin SnapshotManager::Acquire() {
  const size_t n = slots_.size();
  size_t slot = 0;
  for (size_t attempt = 0;; ++attempt) {
    const size_t i = attempt % n;
    bool expected = false;
    if (slots_[i].in_use.compare_exchange_strong(
            expected, true, std::memory_order_seq_cst)) {
      slot = i;
      break;
    }
    if (i == n - 1) {
      std::this_thread::yield();
    }
  }
  // Announce before loading the pointer. seq_cst gives one total order
  // over {this store, this load, the writer's swap, the writer's slot
  // scan}: if the writer's scan missed this announcement, the scan (and
  // hence the swap before it) precedes it, so the load below is ordered
  // after the swap and returns the *new* snapshot — never the retiree.
  slots_[slot].epoch.store(global_epoch_.load(std::memory_order_seq_cst),
                           std::memory_order_seq_cst);
  const DatabaseSnapshot* snapshot =
      current_.load(std::memory_order_seq_cst);
  if (snapshot == nullptr) {
    ReleaseSlot(slot);
    return Pin();
  }
  return Pin(this, slot, snapshot);
}

void SnapshotManager::Reclaim() {
  const MutexLock lock(retire_mu_);
  ReclaimLocked();
}

uint64_t SnapshotManager::CurrentEpoch() const {
  const MutexLock lock(retire_mu_);
  return current_owner_ == nullptr ? 0 : current_owner_->epoch();
}

size_t SnapshotManager::RetiredCount() const {
  const MutexLock lock(retire_mu_);
  return retired_.size();
}

void SnapshotManager::ReleaseSlot(size_t slot) {
  slots_[slot].epoch.store(kQuiescent, std::memory_order_seq_cst);
  slots_[slot].in_use.store(false, std::memory_order_seq_cst);
  // Opportunistically reclaim so a pin that outlived several publishes
  // frees its snapshot now rather than at the next publish. TryLock
  // keeps the unpin path from ever blocking on the writer.
  if (retire_mu_.TryLock()) {
    ReclaimLocked();
    retire_mu_.Unlock();
  }
}

void SnapshotManager::ReclaimLocked() {
  if (retired_.empty()) {
    return;
  }
  uint64_t min_active = kQuiescent;
  for (const Slot& slot : slots_) {
    if (!slot.in_use.load(std::memory_order_seq_cst)) {
      continue;
    }
    const uint64_t epoch = slot.epoch.load(std::memory_order_seq_cst);
    if (epoch < min_active) {
      min_active = epoch;
    }
  }
  // A retiree is unreachable once every in-use slot announced an epoch at
  // or past its retirement epoch: any reader that could still hold it
  // announced a smaller one before the retiring publish. A slot still at
  // kQuiescent never blocks — its pointer load is ordered after our swap.
  size_t kept = 0;
  for (auto& entry : retired_) {
    if (entry.second <= min_active) {
      entry.first.reset();
      reclaimed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      retired_[kept++] = std::move(entry);
    }
  }
  retired_.resize(kept);
}

}  // namespace serve
}  // namespace ebi
