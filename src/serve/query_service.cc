#include "serve/query_service.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "storage/column.h"
#include "util/kernels/kernels.h"

namespace ebi {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

// Registry lookups are mutex-guarded; cache the stable pointers.
obs::Counter* SubmittedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricServeSubmitted);
  return counter;
}

obs::Counter* ShedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricServeShed);
  return counter;
}

obs::Counter* DeadlineCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      obs::kMetricServeDeadlineExceeded);
  return counter;
}

obs::Counter* PublishCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricServePublishes);
  return counter;
}

obs::Counter* ReclaimedCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      obs::kMetricServeSnapshotsReclaimed);
  return counter;
}

obs::Histogram* LatencyHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(obs::kMetricServeLatencyMs);
  return histogram;
}

obs::Histogram* QueueHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(obs::kMetricServeQueueMs);
  return histogram;
}

obs::Histogram* QueueDepthHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          obs::kMetricServeQueueDepth);
  return histogram;
}

obs::Counter* DrainRejectedCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      obs::kMetricServeDrainRejected);
  return counter;
}

obs::Counter* TraceSampledCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricTraceSampled);
  return counter;
}

obs::Counter* SlowQueriesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricSlowQueries);
  return counter;
}

obs::Counter* WorkloadRecordsCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricWorkloadRecords);
  return counter;
}

obs::Counter* WorkloadRotationsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      obs::kMetricWorkloadRotations);
  return counter;
}

obs::Counter* MetricsExportsCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricMetricsExports);
  return counter;
}

// Per-stage attribution histograms (sub-ms bucket ladder: pin and plan
// run in microseconds).
obs::Histogram* PinHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          obs::kMetricServeStagePinMs, obs::MetricsRegistry::LatencyBounds());
  return histogram;
}

obs::Histogram* PlanHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          obs::kMetricServeStagePlanMs,
          obs::MetricsRegistry::LatencyBounds());
  return histogram;
}

obs::Histogram* ExecuteHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          obs::kMetricServeStageExecuteMs,
          obs::MetricsRegistry::LatencyBounds());
  return histogram;
}

/// "a = 3 AND b IN {1, 2}" — the query summary slow-log entries carry.
std::string PredicatesText(const std::vector<Predicate>& predicates) {
  std::string out;
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) {
      out += " AND ";
    }
    out += predicates[i].ToString();
  }
  return out;
}

/// One workload-log predicate from the conjunct and (when the executor
/// collected them) its observed stat.
obs::WorkloadPredicate ToWorkloadPredicate(const Predicate& p,
                                           const PredicateStat* stat) {
  obs::WorkloadPredicate out;
  out.column = p.column;
  out.op = p.OpTag();
  out.fingerprint = stat != nullptr ? stat->fingerprint : p.Fingerprint();
  out.rows = stat != nullptr ? stat->rows : 0;
  switch (p.kind) {
    case Predicate::Kind::kEquals:
    case Predicate::Kind::kNotEquals:
      if (p.value.kind == Value::Kind::kInt64) {
        out.literals.push_back(p.value.int_value);
      }
      break;
    case Predicate::Kind::kIn:
    case Predicate::Kind::kNotIn:
      for (const Value& v : p.values) {
        if (v.kind == Value::Kind::kInt64) {
          out.literals.push_back(v.int_value);
        }
      }
      std::sort(out.literals.begin(), out.literals.end());
      break;
    case Predicate::Kind::kRange:
      out.has_range = true;
      out.lo = p.lo;
      out.hi = p.hi;
      break;
    case Predicate::Kind::kIsNull:
      break;
  }
  return out;
}

Status WriteFileAtomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open " + tmp);
  }
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), file) == body.size();
  std::fclose(file);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

}  // namespace

Result<ServeResult> ServeTicket::Wait() {
  MutexLock lock(mu_);
  while (!outcome_.has_value()) {
    cv_.Wait(lock);
  }
  return *outcome_;
}

std::optional<Result<ServeResult>> ServeTicket::WaitFor(double timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  MutexLock lock(mu_);
  while (!outcome_.has_value()) {
    const double remaining =
        std::chrono::duration<double, std::milli>(
            deadline - std::chrono::steady_clock::now())
            .count();
    if (remaining <= 0.0) {
      return std::nullopt;
    }
    cv_.WaitFor(lock, remaining);
  }
  return *outcome_;
}

void ServeTicket::Complete(Result<ServeResult> outcome) {
  {
    const MutexLock lock(mu_);
    outcome_ = std::move(outcome);
  }
  cv_.NotifyAll();
}

QueryService::QueryService(const ServeOptions& options)
    : options_(options),
      snapshots_(options.reader_slots),
      pool_(options.worker_threads) {
  const ServeTelemetryOptions& telemetry = options_.telemetry;
  if (telemetry.enabled) {
    sampler_ = std::make_unique<obs::TraceSampler>(telemetry.sample_rate);
    trace_ring_ =
        std::make_unique<obs::TraceRing>(telemetry.trace_ring_capacity);
    slow_log_ = std::make_unique<obs::SlowQueryLog>(
        telemetry.slow_log_capacity, telemetry.slow_threshold_ms);
    if (!telemetry.workload_log_path.empty()) {
      workload_recorder_ = std::make_unique<obs::WorkloadRecorder>(
          telemetry.workload_log_path, telemetry.workload_options);
    }
  }
}

QueryService::~QueryService() { Shutdown().IgnoreError(); }

Status QueryService::Start(std::unique_ptr<Table> table,
                           std::vector<IndexSpec> specs) {
  bool expected = false;
  if (!start_guard_.compare_exchange_strong(expected, true,
                                            std::memory_order_seq_cst)) {
    return Status::FailedPrecondition("service already started");
  }
  if (!options_.wal_path.empty()) {
    const Status recovered = RecoverFromWal(*table);
    if (!recovered.ok()) {
      start_guard_.store(false, std::memory_order_seq_cst);
      return recovered;
    }
  }
  SnapshotOptions snapshot_options;
  snapshot_options.segment_rows = options_.segment_rows;
  snapshot_options.shard_pool = options_.shard_pool;
  Result<std::unique_ptr<DatabaseSnapshot>> snapshot = DatabaseSnapshot::Create(
      std::move(table), std::move(specs), /*epoch=*/0, snapshot_options);
  if (!snapshot.ok()) {
    start_guard_.store(false, std::memory_order_seq_cst);
    return snapshot.status();
  }
  {
    const MutexLock lock(published_mu_);
    published_row_counts_.assign(1, snapshot.value()->NumRows());
  }
  snapshots_.Publish(std::move(snapshot).value());
  started_.store(true, std::memory_order_seq_cst);
  return Status::OK();
}

Status QueryService::RecoverFromWal(Table& table) {
  EBI_ASSIGN_OR_RETURN(const engine::WalReplayResult replay,
                       engine::Wal::Replay(options_.wal_path));
  for (const engine::WalRecord& record : replay.records) {
    if (record.type != engine::kWalRecordRowBatch) {
      continue;  // Checkpoints and future record types carry no rows.
    }
    EBI_ASSIGN_OR_RETURN(const engine::RowBatch batch,
                         engine::DecodeRowBatch(record.payload));
    if (batch.first_row + batch.rows.size() <= table.NumRows()) {
      continue;  // Already reflected in the base table: idempotent skip.
    }
    if (batch.first_row > table.NumRows()) {
      return Status::Internal(
          "WAL gap: batch at lsn " + std::to_string(record.lsn) +
          " starts at row " + std::to_string(batch.first_row) +
          " but the table holds " + std::to_string(table.NumRows()));
    }
    // A batch may straddle the table's edge if the base table captured a
    // prefix of it; re-apply only the missing suffix.
    for (size_t i = table.NumRows() - batch.first_row; i < batch.rows.size();
         ++i) {
      EBI_RETURN_IF_ERROR(table.AppendRow(batch.rows[i]));
    }
  }
  engine::WalOptions wal_options;
  wal_options.sync_on_append = options_.wal_sync_on_append;
  wal_options.fail_after_appends = options_.wal_fail_after_appends;
  EBI_ASSIGN_OR_RETURN(wal_,
                       engine::Wal::Open(options_.wal_path, wal_options));
  return Status::OK();
}

Result<std::shared_ptr<ServeTicket>> QueryService::Submit(
    std::vector<Predicate> predicates, const RequestOptions& options) {
  if (!started_.load(std::memory_order_seq_cst)) {
    return Status::FailedPrecondition("service not started");
  }
  // Count ourselves in-flight *before* checking the drain flag: Shutdown
  // sets the flag and then waits for in_flight_ to hit zero, so either it
  // sees our increment and waits for us, or we see the flag and back out.
  const size_t admitted =
      in_flight_.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (draining_.load(std::memory_order_seq_cst)) {
    FinishRequest();
    DrainRejectedCounter()->Increment();
    return Status::FailedPrecondition("service is draining; request rejected");
  }
  SubmittedCounter()->Increment();
  if (admitted > options_.queue_depth) {
    FinishRequest();
    ShedCounter()->Increment();
    return Status::Overloaded("queue depth " +
                              std::to_string(options_.queue_depth) +
                              " reached; request shed");
  }
  QueueDepthHistogram()->Observe(static_cast<double>(admitted));

  const Clock::time_point submitted = Clock::now();
  std::optional<Clock::time_point> deadline;
  const bool has_deadline =
      options.deadline_ms.has_value() || options_.default_deadline_ms > 0;
  if (has_deadline) {
    const double limit_ms = options.deadline_ms.has_value()
                                ? *options.deadline_ms
                                : options_.default_deadline_ms;
    // Expired on arrival: reject at admission, before the request costs a
    // pool dispatch, a snapshot pin or a plan. Without this check a
    // deadline_ms <= 0 request would occupy a queue slot only to be
    // bounced by RunRequest's pre-pin deadline check.
    if (limit_ms <= 0.0) {
      FinishRequest();
      DeadlineCounter()->Increment();
      return Status::DeadlineExceeded(
          "deadline of " + std::to_string(limit_ms) +
          " ms already expired on arrival; rejected at admission");
    }
    deadline = submitted + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   limit_ms));
  }

  auto ticket = std::make_shared<ServeTicket>();
  pool_.Submit([this, ticket, predicates = std::move(predicates),
                trace = options.trace, submitted, deadline]() mutable {
    RunRequest(ticket, std::move(predicates), trace, submitted, deadline);
  });
  return ticket;
}

Result<ServeResult> QueryService::Select(
    const std::vector<Predicate>& predicates, const RequestOptions& options) {
  EBI_ASSIGN_OR_RETURN(std::shared_ptr<ServeTicket> ticket,
                       Submit(predicates, options));
  return ticket->Wait();
}

void QueryService::RunRequest(
    std::shared_ptr<ServeTicket> ticket, std::vector<Predicate> predicates,
    obs::QueryTrace* trace, Clock::time_point submitted,
    std::optional<Clock::time_point> deadline) {
  const Clock::time_point start = Clock::now();
  const double queue_ms = MsBetween(submitted, start);
  QueueHistogram()->Observe(queue_ms);

  // Sampling decision, up front: sampled requests without a caller trace
  // record into a local trace whose root the ring captures afterwards.
  const bool sampled = sampler_ != nullptr && sampler_->Decide();
  obs::QueryTrace local_trace;
  obs::QueryTrace* effective_trace =
      trace != nullptr ? trace : (sampled ? &local_trace : nullptr);

  // Stage timings, filled as the request progresses (DESIGN.md §11).
  double pin_ms = 0.0;
  double plan_ms = 0.0;
  double execute_ms = 0.0;
  uint64_t epoch = 0;
  uint64_t rows_total = 0;

  Result<ServeResult> outcome = [&]() -> Result<ServeResult> {
    if (deadline.has_value() && start >= *deadline) {
      DeadlineCounter()->Increment();
      return Status::DeadlineExceeded(
          "request spent " + std::to_string(queue_ms) +
          " ms queued, past its deadline");
    }
    const Clock::time_point pin_start = Clock::now();
    SnapshotManager::Pin pin = snapshots_.Acquire();
    pin_ms = MsBetween(pin_start, Clock::now());
    PinHistogram()->Observe(pin_ms);
    if (!pin) {
      return Status::FailedPrecondition("no snapshot published");
    }
    epoch = pin->epoch();
    rows_total = pin->NumRows();
    obs::TraceScope scope(effective_trace);
    obs::ScopedSpan span("serve.request");
    span.Attr("epoch", pin->epoch());
    span.Attr("queue_ms", queue_ms);
    span.Attr("pin_ms", pin_ms);
    const Clock::time_point plan_start = Clock::now();
    SelectionExecutor executor = pin->MakeExecutor();
    if (workload_recorder_ != nullptr) {
      executor.EnablePredicateStats(true);
    }
    plan_ms = MsBetween(plan_start, Clock::now());
    PlanHistogram()->Observe(plan_ms);
    const Clock::time_point execute_start = Clock::now();
    Result<SelectionResult> selected = executor.Select(predicates);
    execute_ms = MsBetween(execute_start, Clock::now());
    ExecuteHistogram()->Observe(execute_ms);
    if (!selected.ok()) {
      return selected.status();
    }
    ServeResult result;
    result.selection = std::move(selected).value();
    result.epoch = pin->epoch();
    result.queue_ms = queue_ms;
    result.run_ms = MsBetween(start, Clock::now());
    span.Attr("rows", result.selection.count);
    return result;
  }();

  const double total_ms = MsBetween(submitted, Clock::now());
  LatencyHistogram()->Observe(total_ms);

  // Telemetry capture, after the result is in hand but before the ticket
  // resolves — so tests that Wait() and then inspect the sinks observe
  // their own request. (The outcome itself is moved out below; capture
  // reads only what it needs.)
  const bool slow = slow_log_ != nullptr && slow_log_->IsSlow(total_ms);
  if (sampled) {
    TraceSampledCounter()->Increment();
    obs::CapturedTrace capture;
    capture.elapsed_ms = total_ms;
    capture.slow = slow;
    // A caller-supplied trace stays with the caller; copy its root.
    capture.root = effective_trace == &local_trace
                       ? std::move(local_trace.root())
                       : effective_trace->root();
    trace_ring_->Push(std::move(capture));
  }
  if (slow) {
    SlowQueriesCounter()->Increment();
    obs::SlowQueryEntry entry;
    entry.epoch = epoch;
    entry.query = PredicatesText(predicates);
    entry.rows = outcome.ok() ? outcome.value().selection.count : 0;
    entry.queue_ms = queue_ms;
    entry.pin_ms = pin_ms;
    entry.plan_ms = plan_ms;
    entry.execute_ms = execute_ms;
    entry.total_ms = total_ms;
    // Slow queries are captured unconditionally from data already in
    // hand; the span tree rides along only when one was recorded anyway.
    if (trace != nullptr) {
      entry.root = trace->root();
    }
    slow_log_->Push(std::move(entry));
  }
  if (workload_recorder_ != nullptr && outcome.ok()) {
    const SelectionResult& selection = outcome.value().selection;
    obs::WorkloadRecord record;
    record.epoch = epoch;
    record.rows_selected = selection.count;
    record.rows_total = rows_total;
    record.selectivity =
        rows_total > 0
            ? static_cast<double>(selection.count) / rows_total
            : 0.0;
    record.queue_ms = queue_ms;
    record.pin_ms = pin_ms;
    record.plan_ms = plan_ms;
    record.execute_ms = execute_ms;
    record.total_ms = total_ms;
    record.vectors = selection.io.vectors_read;
    record.pages = selection.io.pages_read;
    record.bytes = selection.io.bytes_read;
    record.kernel = kernels::Active().name;
    record.predicates.reserve(predicates.size());
    for (size_t i = 0; i < predicates.size(); ++i) {
      const PredicateStat* stat = i < selection.predicate_stats.size()
                                      ? &selection.predicate_stats[i]
                                      : nullptr;
      record.predicates.push_back(ToWorkloadPredicate(predicates[i], stat));
    }
    if (workload_recorder_->Append(std::move(record)).ok()) {
      WorkloadRecordsCounter()->Increment();
      // Forward newly observed rotations to the monotonic counter.
      const uint64_t rotations = workload_recorder_->Rotations();
      const uint64_t reported = rotations_reported_.exchange(
          rotations, std::memory_order_seq_cst);
      if (rotations > reported) {
        WorkloadRotationsCounter()->Increment(rotations - reported);
      }
    }
  }

  ticket->Complete(std::move(outcome));
  completed_.fetch_add(1, std::memory_order_relaxed);
  MaybeExportTelemetry();
  FinishRequest();
}

void QueryService::MaybeExportTelemetry() {
  const size_t every = options_.telemetry.export_every;
  if (every == 0 || options_.telemetry.export_path_prefix.empty()) {
    return;
  }
  if (completed_.load(std::memory_order_relaxed) % every != 0) {
    return;
  }
  // Best-effort: losing the race just means another worker (or a later
  // period) exports. Never block the serve path on file I/O.
  if (!export_mu_.TryLock()) {
    return;
  }
  ExportTelemetryLocked().IgnoreError();
  export_mu_.Unlock();
}

Status QueryService::ExportTelemetry() {
  const MutexLock lock(export_mu_);
  return ExportTelemetryLocked();
}

Status QueryService::ExportTelemetryLocked() {
  const std::string& prefix = options_.telemetry.export_path_prefix;
  if (prefix.empty()) {
    return Status::FailedPrecondition("no export_path_prefix configured");
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  EBI_RETURN_IF_ERROR(
      WriteFileAtomic(prefix + ".prom", registry.RenderPrometheus()));
  EBI_RETURN_IF_ERROR(
      WriteFileAtomic(prefix + ".json", registry.RenderJson()));
  if (workload_recorder_ != nullptr) {
    EBI_RETURN_IF_ERROR(workload_recorder_->Flush());
  }
  MetricsExportsCounter()->Increment();
  return Status::OK();
}

void QueryService::FinishRequest() {
  if (in_flight_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    const MutexLock lock(drain_mu_);
    drain_cv_.NotifyAll();
  }
}

Status QueryService::ValidateRows(
    const Table& table, const std::vector<std::vector<Value>>& rows) {
  for (const std::vector<Value>& values : rows) {
    if (values.size() != table.NumColumns()) {
      return Status::InvalidArgument(
          "row arity " + std::to_string(values.size()) + " != " +
          std::to_string(table.NumColumns()) + " columns");
    }
    for (size_t i = 0; i < values.size(); ++i) {
      const Value& v = values[i];
      if (v.is_null()) {
        continue;
      }
      const Column::Type type = table.column(i).type();
      const bool matches =
          (type == Column::Type::kInt64 && v.kind == Value::Kind::kInt64) ||
          (type == Column::Type::kString && v.kind == Value::Kind::kString);
      if (!matches) {
        return Status::InvalidArgument("type mismatch in column " +
                                       table.column(i).name());
      }
    }
  }
  return Status::OK();
}

Result<uint64_t> QueryService::Append(std::vector<std::vector<Value>> rows) {
  if (!started_.load(std::memory_order_seq_cst)) {
    return Status::FailedPrecondition("service not started");
  }
  if (rows.empty()) {
    return CurrentEpoch();
  }
  {
    // Validate against the immutable schema up front, so a malformed
    // batch is rejected here and cannot fail the combined publish that
    // other callers' batches ride on.
    SnapshotManager::Pin pin = snapshots_.Acquire();
    if (!pin) {
      return Status::FailedPrecondition("no snapshot published");
    }
    EBI_RETURN_IF_ERROR(ValidateRows(pin->table(), rows));
  }

  MutexLock lock(append_mu_);
  if (draining_.load(std::memory_order_seq_cst)) {
    DrainRejectedCounter()->Increment();
    return Status::FailedPrecondition("service is draining; append rejected");
  }
  const uint64_t ticket = ++next_append_ticket_;
  StagedAppend staged;
  staged.rows = std::move(rows);
  staged.ticket = ticket;
  staged_.push_back(std::move(staged));

  if (!writer_active_) {
    // Become the combining writer: drain everything staged (our batch
    // included, possibly others'), publish once per round, and hand out
    // outcomes. The lock is released around each publish so new callers
    // keep staging onto the next round instead of queueing behind it.
    writer_active_ = true;
    while (!staged_.empty()) {
      std::vector<StagedAppend> batch;
      batch.swap(staged_);
      lock.Unlock();
      uint64_t next_epoch = 0;
      const Status status = CombineAndPublish(batch, &next_epoch);
      lock.Lock();
      for (const StagedAppend& done : batch) {
        AppendOutcome outcome;
        outcome.epoch = status.ok() ? next_epoch : 0;
        outcome.status = status;
        append_outcomes_[done.ticket] = outcome;
      }
      append_cv_.NotifyAll();
    }
    writer_active_ = false;
    append_cv_.NotifyAll();
  } else {
    while (append_outcomes_.find(ticket) == append_outcomes_.end()) {
      append_cv_.Wait(lock);
    }
  }

  const auto it = append_outcomes_.find(ticket);
  AppendOutcome outcome = it->second;
  append_outcomes_.erase(it);
  if (!outcome.status.ok()) {
    return outcome.status;
  }
  return outcome.epoch;
}

Status QueryService::CombineAndPublish(std::vector<StagedAppend>& batch,
                                       uint64_t* next_epoch) {
  SnapshotManager::Pin pin = snapshots_.Acquire();
  *next_epoch = pin->epoch() + 1;
  size_t total = 0;
  for (const StagedAppend& staged : batch) {
    total += staged.rows.size();
  }
  std::vector<std::vector<Value>> rows;
  rows.reserve(total);
  for (StagedAppend& staged : batch) {
    for (std::vector<Value>& row : staged.rows) {
      rows.push_back(std::move(row));
    }
  }

  // Durable mode: the batch must be WAL-durable *before* the publish.
  // Append + fsync returning OK is the commit point — if we crash
  // between here and Publish, recovery replays the batch from the log.
  Status wal_status = Status::OK();
  if (wal_ != nullptr && !rows.empty()) {
    const std::vector<uint8_t> payload =
        engine::EncodeRowBatch(pin->NumRows(), rows);
    const Result<uint64_t> lsn =
        wal_->Append(engine::kWalRecordRowBatch, payload);
    if (!lsn.ok()) {
      wal_status = lsn.status();
    }
  }

  Result<std::unique_ptr<DatabaseSnapshot>> next =
      wal_status.ok() ? pin->CloneWithRows(rows, *next_epoch)
                      : Result<std::unique_ptr<DatabaseSnapshot>>(wal_status);
  const Status status = next.ok() ? Status::OK() : next.status();
  if (status.ok()) {
    {
      const MutexLock plock(published_mu_);
      if (published_row_counts_.size() <= *next_epoch) {
        published_row_counts_.resize(*next_epoch + 1, 0);
      }
      published_row_counts_[*next_epoch] = next.value()->NumRows();
    }
    snapshots_.Publish(std::move(next).value());
    PublishCounter()->Increment();
    // Forward newly observed reclaims to the monotonic counter (only
    // the combiner updates the cursor, so the delta is exact).
    const uint64_t reclaimed = snapshots_.ReclaimedCount();
    const uint64_t reported =
        reclaim_reported_.exchange(reclaimed, std::memory_order_seq_cst);
    if (reclaimed > reported) {
      ReclaimedCounter()->Increment(reclaimed - reported);
    }
  }
  pin.Release();
  return status;
}

Status QueryService::Shutdown() {
  draining_.store(true, std::memory_order_seq_cst);
  {
    MutexLock lock(append_mu_);
    while (writer_active_ || !staged_.empty()) {
      append_cv_.Wait(lock);
    }
  }
  {
    MutexLock lock(drain_mu_);
    while (in_flight_.load(std::memory_order_seq_cst) != 0) {
      drain_cv_.Wait(lock);
    }
  }
  // Quiescent now: sweep any retirees a contended unpin left behind and
  // bring the reclaim counter up to date.
  snapshots_.Reclaim();
  const uint64_t reclaimed = snapshots_.ReclaimedCount();
  const uint64_t reported =
      reclaim_reported_.exchange(reclaimed, std::memory_order_seq_cst);
  if (reclaimed > reported) {
    ReclaimedCounter()->Increment(reclaimed - reported);
  }
  // Drained: everything staged has published, so the log is complete.
  // The sync covers wal_sync_on_append=false (group commit) mode.
  if (wal_ != nullptr) {
    wal_->Sync().IgnoreError();
  }
  // Final telemetry flush: the workload log must be durable once
  // Shutdown returns, and a configured exporter writes its last state.
  if (workload_recorder_ != nullptr) {
    workload_recorder_->Flush().IgnoreError();
  }
  if (!options_.telemetry.export_path_prefix.empty()) {
    ExportTelemetry().IgnoreError();
  }
  return Status::OK();
}

std::vector<size_t> QueryService::PublishedRowCounts() const {
  const MutexLock lock(published_mu_);
  return published_row_counts_;
}

}  // namespace serve
}  // namespace ebi
