#include "serve/query_service.h"

#include <string>

#include "obs/metrics.h"
#include "storage/column.h"

namespace ebi {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

// Registry lookups are mutex-guarded; cache the stable pointers.
obs::Counter* SubmittedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricServeSubmitted);
  return counter;
}

obs::Counter* ShedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricServeShed);
  return counter;
}

obs::Counter* DeadlineCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      obs::kMetricServeDeadlineExceeded);
  return counter;
}

obs::Counter* PublishCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricServePublishes);
  return counter;
}

obs::Counter* ReclaimedCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      obs::kMetricServeSnapshotsReclaimed);
  return counter;
}

obs::Histogram* LatencyHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(obs::kMetricServeLatencyMs);
  return histogram;
}

obs::Histogram* QueueHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(obs::kMetricServeQueueMs);
  return histogram;
}

obs::Histogram* QueueDepthHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          obs::kMetricServeQueueDepth);
  return histogram;
}

}  // namespace

Result<ServeResult> ServeTicket::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return outcome_.has_value(); });
  return *outcome_;
}

void ServeTicket::Complete(Result<ServeResult> outcome) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    outcome_ = std::move(outcome);
  }
  cv_.notify_all();
}

QueryService::QueryService(const ServeOptions& options)
    : options_(options),
      snapshots_(options.reader_slots),
      pool_(options.worker_threads) {}

QueryService::~QueryService() { Shutdown().IgnoreError(); }

Status QueryService::Start(std::unique_ptr<Table> table,
                           std::vector<IndexSpec> specs) {
  bool expected = false;
  if (!start_guard_.compare_exchange_strong(expected, true,
                                            std::memory_order_seq_cst)) {
    return Status::FailedPrecondition("service already started");
  }
  SnapshotOptions snapshot_options;
  snapshot_options.segment_rows = options_.segment_rows;
  snapshot_options.shard_pool = options_.shard_pool;
  Result<std::unique_ptr<DatabaseSnapshot>> snapshot = DatabaseSnapshot::Create(
      std::move(table), std::move(specs), /*epoch=*/0, snapshot_options);
  if (!snapshot.ok()) {
    start_guard_.store(false, std::memory_order_seq_cst);
    return snapshot.status();
  }
  {
    const std::lock_guard<std::mutex> lock(published_mu_);
    published_row_counts_.assign(1, snapshot.value()->NumRows());
  }
  snapshots_.Publish(std::move(snapshot).value());
  started_.store(true, std::memory_order_seq_cst);
  return Status::OK();
}

Result<std::shared_ptr<ServeTicket>> QueryService::Submit(
    std::vector<Predicate> predicates, const RequestOptions& options) {
  if (!started_.load(std::memory_order_seq_cst)) {
    return Status::FailedPrecondition("service not started");
  }
  // Count ourselves in-flight *before* checking the drain flag: Shutdown
  // sets the flag and then waits for in_flight_ to hit zero, so either it
  // sees our increment and waits for us, or we see the flag and back out.
  const size_t admitted =
      in_flight_.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (draining_.load(std::memory_order_seq_cst)) {
    FinishRequest();
    return Status::FailedPrecondition("service is draining; request rejected");
  }
  SubmittedCounter()->Increment();
  if (admitted > options_.queue_depth) {
    FinishRequest();
    ShedCounter()->Increment();
    return Status::Overloaded("queue depth " +
                              std::to_string(options_.queue_depth) +
                              " reached; request shed");
  }
  QueueDepthHistogram()->Observe(static_cast<double>(admitted));

  const Clock::time_point submitted = Clock::now();
  std::optional<Clock::time_point> deadline;
  const bool has_deadline =
      options.deadline_ms.has_value() || options_.default_deadline_ms > 0;
  if (has_deadline) {
    const double limit_ms = options.deadline_ms.has_value()
                                ? *options.deadline_ms
                                : options_.default_deadline_ms;
    deadline = submitted + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   limit_ms));
  }

  auto ticket = std::make_shared<ServeTicket>();
  pool_.Submit([this, ticket, predicates = std::move(predicates),
                trace = options.trace, submitted, deadline]() mutable {
    RunRequest(ticket, std::move(predicates), trace, submitted, deadline);
  });
  return ticket;
}

Result<ServeResult> QueryService::Select(
    const std::vector<Predicate>& predicates, const RequestOptions& options) {
  EBI_ASSIGN_OR_RETURN(std::shared_ptr<ServeTicket> ticket,
                       Submit(predicates, options));
  return ticket->Wait();
}

void QueryService::RunRequest(
    std::shared_ptr<ServeTicket> ticket, std::vector<Predicate> predicates,
    obs::QueryTrace* trace, Clock::time_point submitted,
    std::optional<Clock::time_point> deadline) {
  const Clock::time_point start = Clock::now();
  const double queue_ms = MsBetween(submitted, start);
  QueueHistogram()->Observe(queue_ms);

  Result<ServeResult> outcome = [&]() -> Result<ServeResult> {
    if (deadline.has_value() && start >= *deadline) {
      DeadlineCounter()->Increment();
      return Status::DeadlineExceeded(
          "request spent " + std::to_string(queue_ms) +
          " ms queued, past its deadline");
    }
    SnapshotManager::Pin pin = snapshots_.Acquire();
    if (!pin) {
      return Status::FailedPrecondition("no snapshot published");
    }
    obs::TraceScope scope(trace);
    obs::ScopedSpan span("serve.request");
    span.Attr("epoch", pin->epoch());
    span.Attr("queue_ms", queue_ms);
    SelectionExecutor executor = pin->MakeExecutor();
    Result<SelectionResult> selected = executor.Select(predicates);
    if (!selected.ok()) {
      return selected.status();
    }
    ServeResult result;
    result.selection = std::move(selected).value();
    result.epoch = pin->epoch();
    result.queue_ms = queue_ms;
    result.run_ms = MsBetween(start, Clock::now());
    span.Attr("rows", result.selection.count);
    return result;
  }();

  LatencyHistogram()->Observe(MsBetween(submitted, Clock::now()));
  ticket->Complete(std::move(outcome));
  FinishRequest();
}

void QueryService::FinishRequest() {
  if (in_flight_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    const std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

Status QueryService::ValidateRows(
    const Table& table, const std::vector<std::vector<Value>>& rows) {
  for (const std::vector<Value>& values : rows) {
    if (values.size() != table.NumColumns()) {
      return Status::InvalidArgument(
          "row arity " + std::to_string(values.size()) + " != " +
          std::to_string(table.NumColumns()) + " columns");
    }
    for (size_t i = 0; i < values.size(); ++i) {
      const Value& v = values[i];
      if (v.is_null()) {
        continue;
      }
      const Column::Type type = table.column(i).type();
      const bool matches =
          (type == Column::Type::kInt64 && v.kind == Value::Kind::kInt64) ||
          (type == Column::Type::kString && v.kind == Value::Kind::kString);
      if (!matches) {
        return Status::InvalidArgument("type mismatch in column " +
                                       table.column(i).name());
      }
    }
  }
  return Status::OK();
}

Result<uint64_t> QueryService::Append(std::vector<std::vector<Value>> rows) {
  if (!started_.load(std::memory_order_seq_cst)) {
    return Status::FailedPrecondition("service not started");
  }
  if (rows.empty()) {
    return CurrentEpoch();
  }
  {
    // Validate against the immutable schema up front, so a malformed
    // batch is rejected here and cannot fail the combined publish that
    // other callers' batches ride on.
    SnapshotManager::Pin pin = snapshots_.Acquire();
    if (!pin) {
      return Status::FailedPrecondition("no snapshot published");
    }
    EBI_RETURN_IF_ERROR(ValidateRows(pin->table(), rows));
  }

  std::unique_lock<std::mutex> lock(append_mu_);
  if (draining_.load(std::memory_order_seq_cst)) {
    return Status::FailedPrecondition("service is draining; append rejected");
  }
  const uint64_t ticket = ++next_append_ticket_;
  StagedAppend staged;
  staged.rows = std::move(rows);
  staged.ticket = ticket;
  staged_.push_back(std::move(staged));

  if (!writer_active_) {
    // Become the combining writer: drain everything staged (our batch
    // included, possibly others'), publish, and hand out outcomes.
    writer_active_ = true;
    RunCombiner(lock);
  } else {
    append_cv_.wait(lock, [&] {
      return append_outcomes_.find(ticket) != append_outcomes_.end();
    });
  }

  const auto it = append_outcomes_.find(ticket);
  AppendOutcome outcome = it->second;
  append_outcomes_.erase(it);
  if (!outcome.status.ok()) {
    return outcome.status;
  }
  return outcome.epoch;
}

void QueryService::RunCombiner(std::unique_lock<std::mutex>& lock) {
  while (!staged_.empty()) {
    std::vector<StagedAppend> batch;
    batch.swap(staged_);
    lock.unlock();

    SnapshotManager::Pin pin = snapshots_.Acquire();
    const uint64_t next_epoch = pin->epoch() + 1;
    size_t total = 0;
    for (const StagedAppend& staged : batch) {
      total += staged.rows.size();
    }
    std::vector<std::vector<Value>> rows;
    rows.reserve(total);
    for (StagedAppend& staged : batch) {
      for (std::vector<Value>& row : staged.rows) {
        rows.push_back(std::move(row));
      }
    }

    Result<std::unique_ptr<DatabaseSnapshot>> next =
        pin->CloneWithRows(rows, next_epoch);
    const Status status = next.ok() ? Status::OK() : next.status();
    if (status.ok()) {
      {
        const std::lock_guard<std::mutex> plock(published_mu_);
        if (published_row_counts_.size() <= next_epoch) {
          published_row_counts_.resize(next_epoch + 1, 0);
        }
        published_row_counts_[next_epoch] = next.value()->NumRows();
      }
      snapshots_.Publish(std::move(next).value());
      PublishCounter()->Increment();
      // Forward newly observed reclaims to the monotonic counter (only
      // the combiner updates the cursor, so the delta is exact).
      const uint64_t reclaimed = snapshots_.ReclaimedCount();
      const uint64_t reported =
          reclaim_reported_.exchange(reclaimed, std::memory_order_seq_cst);
      if (reclaimed > reported) {
        ReclaimedCounter()->Increment(reclaimed - reported);
      }
    }
    pin.Release();

    lock.lock();
    for (const StagedAppend& staged : batch) {
      AppendOutcome outcome;
      outcome.epoch = status.ok() ? next_epoch : 0;
      outcome.status = status;
      append_outcomes_[staged.ticket] = outcome;
    }
    append_cv_.notify_all();
  }
  writer_active_ = false;
  append_cv_.notify_all();
}

Status QueryService::Shutdown() {
  draining_.store(true, std::memory_order_seq_cst);
  {
    std::unique_lock<std::mutex> lock(append_mu_);
    append_cv_.wait(lock, [&] { return !writer_active_ && staged_.empty(); });
  }
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [&] {
      return in_flight_.load(std::memory_order_seq_cst) == 0;
    });
  }
  // Quiescent now: sweep any retirees a contended unpin left behind and
  // bring the reclaim counter up to date.
  snapshots_.Reclaim();
  const uint64_t reclaimed = snapshots_.ReclaimedCount();
  const uint64_t reported =
      reclaim_reported_.exchange(reclaimed, std::memory_order_seq_cst);
  if (reclaimed > reported) {
    ReclaimedCounter()->Increment(reclaimed - reported);
  }
  return Status::OK();
}

std::vector<size_t> QueryService::PublishedRowCounts() const {
  const std::lock_guard<std::mutex> lock(published_mu_);
  return published_row_counts_;
}

}  // namespace serve
}  // namespace ebi
