#ifndef EBI_QUERY_AGGREGATES_H_
#define EBI_QUERY_AGGREGATES_H_

#include <cstdint>

#include "index/bit_sliced_index.h"
#include "storage/column.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace ebi {

/// Aggregate evaluation over selection bitmaps — the paper's Section 5
/// lists SUM/AVG/etc. "evaluated directly on the bitmaps" as follow-up
/// work; COUNT and bit-sliced SUM/AVG are the canonical instances from
/// O'Neil & Quass.

/// COUNT(*) over a selection: one popcount, no data access.
inline size_t CountRows(const BitVector& rows) { return rows.Count(); }

/// SUM(column) over the selected rows, computed on the bit-sliced index
/// (no base-table access).
Result<int64_t> SumBitSliced(BitSlicedIndex* index, const BitVector& rows);

/// AVG(column) over the selected rows via bit-sliced SUM / COUNT.
/// Returns OK with 0 and sets *empty when no rows are selected.
Result<double> AvgBitSliced(BitSlicedIndex* index, const BitVector& rows,
                            bool* empty = nullptr);

/// MIN / MAX / median over the selected rows, computed on the slices.
Result<int64_t> MinBitSliced(BitSlicedIndex* index, const BitVector& rows);
Result<int64_t> MaxBitSliced(BitSlicedIndex* index, const BitVector& rows);
/// The lower median (0.5-quantile); see BitSlicedIndex::Quantile for
/// general N-tiles.
Result<int64_t> MedianBitSliced(BitSlicedIndex* index, const BitVector& rows);

/// Reference SUM by scanning the column (validation baseline). NULL cells
/// are skipped; `rows` should not select deleted rows.
Result<int64_t> SumByScan(const Column& column, const BitVector& rows);

}  // namespace ebi

#endif  // EBI_QUERY_AGGREGATES_H_
