#include "query/maintenance.h"

namespace ebi {

Status MaintenanceDriver::AttachIndex(SecondaryIndex* index) {
  if (index == nullptr) {
    return Status::InvalidArgument("cannot attach a null index");
  }
  for (const SecondaryIndex* existing : indexes_) {
    if (existing == index) {
      return Status::AlreadyExists(
          "index already attached; a second attachment would double-append "
          "it on the next AppendRow");
    }
  }
  indexes_.push_back(index);
  return Status::OK();
}

Status MaintenanceDriver::AppendRows(
    const std::vector<std::vector<Value>>& rows) {
  const size_t first_row = table_->NumRows();
  for (const std::vector<Value>& values : rows) {
    EBI_RETURN_IF_ERROR(table_->AppendRow(values));
  }
  for (SecondaryIndex* index : indexes_) {
    EBI_RETURN_IF_ERROR(index->AppendBatch(first_row, rows.size()));
  }
  return Status::OK();
}

Status MaintenanceDriver::AppendRow(const std::vector<Value>& values) {
  const size_t row = table_->NumRows();
  EBI_RETURN_IF_ERROR(table_->AppendRow(values));
  for (SecondaryIndex* index : indexes_) {
    EBI_RETURN_IF_ERROR(index->Append(row));
  }
  return Status::OK();
}

Status MaintenanceDriver::DeleteRow(size_t row) {
  EBI_RETURN_IF_ERROR(table_->DeleteRow(row));
  for (SecondaryIndex* index : indexes_) {
    EBI_RETURN_IF_ERROR(index->MarkDeleted(row));
  }
  return Status::OK();
}

}  // namespace ebi
