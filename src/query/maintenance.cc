#include "query/maintenance.h"

namespace ebi {

Status MaintenanceDriver::AppendRow(const std::vector<Value>& values) {
  const size_t row = table_->NumRows();
  EBI_RETURN_IF_ERROR(table_->AppendRow(values));
  for (SecondaryIndex* index : indexes_) {
    EBI_RETURN_IF_ERROR(index->Append(row));
  }
  return Status::OK();
}

Status MaintenanceDriver::DeleteRow(size_t row) {
  EBI_RETURN_IF_ERROR(table_->DeleteRow(row));
  for (SecondaryIndex* index : indexes_) {
    EBI_RETURN_IF_ERROR(index->MarkDeleted(row));
  }
  return Status::OK();
}

}  // namespace ebi
