#ifndef EBI_QUERY_EXECUTOR_H_
#define EBI_QUERY_EXECUTOR_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/index.h"
#include "obs/trace.h"
#include "query/predicate.h"
#include "storage/io_accountant.h"
#include "storage/table.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace ebi {

/// What one conjunct selected on its own — the per-predicate observation
/// the workload recorder logs (obs/workload_recorder.h). Collected only
/// when the executor has predicate stats enabled.
struct PredicateStat {
  std::string column;
  /// Predicate::OpTag() of the conjunct.
  std::string op;
  /// Predicate::Fingerprint() of the conjunct.
  uint64_t fingerprint = 0;
  /// Rows this predicate's bitmap selected before the conjunction AND.
  size_t rows = 0;
};

/// Result of a conjunctive selection.
struct SelectionResult {
  /// Qualifying rows (existing, non-deleted tuples only).
  BitVector rows;
  /// I/O this selection performed.
  IoStats io;
  /// Number of qualifying rows (rows.Count(), precomputed).
  size_t count = 0;
  /// Per-conjunct observations, in predicate order; empty unless
  /// SelectionExecutor::EnablePredicateStats(true) was called.
  std::vector<PredicateStat> predicate_stats;
};

/// Removes the NULL rows of `column_name` from `rows` — the NULL-mask step
/// of negated predicates. Uses the index's NULL vector when it has one,
/// otherwise a charged column scan. Shared by the executor and planner.
Status MaskNullRows(const Table& table, const std::string& column_name,
                    SecondaryIndex* index, IoAccountant* io,
                    BitVector* rows);

/// Evaluates conjunctive selections over one table using registered
/// per-column indexes: each predicate is answered by its column's index
/// and the result bitmaps are ANDed — the bitmap-index cooperativity that
/// Section 2.1 contrasts with compound-key B-trees.
class SelectionExecutor {
 public:
  SelectionExecutor(const Table* table, IoAccountant* io)
      : table_(table), io_(io) {}

  /// Registers the index answering predicates on `column`. One index per
  /// column; the last registration wins.
  void RegisterIndex(const std::string& column, SecondaryIndex* index) {
    indexes_[column] = index;
  }

  /// Collect per-conjunct PredicateStats in Select results. Off by
  /// default: the extra popcount per predicate is cheap but not free,
  /// and only the workload recorder consumes the stats.
  void EnablePredicateStats(bool on) { predicate_stats_ = on; }
  bool predicate_stats_enabled() const { return predicate_stats_; }

  /// Evaluates the conjunction of `predicates`. Every referenced column
  /// must have a registered index. Records an executor.select trace span
  /// (with one predicate child per conjunct) when a trace sink is
  /// installed; a no-op otherwise.
  Result<SelectionResult> Select(const std::vector<Predicate>& predicates);

  /// EXPLAIN entry point: runs Select with `trace` installed as the
  /// active sink (see AccessPathPlanner::ExplainSelect).
  Result<SelectionResult> ExplainSelect(
      const std::vector<Predicate>& predicates, obs::QueryTrace* trace);

  /// Evaluates a disjunction of conjunctions (disjunctive normal form):
  /// rows satisfying ANY of the conjunctive branches. Cross-column ORs —
  /// e.g. "product = 3 OR region = 7" — are one bitmap OR per branch,
  /// the cooperativity argument of Section 2.1 extended to disjunction.
  Result<SelectionResult> SelectDnf(
      const std::vector<std::vector<Predicate>>& branches);

  /// Reference evaluation by full table scan (no indexes); used by tests
  /// and benches to validate index answers.
  Result<BitVector> SelectByScan(
      const std::vector<Predicate>& predicates) const;

  /// Scan reference for SelectDnf.
  Result<BitVector> SelectDnfByScan(
      const std::vector<std::vector<Predicate>>& branches) const;

 private:
  Result<BitVector> EvaluateOne(const Predicate& predicate);
  /// Removes NULL rows of `column_name` from `rows` (for negated
  /// predicates), using the index's NULL vector when it has one.
  Status MaskNulls(const std::string& column_name, SecondaryIndex* index,
                   BitVector* rows) const;
  /// Scan-evaluates one predicate on one row.
  Result<bool> RowMatches(const Predicate& predicate, const Column& column,
                          size_t row) const;

  const Table* table_;
  IoAccountant* io_;
  bool predicate_stats_ = false;
  std::unordered_map<std::string, SecondaryIndex*> indexes_;
};

}  // namespace ebi

#endif  // EBI_QUERY_EXECUTOR_H_
