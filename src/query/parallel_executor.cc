#include "query/parallel_executor.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "util/kernels/kernels.h"

namespace ebi {

Status ParallelSelectionExecutor::CreateIndex(const std::string& column,
                                              IndexKind kind) {
  const size_t n = states_.size();
  // Construct serially (cheap), build in parallel (the O(n) pass).
  std::vector<SecondaryIndex*> built(n, nullptr);
  for (size_t i = 0; i < n; ++i) {
    const Table& segment = segments_->segment(i);
    EBI_ASSIGN_OR_RETURN(const Column* col, segment.FindColumn(column));
    std::unique_ptr<SecondaryIndex> index = MakeSecondaryIndex(
        kind, col, &segment.existence(), states_[i].io.get());
    if (index == nullptr) {
      return Status::Internal("unknown index kind");
    }
    built[i] = index.get();
    states_[i].indexes.push_back(std::move(index));
  }
  std::vector<Status> statuses(n);
  pool_->ParallelFor(0, n, [&built, &statuses](size_t i) {
    statuses[i] = built[i]->Build();
  });
  for (const Status& status : statuses) {
    EBI_RETURN_IF_ERROR(status);
  }
  for (size_t i = 0; i < n; ++i) {
    states_[i].planner->RegisterIndex(column, built[i]);
  }
  return Status::OK();
}

Result<SelectionResult> ParallelSelectionExecutor::Select(
    const std::vector<Predicate>& predicates) {
  obs::ScopedSpan span("exec.parallel");
  const bool tracing = span.active();
  const auto started = std::chrono::steady_clock::now();
  const size_t n = states_.size();

  std::vector<Status> errors(n);
  std::vector<SelectionResult> parts(n);
  std::vector<std::unique_ptr<obs::QueryTrace>> traces(n);
  pool_->ParallelFor(0, n, [&](size_t i) {
    if (tracing) {
      traces[i] = std::make_unique<obs::QueryTrace>();
    }
    const obs::TraceScope install(tracing ? traces[i].get() : nullptr);
    Result<SelectionResult> one = states_[i].planner->Select(predicates);
    if (one.ok()) {
      parts[i] = std::move(one).value();
    } else {
      errors[i] = one.status();
    }
  });

  // Deterministic merge: segment order, independent of which worker
  // finished first.
  SelectionResult result;
  result.rows = BitVector(segments_->NumRows());
  for (size_t i = 0; i < n; ++i) {
    EBI_RETURN_IF_ERROR(errors[i]);
    result.rows.BlitFrom(parts[i].rows, segments_->RowBegin(i));
    result.count += parts[i].count;
    result.io += parts[i].io;
  }
  // The parent accountant sees the summed delta exactly once, so its
  // cumulative counters match a serial run over the same data.
  io_->ChargeStats(result.io);
  const double latency_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  obs::RecordQuery(result.io, latency_ms);
  if (tracing) {
    span.Attr("segments", n);
    span.Attr("threads", pool_->size());
    // Which SIMD backend the fan-out's bitmap work dispatched to —
    // captured traces from different hosts stay attributable.
    span.Attr("kernel", kernels::Active().name);
    span.Attr("predicates", predicates.size());
    span.Attr("rows", result.count);
    span.AttrIo(result.io);
    for (size_t i = 0; i < n; ++i) {
      obs::TraceSpan seg;
      seg.name = "segment";
      seg.attrs.emplace_back("segment", obs::AttrValue::Uint(i));
      seg.attrs.emplace_back(
          "row_begin", obs::AttrValue::Uint(segments_->RowBegin(i)));
      seg.attrs.emplace_back("rows",
                             obs::AttrValue::Uint(parts[i].count));
      seg.attrs.emplace_back(
          "vectors", obs::AttrValue::Uint(parts[i].io.vectors_read));
      seg.children = std::move(traces[i]->root().children);
      span.AddChild(std::move(seg));
    }
  }
  return result;
}

Result<SelectionResult> ParallelSelectionExecutor::ExplainSelect(
    const std::vector<Predicate>& predicates, obs::QueryTrace* trace) {
  const obs::TraceScope install(trace);
  return Select(predicates);
}

}  // namespace ebi
