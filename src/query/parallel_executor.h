#ifndef EBI_QUERY_PARALLEL_EXECUTOR_H_
#define EBI_QUERY_PARALLEL_EXECUTOR_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "index/index_factory.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "storage/io_accountant.h"
#include "storage/segmented_table.h"
#include "util/status.h"

namespace ebi {

/// Data-parallel conjunctive selection over a SegmentedTable.
///
/// One AccessPathPlanner plus one index set exists per segment; Select
/// fans the whole conjunction across the thread pool (one task per
/// segment, each running the full planner pipeline on its shard against
/// a private IoAccountant), then merges deterministically in segment
/// order:
///
///   - result bitmaps concatenate by row range (BitVector::BlitFrom),
///   - per-segment IoStats sum via IoStats::operator+ and are charged to
///     the parent accountant once,
///   - per-segment trace spans re-parent under an "exec.parallel" span
///     with one "segment" child per shard, so EXPLAIN shows the fan-out.
///
/// Because segments are disjoint, ordered and exhaustive, the merged
/// SelectionResult is bit-identical to SelectionExecutor /
/// AccessPathPlanner::Select on the unpartitioned table for any thread
/// count and any segment size — the determinism contract of DESIGN.md §7.
class ParallelSelectionExecutor {
 public:
  ParallelSelectionExecutor(const SegmentedTable* segments,
                            exec::ThreadPool* pool, IoAccountant* io)
      : segments_(segments), pool_(pool), io_(io) {
    states_.resize(segments->NumSegments());
    for (size_t i = 0; i < states_.size(); ++i) {
      states_[i].io = std::make_unique<IoAccountant>(io->page_size());
      states_[i].planner = std::make_unique<AccessPathPlanner>(
          &segments->segment(i), states_[i].io.get());
    }
  }

  ParallelSelectionExecutor(const ParallelSelectionExecutor&) = delete;
  ParallelSelectionExecutor& operator=(const ParallelSelectionExecutor&) =
      delete;

  /// Builds one shard of `kind` on `column` per segment (in parallel)
  /// and registers it with that segment's planner. Several kinds per
  /// column are allowed — the per-segment planner then picks the
  /// cheapest path per predicate, per segment.
  Status CreateIndex(const std::string& column, IndexKind kind);

  /// Evaluates the conjunction on every segment concurrently and merges
  /// in segment order. Bit-identical to the serial executors.
  Result<SelectionResult> Select(const std::vector<Predicate>& predicates);

  /// EXPLAIN entry point: runs Select with `trace` installed, producing
  /// an exec.parallel span with per-segment children.
  Result<SelectionResult> ExplainSelect(
      const std::vector<Predicate>& predicates, obs::QueryTrace* trace);

  size_t NumSegments() const { return states_.size(); }
  /// The per-segment planner (for tests and introspection).
  AccessPathPlanner* segment_planner(size_t i) {
    return states_[i].planner.get();
  }

 private:
  struct SegmentState {
    std::unique_ptr<IoAccountant> io;
    std::unique_ptr<AccessPathPlanner> planner;
    std::vector<std::unique_ptr<SecondaryIndex>> indexes;
  };

  const SegmentedTable* segments_;
  exec::ThreadPool* pool_;
  IoAccountant* io_;
  std::vector<SegmentState> states_;
};

}  // namespace ebi

#endif  // EBI_QUERY_PARALLEL_EXECUTOR_H_
