#include "query/executor.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace ebi {

Result<BitVector> SelectionExecutor::EvaluateOne(const Predicate& p) {
  const auto it = indexes_.find(p.column);
  if (it == indexes_.end()) {
    return Status::NotFound("no index registered for column " + p.column);
  }
  SecondaryIndex* index = it->second;
  obs::ScopedSpan span("predicate");
  if (span.active()) {
    span.Attr("column", p.column);
    span.Attr("pred", p.ToString());
    span.Attr("index", index->Name());
  }
  switch (p.kind) {
    case Predicate::Kind::kEquals:
      return index->EvaluateEquals(p.value);
    case Predicate::Kind::kIn:
      return index->EvaluateIn(p.values);
    case Predicate::Kind::kRange:
      return index->EvaluateRange(p.lo, p.hi);
    case Predicate::Kind::kIsNull:
      return index->EvaluateIsNull();
    case Predicate::Kind::kNotEquals:
    case Predicate::Kind::kNotIn: {
      // Negation as bitmap complement, restricted to existing non-NULL
      // rows (SQL: NULL satisfies neither side of !=).
      EBI_ASSIGN_OR_RETURN(BitVector positive,
                           EvaluateOne(p.Positive()));
      positive.FlipAll();
      positive.AndWith(table_->existence());
      EBI_RETURN_IF_ERROR(MaskNulls(p.column, index, &positive));
      return positive;
    }
  }
  return Status::Internal("unknown predicate kind");
}

Status MaskNullRows(const Table& table, const std::string& column_name,
                    SecondaryIndex* index, IoAccountant* io,
                    BitVector* rows) {
  EBI_ASSIGN_OR_RETURN(const Column* column,
                       table.FindColumn(column_name));
  if (!column->HasNulls()) {
    return Status::OK();
  }
  if (index->SupportsIsNull()) {
    EBI_ASSIGN_OR_RETURN(const BitVector nulls, index->EvaluateIsNull());
    rows->AndNotWith(nulls);
    return Status::OK();
  }
  // Fallback: scan the column's id array for NULL cells (charged).
  io->ChargeBytes(column->RowBytes());
  for (size_t row = 0; row < column->size(); ++row) {
    if (column->ValueIdAt(row) == kNullValueId) {
      rows->Reset(row);
    }
  }
  return Status::OK();
}

Status SelectionExecutor::MaskNulls(const std::string& column_name,
                                    SecondaryIndex* index,
                                    BitVector* rows) const {
  return MaskNullRows(*table_, column_name, index, io_, rows);
}

Result<SelectionResult> SelectionExecutor::Select(
    const std::vector<Predicate>& predicates) {
  obs::ScopedSpan span("executor.select");
  const auto started = std::chrono::steady_clock::now();
  const IoScope scope(io_);
  BitVector rows(table_->NumRows(), true);
  if (predicates.empty()) {
    rows.AndWith(table_->existence());
  }
  // Evaluate every predicate first, then intersect all result vectors in
  // one fused kernel pass instead of a chain of binary ANDs.
  std::vector<BitVector> evaluated;
  evaluated.reserve(predicates.size());
  std::vector<PredicateStat> stats;
  if (predicate_stats_) {
    stats.reserve(predicates.size());
  }
  for (const Predicate& predicate : predicates) {
    EBI_ASSIGN_OR_RETURN(BitVector one, EvaluateOne(predicate));
    if (predicate_stats_) {
      PredicateStat stat;
      stat.column = predicate.column;
      stat.op = predicate.OpTag();
      stat.fingerprint = predicate.Fingerprint();
      stat.rows = one.Count();
      stats.push_back(std::move(stat));
    }
    evaluated.push_back(std::move(one));
  }
  if (!evaluated.empty()) {
    rows = std::move(evaluated.front());
    std::vector<const BitVector*> rest;
    rest.reserve(evaluated.size() - 1);
    for (size_t i = 1; i < evaluated.size(); ++i) {
      rest.push_back(&evaluated[i]);
    }
    if (!rest.empty()) {
      rows.AndWithMany(rest);
    }
  }
  SelectionResult result;
  result.count = rows.Count();
  result.rows = std::move(rows);
  result.io = scope.Delta();
  result.predicate_stats = std::move(stats);
  obs::RecordQuery(result.io,
                   std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - started)
                       .count());
  if (span.active()) {
    span.Attr("predicates", predicates.size());
    span.Attr("rows", result.count);
    span.AttrIo(result.io);
  }
  return result;
}

Result<SelectionResult> SelectionExecutor::ExplainSelect(
    const std::vector<Predicate>& predicates, obs::QueryTrace* trace) {
  const obs::TraceScope install(trace);
  return Select(predicates);
}

Result<SelectionResult> SelectionExecutor::SelectDnf(
    const std::vector<std::vector<Predicate>>& branches) {
  // Query metrics are recorded by the per-branch Select calls; the DNF
  // wrapper only contributes a grouping span.
  obs::ScopedSpan span("executor.select_dnf");
  const IoScope scope(io_);
  // An empty disjunction is false: zero branches leave `rows` empty.
  BitVector rows(table_->NumRows());
  // Run every branch, then union the branch vectors in one fused pass.
  std::vector<BitVector> branch_rows;
  branch_rows.reserve(branches.size());
  for (const std::vector<Predicate>& branch : branches) {
    EBI_ASSIGN_OR_RETURN(SelectionResult one, Select(branch));
    branch_rows.push_back(std::move(one.rows));
  }
  std::vector<const BitVector*> operands;
  operands.reserve(branch_rows.size());
  for (const BitVector& branch : branch_rows) {
    operands.push_back(&branch);
  }
  if (!operands.empty()) {
    rows.OrWithMany(operands);
  }
  SelectionResult result;
  result.count = rows.Count();
  result.rows = std::move(rows);
  result.io = scope.Delta();
  if (span.active()) {
    span.Attr("branches", branches.size());
    span.Attr("rows", result.count);
    span.AttrIo(result.io);
  }
  return result;
}

Result<BitVector> SelectionExecutor::SelectDnfByScan(
    const std::vector<std::vector<Predicate>>& branches) const {
  BitVector rows(table_->NumRows());
  for (const std::vector<Predicate>& branch : branches) {
    EBI_ASSIGN_OR_RETURN(const BitVector one, SelectByScan(branch));
    rows.OrWith(one);
  }
  return rows;
}

Result<bool> SelectionExecutor::RowMatches(const Predicate& p,
                                           const Column& column,
                                           size_t row) const {
  const Value v = column.ValueAt(row);
  switch (p.kind) {
    case Predicate::Kind::kEquals:
      return !v.is_null() && v == p.value;
    case Predicate::Kind::kIn:
      return !v.is_null() &&
             std::find(p.values.begin(), p.values.end(), v) !=
                 p.values.end();
    case Predicate::Kind::kRange:
      if (v.is_null()) {
        return false;
      }
      if (column.type() != Column::Type::kInt64) {
        return Status::InvalidArgument("range scan on non-integer column");
      }
      return v.int_value >= p.lo && v.int_value <= p.hi;
    case Predicate::Kind::kIsNull:
      return v.is_null();
    case Predicate::Kind::kNotEquals:
      return !v.is_null() && !(v == p.value);
    case Predicate::Kind::kNotIn:
      return !v.is_null() &&
             std::find(p.values.begin(), p.values.end(), v) ==
                 p.values.end();
  }
  return Status::Internal("unknown predicate kind");
}

Result<BitVector> SelectionExecutor::SelectByScan(
    const std::vector<Predicate>& predicates) const {
  BitVector rows(table_->NumRows());
  for (size_t row = 0; row < table_->NumRows(); ++row) {
    if (!table_->RowExists(row)) {
      continue;
    }
    bool all = true;
    for (const Predicate& p : predicates) {
      EBI_ASSIGN_OR_RETURN(const Column* column, table_->FindColumn(p.column));
      EBI_ASSIGN_OR_RETURN(const bool match, RowMatches(p, *column, row));
      if (!match) {
        all = false;
        break;
      }
    }
    if (all) {
      rows.Set(row);
    }
  }
  return rows;
}

}  // namespace ebi
