#include "query/materialize.h"

#include <algorithm>

namespace ebi {

Result<std::vector<MaterializedRow>> MaterializeRows(
    const Table& table, const BitVector& rows,
    const std::vector<std::string>& columns, size_t limit) {
  if (rows.size() != table.NumRows()) {
    return Status::InvalidArgument("selection bitmap size mismatch");
  }
  std::vector<const Column*> resolved;
  resolved.reserve(columns.size());
  for (const std::string& name : columns) {
    EBI_ASSIGN_OR_RETURN(const Column* column, table.FindColumn(name));
    resolved.push_back(column);
  }

  std::vector<MaterializedRow> out;
  bool done = false;
  rows.ForEachSetBit([&](size_t row) {
    if (done || (limit != 0 && out.size() >= limit)) {
      done = true;
      return;
    }
    MaterializedRow m;
    m.row = row;
    m.values.reserve(resolved.size());
    for (const Column* column : resolved) {
      m.values.push_back(column->ValueAt(row));
    }
    out.push_back(std::move(m));
  });
  return out;
}

std::string RowsToString(const std::vector<std::string>& columns,
                         const std::vector<MaterializedRow>& rows) {
  // Column widths from headers and cells.
  std::vector<size_t> widths;
  widths.reserve(columns.size() + 1);
  widths.push_back(3);  // "row".
  for (const std::string& c : columns) {
    widths.push_back(c.size());
  }
  std::vector<std::vector<std::string>> cells;
  for (const MaterializedRow& r : rows) {
    std::vector<std::string> line;
    line.push_back(std::to_string(r.row));
    widths[0] = std::max(widths[0], line.back().size());
    for (size_t c = 0; c < r.values.size(); ++c) {
      line.push_back(r.values[c].ToString());
      widths[c + 1] = std::max(widths[c + 1], line.back().size());
    }
    cells.push_back(std::move(line));
  }

  auto pad = [](const std::string& s, size_t w) {
    std::string out = s;
    out.resize(w, ' ');
    return out;
  };
  std::string out = pad("row", widths[0]);
  for (size_t c = 0; c < columns.size(); ++c) {
    out += "  " + pad(columns[c], widths[c + 1]);
  }
  out += "\n";
  for (const auto& line : cells) {
    out += pad(line[0], widths[0]);
    for (size_t c = 1; c < line.size(); ++c) {
      out += "  " + pad(line[c], widths[c]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace ebi
