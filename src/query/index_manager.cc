#include "query/index_manager.h"

namespace ebi {

Result<SecondaryIndex*> IndexManager::CreateIndex(const std::string& column,
                                                  IndexKind kind) {
  for (const Entry& entry : entries_) {
    if (entry.column == column && entry.kind == kind) {
      return Status::AlreadyExists(std::string(IndexKindName(kind)) +
                                   " index on " + column +
                                   " already exists");
    }
  }
  EBI_ASSIGN_OR_RETURN(const Column* col, table_->FindColumn(column));
  std::unique_ptr<SecondaryIndex> index =
      MakeSecondaryIndex(kind, col, &table_->existence(), io_);
  if (index == nullptr) {
    return Status::Internal("unknown index kind");
  }
  EBI_RETURN_IF_ERROR(index->Build());

  Entry entry;
  entry.column = column;
  entry.kind = kind;
  entry.index = std::move(index);
  SecondaryIndex* raw = entry.index.get();
  entries_.push_back(std::move(entry));
  planner_.RegisterIndex(column, raw);
  EBI_RETURN_IF_ERROR(maintenance_.AttachIndex(raw));
  return raw;
}

Status IndexManager::DropIndex(const std::string& column, IndexKind kind) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->column == column && it->kind == kind) {
      entries_.erase(it);
      Rewire();
      return Status::OK();
    }
  }
  return Status::NotFound(std::string(IndexKindName(kind)) +
                          " index on " + column + " not found");
}

std::vector<SecondaryIndex*> IndexManager::IndexesOn(
    const std::string& column) const {
  std::vector<SecondaryIndex*> out;
  for (const Entry& entry : entries_) {
    if (entry.column == column) {
      out.push_back(entry.index.get());
    }
  }
  return out;
}

size_t IndexManager::TotalSizeBytes() const {
  size_t total = 0;
  for (const Entry& entry : entries_) {
    total += entry.index->SizeBytes();
  }
  return total;
}

void IndexManager::Rewire() {
  planner_.Clear();
  maintenance_.Clear();
  for (const Entry& entry : entries_) {
    planner_.RegisterIndex(entry.column, entry.index.get());
    // Entries are unique owning pointers, so re-attachment cannot see a
    // null or duplicate index.
    maintenance_.AttachIndex(entry.index.get()).IgnoreError();
  }
}

}  // namespace ebi
