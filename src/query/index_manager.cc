#include "query/index_manager.h"

#include "index/base_bit_sliced_index.h"
#include "index/bit_sliced_index.h"
#include "index/btree_index.h"
#include "index/dynamic_bitmap_index.h"
#include "index/encoded_bitmap_index.h"
#include "index/projection_index.h"
#include "index/range_based_bitmap_index.h"
#include "index/simple_bitmap_index.h"
#include "index/value_list_index.h"

namespace ebi {

Result<IndexKind> IndexKindFromName(const std::string& name) {
  if (name == "simple") {
    return IndexKind::kSimpleBitmap;
  }
  if (name == "simple-rle") {
    return IndexKind::kSimpleBitmapRle;
  }
  if (name == "simple-ewah") {
    return IndexKind::kSimpleBitmapEwah;
  }
  if (name == "encoded") {
    return IndexKind::kEncodedBitmap;
  }
  if (name == "bitsliced") {
    return IndexKind::kBitSliced;
  }
  if (name == "bitsliced-base10") {
    return IndexKind::kBaseBitSliced;
  }
  if (name == "projection") {
    return IndexKind::kProjection;
  }
  if (name == "btree") {
    return IndexKind::kBTree;
  }
  if (name == "valuelist") {
    return IndexKind::kValueList;
  }
  if (name == "rangebased") {
    return IndexKind::kRangeBasedBitmap;
  }
  if (name == "dynamic") {
    return IndexKind::kDynamicBitmap;
  }
  return Status::NotFound("unknown index kind '" + name + "'");
}

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kSimpleBitmap:
      return "simple";
    case IndexKind::kSimpleBitmapRle:
      return "simple-rle";
    case IndexKind::kSimpleBitmapEwah:
      return "simple-ewah";
    case IndexKind::kEncodedBitmap:
      return "encoded";
    case IndexKind::kBitSliced:
      return "bitsliced";
    case IndexKind::kBaseBitSliced:
      return "bitsliced-base10";
    case IndexKind::kProjection:
      return "projection";
    case IndexKind::kBTree:
      return "btree";
    case IndexKind::kValueList:
      return "valuelist";
    case IndexKind::kRangeBasedBitmap:
      return "rangebased";
    case IndexKind::kDynamicBitmap:
      return "dynamic";
  }
  return "?";
}

Result<SecondaryIndex*> IndexManager::CreateIndex(const std::string& column,
                                                  IndexKind kind) {
  for (const Entry& entry : entries_) {
    if (entry.column == column && entry.kind == kind) {
      return Status::AlreadyExists(std::string(IndexKindName(kind)) +
                                   " index on " + column +
                                   " already exists");
    }
  }
  EBI_ASSIGN_OR_RETURN(const Column* col, table_->FindColumn(column));
  const BitVector* existence = &table_->existence();

  std::unique_ptr<SecondaryIndex> index;
  switch (kind) {
    case IndexKind::kSimpleBitmap:
      index = std::make_unique<SimpleBitmapIndex>(col, existence, io_);
      break;
    case IndexKind::kSimpleBitmapRle:
      index = std::make_unique<SimpleBitmapIndex>(
          col, existence, io_,
          SimpleBitmapIndexOptions::WithFormat(BitmapFormat::kRle));
      break;
    case IndexKind::kSimpleBitmapEwah:
      index = std::make_unique<SimpleBitmapIndex>(
          col, existence, io_,
          SimpleBitmapIndexOptions::WithFormat(BitmapFormat::kEwah));
      break;
    case IndexKind::kEncodedBitmap:
      index = std::make_unique<EncodedBitmapIndex>(col, existence, io_);
      break;
    case IndexKind::kBitSliced:
      index = std::make_unique<BitSlicedIndex>(col, existence, io_);
      break;
    case IndexKind::kBaseBitSliced:
      index = std::make_unique<BaseBitSlicedIndex>(col, existence, io_);
      break;
    case IndexKind::kProjection:
      index = std::make_unique<ProjectionIndex>(col, existence, io_);
      break;
    case IndexKind::kBTree:
      index = std::make_unique<BTreeIndex>(col, existence, io_);
      break;
    case IndexKind::kValueList:
      index = std::make_unique<ValueListIndex>(col, existence, io_);
      break;
    case IndexKind::kRangeBasedBitmap:
      index = std::make_unique<RangeBasedBitmapIndex>(col, existence, io_);
      break;
    case IndexKind::kDynamicBitmap:
      index = std::make_unique<DynamicBitmapIndex>(col, existence, io_);
      break;
  }
  EBI_RETURN_IF_ERROR(index->Build());

  Entry entry;
  entry.column = column;
  entry.kind = kind;
  entry.index = std::move(index);
  SecondaryIndex* raw = entry.index.get();
  entries_.push_back(std::move(entry));
  planner_.RegisterIndex(column, raw);
  maintenance_.AttachIndex(raw);
  return raw;
}

Status IndexManager::DropIndex(const std::string& column, IndexKind kind) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->column == column && it->kind == kind) {
      entries_.erase(it);
      Rewire();
      return Status::OK();
    }
  }
  return Status::NotFound(std::string(IndexKindName(kind)) +
                          " index on " + column + " not found");
}

std::vector<SecondaryIndex*> IndexManager::IndexesOn(
    const std::string& column) const {
  std::vector<SecondaryIndex*> out;
  for (const Entry& entry : entries_) {
    if (entry.column == column) {
      out.push_back(entry.index.get());
    }
  }
  return out;
}

size_t IndexManager::TotalSizeBytes() const {
  size_t total = 0;
  for (const Entry& entry : entries_) {
    total += entry.index->SizeBytes();
  }
  return total;
}

void IndexManager::Rewire() {
  planner_.Clear();
  maintenance_.Clear();
  for (const Entry& entry : entries_) {
    planner_.RegisterIndex(entry.column, entry.index.get());
    maintenance_.AttachIndex(entry.index.get());
  }
}

}  // namespace ebi
