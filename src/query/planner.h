#ifndef EBI_QUERY_PLANNER_H_
#define EBI_QUERY_PLANNER_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/index.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "storage/table.h"
#include "util/status.h"

namespace ebi {

/// The access path chosen for one predicate, with the estimate that won.
struct AccessPath {
  SecondaryIndex* index = nullptr;
  double estimated_pages = 0.0;
  /// The paper's δ for this predicate on its column.
  size_t delta = 0;
};

/// Cost-based access-path selection over possibly several indexes per
/// column — the operational form of the paper's Section 3 guidance: simple
/// bitmaps win single-value selections, encoded bitmaps win once
/// δ > log2|A| + 1, bit-sliced indexes win wide numeric ranges.
///
/// Each registered index prices a selection shape through its
/// EstimatePages() model; the planner picks the minimum per predicate and
/// can execute whole conjunctions with the chosen paths.
class AccessPathPlanner {
 public:
  AccessPathPlanner(const Table* table, IoAccountant* io)
      : table_(table), io_(io) {}

  /// Registers an index as a candidate for predicates on `column`.
  /// Several indexes per column are allowed — that is the point.
  void RegisterIndex(const std::string& column, SecondaryIndex* index) {
    candidates_[column].push_back(index);
  }

  /// Drops every registration (e.g. before re-wiring after an index drop).
  void Clear() { candidates_.clear(); }

  /// The selection shape (kind + δ) of a predicate on this table.
  Result<SelectionShape> ShapeOf(const Predicate& predicate) const;

  /// Picks the cheapest registered index for `predicate`.
  Result<AccessPath> Choose(const Predicate& predicate) const;

  /// Evaluates a conjunction, routing every predicate through its chosen
  /// access path. `paths`, when non-null, receives the chosen paths in
  /// predicate order.
  ///
  /// When a trace sink is installed (obs::TraceScope), Select records a
  /// planner.select span with one predicate child per conjunct: the
  /// candidate estimates, the chosen path, and the actual I/O each
  /// predicate performed. With no sink installed tracing is a no-op and
  /// the charged I/O is identical.
  Result<SelectionResult> Select(const std::vector<Predicate>& predicates,
                                 std::vector<AccessPath>* paths = nullptr);

  /// EXPLAIN entry point: runs Select with `trace` installed as the
  /// active sink, so the finished trace can be rendered with
  /// obs::ExplainText()/ExplainJson(). The query is executed for real
  /// (EXPLAIN ANALYZE semantics — every attribute is measured, not
  /// estimated).
  Result<SelectionResult> ExplainSelect(
      const std::vector<Predicate>& predicates, obs::QueryTrace* trace,
      std::vector<AccessPath>* paths = nullptr);

 private:
  const Table* table_;
  IoAccountant* io_;
  std::unordered_map<std::string, std::vector<SecondaryIndex*>> candidates_;
};

}  // namespace ebi

#endif  // EBI_QUERY_PLANNER_H_
