#ifndef EBI_QUERY_MATERIALIZE_H_
#define EBI_QUERY_MATERIALIZE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "storage/table.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace ebi {

/// One materialized output row: the row id and the requested cells.
struct MaterializedRow {
  size_t row = 0;
  std::vector<Value> values;
};

/// Fetches the actual tuples behind a selection bitmap — the final step
/// after all the bitmap work, and the only one that touches row data.
/// `columns` names the output columns; `limit` caps the result (0 = all).
Result<std::vector<MaterializedRow>> MaterializeRows(
    const Table& table, const BitVector& rows,
    const std::vector<std::string>& columns, size_t limit = 0);

/// Renders materialized rows as an aligned text table (for examples and
/// debugging output).
std::string RowsToString(const std::vector<std::string>& columns,
                         const std::vector<MaterializedRow>& rows);

}  // namespace ebi

#endif  // EBI_QUERY_MATERIALIZE_H_
