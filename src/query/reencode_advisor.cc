#include "query/reencode_advisor.h"

#include <limits>

#include "encoding/well_defined.h"

namespace ebi {

namespace {

/// Expected vector reads per period for a mapping over the profile.
Result<double> ExpectedCost(const MappingTable& mapping,
                            const WorkloadProfile& profile,
                            const ReductionOptions& reduction) {
  double total = 0.0;
  for (const WorkloadEntry& entry : profile) {
    EBI_ASSIGN_OR_RETURN(const int cost,
                         AccessCost(mapping, entry.values, reduction));
    total += entry.frequency * cost;
  }
  return total;
}

}  // namespace

Result<ReencodeDecision> EvaluateReencoding(
    const MappingTable& current, const MappingTable& candidate,
    const WorkloadProfile& profile, size_t n, double horizon_periods,
    const ReductionOptions& reduction) {
  ReencodeDecision decision;
  EBI_ASSIGN_OR_RETURN(decision.current_cost,
                       ExpectedCost(current, profile, reduction));
  EBI_ASSIGN_OR_RETURN(decision.candidate_cost,
                       ExpectedCost(candidate, profile, reduction));
  // Rewriting k' slices of n bits, measured in whole-vector operations so
  // it is commensurate with the per-query vector-read costs.
  decision.reencode_cost = static_cast<double>(candidate.width());
  (void)n;  // The per-vector unit already scales with n on both sides.

  const double saving_per_period =
      decision.current_cost - decision.candidate_cost;
  if (saving_per_period <= 0.0) {
    decision.break_even_periods =
        std::numeric_limits<double>::infinity();
    decision.worthwhile = false;
  } else {
    decision.break_even_periods =
        decision.reencode_cost / saving_per_period;
    decision.worthwhile = decision.break_even_periods <= horizon_periods;
  }
  return decision;
}

Result<ReencodeProposal> ProposeReencoding(
    const MappingTable& current, const WorkloadProfile& profile, size_t m,
    size_t n, const OptimizerOptions& options,
    const EncoderOptions& encoder_options, double horizon_periods) {
  PredicateSet predicates;
  predicates.reserve(profile.size());
  for (const WorkloadEntry& entry : profile) {
    predicates.push_back(entry.values);
  }
  EBI_ASSIGN_OR_RETURN(
      MappingTable candidate,
      AnnealEncode(m, predicates, options, encoder_options));
  EBI_ASSIGN_OR_RETURN(
      const ReencodeDecision decision,
      EvaluateReencoding(current, candidate, profile, n, horizon_periods,
                         options.reduction));
  return ReencodeProposal{std::move(candidate), decision};
}

}  // namespace ebi
