#include "query/reencode_advisor.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>

#include "encoding/well_defined.h"

namespace ebi {

namespace {

/// Expected vector reads per period for a mapping over the profile.
Result<double> ExpectedCost(const MappingTable& mapping,
                            const WorkloadProfile& profile,
                            const ReductionOptions& reduction) {
  double total = 0.0;
  for (const WorkloadEntry& entry : profile) {
    EBI_ASSIGN_OR_RETURN(const int cost,
                         AccessCost(mapping, entry.values, reduction));
    total += entry.frequency * cost;
  }
  return total;
}

}  // namespace

Result<WorkloadProfile> ProfileFromRecords(
    const std::vector<obs::WorkloadRecord>& records,
    const std::string& column, const Column& col) {
  // Accumulate frequency per predicate fingerprint; the value set of the
  // first occurrence stands for the group (identical fingerprints carry
  // identical literal sets by construction).
  std::unordered_map<uint64_t, WorkloadEntry> groups;
  std::vector<uint64_t> order;  // First-seen order, for determinism.
  for (const obs::WorkloadRecord& record : records) {
    for (const obs::WorkloadPredicate& pred : record.predicates) {
      if (pred.column != column) {
        continue;
      }
      // The advisor models positive IN-list selections; complements and
      // NULL probes do not map onto a value set.
      const bool positive =
          pred.op == "eq" || pred.op == "in" || pred.op == "range";
      if (!positive) {
        continue;
      }
      auto it = groups.find(pred.fingerprint);
      if (it != groups.end()) {
        it->second.frequency += 1.0;
        continue;
      }
      WorkloadEntry entry;
      entry.frequency = 1.0;
      if (pred.op == "range") {
        if (!pred.has_range || col.type() != Column::Type::kInt64) {
          continue;
        }
        entry.values = col.IdsInRange(pred.lo, pred.hi);
      } else {
        for (const int64_t literal : pred.literals) {
          const std::optional<ValueId> id = col.Lookup(Value::Int(literal));
          if (id.has_value()) {
            entry.values.push_back(*id);
          }
        }
        std::sort(entry.values.begin(), entry.values.end());
        entry.values.erase(
            std::unique(entry.values.begin(), entry.values.end()),
            entry.values.end());
      }
      if (entry.values.empty()) {
        continue;  // Nothing resolvable against this dictionary.
      }
      groups.emplace(pred.fingerprint, std::move(entry));
      order.push_back(pred.fingerprint);
    }
  }
  WorkloadProfile profile;
  profile.reserve(order.size());
  for (const uint64_t fingerprint : order) {
    profile.push_back(std::move(groups[fingerprint]));
  }
  return profile;
}

Result<ReencodeDecision> EvaluateReencoding(
    const MappingTable& current, const MappingTable& candidate,
    const WorkloadProfile& profile, size_t n, double horizon_periods,
    const ReductionOptions& reduction) {
  ReencodeDecision decision;
  EBI_ASSIGN_OR_RETURN(decision.current_cost,
                       ExpectedCost(current, profile, reduction));
  EBI_ASSIGN_OR_RETURN(decision.candidate_cost,
                       ExpectedCost(candidate, profile, reduction));
  // Rewriting k' slices of n bits, measured in whole-vector operations so
  // it is commensurate with the per-query vector-read costs.
  decision.reencode_cost = static_cast<double>(candidate.width());
  (void)n;  // The per-vector unit already scales with n on both sides.

  const double saving_per_period =
      decision.current_cost - decision.candidate_cost;
  if (saving_per_period <= 0.0) {
    decision.break_even_periods =
        std::numeric_limits<double>::infinity();
    decision.worthwhile = false;
  } else {
    decision.break_even_periods =
        decision.reencode_cost / saving_per_period;
    decision.worthwhile = decision.break_even_periods <= horizon_periods;
  }
  return decision;
}

Result<ReencodeProposal> ProposeReencoding(
    const MappingTable& current, const WorkloadProfile& profile, size_t m,
    size_t n, const OptimizerOptions& options,
    const EncoderOptions& encoder_options, double horizon_periods) {
  PredicateSet predicates;
  predicates.reserve(profile.size());
  for (const WorkloadEntry& entry : profile) {
    predicates.push_back(entry.values);
  }
  EBI_ASSIGN_OR_RETURN(
      MappingTable candidate,
      AnnealEncode(m, predicates, options, encoder_options));
  EBI_ASSIGN_OR_RETURN(
      const ReencodeDecision decision,
      EvaluateReencoding(current, candidate, profile, n, horizon_periods,
                         options.reduction));
  return ReencodeProposal{std::move(candidate), decision};
}

}  // namespace ebi
