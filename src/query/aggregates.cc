#include "query/aggregates.h"

namespace ebi {

Result<int64_t> SumBitSliced(BitSlicedIndex* index, const BitVector& rows) {
  return index->Sum(rows);
}

Result<double> AvgBitSliced(BitSlicedIndex* index, const BitVector& rows,
                            bool* empty) {
  const size_t count = rows.Count();
  if (empty != nullptr) {
    *empty = count == 0;
  }
  if (count == 0) {
    return 0.0;
  }
  EBI_ASSIGN_OR_RETURN(const int64_t sum, index->Sum(rows));
  return static_cast<double>(sum) / static_cast<double>(count);
}

Result<int64_t> MinBitSliced(BitSlicedIndex* index, const BitVector& rows) {
  return index->Min(rows);
}

Result<int64_t> MaxBitSliced(BitSlicedIndex* index, const BitVector& rows) {
  return index->Max(rows);
}

Result<int64_t> MedianBitSliced(BitSlicedIndex* index,
                                const BitVector& rows) {
  return index->Quantile(rows, 0.5);
}

Result<int64_t> SumByScan(const Column& column, const BitVector& rows) {
  if (column.type() != Column::Type::kInt64) {
    return Status::InvalidArgument("SUM on non-integer column");
  }
  int64_t total = 0;
  Status status = Status::OK();
  rows.ForEachSetBit([&](size_t row) {
    const ValueId id = column.ValueIdAt(row);
    if (id != kNullValueId) {
      total += column.ValueOf(id).int_value;
    }
  });
  EBI_RETURN_IF_ERROR(status);
  return total;
}

}  // namespace ebi
