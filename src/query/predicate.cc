#include "query/predicate.h"

namespace ebi {

Predicate Predicate::Eq(std::string column, Value v) {
  Predicate p;
  p.column = std::move(column);
  p.kind = Kind::kEquals;
  p.value = std::move(v);
  return p;
}

Predicate Predicate::In(std::string column, std::vector<Value> vs) {
  Predicate p;
  p.column = std::move(column);
  p.kind = Kind::kIn;
  p.values = std::move(vs);
  return p;
}

Predicate Predicate::Between(std::string column, int64_t lo, int64_t hi) {
  Predicate p;
  p.column = std::move(column);
  p.kind = Kind::kRange;
  p.lo = lo;
  p.hi = hi;
  return p;
}

Predicate Predicate::IsNull(std::string column) {
  Predicate p;
  p.column = std::move(column);
  p.kind = Kind::kIsNull;
  return p;
}

Predicate Predicate::NotEq(std::string column, Value v) {
  Predicate p = Eq(std::move(column), std::move(v));
  p.kind = Kind::kNotEquals;
  return p;
}

Predicate Predicate::NotIn(std::string column, std::vector<Value> vs) {
  Predicate p = In(std::move(column), std::move(vs));
  p.kind = Kind::kNotIn;
  return p;
}

Predicate Predicate::Positive() const {
  Predicate p = *this;
  if (kind == Kind::kNotEquals) {
    p.kind = Kind::kEquals;
  } else if (kind == Kind::kNotIn) {
    p.kind = Kind::kIn;
  }
  return p;
}

size_t Predicate::Width(const Column& col) const {
  switch (kind) {
    case Kind::kEquals:
    case Kind::kIsNull:
    case Kind::kNotEquals:
      return 1;
    case Kind::kIn:
    case Kind::kNotIn:
      return values.size();
    case Kind::kRange:
      if (col.type() != Column::Type::kInt64) {
        return 0;
      }
      return col.IdsInRange(lo, hi).size();
  }
  return 0;
}

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kEquals:
      return column + " = " + value.ToString();
    case Kind::kIn: {
      std::string out = column + " IN {";
      for (size_t i = 0; i < values.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += values[i].ToString();
      }
      return out + "}";
    }
    case Kind::kRange:
      return std::to_string(lo) + " <= " + column +
             " <= " + std::to_string(hi);
    case Kind::kIsNull:
      return column + " IS NULL";
    case Kind::kNotEquals:
      return column + " != " + value.ToString();
    case Kind::kNotIn: {
      std::string out = column + " NOT IN {";
      for (size_t i = 0; i < values.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += values[i].ToString();
      }
      return out + "}";
    }
  }
  return "?";
}

}  // namespace ebi
