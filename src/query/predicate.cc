#include "query/predicate.h"

#include <algorithm>

namespace ebi {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ p[i]) * kFnvPrime;
  }
  return h;
}

uint64_t FnvString(uint64_t h, const std::string& s) {
  return FnvBytes(h, s.data(), s.size());
}

uint64_t FnvU64(uint64_t h, uint64_t v) {
  return FnvBytes(h, &v, sizeof(v));
}

uint64_t HashValue(const Value& v) {
  uint64_t h = kFnvOffset;
  h = FnvU64(h, static_cast<uint64_t>(v.kind));
  switch (v.kind) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kInt64:
      h = FnvU64(h, static_cast<uint64_t>(v.int_value));
      break;
    case Value::Kind::kString:
      h = FnvString(h, v.string_value);
      break;
  }
  return h;
}

}  // namespace

Predicate Predicate::Eq(std::string column, Value v) {
  Predicate p;
  p.column = std::move(column);
  p.kind = Kind::kEquals;
  p.value = std::move(v);
  return p;
}

Predicate Predicate::In(std::string column, std::vector<Value> vs) {
  Predicate p;
  p.column = std::move(column);
  p.kind = Kind::kIn;
  p.values = std::move(vs);
  return p;
}

Predicate Predicate::Between(std::string column, int64_t lo, int64_t hi) {
  Predicate p;
  p.column = std::move(column);
  p.kind = Kind::kRange;
  p.lo = lo;
  p.hi = hi;
  return p;
}

Predicate Predicate::IsNull(std::string column) {
  Predicate p;
  p.column = std::move(column);
  p.kind = Kind::kIsNull;
  return p;
}

Predicate Predicate::NotEq(std::string column, Value v) {
  Predicate p = Eq(std::move(column), std::move(v));
  p.kind = Kind::kNotEquals;
  return p;
}

Predicate Predicate::NotIn(std::string column, std::vector<Value> vs) {
  Predicate p = In(std::move(column), std::move(vs));
  p.kind = Kind::kNotIn;
  return p;
}

Predicate Predicate::Positive() const {
  Predicate p = *this;
  if (kind == Kind::kNotEquals) {
    p.kind = Kind::kEquals;
  } else if (kind == Kind::kNotIn) {
    p.kind = Kind::kIn;
  }
  return p;
}

size_t Predicate::Width(const Column& col) const {
  switch (kind) {
    case Kind::kEquals:
    case Kind::kIsNull:
    case Kind::kNotEquals:
      return 1;
    case Kind::kIn:
    case Kind::kNotIn:
      return values.size();
    case Kind::kRange:
      if (col.type() != Column::Type::kInt64) {
        return 0;
      }
      return col.IdsInRange(lo, hi).size();
  }
  return 0;
}

const char* Predicate::OpTag() const {
  switch (kind) {
    case Kind::kEquals:
      return "eq";
    case Kind::kIn:
      return "in";
    case Kind::kRange:
      return "range";
    case Kind::kIsNull:
      return "isnull";
    case Kind::kNotEquals:
      return "neq";
    case Kind::kNotIn:
      return "notin";
  }
  return "?";
}

uint64_t Predicate::Fingerprint() const {
  uint64_t h = kFnvOffset;
  h = FnvString(h, column);
  h = FnvString(h, OpTag());
  switch (kind) {
    case Kind::kEquals:
    case Kind::kNotEquals:
      h = FnvU64(h, HashValue(value));
      break;
    case Kind::kIn:
    case Kind::kNotIn: {
      // Sort the member hashes so {1,2} and {2,1} fingerprint the same.
      std::vector<uint64_t> hashes;
      hashes.reserve(values.size());
      for (const Value& v : values) {
        hashes.push_back(HashValue(v));
      }
      std::sort(hashes.begin(), hashes.end());
      hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
      for (const uint64_t hv : hashes) {
        h = FnvU64(h, hv);
      }
      break;
    }
    case Kind::kRange:
      h = FnvU64(h, static_cast<uint64_t>(lo));
      h = FnvU64(h, static_cast<uint64_t>(hi));
      break;
    case Kind::kIsNull:
      break;
  }
  return h;
}

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kEquals:
      return column + " = " + value.ToString();
    case Kind::kIn: {
      std::string out = column + " IN {";
      for (size_t i = 0; i < values.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += values[i].ToString();
      }
      return out + "}";
    }
    case Kind::kRange:
      return std::to_string(lo) + " <= " + column +
             " <= " + std::to_string(hi);
    case Kind::kIsNull:
      return column + " IS NULL";
    case Kind::kNotEquals:
      return column + " != " + value.ToString();
    case Kind::kNotIn: {
      std::string out = column + " NOT IN {";
      for (size_t i = 0; i < values.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += values[i].ToString();
      }
      return out + "}";
    }
  }
  return "?";
}

}  // namespace ebi
