#ifndef EBI_QUERY_MAINTENANCE_H_
#define EBI_QUERY_MAINTENANCE_H_

#include <cstddef>
#include <vector>

#include "index/index.h"
#include "storage/table.h"
#include "util/status.h"

namespace ebi {

/// Keeps a table and its secondary indexes consistent under updates — the
/// maintenance workflows of Section 2.2 (appends without/with domain
/// expansion, deletions re-encoded to the void codeword).
class MaintenanceDriver {
 public:
  explicit MaintenanceDriver(Table* table) : table_(table) {}

  /// Attaches an index already built over one of the table's columns.
  /// Null pointers are rejected, as are duplicates — attaching the same
  /// index twice would silently double-append it on the next AppendRow.
  [[nodiscard]] Status AttachIndex(SecondaryIndex* index);

  /// Detaches everything (e.g. before re-wiring after an index drop).
  void Clear() { indexes_.clear(); }

  /// Appends a row to the table and extends every attached index. Indexes
  /// on columns gaining a new distinct value go through their
  /// domain-expansion path transparently.
  [[nodiscard]] Status AppendRow(const std::vector<Value>& values);

  /// Batched append: all rows go into the table first, then every index
  /// extends once over the whole span via SecondaryIndex::AppendBatch —
  /// so domain expansions coalesce per column into one slice rewrite
  /// instead of one per new value. The serving layer's AppendPipeline
  /// publishes through this path.
  [[nodiscard]] Status AppendRows(
      const std::vector<std::vector<Value>>& rows);

  /// Logically deletes a row and propagates to the indexes.
  [[nodiscard]] Status DeleteRow(size_t row);

  [[nodiscard]] size_t NumIndexes() const { return indexes_.size(); }

 private:
  Table* table_;
  std::vector<SecondaryIndex*> indexes_;
};

}  // namespace ebi

#endif  // EBI_QUERY_MAINTENANCE_H_
