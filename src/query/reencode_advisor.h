#ifndef EBI_QUERY_REENCODE_ADVISOR_H_
#define EBI_QUERY_REENCODE_ADVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "encoding/mapping_table.h"
#include "encoding/optimizer.h"
#include "obs/workload_recorder.h"
#include "storage/column.h"
#include "util/status.h"

namespace ebi {

/// One observed selection pattern with its frequency (queries per period).
struct WorkloadEntry {
  std::vector<ValueId> values;  // The IN-list / rewritten range.
  double frequency = 1.0;
};

/// An observed (or forecast) selection workload against one column.
using WorkloadProfile = std::vector<WorkloadEntry>;

/// Mines a WorkloadProfile for `column` out of recorded production
/// queries (the serve layer's workload log, obs/workload_recorder.h):
/// positive predicates on the column — eq, in, range — become IN-list
/// entries resolved to ValueIds through `col`'s dictionary, grouped by
/// predicate fingerprint with one unit of frequency per occurrence.
/// Negated and IS NULL predicates, and literals absent from the
/// dictionary, are skipped: the advisor models positive IN-list
/// selections. This closes the telemetry -> re-encoding loop (ROADMAP
/// item 5).
Result<WorkloadProfile> ProfileFromRecords(
    const std::vector<obs::WorkloadRecord>& records,
    const std::string& column, const Column& col);

/// Outcome of evaluating a candidate re-encoding — the paper's future-work
/// item 3: "a model for evaluating the cost-effectiveness of a
/// reconstruction of the encoded bitmap indexes".
struct ReencodeDecision {
  /// Expected bitmap-vector reads per period under the current mapping.
  double current_cost = 0.0;
  /// Same under the candidate mapping.
  double candidate_cost = 0.0;
  /// One-time cost of rewriting the slices, in vector-write units
  /// (k' vectors of n bits each).
  double reencode_cost = 0.0;
  /// Periods until the saving pays for the rewrite; +inf when the
  /// candidate is not cheaper.
  double break_even_periods = 0.0;
  /// The recommendation: true iff the candidate is strictly cheaper and
  /// pays for itself within the caller's horizon.
  bool worthwhile = false;
};

/// Compares `current` vs `candidate` on `profile` for an index over `n`
/// rows. `horizon_periods` is how many periods of the profile the caller
/// expects the workload to stay stable.
Result<ReencodeDecision> EvaluateReencoding(
    const MappingTable& current, const MappingTable& candidate,
    const WorkloadProfile& profile, size_t n, double horizon_periods = 10.0,
    const ReductionOptions& reduction = ReductionOptions());

/// Convenience: mines the profile's predicates, optimizes a candidate
/// mapping for them (greedy + annealing), and evaluates it against the
/// current mapping. Returns the candidate and the decision.
struct ReencodeProposal {
  MappingTable candidate;
  ReencodeDecision decision;
};
Result<ReencodeProposal> ProposeReencoding(
    const MappingTable& current, const WorkloadProfile& profile, size_t m,
    size_t n, const OptimizerOptions& options = OptimizerOptions(),
    const EncoderOptions& encoder_options = EncoderOptions(),
    double horizon_periods = 10.0);

}  // namespace ebi

#endif  // EBI_QUERY_REENCODE_ADVISOR_H_
