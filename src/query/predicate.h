#ifndef EBI_QUERY_PREDICATE_H_
#define EBI_QUERY_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/column.h"

namespace ebi {

/// A selection predicate on one column. Queries are conjunctions of
/// predicates (the executor ANDs the per-predicate bitmaps — the index
/// "cooperativity" of Section 2.1). Range predicates cover both paper
/// range-search flavours: IN-lists and "j < A < i".
struct Predicate {
  enum class Kind : uint8_t {
    kEquals,
    kIn,
    kRange,
    kIsNull,
    kNotEquals,
    kNotIn,
  };

  std::string column;
  Kind kind = Kind::kEquals;
  Value value;                 // kEquals.
  std::vector<Value> values;   // kIn.
  int64_t lo = 0;              // kRange, inclusive.
  int64_t hi = 0;              // kRange, inclusive.

  static Predicate Eq(std::string column, Value v);
  static Predicate In(std::string column, std::vector<Value> vs);
  /// Inclusive range lo <= column <= hi.
  static Predicate Between(std::string column, int64_t lo, int64_t hi);
  static Predicate IsNull(std::string column);
  /// SQL semantics: NULL cells satisfy neither != nor NOT IN.
  static Predicate NotEq(std::string column, Value v);
  static Predicate NotIn(std::string column, std::vector<Value> vs);

  /// True for the negated kinds (evaluated as a complement).
  bool IsNegated() const {
    return kind == Kind::kNotEquals || kind == Kind::kNotIn;
  }
  /// The positive predicate a negated one complements.
  Predicate Positive() const;

  /// Width of the selection in distinct values — the paper's δ. Ranges
  /// need the column to resolve how many values they span.
  size_t Width(const Column& col) const;

  /// Stable short operator tag for logs: "eq", "in", "range", "isnull",
  /// "neq", "notin".
  const char* OpTag() const;

  /// Order-insensitive 64-bit identity of (column, operator, literal
  /// set): FNV-1a over the column and tag, folded with the sorted
  /// literal hashes. Two IN-lists with the same members fingerprint
  /// identically regardless of literal order. This is the key the
  /// workload log groups repeated predicates by (obs/workload_recorder.h
  /// and the re-encoding advisor).
  uint64_t Fingerprint() const;

  std::string ToString() const;
};

}  // namespace ebi

#endif  // EBI_QUERY_PREDICATE_H_
