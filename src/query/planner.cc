#include "query/planner.h"

namespace ebi {

Result<SelectionShape> AccessPathPlanner::ShapeOf(
    const Predicate& predicate) const {
  EBI_ASSIGN_OR_RETURN(const Column* column,
                       table_->FindColumn(predicate.column));
  SelectionShape shape;
  switch (predicate.kind) {
    case Predicate::Kind::kEquals:
    case Predicate::Kind::kIsNull:
    case Predicate::Kind::kNotEquals:
      shape.kind = SelectionShape::Kind::kPoint;
      shape.delta = 1;
      break;
    case Predicate::Kind::kIn:
    case Predicate::Kind::kNotIn:
      shape.kind = SelectionShape::Kind::kValueSet;
      shape.delta = std::max<size_t>(1, predicate.values.size());
      break;
    case Predicate::Kind::kRange:
      shape.kind = SelectionShape::Kind::kRange;
      shape.delta = std::max<size_t>(1, predicate.Width(*column));
      break;
  }
  return shape;
}

Result<AccessPath> AccessPathPlanner::Choose(
    const Predicate& predicate) const {
  const auto it = candidates_.find(predicate.column);
  if (it == candidates_.end() || it->second.empty()) {
    return Status::NotFound("no index registered for column " +
                            predicate.column);
  }
  EBI_ASSIGN_OR_RETURN(const SelectionShape shape, ShapeOf(predicate));
  AccessPath best;
  best.delta = shape.delta;
  for (SecondaryIndex* index : it->second) {
    if (predicate.kind == Predicate::Kind::kIsNull &&
        !index->SupportsIsNull()) {
      continue;
    }
    const double pages = index->EstimatePages(shape);
    if (best.index == nullptr || pages < best.estimated_pages) {
      best.index = index;
      best.estimated_pages = pages;
    }
  }
  if (best.index == nullptr) {
    return Status::NotFound("no index on " + predicate.column +
                            " supports " + predicate.ToString());
  }
  return best;
}

Result<SelectionResult> AccessPathPlanner::Select(
    const std::vector<Predicate>& predicates,
    std::vector<AccessPath>* paths) {
  const IoScope scope(io_);
  BitVector rows(table_->NumRows(), true);
  if (predicates.empty()) {
    rows.AndWith(table_->existence());
  }
  for (size_t i = 0; i < predicates.size(); ++i) {
    const Predicate& p = predicates[i];
    EBI_ASSIGN_OR_RETURN(const AccessPath path, Choose(p));
    if (paths != nullptr) {
      paths->push_back(path);
    }
    Result<BitVector> one = BitVector();
    switch (p.kind) {
      case Predicate::Kind::kEquals:
        one = path.index->EvaluateEquals(p.value);
        break;
      case Predicate::Kind::kIn:
        one = path.index->EvaluateIn(p.values);
        break;
      case Predicate::Kind::kRange:
        one = path.index->EvaluateRange(p.lo, p.hi);
        break;
      case Predicate::Kind::kIsNull:
        one = path.index->EvaluateIsNull();
        break;
      case Predicate::Kind::kNotEquals:
      case Predicate::Kind::kNotIn: {
        const Predicate positive = p.Positive();
        one = positive.kind == Predicate::Kind::kEquals
                  ? path.index->EvaluateEquals(positive.value)
                  : path.index->EvaluateIn(positive.values);
        if (one.ok()) {
          BitVector flipped = std::move(one).value();
          flipped.FlipAll();
          flipped.AndWith(table_->existence());
          EBI_RETURN_IF_ERROR(MaskNullRows(*table_, p.column, path.index,
                                           io_, &flipped));
          one = std::move(flipped);
        }
        break;
      }
    }
    if (!one.ok()) {
      return one.status();
    }
    if (i == 0) {
      rows = std::move(one).value();
    } else {
      rows.AndWith(*one);
    }
  }
  SelectionResult result;
  result.count = rows.Count();
  result.rows = std::move(rows);
  result.io = scope.Delta();
  return result;
}

}  // namespace ebi
