#include "query/planner.h"

#include <chrono>

#include "obs/metrics.h"

namespace ebi {

Result<SelectionShape> AccessPathPlanner::ShapeOf(
    const Predicate& predicate) const {
  EBI_ASSIGN_OR_RETURN(const Column* column,
                       table_->FindColumn(predicate.column));
  SelectionShape shape;
  switch (predicate.kind) {
    case Predicate::Kind::kEquals:
    case Predicate::Kind::kIsNull:
    case Predicate::Kind::kNotEquals:
      shape.kind = SelectionShape::Kind::kPoint;
      shape.delta = 1;
      break;
    case Predicate::Kind::kIn:
    case Predicate::Kind::kNotIn:
      shape.kind = SelectionShape::Kind::kValueSet;
      shape.delta = std::max<size_t>(1, predicate.values.size());
      break;
    case Predicate::Kind::kRange:
      shape.kind = SelectionShape::Kind::kRange;
      shape.delta = std::max<size_t>(1, predicate.Width(*column));
      break;
  }
  return shape;
}

Result<AccessPath> AccessPathPlanner::Choose(
    const Predicate& predicate) const {
  obs::ScopedSpan span("plan.choose");
  const auto it = candidates_.find(predicate.column);
  if (it == candidates_.end() || it->second.empty()) {
    return Status::NotFound("no index registered for column " +
                            predicate.column);
  }
  EBI_ASSIGN_OR_RETURN(const SelectionShape shape, ShapeOf(predicate));
  AccessPath best;
  best.delta = shape.delta;
  for (size_t c = 0; c < it->second.size(); ++c) {
    SecondaryIndex* index = it->second[c];
    if (predicate.kind == Predicate::Kind::kIsNull &&
        !index->SupportsIsNull()) {
      continue;
    }
    const double pages = index->EstimatePages(shape);
    if (span.active()) {
      // One attribute per candidate, keyed by registration order so two
      // same-named indexes on a column stay distinguishable.
      span.Attr("cand." + std::to_string(c) + "." + index->Name(), pages);
    }
    if (best.index == nullptr || pages < best.estimated_pages) {
      best.index = index;
      best.estimated_pages = pages;
    }
  }
  if (best.index == nullptr) {
    return Status::NotFound("no index on " + predicate.column +
                            " supports " + predicate.ToString());
  }
  if (span.active()) {
    span.Attr("chosen", best.index->Name());
    span.Attr("est_pages", best.estimated_pages);
    span.Attr("delta", best.delta);
  }
  return best;
}

Result<SelectionResult> AccessPathPlanner::Select(
    const std::vector<Predicate>& predicates,
    std::vector<AccessPath>* paths) {
  obs::ScopedSpan span("planner.select");
  const auto started = std::chrono::steady_clock::now();
  const IoScope scope(io_);
  BitVector rows(table_->NumRows(), true);
  if (predicates.empty()) {
    rows.AndWith(table_->existence());
  }
  for (size_t i = 0; i < predicates.size(); ++i) {
    const Predicate& p = predicates[i];
    obs::ScopedSpan pspan("predicate");
    if (pspan.active()) {
      pspan.Attr("column", p.column);
      pspan.Attr("pred", p.ToString());
    }
    EBI_ASSIGN_OR_RETURN(const AccessPath path, Choose(p));
    if (paths != nullptr) {
      paths->push_back(path);
    }
    const IoScope pscope(io_);
    Result<BitVector> one = BitVector();
    switch (p.kind) {
      case Predicate::Kind::kEquals:
        one = path.index->EvaluateEquals(p.value);
        break;
      case Predicate::Kind::kIn:
        one = path.index->EvaluateIn(p.values);
        break;
      case Predicate::Kind::kRange:
        one = path.index->EvaluateRange(p.lo, p.hi);
        break;
      case Predicate::Kind::kIsNull:
        one = path.index->EvaluateIsNull();
        break;
      case Predicate::Kind::kNotEquals:
      case Predicate::Kind::kNotIn: {
        const Predicate positive = p.Positive();
        one = positive.kind == Predicate::Kind::kEquals
                  ? path.index->EvaluateEquals(positive.value)
                  : path.index->EvaluateIn(positive.values);
        if (one.ok()) {
          BitVector flipped = std::move(one).value();
          flipped.FlipAll();
          flipped.AndWith(table_->existence());
          EBI_RETURN_IF_ERROR(MaskNullRows(*table_, p.column, path.index,
                                           io_, &flipped));
          one = std::move(flipped);
        }
        break;
      }
    }
    if (!one.ok()) {
      return one.status();
    }
    const IoStats actual = pscope.Delta();
    obs::RecordEstimateError(path.estimated_pages,
                             static_cast<double>(actual.pages_read));
    if (pspan.active()) {
      pspan.Attr("rows", one->Count());
      pspan.AttrIo(actual);
    }
    if (i == 0) {
      rows = std::move(one).value();
    } else {
      rows.AndWith(*one);
    }
  }
  SelectionResult result;
  result.count = rows.Count();
  result.rows = std::move(rows);
  result.io = scope.Delta();
  const double latency_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  obs::RecordQuery(result.io, latency_ms);
  if (span.active()) {
    span.Attr("predicates", predicates.size());
    span.Attr("rows", result.count);
    span.AttrIo(result.io);
  }
  return result;
}

Result<SelectionResult> AccessPathPlanner::ExplainSelect(
    const std::vector<Predicate>& predicates, obs::QueryTrace* trace,
    std::vector<AccessPath>* paths) {
  const obs::TraceScope install(trace);
  return Select(predicates, paths);
}

}  // namespace ebi
