#ifndef EBI_QUERY_INDEX_MANAGER_H_
#define EBI_QUERY_INDEX_MANAGER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "index/index.h"
#include "index/index_factory.h"
#include "query/maintenance.h"
#include "query/planner.h"
#include "storage/table.h"
#include "util/status.h"

namespace ebi {

// IndexKind, IndexKindFromName, IndexKindName and MakeSecondaryIndex
// moved to index/index_factory.h so the index layer (ShardedIndex) can
// build shards through the same path; this include keeps the old names
// visible to existing users of this header.

/// Owns every index of one table and keeps the moving parts wired
/// together: CREATE INDEX builds the structure and registers it with both
/// the cost-based planner (several per column is encouraged) and the
/// maintenance driver, so appends/deletes and planned selections stay
/// consistent without the caller juggling objects — the "DBA surface" of
/// the library.
class IndexManager {
 public:
  IndexManager(Table* table, IoAccountant* io)
      : table_(table),
        io_(io),
        planner_(table, io),
        maintenance_(table) {}

  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// Builds an index of `kind` on `column` and registers it everywhere.
  /// Returns the index for kind-specific calls (aggregates etc.).
  Result<SecondaryIndex*> CreateIndex(const std::string& column,
                                      IndexKind kind);

  /// Drops the index of `kind` on `column`.
  Status DropIndex(const std::string& column, IndexKind kind);

  /// All indexes on `column` (empty if none).
  std::vector<SecondaryIndex*> IndexesOn(const std::string& column) const;

  /// Appends a row to the table and every index (domain expansion
  /// included); DeleteRow propagates too.
  Status AppendRow(const std::vector<Value>& values) {
    return maintenance_.AppendRow(values);
  }
  /// Batched append — one coalesced index extension per column.
  Status AppendRows(const std::vector<std::vector<Value>>& rows) {
    return maintenance_.AppendRows(rows);
  }
  Status DeleteRow(size_t row) { return maintenance_.DeleteRow(row); }

  /// Planned conjunctive selection over all registered indexes.
  Result<SelectionResult> Select(const std::vector<Predicate>& predicates,
                                 std::vector<AccessPath>* paths = nullptr) {
    return planner_.Select(predicates, paths);
  }

  AccessPathPlanner& planner() { return planner_; }
  size_t NumIndexes() const { return entries_.size(); }

  /// Total bytes across all indexes.
  size_t TotalSizeBytes() const;

 private:
  struct Entry {
    std::string column;
    IndexKind kind;
    std::unique_ptr<SecondaryIndex> index;
  };

  /// Rebuilds planner and maintenance registrations from `entries_`.
  void Rewire();

  Table* table_;
  IoAccountant* io_;
  AccessPathPlanner planner_;
  MaintenanceDriver maintenance_;
  std::vector<Entry> entries_;
};

}  // namespace ebi

#endif  // EBI_QUERY_INDEX_MANAGER_H_
