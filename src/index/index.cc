#include "index/index.h"

namespace ebi {

std::vector<ValueId> SecondaryIndex::IdsOf(
    const std::vector<Value>& values) const {
  std::vector<ValueId> ids;
  ids.reserve(values.size());
  for (const Value& v : values) {
    const std::optional<ValueId> id = column_->Lookup(v);
    if (id.has_value()) {
      ids.push_back(*id);
    }
  }
  return ids;
}

}  // namespace ebi
