#include "index/bit_sliced_index.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/bit_util.h"

namespace ebi {

Status BitSlicedIndex::Build() {
  if (column_->type() != Column::Type::kInt64) {
    return Status::InvalidArgument(
        "bit-sliced index requires an integer column");
  }
  const size_t n = column_->size();

  // Pass 1: value range over non-NULL cells.
  bool any = false;
  int64_t min_v = 0;
  int64_t max_v = 0;
  for (const Value& v : column_->dictionary()) {
    if (!any || v.int_value < min_v) {
      min_v = v.int_value;
    }
    if (!any || v.int_value > max_v) {
      max_v = v.int_value;
    }
    any = true;
  }
  bias_ = any ? min_v : 0;
  const uint64_t span =
      any ? static_cast<uint64_t>(max_v - min_v) + 1 : 1;
  const int k = Log2Ceil(span);

  slices_.assign(static_cast<size_t>(k), BitVector(n));
  for (size_t row = 0; row < n; ++row) {
    const ValueId id = column_->ValueIdAt(row);
    if (id == kNullValueId) {
      continue;  // NULL cells stay all-zero; masked out via the column.
    }
    const uint64_t biased =
        static_cast<uint64_t>(column_->ValueOf(id).int_value - bias_);
    WriteBiased(row, biased);
  }
  rows_indexed_ = n;
  built_ = true;
  return Status::OK();
}

void BitSlicedIndex::WriteBiased(size_t row, uint64_t biased) {
  for (size_t i = 0; i < slices_.size(); ++i) {
    slices_[i].Assign(row, (biased >> i) & 1);
  }
}

Status BitSlicedIndex::Append(size_t row) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (row != rows_indexed_) {
    return Status::InvalidArgument("rows must be appended in order");
  }
  const ValueId id = column_->ValueIdAt(row);
  uint64_t biased = 0;
  bool is_null = true;
  if (id != kNullValueId) {
    const int64_t v = column_->ValueOf(id).int_value;
    if (v < bias_) {
      return Status::Unimplemented(
          "appended value below the slice bias; rebuild the index");
    }
    biased = static_cast<uint64_t>(v - bias_);
    is_null = false;
  }
  // Grow the slice set if the new value needs more bits.
  while (!is_null && biased >> slices_.size() != 0 && slices_.size() < 63) {
    slices_.emplace_back(rows_indexed_);
  }
  for (size_t i = 0; i < slices_.size(); ++i) {
    slices_[i].PushBack(!is_null && ((biased >> i) & 1));
  }
  ++rows_indexed_;
  return Status::OK();
}

void BitSlicedIndex::ChargeSlice(size_t i) {
  io_->ChargeVectorRead(slices_[i].SizeBytes());
}

BitVector BitSlicedIndex::LessOrEqual(uint64_t c) {
  // Classic slice-arithmetic comparison: walk from the most significant
  // slice, maintaining "strictly less so far" and "equal so far" bitmaps.
  BitVector lt(rows_indexed_);
  BitVector eq(rows_indexed_, true);
  for (size_t i = slices_.size(); i > 0; --i) {
    const size_t bit = i - 1;
    ChargeSlice(bit);
    if ((c >> bit) & 1) {
      // Rows equal so far with a 0 here become strictly less.
      BitVector step = eq;
      step.AndNotWith(slices_[bit]);
      lt.OrWith(step);
      eq.AndWith(slices_[bit]);
    } else {
      eq.AndNotWith(slices_[bit]);
    }
  }
  lt.OrWith(eq);
  return lt;
}

Result<BitVector> BitSlicedIndex::EvaluateRange(int64_t lo, int64_t hi) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  obs::ScopedSpan span("index.eval");
  const IoScope scope(io_);
  if (span.active()) {
    span.Attr("index", Name());
    span.Attr("slices_held", slices_.size());
  }
  if (lo > hi) {
    return BitVector(rows_indexed_);
  }
  const int64_t max_biased =
      slices_.empty()
          ? 0
          : static_cast<int64_t>((uint64_t{1} << slices_.size()) - 1);

  BitVector result;
  if (hi < bias_ || lo > bias_ + max_biased) {
    result = BitVector(rows_indexed_);
  } else {
    const uint64_t hi_b =
        static_cast<uint64_t>(std::min(hi - bias_, max_biased));
    result = LessOrEqual(hi_b);
    if (lo > bias_) {
      result.AndNotWith(
          LessOrEqual(static_cast<uint64_t>(lo - bias_ - 1)));
    }
  }

  // NULL cells share the all-zero slice pattern with value bias_, so mask
  // them out, then mask deleted rows.
  if (column_->HasNulls()) {
    for (size_t row = 0; row < rows_indexed_; ++row) {
      if (column_->ValueIdAt(row) == kNullValueId) {
        result.Reset(row);
      }
    }
  }
  io_->ChargeVectorRead(existence_->SizeBytes());
  result.AndWith(*existence_);
  if (span.active()) {
    span.Attr("existence_and", true);
    span.AttrIo(scope.Delta());
  }
  return result;
}

Result<BitVector> BitSlicedIndex::EvaluateEquals(const Value& value) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (value.kind != Value::Kind::kInt64) {
    return BitVector(rows_indexed_);
  }
  return EvaluateRange(value.int_value, value.int_value);
}

Result<BitVector> BitSlicedIndex::EvaluateIn(
    const std::vector<Value>& values) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  BitVector result(rows_indexed_);
  for (const Value& v : values) {
    EBI_ASSIGN_OR_RETURN(const BitVector one, EvaluateEquals(v));
    result.OrWith(one);
  }
  return result;
}

Result<int64_t> BitSlicedIndex::Sum(const BitVector& rows) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (rows.size() != rows_indexed_) {
    return Status::InvalidArgument("selection bitmap size mismatch");
  }
  int64_t total = 0;
  for (size_t i = 0; i < slices_.size(); ++i) {
    ChargeSlice(i);
    total += static_cast<int64_t>(And(slices_[i], rows).Count())
             << i;
  }
  total += bias_ * static_cast<int64_t>(rows.Count());
  return total;
}

Result<int64_t> BitSlicedIndex::Min(const BitVector& rows) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (rows.size() != rows_indexed_ || rows.IsZero()) {
    return Status::NotFound("empty selection");
  }
  BitVector candidates = rows;
  uint64_t value = 0;
  for (size_t i = slices_.size(); i > 0; --i) {
    const size_t bit = i - 1;
    ChargeSlice(bit);
    BitVector zeros = candidates;
    zeros.AndNotWith(slices_[bit]);
    if (!zeros.IsZero()) {
      candidates = std::move(zeros);  // Some candidate has 0 here: min does.
    } else {
      value |= uint64_t{1} << bit;  // All candidates have 1 here.
    }
  }
  return bias_ + static_cast<int64_t>(value);
}

Result<int64_t> BitSlicedIndex::Max(const BitVector& rows) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (rows.size() != rows_indexed_ || rows.IsZero()) {
    return Status::NotFound("empty selection");
  }
  BitVector candidates = rows;
  uint64_t value = 0;
  for (size_t i = slices_.size(); i > 0; --i) {
    const size_t bit = i - 1;
    ChargeSlice(bit);
    const BitVector ones = And(candidates, slices_[bit]);
    if (!ones.IsZero()) {
      candidates = ones;
      value |= uint64_t{1} << bit;
    }
  }
  return bias_ + static_cast<int64_t>(value);
}

Result<int64_t> BitSlicedIndex::Quantile(const BitVector& rows, double q) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (q <= 0.0 || q > 1.0) {
    return Status::InvalidArgument("quantile must be in (0, 1]");
  }
  if (rows.size() != rows_indexed_) {
    return Status::InvalidArgument("selection bitmap size mismatch");
  }
  const size_t count = rows.Count();
  if (count == 0) {
    return Status::NotFound("empty selection");
  }
  // Rank of the requested quantile, 1-based: the ceil(q*count)-th
  // smallest.
  size_t rank = static_cast<size_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) {
    ++rank;
  }
  rank = std::max<size_t>(rank, 1);

  BitVector candidates = rows;
  uint64_t value = 0;
  for (size_t i = slices_.size(); i > 0; --i) {
    const size_t bit = i - 1;
    ChargeSlice(bit);
    BitVector zeros = candidates;
    zeros.AndNotWith(slices_[bit]);
    const size_t zero_count = zeros.Count();
    if (rank <= zero_count) {
      candidates = std::move(zeros);
    } else {
      rank -= zero_count;
      candidates.AndWith(slices_[bit]);
      value |= uint64_t{1} << bit;
    }
  }
  return bias_ + static_cast<int64_t>(value);
}

size_t BitSlicedIndex::SizeBytes() const {
  size_t total = 0;
  for (const BitVector& slice : slices_) {
    total += slice.SizeBytes();
  }
  return total;
}

}  // namespace ebi
