#ifndef EBI_INDEX_ENCODED_BITMAP_INDEX_H_
#define EBI_INDEX_ENCODED_BITMAP_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "boolean/cover.h"
#include "boolean/reduction.h"
#include "encoding/mapping_table.h"
#include "encoding/optimizer.h"
#include "index/index.h"
#include "util/stored_bitmap.h"

namespace ebi {

/// How the domain encoding of an EncodedBitmapIndex is chosen at Build().
enum class EncodingStrategy {
  /// Binary counting (also the "dynamic bitmap" encoding of Section 4).
  kSequential,
  /// Reflected Gray code: consecutive values form chains.
  kGray,
  /// Uniformly random — the improper-mapping baseline of Figure 3(b).
  kRandom,
  /// Greedy affinity + Gray assignment over `training_predicates`.
  kGreedy,
  /// Greedy start + simulated annealing over `training_predicates`
  /// (the well-defined-encoding search of Theorems 2.2/2.3).
  kAnnealed,
  /// Caller supplies the mapping via SetMapping() before Build().
  kCustom,
};

/// Options for EncodedBitmapIndex.
struct EncodedBitmapIndexOptions {
  EncodingStrategy strategy = EncodingStrategy::kSequential;

  /// Reserve codeword 0 for void (deleted/non-existing) tuples. Theorem
  /// 2.1: with this reservation, selection results need no existence AND.
  /// When false, every evaluation reads and ANDs the existence bitmap.
  bool reserve_void_zero = true;

  /// Encode NULL with its own codeword (the paper's preferred treatment).
  /// When unset, a NULL codeword is allocated iff the column has NULLs at
  /// Build() time.
  std::optional<bool> encode_null;

  /// Spare code-width headroom for future domain expansion.
  int extra_width = 0;

  /// Logical-reduction behaviour (enable_reduction=false is the ablation
  /// that evaluates raw min-terms).
  ReductionOptions reduction;

  /// Training predicates (ValueId sets) for kGreedy / kAnnealed.
  PredicateSet training_predicates;

  /// Annealer budget for kAnnealed.
  OptimizerOptions optimizer;

  /// RNG seed for kRandom.
  uint64_t random_seed = 7;

  /// Physical format of the slice vectors. Encoded slices sit near 50%
  /// density (Section 3.1), so compression buys little here — the knob
  /// exists to measure exactly that, with the same query path throughout.
  BitmapFormat format = BitmapFormat::kPlain;
};

/// The encoded bitmap index of Definition 2.1 — the paper's contribution.
///
/// Holds k = ceil(log2 |A|) bitmap vectors B_{k-1}..B_0, where B_i[j] is
/// bit i of the codeword of tuple j's value under the mapping table M^A.
/// Selections are answered by building the retrieval Boolean expression
/// (the OR of the selected values' min-terms), logically reducing it with
/// unused codewords as don't-cares, and evaluating the reduced cover over
/// the slices; the number of distinct vectors in the reduced cover is the
/// I/O charged (c_e of Section 3.1).
///
/// Maintenance follows Section 2.2: appends of known values set k bits;
/// appends of new values take a free codeword, or — when Equation (1)
/// fails — grow the code width by adding an all-zero bitmap vector
/// (Figure 2(b)).
class EncodedBitmapIndex : public SecondaryIndex {
 public:
  EncodedBitmapIndex(const Column* column, const BitVector* existence,
                     IoAccountant* io,
                     EncodedBitmapIndexOptions options =
                         EncodedBitmapIndexOptions())
      : SecondaryIndex(column, existence, io),
        options_(std::move(options)) {}

  std::string Name() const override {
    return std::string("encoded-bitmap") +
           BitmapFormatSuffix(options_.format);
  }

  /// Installs a caller-provided mapping (strategy kCustom). The mapping
  /// must cover the column's current cardinality.
  Status SetMapping(MappingTable mapping);

  Status Build() override;
  Status Append(size_t row) override;

  /// Batched appends (Section 2.2, coalesced): resolves codewords for the
  /// whole batch first — growing the code width at most as far as the
  /// batch needs, in one mapping pass — then writes all bits in a single
  /// slice pass. Compressed formats decompress and recompress the slice
  /// set exactly once per batch (one ebi.index.slice_rewrites tick),
  /// where per-row Append pays one full rewrite per row.
  Status AppendBatch(size_t first_row, size_t count) override;

  /// Copy-on-write clone for snapshot publication: copies the mapping and
  /// the slice vectors as built, rebinding to `column`/`existence`/`io`
  /// (which must hold exactly the rows this index has indexed). The
  /// clone keeps the trained mapping — no re-encoding, no Build() pass.
  Result<std::unique_ptr<SecondaryIndex>> CloneRebound(
      const Column* column, const BitVector* existence,
      IoAccountant* io) const override;

  /// Re-encodes a deleted row to the void codeword (Section 2.2's handling
  /// of deleted tuples). Call after Table::DeleteRow.
  Status MarkDeleted(size_t row) override;

  Result<BitVector> EvaluateEquals(const Value& value) override;
  Result<BitVector> EvaluateIn(const std::vector<Value>& values) override;
  Result<BitVector> EvaluateRange(int64_t lo, int64_t hi) override;

  /// Rows whose column is NULL (requires a NULL codeword).
  Result<BitVector> EvaluateIsNull() override;
  bool SupportsIsNull() const override {
    return mapping_.null_code().has_value();
  }

  size_t SizeBytes() const override;
  size_t NumVectors() const override { return SliceCount(); }

  /// Section 3.1: c_e <= ceil(log2 m) whatever δ is (worst case; reduction
  /// only lowers it), plus an existence read when no void codeword exists.
  double EstimatePages(const SelectionShape& shape) const override {
    (void)shape;
    const double existence =
        mapping_.void_code().has_value() ? 0.0 : 1.0;
    return (static_cast<double>(SliceCount()) + existence) *
           PagesPerVector();
  }

  const MappingTable& mapping() const { return mapping_; }
  /// The plain slice vectors. Only populated in BitmapFormat::kPlain (the
  /// persistence path); empty when the index stores compressed slices.
  const std::vector<BitVector>& slices() const { return slices_; }

  /// The reduced retrieval expression an IN-list would evaluate — exposed
  /// so experiments can report c_e without running the query.
  Result<Cover> CoverForIn(const std::vector<Value>& values) const;

  /// Distinct bitmap vectors the reduced expression for `values` touches.
  Result<int> AccessCostForIn(const std::vector<Value>& values) const;

  /// Re-encodes the index under a new mapping (the "dynamic re-encoding"
  /// of Section 2.2 / future-work item 3): all slices are rewritten in one
  /// O(n * k') pass; the data is untouched. The new mapping must cover the
  /// column's current cardinality, and must reserve a NULL codeword if the
  /// column has NULLs (and a void codeword to keep Theorem 2.1 behaviour).
  Status Reencode(MappingTable new_mapping);

  /// Restores a previously persisted index: installs the mapping and the
  /// slice vectors directly (no rebuild pass). Slice count must equal the
  /// mapping width and every slice must cover the bound column's rows.
  /// Used by the persistence layer (index/persistence.h).
  Status RestoreFromParts(MappingTable mapping,
                          std::vector<BitVector> slices);

  void ForEachAuditVector(
      const std::function<void(const AuditableVector&)>& fn) const override {
    for (size_t i = 0; i < slices_.size(); ++i) {
      fn(AuditableVector{"slice", i, &slices_[i], nullptr});
    }
    for (size_t i = 0; i < stored_slices_.size(); ++i) {
      fn(AuditableVector{"slice", i, nullptr, &stored_slices_[i]});
    }
  }

  const MappingTable* audit_mapping() const override {
    return built_ ? &mapping_ : nullptr;
  }

 private:
  Result<Cover> CoverForIds(const std::vector<ValueId>& ids) const;
  Result<BitVector> EvaluateCoverCharged(const Cover& cover);
  /// Writes codeword `code` into plain slices at row `row`.
  static void WriteCodeTo(std::vector<BitVector>* slices, size_t row,
                          uint64_t code);
  /// Ticks ebi.index.slice_rewrites — one full decompress-modify-
  /// recompress cycle of the compressed slice set.
  static void CountSliceRewrite();
  Result<uint64_t> CodeForRow(size_t row) const;

  /// Number of slice vectors (whatever the physical format).
  size_t SliceCount() const {
    return options_.format == BitmapFormat::kPlain ? slices_.size()
                                                   : stored_slices_.size();
  }
  /// Physical bytes of slice `i` — the per-read I/O charge.
  size_t SliceSizeBytes(size_t i) const;
  /// Installs freshly built plain slices in the configured format.
  void StoreSlices(std::vector<BitVector> plain);
  /// Plain copies of every slice (decompress-modify-recompress idiom).
  std::vector<BitVector> MaterializeSlices() const;

  EncodedBitmapIndexOptions options_;
  bool built_ = false;
  size_t rows_indexed_ = 0;
  MappingTable mapping_;
  /// Plain-format storage: slices_[i] = B_i. Empty in compressed formats.
  std::vector<BitVector> slices_;
  /// Compressed-format storage (kRle / kEwah). Empty in kPlain.
  std::vector<StoredBitmap> stored_slices_;
};

}  // namespace ebi

#endif  // EBI_INDEX_ENCODED_BITMAP_INDEX_H_
