#ifndef EBI_INDEX_RANGE_BASED_BITMAP_INDEX_H_
#define EBI_INDEX_RANGE_BASED_BITMAP_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "index/index.h"
#include "util/stored_bitmap.h"

namespace ebi {

/// Options for the range-based bitmap index.
struct RangeBasedBitmapIndexOptions {
  /// Number of equal-population buckets.
  size_t num_buckets = 32;

  /// Physical format of the per-bucket bitmap vectors. Bucket vectors are
  /// ~1/#buckets dense, so compression pays off like it does for simple
  /// bitmap vectors.
  BitmapFormat format = BitmapFormat::kPlain;
};

/// The dynamic range-based bitmap index of Wu & Yu (Section 4, [19]):
/// the (integer) domain is partitioned into buckets of roughly equal
/// population — i.e. by the observed value distribution, robust to skew —
/// and one bitmap vector is kept per bucket.
///
/// Wholly covered buckets answer a range directly; boundary buckets yield
/// candidates that must be verified against the attribute values (charged
/// as a projection read), the extra cost the paper's own range-based
/// *encoded* variant avoids by partitioning on predefined predicates.
class RangeBasedBitmapIndex : public SecondaryIndex {
 public:
  RangeBasedBitmapIndex(const Column* column, const BitVector* existence,
                        IoAccountant* io,
                        RangeBasedBitmapIndexOptions options =
                            RangeBasedBitmapIndexOptions())
      : SecondaryIndex(column, existence, io), options_(options) {}

  std::string Name() const override {
    return std::string("range-based-bitmap") +
           BitmapFormatSuffix(options_.format);
  }

  Status Build() override;
  Status Append(size_t row) override;

  Result<BitVector> EvaluateEquals(const Value& value) override;
  Result<BitVector> EvaluateIn(const std::vector<Value>& values) override;
  Result<BitVector> EvaluateRange(int64_t lo, int64_t hi) override;

  size_t SizeBytes() const override;
  size_t NumVectors() const override { return bitmaps_.size(); }

  /// Covered buckets are vector reads; the two boundary buckets add a
  /// candidate check per row they hold (n / #buckets fetches each).
  double EstimatePages(const SelectionShape& shape) const override {
    if (bitmaps_.empty()) {
      return 1.0;
    }
    const double buckets = static_cast<double>(bitmaps_.size());
    const double covered = std::min(
        buckets, static_cast<double>(shape.delta) * buckets /
                     std::max<double>(1.0, column_->Cardinality()));
    const double rows_per_bucket =
        static_cast<double>(NumRows()) / buckets;
    const double boundary =
        shape.kind == SelectionShape::Kind::kRange ? 2.0 : 1.0;
    const double check_pages =
        boundary * rows_per_bucket * sizeof(int64_t) /
        static_cast<double>(io_->page_size());
    return (covered + boundary + 1.0) * PagesPerVector() + check_pages;
  }

  /// Bucket lower bounds (bucket i spans [bounds_[i], bounds_[i+1]), the
  /// last bucket is unbounded above).
  const std::vector<int64_t>& bucket_lower_bounds() const { return bounds_; }

  /// Rows verified one-by-one during the last range query (the candidate-
  /// check overhead of boundary buckets).
  size_t last_candidates_checked() const { return last_candidates_; }

  void ForEachAuditVector(
      const std::function<void(const AuditableVector&)>& fn) const override {
    for (size_t i = 0; i < bitmaps_.size(); ++i) {
      fn(AuditableVector{"bucket", i, nullptr, &bitmaps_[i]});
    }
  }

 private:
  size_t BucketOf(int64_t v) const;
  /// Verifies candidate rows of a partially covered bucket.
  void VerifyBucket(size_t bucket, int64_t lo, int64_t hi, BitVector* out);

  RangeBasedBitmapIndexOptions options_;
  bool built_ = false;
  size_t rows_indexed_ = 0;
  std::vector<int64_t> bounds_;  // bounds_[i] = lower bound of bucket i.
  /// One vector per bucket, in options_.format.
  std::vector<StoredBitmap> bitmaps_;
  size_t last_candidates_ = 0;
};

}  // namespace ebi

#endif  // EBI_INDEX_RANGE_BASED_BITMAP_INDEX_H_
