#include "index/range_based_bitmap_index.h"

#include <algorithm>

#include "obs/trace.h"

namespace ebi {

Status RangeBasedBitmapIndex::Build() {
  if (column_->type() != Column::Type::kInt64) {
    return Status::InvalidArgument(
        "range-based bitmap index requires an integer column");
  }
  const size_t n = column_->size();

  // Equal-population bucket bounds from the sorted non-NULL values.
  std::vector<int64_t> values;
  values.reserve(n);
  for (size_t row = 0; row < n; ++row) {
    const ValueId id = column_->ValueIdAt(row);
    if (id != kNullValueId) {
      values.push_back(column_->ValueOf(id).int_value);
    }
  }
  std::sort(values.begin(), values.end());

  const size_t buckets =
      std::max<size_t>(1, std::min(options_.num_buckets,
                                   std::max<size_t>(1, values.size())));
  bounds_.clear();
  bounds_.reserve(buckets);
  for (size_t b = 0; b < buckets; ++b) {
    const size_t pos = values.empty() ? 0 : b * values.size() / buckets;
    const int64_t bound = values.empty() ? 0 : values[pos];
    // Keep bounds strictly increasing (skewed data can repeat quantiles).
    if (bounds_.empty() || bound > bounds_.back()) {
      bounds_.push_back(bound);
    }
  }

  std::vector<BitVector> plain(bounds_.size(), BitVector(n));
  for (size_t row = 0; row < n; ++row) {
    const ValueId id = column_->ValueIdAt(row);
    if (id == kNullValueId) {
      continue;
    }
    plain[BucketOf(column_->ValueOf(id).int_value)].Set(row);
  }
  bitmaps_.clear();
  bitmaps_.reserve(plain.size());
  for (BitVector& b : plain) {
    bitmaps_.push_back(StoredBitmap::Make(std::move(b), options_.format));
  }
  rows_indexed_ = n;
  built_ = true;
  return Status::OK();
}

size_t RangeBasedBitmapIndex::BucketOf(int64_t v) const {
  // Last bound <= v; values below every bound fall into bucket 0.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  if (it == bounds_.begin()) {
    return 0;
  }
  return static_cast<size_t>(it - bounds_.begin()) - 1;
}

Status RangeBasedBitmapIndex::Append(size_t row) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (row != rows_indexed_) {
    return Status::InvalidArgument("rows must be appended in order");
  }
  const ValueId id = column_->ValueIdAt(row);
  for (size_t b = 0; b < bitmaps_.size(); ++b) {
    bool set = false;
    if (id != kNullValueId) {
      set = BucketOf(column_->ValueOf(id).int_value) == b;
    }
    bitmaps_[b].AppendBit(set);
  }
  ++rows_indexed_;
  return Status::OK();
}

void RangeBasedBitmapIndex::VerifyBucket(size_t bucket, int64_t lo,
                                         int64_t hi, BitVector* out) {
  io_->ChargeVectorRead(bitmaps_[bucket].SizeBytes());
  bitmaps_[bucket].ForEachSetBit([&](size_t row) {
    // Candidate check: each candidate costs an attribute fetch.
    ++last_candidates_;
    io_->ChargeBytes(sizeof(int64_t));
    const ValueId id = column_->ValueIdAt(row);
    const int64_t v = column_->ValueOf(id).int_value;
    if (v >= lo && v <= hi) {
      out->Set(row);
    }
  });
}

Result<BitVector> RangeBasedBitmapIndex::EvaluateRange(int64_t lo,
                                                       int64_t hi) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  obs::ScopedSpan span("index.eval");
  const IoScope scope(io_);
  last_candidates_ = 0;
  BitVector result(rows_indexed_);
  if (lo > hi) {
    return result;
  }
  const size_t first = BucketOf(lo);
  const size_t last = BucketOf(hi);
  size_t buckets_read = 0;
  for (size_t b = first; b <= last && b < bitmaps_.size(); ++b) {
    ++buckets_read;
    const int64_t bucket_lo = bounds_[b];
    const bool has_upper = b + 1 < bounds_.size();
    const int64_t bucket_hi_excl = has_upper ? bounds_[b + 1] : 0;
    const bool fully_covered =
        lo <= bucket_lo && (has_upper ? hi >= bucket_hi_excl - 1 : false);
    if (fully_covered) {
      io_->ChargeVectorRead(bitmaps_[b].SizeBytes());
      if (const BitVector* plain = bitmaps_[b].AsPlain()) {
        result.OrWith(*plain);
      } else {
        result.OrWith(bitmaps_[b].ToBitVector());
      }
    } else {
      VerifyBucket(b, lo, hi, &result);
    }
  }
  io_->ChargeVectorRead(existence_->SizeBytes());
  result.AndWith(*existence_);
  if (span.active()) {
    span.Attr("index", Name());
    span.Attr("buckets", buckets_read);
    span.Attr("candidates", last_candidates_);
    span.Attr("existence_and", true);
    span.AttrIo(scope.Delta());
  }
  return result;
}

Result<BitVector> RangeBasedBitmapIndex::EvaluateEquals(const Value& value) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (value.kind != Value::Kind::kInt64) {
    return BitVector(rows_indexed_);
  }
  return EvaluateRange(value.int_value, value.int_value);
}

Result<BitVector> RangeBasedBitmapIndex::EvaluateIn(
    const std::vector<Value>& values) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  BitVector result(rows_indexed_);
  size_t candidates = 0;
  for (const Value& v : values) {
    EBI_ASSIGN_OR_RETURN(const BitVector one, EvaluateEquals(v));
    candidates += last_candidates_;
    result.OrWith(one);
  }
  last_candidates_ = candidates;
  return result;
}

size_t RangeBasedBitmapIndex::SizeBytes() const {
  size_t total = bounds_.size() * sizeof(int64_t);
  for (const StoredBitmap& b : bitmaps_) {
    total += b.SizeBytes();
  }
  return total;
}

}  // namespace ebi
