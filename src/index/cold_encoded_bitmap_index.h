#ifndef EBI_INDEX_COLD_ENCODED_BITMAP_INDEX_H_
#define EBI_INDEX_COLD_ENCODED_BITMAP_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "boolean/reduction.h"
#include "encoding/mapping_table.h"
#include "index/index.h"
#include "storage/bitmap_store.h"

namespace ebi {

namespace exec {
class ThreadPool;
}  // namespace exec

/// Options for the cold encoded bitmap index.
struct ColdEncodedBitmapIndexOptions {
  /// Buffer-pool capacity in 4 KB pages. With fewer pooled pages than
  /// the slices span, queries that reduce to few vectors stay cheap
  /// while worst-case queries page — exactly the regime the paper's
  /// page-read cost metric models.
  size_t pool_pages = 4;
  /// Directory for the backing file.
  std::string directory = "/tmp";
  ReductionOptions reduction;
  /// Physical on-disk format of the slice vectors (storage-engine
  /// slices); compressed slices shrink the bytes each pool miss charges.
  BitmapFormat format = BitmapFormat::kPlain;
  /// When set, cover evaluation prefetches the referenced slices'
  /// pages asynchronously on this pool before the blocking reads.
  exec::ThreadPool* prefetch_pool = nullptr;
};

/// A disk-resident encoded bitmap index: the k = ceil(log2 m) slice
/// vectors live in a file-backed BitmapStore with an LRU buffer pool, so
/// only the slices a reduced retrieval expression actually references are
/// faulted in. This is the deployment shape the paper's I/O accounting
/// assumes — vectors on disk, reads counted per vector — while
/// EncodedBitmapIndex is the all-in-memory hot path.
///
/// Maintenance is rebuild-oriented (appends rewrite the touched slices
/// through the store); use the in-memory index for update-heavy phases and
/// persist it here for query service.
class ColdEncodedBitmapIndex : public SecondaryIndex {
 public:
  ColdEncodedBitmapIndex(const Column* column, const BitVector* existence,
                         IoAccountant* io,
                         ColdEncodedBitmapIndexOptions options =
                             ColdEncodedBitmapIndexOptions())
      : SecondaryIndex(column, existence, io),
        options_(std::move(options)) {}

  std::string Name() const override { return "encoded-bitmap-cold"; }

  Status Build() override;
  Status Append(size_t row) override;
  Status MarkDeleted(size_t row) override;

  Result<BitVector> EvaluateEquals(const Value& value) override;
  Result<BitVector> EvaluateIn(const std::vector<Value>& values) override;
  Result<BitVector> EvaluateRange(int64_t lo, int64_t hi) override;

  size_t SizeBytes() const override;
  size_t NumVectors() const override { return slice_ids_.size(); }

  const MappingTable& mapping() const { return mapping_; }
  /// Buffer-pool behaviour of the backing store.
  BitmapStoreStats store_stats() const { return store_->stats(); }
  void ResetStoreStats() { store_->ResetStats(); }

  /// Section 3.1 cost model against *real* extents: c_e <= k slice
  /// reads, each costing the pages its stored form actually spans (so
  /// compressed formats estimate cheaper, matching what a cold read
  /// charges).
  double EstimatePages(const SelectionShape& shape) const override;

  /// Number of slice vectors resident in the backing store.
  size_t NumSlices() const { return slice_ids_.size(); }

  /// Fetches slice `i` from the store for the InvariantAuditor's
  /// structural checks (a pool miss charges a vector read, like any other
  /// access; the store validates the compressed form on the way in).
  Result<BitVector> FetchSlice(size_t i);

  const MappingTable* audit_mapping() const override {
    return built_ ? &mapping_ : nullptr;
  }

 private:
  Result<Cover> CoverForIds(const std::vector<ValueId>& ids) const;
  /// Fetches the referenced slices from the store and evaluates the
  /// cover; pool misses charge vector reads through the store.
  Result<BitVector> EvaluateCoverCold(const Cover& cover);
  Result<uint64_t> CodeForRow(size_t row) const;

  ColdEncodedBitmapIndexOptions options_;
  bool built_ = false;
  size_t rows_indexed_ = 0;
  MappingTable mapping_;
  std::unique_ptr<BitmapStore> store_;
  std::vector<BitmapStore::VectorId> slice_ids_;
};

}  // namespace ebi

#endif  // EBI_INDEX_COLD_ENCODED_BITMAP_INDEX_H_
