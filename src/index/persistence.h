#ifndef EBI_INDEX_PERSISTENCE_H_
#define EBI_INDEX_PERSISTENCE_H_

#include <iosfwd>
#include <memory>

#include "encoding/mapping_table.h"
#include "index/encoded_bitmap_index.h"
#include "util/bitvector.h"
#include "util/status.h"
#include "util/stored_bitmap.h"
#include "util/stored_bitmap_io.h"

namespace ebi {

/// Binary persistence for the index building blocks. DW indexes are
/// disk-resident between query sessions; these routines serialize the
/// bitmap vectors and the mapping table to any std::ostream (a file, a
/// stringstream in tests) and restore them without a rebuild pass.
///
/// Format: little-endian, length-prefixed sections, each guarded by a
/// 32-bit magic so stream corruption is detected early. The format is an
/// implementation detail; only round-tripping through this library is
/// supported.

/// SaveBitVector/LoadBitVector and SaveStoredBitmap/LoadStoredBitmap
/// moved to util/stored_bitmap_io.h (re-exported by the include above)
/// so the storage engine can share the byte format without depending on
/// the index layer.

/// Mapping tables (codes, width, reserved codewords).
[[nodiscard]] Status SaveMappingTable(std::ostream& out,
                                      const MappingTable& mapping);
[[nodiscard]] Result<MappingTable> LoadMappingTable(std::istream& in);

/// Whole encoded bitmap indexes. Loading binds the restored slices and
/// mapping to the caller's column/existence/accountant and validates the
/// row counts — the column data itself is not part of the stream.
[[nodiscard]] Status SaveEncodedBitmapIndex(std::ostream& out,
                                            const EncodedBitmapIndex& index);
[[nodiscard]] Result<std::unique_ptr<EncodedBitmapIndex>> LoadEncodedBitmapIndex(
    std::istream& in, const Column* column, const BitVector* existence,
    IoAccountant* io);

}  // namespace ebi

#endif  // EBI_INDEX_PERSISTENCE_H_
