#ifndef EBI_INDEX_PERSISTENCE_H_
#define EBI_INDEX_PERSISTENCE_H_

#include <iosfwd>
#include <memory>

#include "encoding/mapping_table.h"
#include "index/encoded_bitmap_index.h"
#include "util/bitvector.h"
#include "util/status.h"
#include "util/stored_bitmap.h"

namespace ebi {

/// Binary persistence for the index building blocks. DW indexes are
/// disk-resident between query sessions; these routines serialize the
/// bitmap vectors and the mapping table to any std::ostream (a file, a
/// stringstream in tests) and restore them without a rebuild pass.
///
/// Format: little-endian, length-prefixed sections, each guarded by a
/// 32-bit magic so stream corruption is detected early. The format is an
/// implementation detail; only round-tripping through this library is
/// supported.

/// Bitmap vectors.
[[nodiscard]] Status SaveBitVector(std::ostream& out,
                                   const BitVector& bits);
[[nodiscard]] Result<BitVector> LoadBitVector(std::istream& in);

/// Stored bitmaps in their physical format. The stream carries a format
/// tag after the magic; RLE bitmaps serialize their run array and EWAH
/// bitmaps their marker/literal words, so a compressed vector round-trips
/// without a decompress/recompress cycle and keeps the exact physical
/// layout (and therefore SizeBytes / I/O charge) it had when saved.
/// Loading validates the compressed form: RLE runs must sum to the
/// declared bit size, and EWAH words must decode to exactly the declared
/// word count (EwahBitmap::FromWords); corrupt buffers are rejected with
/// InvalidArgument rather than trusted.
[[nodiscard]] Status SaveStoredBitmap(std::ostream& out,
                                      const StoredBitmap& bitmap);
[[nodiscard]] Result<StoredBitmap> LoadStoredBitmap(std::istream& in);

/// Mapping tables (codes, width, reserved codewords).
[[nodiscard]] Status SaveMappingTable(std::ostream& out,
                                      const MappingTable& mapping);
[[nodiscard]] Result<MappingTable> LoadMappingTable(std::istream& in);

/// Whole encoded bitmap indexes. Loading binds the restored slices and
/// mapping to the caller's column/existence/accountant and validates the
/// row counts — the column data itself is not part of the stream.
[[nodiscard]] Status SaveEncodedBitmapIndex(std::ostream& out,
                                            const EncodedBitmapIndex& index);
[[nodiscard]] Result<std::unique_ptr<EncodedBitmapIndex>> LoadEncodedBitmapIndex(
    std::istream& in, const Column* column, const BitVector* existence,
    IoAccountant* io);

}  // namespace ebi

#endif  // EBI_INDEX_PERSISTENCE_H_
