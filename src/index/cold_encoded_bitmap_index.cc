#include "index/cold_encoded_bitmap_index.h"

#include "encoding/encoders.h"
#include "obs/trace.h"

namespace ebi {

namespace {

/// Unique-ish temp file name per index instance.
std::string BackingPath(const std::string& directory, const void* self) {
  return directory + "/ebi_cold_" +
         std::to_string(reinterpret_cast<uintptr_t>(self)) + ".bin";
}

}  // namespace

Result<uint64_t> ColdEncodedBitmapIndex::CodeForRow(size_t row) const {
  if (!existence_->Get(row)) {
    return mapping_.void_code().value_or(0);
  }
  const ValueId id = column_->ValueIdAt(row);
  if (id == kNullValueId) {
    if (!mapping_.null_code().has_value()) {
      return Status::FailedPrecondition(
          "column has NULLs but the mapping reserves no NULL codeword");
    }
    return *mapping_.null_code();
  }
  return mapping_.CodeOf(id);
}

Status ColdEncodedBitmapIndex::Build() {
  const size_t n = column_->size();
  const size_t m = column_->Cardinality();
  if (m == 0) {
    return Status::FailedPrecondition("cannot encode an empty domain");
  }
  EncoderOptions eo;
  eo.reserve_void_zero = true;
  eo.encode_null = column_->HasNulls();
  EBI_ASSIGN_OR_RETURN(mapping_, MakeSequentialMapping(m, eo));

  EBI_ASSIGN_OR_RETURN(
      BitmapStore store,
      BitmapStore::Open(BackingPath(options_.directory, this),
                        options_.pool_pages, io_, options_.format,
                        options_.prefetch_pool));
  store_ = std::make_unique<BitmapStore>(std::move(store));

  const size_t k = static_cast<size_t>(mapping_.width());
  std::vector<BitVector> slices(k, BitVector(n));
  for (size_t row = 0; row < n; ++row) {
    EBI_ASSIGN_OR_RETURN(const uint64_t code, CodeForRow(row));
    for (size_t i = 0; i < k; ++i) {
      if ((code >> i) & 1) {
        slices[i].Set(row);
      }
    }
  }
  slice_ids_.clear();
  slice_ids_.reserve(k);
  for (BitVector& slice : slices) {
    EBI_ASSIGN_OR_RETURN(const BitmapStore::VectorId id,
                         store_->Put(slice));
    slice_ids_.push_back(id);
  }
  rows_indexed_ = n;
  built_ = true;
  return Status::OK();
}

Status ColdEncodedBitmapIndex::Append(size_t row) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (row != rows_indexed_) {
    return Status::InvalidArgument("rows must be appended in order");
  }
  const ValueId id = column_->ValueIdAt(row);
  if (id != kNullValueId && id >= mapping_.NumValues()) {
    std::optional<uint64_t> free = mapping_.FirstFreeCode();
    if (!free.has_value()) {
      EBI_RETURN_IF_ERROR(mapping_.ExpandWidth(mapping_.width() + 1));
      // New all-zero slice of the current length.
      EBI_ASSIGN_OR_RETURN(const BitmapStore::VectorId new_id,
                           store_->Put(BitVector(rows_indexed_)));
      slice_ids_.push_back(new_id);
      free = mapping_.FirstFreeCode();
      if (!free.has_value()) {
        return Status::Internal("no free codeword after width expansion");
      }
    }
    EBI_RETURN_IF_ERROR(mapping_.AddValue(id, *free));
  }
  EBI_ASSIGN_OR_RETURN(const uint64_t code, CodeForRow(row));
  // Extend every slice by one bit: read-modify-write through the store.
  for (size_t i = 0; i < slice_ids_.size(); ++i) {
    EBI_ASSIGN_OR_RETURN(BitVector slice, store_->Get(slice_ids_[i]));
    slice.PushBack((code >> i) & 1);
    EBI_RETURN_IF_ERROR(store_->Update(slice_ids_[i], slice));
  }
  ++rows_indexed_;
  return Status::OK();
}

Status ColdEncodedBitmapIndex::MarkDeleted(size_t row) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (row >= rows_indexed_) {
    return Status::OutOfRange("row out of range");
  }
  if (!mapping_.void_code().has_value()) {
    return Status::OK();
  }
  const uint64_t code = *mapping_.void_code();
  for (size_t i = 0; i < slice_ids_.size(); ++i) {
    EBI_ASSIGN_OR_RETURN(BitVector slice, store_->Get(slice_ids_[i]));
    slice.Assign(row, (code >> i) & 1);
    EBI_RETURN_IF_ERROR(store_->Update(slice_ids_[i], slice));
  }
  return Status::OK();
}

Result<Cover> ColdEncodedBitmapIndex::CoverForIds(
    const std::vector<ValueId>& ids) const {
  std::vector<uint64_t> onset;
  onset.reserve(ids.size());
  for (ValueId id : ids) {
    EBI_ASSIGN_OR_RETURN(const uint64_t code, mapping_.CodeOf(id));
    onset.push_back(code);
  }
  const std::vector<uint64_t> dc =
      mapping_.UnusedCodes(options_.reduction.max_dontcare_terms);
  return ReduceRetrievalFunction(onset, dc, mapping_.width(),
                                 options_.reduction);
}

Result<BitVector> ColdEncodedBitmapIndex::EvaluateCoverCold(
    const Cover& cover) {
  obs::ScopedSpan span("cover.eval");
  const IoScope scope(io_);
  // Fault in only the slices the reduced expression references.
  const uint64_t vars = VariablesOf(cover);
  if (options_.prefetch_pool != nullptr) {
    // Overlap the page faults of every referenced slice with the first
    // blocking read: async prefetch warms the pool ahead of the Gets.
    std::vector<BitmapStore::VectorId> referenced;
    for (size_t i = 0; i < slice_ids_.size(); ++i) {
      if ((vars >> i) & 1) {
        referenced.push_back(slice_ids_[i]);
      }
    }
    store_->Prefetch(referenced);
  }
  uint64_t vectors_read = 0;
  std::vector<BitVector> slices(slice_ids_.size());
  for (size_t i = 0; i < slice_ids_.size(); ++i) {
    if ((vars >> i) & 1) {
      EBI_ASSIGN_OR_RETURN(slices[i], store_->Get(slice_ids_[i]));
      ++vectors_read;
    } else {
      slices[i] = BitVector(rows_indexed_);  // Never read by the cover.
    }
  }
  if (span.active()) {
    span.Attr("minterms", cover.size());
    span.Attr("vectors_read", vectors_read);
    span.Attr("slices_held", slice_ids_.size());
    span.Attr("existence_and", !mapping_.void_code().has_value());
    span.AttrIo(scope.Delta());
  }
  return EvaluateCover(cover, slices, rows_indexed_);
}

Result<BitVector> ColdEncodedBitmapIndex::EvaluateEquals(
    const Value& value) {
  return EvaluateIn({value});
}

Result<BitVector> ColdEncodedBitmapIndex::EvaluateIn(
    const std::vector<Value>& values) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  obs::ScopedSpan span("index.eval");
  const std::vector<ValueId> ids = IdsOf(values);
  if (span.active()) {
    span.Attr("index", Name());
    span.Attr("delta", ids.size());
  }
  EBI_ASSIGN_OR_RETURN(const Cover cover, CoverForIds(ids));
  return EvaluateCoverCold(cover);
}

Result<BitVector> ColdEncodedBitmapIndex::EvaluateRange(int64_t lo,
                                                        int64_t hi) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (column_->type() != Column::Type::kInt64) {
    return Status::InvalidArgument("range selection on non-integer column");
  }
  obs::ScopedSpan span("index.eval");
  const std::vector<ValueId> ids = column_->IdsInRange(lo, hi);
  if (span.active()) {
    span.Attr("index", Name());
    span.Attr("delta", ids.size());
  }
  EBI_ASSIGN_OR_RETURN(const Cover cover, CoverForIds(ids));
  return EvaluateCoverCold(cover);
}

size_t ColdEncodedBitmapIndex::SizeBytes() const {
  // Disk footprint: k slices of n bits.
  return slice_ids_.size() * ((rows_indexed_ + 63) / 64) * 8;
}

double ColdEncodedBitmapIndex::EstimatePages(
    const SelectionShape& shape) const {
  (void)shape;
  if (!built_) {
    return SecondaryIndex::EstimatePages(shape);
  }
  // Worst case: every slice read (reduction only lowers it), each at the
  // pages its extent really spans — compressed slices estimate cheaper,
  // matching the per-page charges a cold evaluation actually incurs.
  double pages = 0.0;
  for (const BitmapStore::VectorId id : slice_ids_) {
    const auto slice_pages = store_->StoredPages(id);
    if (slice_pages.ok()) {
      pages += static_cast<double>(*slice_pages);
    }
  }
  if (!mapping_.void_code().has_value()) {
    // Existence AND costs one plain-bitmap read on top.
    pages += static_cast<double>(
        ((rows_indexed_ + 7) / 8 + io_->page_size() - 1) / io_->page_size());
  }
  return pages;
}

Result<BitVector> ColdEncodedBitmapIndex::FetchSlice(size_t i) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (i >= slice_ids_.size()) {
    return Status::OutOfRange("slice " + std::to_string(i) + " of " +
                              std::to_string(slice_ids_.size()));
  }
  return store_->Get(slice_ids_[i]);
}

}  // namespace ebi
