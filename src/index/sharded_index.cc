#include "index/sharded_index.h"

#include <utility>

#include "obs/trace.h"

namespace ebi {

Status ShardedIndex::Build() {
  shards_.clear();
  const size_t n = segments_->NumSegments();
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Table& segment = segments_->segment(i);
    EBI_ASSIGN_OR_RETURN(const Column* column,
                         segment.FindColumn(column_->name()));
    Shard shard;
    shard.io = std::make_unique<IoAccountant>(io_->page_size());
    shard.index = MakeSecondaryIndex(kind_, column, &segment.existence(),
                                     shard.io.get());
    if (shard.index == nullptr) {
      return Status::Internal("unknown index kind");
    }
    shards_.push_back(std::move(shard));
  }
  std::vector<Status> statuses(n);
  pool_->ParallelFor(0, n, [this, &statuses](size_t i) {
    statuses[i] = shards_[i].index->Build();
  });
  for (const Status& status : statuses) {
    EBI_RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

Result<BitVector> ShardedIndex::FanOut(
    const char* op,
    const std::function<Result<BitVector>(SecondaryIndex*)>& eval) {
  obs::ScopedSpan span("index.eval");
  const bool tracing = span.active();
  const size_t n = shards_.size();
  std::vector<Status> errors(n);
  std::vector<BitVector> parts(n);
  std::vector<IoStats> deltas(n);
  std::vector<std::unique_ptr<obs::QueryTrace>> traces(n);
  pool_->ParallelFor(0, n, [&](size_t i) {
    if (tracing) {
      traces[i] = std::make_unique<obs::QueryTrace>();
    }
    const obs::TraceScope install(tracing ? traces[i].get() : nullptr);
    const IoScope scope(shards_[i].io.get());
    Result<BitVector> one = eval(shards_[i].index.get());
    deltas[i] = scope.Delta();
    if (one.ok()) {
      parts[i] = std::move(one).value();
    } else {
      errors[i] = one.status();
    }
  });
  BitVector rows(segments_->NumRows());
  IoStats total;
  for (size_t i = 0; i < n; ++i) {
    EBI_RETURN_IF_ERROR(errors[i]);
    rows.BlitFrom(parts[i], segments_->RowBegin(i));
    total += deltas[i];
  }
  io_->ChargeStats(total);
  if (tracing) {
    span.Attr("index", Name());
    span.Attr("op", op);
    span.Attr("segments", n);
    span.Attr("rows", rows.Count());
    span.AttrIo(total);
    for (size_t i = 0; i < n; ++i) {
      obs::TraceSpan seg;
      seg.name = "segment";
      seg.attrs.emplace_back("segment", obs::AttrValue::Uint(i));
      seg.attrs.emplace_back(
          "row_begin", obs::AttrValue::Uint(segments_->RowBegin(i)));
      seg.attrs.emplace_back("rows",
                             obs::AttrValue::Uint(parts[i].Count()));
      seg.children = std::move(traces[i]->root().children);
      span.AddChild(std::move(seg));
    }
  }
  return rows;
}

Result<BitVector> ShardedIndex::EvaluateEquals(const Value& value) {
  return FanOut("equals", [&value](SecondaryIndex* index) {
    return index->EvaluateEquals(value);
  });
}

Result<BitVector> ShardedIndex::EvaluateIn(
    const std::vector<Value>& values) {
  return FanOut("in", [&values](SecondaryIndex* index) {
    return index->EvaluateIn(values);
  });
}

Result<BitVector> ShardedIndex::EvaluateRange(int64_t lo, int64_t hi) {
  return FanOut("range", [lo, hi](SecondaryIndex* index) {
    return index->EvaluateRange(lo, hi);
  });
}

Result<BitVector> ShardedIndex::EvaluateIsNull() {
  return FanOut("is_null", [](SecondaryIndex* index) {
    return index->EvaluateIsNull();
  });
}

bool ShardedIndex::SupportsIsNull() const {
  for (const Shard& shard : shards_) {
    if (!shard.index->SupportsIsNull()) {
      return false;
    }
  }
  return !shards_.empty();
}

double ShardedIndex::EstimatePages(const SelectionShape& shape) const {
  // Every shard reads its own (segment-sized) vectors for the same
  // selection, so the sharded cost is the sum of the per-shard models.
  double total = 0.0;
  for (const Shard& shard : shards_) {
    total += shard.index->EstimatePages(shape);
  }
  return total;
}

size_t ShardedIndex::SizeBytes() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.index->SizeBytes();
  }
  return total;
}

size_t ShardedIndex::NumVectors() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.index->NumVectors();
  }
  return total;
}

}  // namespace ebi
