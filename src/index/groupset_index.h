#ifndef EBI_INDEX_GROUPSET_INDEX_H_
#define EBI_INDEX_GROUPSET_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "index/bit_sliced_index.h"
#include "index/encoded_bitmap_index.h"
#include "storage/column.h"
#include "storage/io_accountant.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace ebi {

/// A group-set index over several GROUP BY attributes, built from encoded
/// bitmap indexes (Section 4, "Group-Set Indexes").
///
/// A simple-bitmap group-set index over attributes of cardinalities
/// 100 x 200 x 500 would need 10^7 bitmap vectors; stacking one encoded
/// bitmap index per attribute needs only sum_i ceil(log2 m_i) = 20. The
/// bitmap of one group combination is the AND of the per-attribute
/// retrieval expressions, and group-bys can be computed dynamically at
/// run time.
class GroupsetIndex {
 public:
  /// The member columns must all belong to the same table (equal length).
  GroupsetIndex(std::vector<const Column*> columns,
                const BitVector* existence, IoAccountant* io);

  /// Builds the per-attribute encoded indexes.
  Status Build();

  /// Extends all member indexes for a newly appended row.
  Status Append(size_t row);

  /// Bitmap of the rows in the group (v_0, ..., v_{d-1}) — one value per
  /// member column, in order.
  Result<BitVector> GroupBitmap(const std::vector<Value>& group);

  /// Enumerates all non-empty groups: calls `fn(values, rows)` once per
  /// distinct combination present in the data (the dynamic run-time
  /// group-by of Section 4).
  Status ForEachGroup(
      const std::function<void(const std::vector<Value>&, const BitVector&)>&
          fn);

  /// Number of distinct group combinations present.
  Result<size_t> CountGroups();

  /// One output row of a grouped aggregate.
  struct GroupAggregate {
    std::vector<Value> group;
    size_t count = 0;
    int64_t sum = 0;
  };

  /// GROUP BY <member columns> with COUNT(*) and SUM(measure): the group
  /// bitmaps come from the encoded members, the sums from the measure's
  /// bit-sliced index — no base-table access at all (the paper's dynamic
  /// group-set evaluation plus [11]'s slice aggregation). The measure
  /// column must be NULL-free (fact measures normally are).
  Result<std::vector<GroupAggregate>> GroupBySum(BitSlicedIndex* measure);

  /// Total bitmap vectors across member indexes — the "20 instead of 10^7"
  /// headline number.
  size_t NumVectors() const;
  size_t SizeBytes() const;

  const EncodedBitmapIndex& member(size_t i) const { return *members_[i]; }
  size_t NumMembers() const { return members_.size(); }

 private:
  std::vector<const Column*> columns_;
  const BitVector* existence_;
  IoAccountant* io_;
  std::vector<std::unique_ptr<EncodedBitmapIndex>> members_;
  bool built_ = false;
};

}  // namespace ebi

#endif  // EBI_INDEX_GROUPSET_INDEX_H_
