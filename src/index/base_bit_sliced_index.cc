#include "index/base_bit_sliced_index.h"

#include <algorithm>

namespace ebi {

Status BaseBitSlicedIndex::Build() {
  if (column_->type() != Column::Type::kInt64) {
    return Status::InvalidArgument(
        "base bit-sliced index requires an integer column");
  }
  if (options_.base < 2) {
    return Status::InvalidArgument("base must be >= 2");
  }
  const size_t n = column_->size();

  bool any = false;
  int64_t min_v = 0;
  int64_t max_v = 0;
  for (const Value& v : column_->dictionary()) {
    if (!any || v.int_value < min_v) {
      min_v = v.int_value;
    }
    if (!any || v.int_value > max_v) {
      max_v = v.int_value;
    }
    any = true;
  }
  bias_ = any ? min_v : 0;
  const uint64_t span = any ? static_cast<uint64_t>(max_v - min_v) + 1 : 1;

  size_t num_digits = 1;
  uint64_t reach = options_.base;
  while (reach < span) {
    ++num_digits;
    reach *= options_.base;
  }
  digits_.assign(num_digits,
                 std::vector<BitVector>(options_.base, BitVector(n)));
  position_weight_.resize(num_digits);
  uint64_t w = 1;
  for (size_t pos = 0; pos < num_digits; ++pos) {
    position_weight_[pos] = w;
    w *= options_.base;
  }

  for (size_t row = 0; row < n; ++row) {
    const ValueId id = column_->ValueIdAt(row);
    if (id == kNullValueId) {
      continue;
    }
    WriteBiased(row,
                static_cast<uint64_t>(column_->ValueOf(id).int_value - bias_));
  }
  rows_indexed_ = n;
  built_ = true;
  return Status::OK();
}

uint32_t BaseBitSlicedIndex::DigitOf(uint64_t biased, size_t pos) const {
  return static_cast<uint32_t>((biased / position_weight_[pos]) %
                               options_.base);
}

void BaseBitSlicedIndex::WriteBiased(size_t row, uint64_t biased) {
  for (size_t pos = 0; pos < digits_.size(); ++pos) {
    digits_[pos][DigitOf(biased, pos)].Set(row);
  }
}

Status BaseBitSlicedIndex::Append(size_t row) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (row != rows_indexed_) {
    return Status::InvalidArgument("rows must be appended in order");
  }
  const ValueId id = column_->ValueIdAt(row);
  uint64_t biased = 0;
  bool is_null = true;
  if (id != kNullValueId) {
    const int64_t v = column_->ValueOf(id).int_value;
    if (v < bias_) {
      return Status::Unimplemented(
          "appended value below the digit bias; rebuild the index");
    }
    biased = static_cast<uint64_t>(v - bias_);
    is_null = false;
  }
  // Grow digit positions if needed. Every existing non-NULL row has digit
  // 0 at the new position, so the new digit-0 vector must cover them.
  while (!is_null &&
         biased >= position_weight_.back() * options_.base) {
    position_weight_.push_back(position_weight_.back() * options_.base);
    digits_.emplace_back(options_.base, BitVector(rows_indexed_));
    BitVector& zero_digit = digits_.back()[0];
    for (size_t r = 0; r < rows_indexed_; ++r) {
      if (column_->ValueIdAt(r) != kNullValueId) {
        zero_digit.Set(r);
      }
    }
  }
  for (size_t pos = 0; pos < digits_.size(); ++pos) {
    const uint32_t digit = is_null ? 0 : DigitOf(biased, pos);
    for (uint32_t d = 0; d < options_.base; ++d) {
      digits_[pos][d].PushBack(!is_null && d == digit);
    }
  }
  ++rows_indexed_;
  return Status::OK();
}

void BaseBitSlicedIndex::ChargeVector(size_t pos, uint32_t digit) {
  io_->ChargeVectorRead(digits_[pos][digit].SizeBytes());
}

BitVector BaseBitSlicedIndex::LessOrEqual(uint64_t c) {
  // Digit-wise most-significant-first: lt collects rows already strictly
  // below, eq narrows to rows equal so far.
  BitVector lt(rows_indexed_);
  BitVector eq(rows_indexed_, true);
  for (size_t i = digits_.size(); i > 0; --i) {
    const size_t pos = i - 1;
    const uint32_t digit = DigitOf(c, pos);
    // Rows equal so far with a smaller digit here are strictly less.
    for (uint32_t d = 0; d < digit; ++d) {
      ChargeVector(pos, d);
      lt.OrWith(And(eq, digits_[pos][d]));
    }
    ChargeVector(pos, digit);
    eq.AndWith(digits_[pos][digit]);
  }
  lt.OrWith(eq);
  return lt;
}

void BaseBitSlicedIndex::MaskInvalid(BitVector* result) {
  if (column_->HasNulls()) {
    for (size_t row = 0; row < rows_indexed_; ++row) {
      if (column_->ValueIdAt(row) == kNullValueId) {
        result->Reset(row);
      }
    }
  }
  io_->ChargeVectorRead(existence_->SizeBytes());
  result->AndWith(*existence_);
}

Result<BitVector> BaseBitSlicedIndex::EvaluateEquals(const Value& value) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  BitVector result(rows_indexed_);
  if (value.kind != Value::Kind::kInt64 || value.int_value < bias_) {
    return result;
  }
  const uint64_t biased = static_cast<uint64_t>(value.int_value - bias_);
  if (!position_weight_.empty() &&
      biased >= position_weight_.back() * options_.base) {
    return result;
  }
  // AND one digit vector per position: d reads, vs ceil(log2 range) for
  // binary slices and 1 for a simple bitmap — the base knob.
  result.SetAll();
  for (size_t pos = 0; pos < digits_.size(); ++pos) {
    const uint32_t digit = DigitOf(biased, pos);
    ChargeVector(pos, digit);
    result.AndWith(digits_[pos][digit]);
  }
  MaskInvalid(&result);
  return result;
}

Result<BitVector> BaseBitSlicedIndex::EvaluateIn(
    const std::vector<Value>& values) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  BitVector result(rows_indexed_);
  for (const Value& v : values) {
    EBI_ASSIGN_OR_RETURN(const BitVector one, EvaluateEquals(v));
    result.OrWith(one);
  }
  return result;
}

Result<BitVector> BaseBitSlicedIndex::EvaluateRange(int64_t lo, int64_t hi) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  BitVector result(rows_indexed_);
  if (lo > hi || position_weight_.empty()) {
    return result;
  }
  const int64_t max_biased = static_cast<int64_t>(
      position_weight_.back() * options_.base - 1);
  if (hi < bias_ || lo > bias_ + max_biased) {
    return result;
  }
  const uint64_t hi_b =
      static_cast<uint64_t>(std::min(hi - bias_, max_biased));
  result = LessOrEqual(hi_b);
  if (lo > bias_) {
    result.AndNotWith(LessOrEqual(static_cast<uint64_t>(lo - bias_ - 1)));
  }
  MaskInvalid(&result);
  return result;
}

size_t BaseBitSlicedIndex::SizeBytes() const {
  size_t total = 0;
  for (const auto& position : digits_) {
    for (const BitVector& v : position) {
      total += v.SizeBytes();
    }
  }
  return total;
}

}  // namespace ebi
