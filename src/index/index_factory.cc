#include "index/index_factory.h"

#include "index/base_bit_sliced_index.h"
#include "index/bit_sliced_index.h"
#include "index/btree_index.h"
#include "index/dynamic_bitmap_index.h"
#include "index/encoded_bitmap_index.h"
#include "index/projection_index.h"
#include "index/range_based_bitmap_index.h"
#include "index/simple_bitmap_index.h"
#include "index/value_list_index.h"

namespace ebi {

Result<IndexKind> IndexKindFromName(const std::string& name) {
  if (name == "simple") {
    return IndexKind::kSimpleBitmap;
  }
  if (name == "simple-rle") {
    return IndexKind::kSimpleBitmapRle;
  }
  if (name == "simple-ewah") {
    return IndexKind::kSimpleBitmapEwah;
  }
  if (name == "encoded") {
    return IndexKind::kEncodedBitmap;
  }
  if (name == "bitsliced") {
    return IndexKind::kBitSliced;
  }
  if (name == "bitsliced-base10") {
    return IndexKind::kBaseBitSliced;
  }
  if (name == "projection") {
    return IndexKind::kProjection;
  }
  if (name == "btree") {
    return IndexKind::kBTree;
  }
  if (name == "valuelist") {
    return IndexKind::kValueList;
  }
  if (name == "rangebased") {
    return IndexKind::kRangeBasedBitmap;
  }
  if (name == "dynamic") {
    return IndexKind::kDynamicBitmap;
  }
  return Status::NotFound("unknown index kind '" + name + "'");
}

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kSimpleBitmap:
      return "simple";
    case IndexKind::kSimpleBitmapRle:
      return "simple-rle";
    case IndexKind::kSimpleBitmapEwah:
      return "simple-ewah";
    case IndexKind::kEncodedBitmap:
      return "encoded";
    case IndexKind::kBitSliced:
      return "bitsliced";
    case IndexKind::kBaseBitSliced:
      return "bitsliced-base10";
    case IndexKind::kProjection:
      return "projection";
    case IndexKind::kBTree:
      return "btree";
    case IndexKind::kValueList:
      return "valuelist";
    case IndexKind::kRangeBasedBitmap:
      return "rangebased";
    case IndexKind::kDynamicBitmap:
      return "dynamic";
  }
  return "?";
}

std::unique_ptr<SecondaryIndex> MakeSecondaryIndex(
    IndexKind kind, const Column* column, const BitVector* existence,
    IoAccountant* io) {
  switch (kind) {
    case IndexKind::kSimpleBitmap:
      return std::make_unique<SimpleBitmapIndex>(column, existence, io);
    case IndexKind::kSimpleBitmapRle:
      return std::make_unique<SimpleBitmapIndex>(
          column, existence, io,
          SimpleBitmapIndexOptions::WithFormat(BitmapFormat::kRle));
    case IndexKind::kSimpleBitmapEwah:
      return std::make_unique<SimpleBitmapIndex>(
          column, existence, io,
          SimpleBitmapIndexOptions::WithFormat(BitmapFormat::kEwah));
    case IndexKind::kEncodedBitmap:
      return std::make_unique<EncodedBitmapIndex>(column, existence, io);
    case IndexKind::kBitSliced:
      return std::make_unique<BitSlicedIndex>(column, existence, io);
    case IndexKind::kBaseBitSliced:
      return std::make_unique<BaseBitSlicedIndex>(column, existence, io);
    case IndexKind::kProjection:
      return std::make_unique<ProjectionIndex>(column, existence, io);
    case IndexKind::kBTree:
      return std::make_unique<BTreeIndex>(column, existence, io);
    case IndexKind::kValueList:
      return std::make_unique<ValueListIndex>(column, existence, io);
    case IndexKind::kRangeBasedBitmap:
      return std::make_unique<RangeBasedBitmapIndex>(column, existence, io);
    case IndexKind::kDynamicBitmap:
      return std::make_unique<DynamicBitmapIndex>(column, existence, io);
  }
  return nullptr;
}

}  // namespace ebi
