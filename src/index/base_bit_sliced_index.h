#ifndef EBI_INDEX_BASE_BIT_SLICED_INDEX_H_
#define EBI_INDEX_BASE_BIT_SLICED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "index/index.h"

namespace ebi {

/// Options for the non-binary-base bit-sliced index.
struct BaseBitSlicedIndexOptions {
  /// Digit base. 2 reduces to the classic bit-sliced index (one vector per
  /// digit position holding the digit... with base 2 the equality-encoded
  /// digit keeps two vectors, so prefer BitSlicedIndex for base 2).
  uint32_t base = 10;
};

/// Bit-sliced index with a non-binary base, the [11] variant Section 4
/// mentions: (value - bias) is written in base-b digits and every digit
/// position keeps one bitmap vector per digit value ("equality-encoded"
/// digits). With d = ceil(log_b range) digit positions the index holds
/// b*d vectors; point queries AND d vectors (one per position) instead of
/// the binary index's ceil(log2 range) — the classic space/time knob
/// between simple bitmaps (b = m, one digit) and binary slices (b = 2).
class BaseBitSlicedIndex : public SecondaryIndex {
 public:
  BaseBitSlicedIndex(const Column* column, const BitVector* existence,
                     IoAccountant* io,
                     BaseBitSlicedIndexOptions options =
                         BaseBitSlicedIndexOptions())
      : SecondaryIndex(column, existence, io), options_(options) {}

  std::string Name() const override {
    return "bit-sliced-base" + std::to_string(options_.base);
  }

  Status Build() override;
  Status Append(size_t row) override;

  Result<BitVector> EvaluateEquals(const Value& value) override;
  Result<BitVector> EvaluateIn(const std::vector<Value>& values) override;
  Result<BitVector> EvaluateRange(int64_t lo, int64_t hi) override;

  size_t SizeBytes() const override;
  size_t NumVectors() const override {
    return digits_.empty() ? 0 : digits_.size() * options_.base;
  }

  /// Points AND one vector per digit position; ranges touch up to base
  /// vectors per position per comparison pass.
  double EstimatePages(const SelectionShape& shape) const override {
    const double d = static_cast<double>(digits_.size());
    const double b = static_cast<double>(options_.base);
    double vectors = 0;
    switch (shape.kind) {
      case SelectionShape::Kind::kPoint:
        vectors = d;
        break;
      case SelectionShape::Kind::kValueSet:
        vectors = d * static_cast<double>(shape.delta);
        break;
      case SelectionShape::Kind::kRange:
        vectors = 2.0 * d * b / 2.0;  // Avg half the digits per position.
        break;
    }
    return (vectors + 1.0) * PagesPerVector();
  }

  /// Number of digit positions d.
  size_t NumDigits() const { return digits_.size(); }
  int64_t bias() const { return bias_; }

  void ForEachAuditVector(
      const std::function<void(const AuditableVector&)>& fn) const override {
    for (size_t pos = 0; pos < digits_.size(); ++pos) {
      for (size_t digit = 0; digit < digits_[pos].size(); ++digit) {
        fn(AuditableVector{"digit", pos * options_.base + digit,
                           &digits_[pos][digit], nullptr});
      }
    }
  }

 private:
  /// Bitmap of rows whose biased value is <= c, via digit-wise
  /// most-significant-first comparison.
  BitVector LessOrEqual(uint64_t c);
  /// Digit `pos` of `biased`.
  uint32_t DigitOf(uint64_t biased, size_t pos) const;
  void ChargeVector(size_t pos, uint32_t digit);
  void WriteBiased(size_t row, uint64_t biased);
  /// Masks NULL and deleted rows out of `result` (charging existence).
  void MaskInvalid(BitVector* result);

  BaseBitSlicedIndexOptions options_;
  bool built_ = false;
  size_t rows_indexed_ = 0;
  int64_t bias_ = 0;
  /// digits_[pos][digit] = bitmap of rows whose digit at `pos` equals
  /// `digit`; pos 0 is the least significant digit.
  std::vector<std::vector<BitVector>> digits_;
  std::vector<uint64_t> position_weight_;  // base^pos.
};

}  // namespace ebi

#endif  // EBI_INDEX_BASE_BIT_SLICED_INDEX_H_
