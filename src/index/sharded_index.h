#ifndef EBI_INDEX_SHARDED_INDEX_H_
#define EBI_INDEX_SHARDED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "index/index.h"
#include "index/index_factory.h"
#include "storage/segmented_table.h"

namespace ebi {

/// A SecondaryIndex split into one shard per table segment.
///
/// Build() constructs an inner index of the configured kind over each
/// segment of a SegmentedTable (through the same MakeSecondaryIndex path
/// the IndexManager uses, so every bitmap family — simple, encoded,
/// bit-sliced, range-based — shards unchanged). Evaluation fans the
/// selection across the thread pool, one task per shard, and
/// concatenates the per-segment result bitmaps in segment order, which
/// makes the answer bit-identical to the unsharded index regardless of
/// thread count or scheduling.
///
/// Each shard charges a private IoAccountant; the per-shard deltas are
/// summed (IoStats::operator+) and charged to the parent accountant once
/// per evaluation, so accounting totals are deterministic too. When a
/// trace is recording, spans recorded on the workers are re-parented
/// under this index's index.eval span as one "segment" child per shard.
///
/// The shard set snapshots the partition: Append and MarkDeleted report
/// Unimplemented — repartition and rebuild to pick up new rows.
class ShardedIndex : public SecondaryIndex {
 public:
  /// `column` and `existence` are the *source* table's; the per-segment
  /// shards bind to the segment tables' own columns at Build() time.
  ShardedIndex(const SegmentedTable* segments, const Column* column,
               const BitVector* existence, IndexKind kind,
               exec::ThreadPool* pool, IoAccountant* io)
      : SecondaryIndex(column, existence, io),
        segments_(segments),
        kind_(kind),
        pool_(pool) {}

  std::string Name() const override {
    return std::string("sharded(") + IndexKindName(kind_) + ")";
  }

  /// Builds one shard per segment, in parallel across the pool.
  Status Build() override;

  Status Append(size_t row) override {
    (void)row;
    return Status::Unimplemented(
        "sharded indexes snapshot their partition; repartition and "
        "rebuild to extend");
  }

  Status MarkDeleted(size_t row) override {
    (void)row;
    return Status::Unimplemented(
        "sharded indexes snapshot their partition; repartition and "
        "rebuild after deletes");
  }

  Result<BitVector> EvaluateEquals(const Value& value) override;
  Result<BitVector> EvaluateIn(const std::vector<Value>& values) override;
  Result<BitVector> EvaluateRange(int64_t lo, int64_t hi) override;
  Result<BitVector> EvaluateIsNull() override;
  bool SupportsIsNull() const override;

  double EstimatePages(const SelectionShape& shape) const override;
  size_t SizeBytes() const override;
  size_t NumVectors() const override;

  size_t NumShards() const { return shards_.size(); }
  /// The inner index of shard `i` (for tests and introspection).
  const SecondaryIndex* shard(size_t i) const {
    return shards_[i].index.get();
  }
  /// Mutable access for the InvariantAuditor, whose per-shard walk may
  /// fault vectors in through stateful caches.
  SecondaryIndex* shard(size_t i) { return shards_[i].index.get(); }

 private:
  struct Shard {
    std::unique_ptr<IoAccountant> io;
    std::unique_ptr<SecondaryIndex> index;
  };

  /// Runs `eval` on every shard across the pool, concatenates the
  /// per-segment bitmaps in segment order, merges the per-shard I/O
  /// deltas into the parent accountant, and re-parents worker-side trace
  /// spans. `op` labels the trace span.
  Result<BitVector> FanOut(
      const char* op,
      const std::function<Result<BitVector>(SecondaryIndex*)>& eval);

  const SegmentedTable* segments_;
  IndexKind kind_;
  exec::ThreadPool* pool_;
  std::vector<Shard> shards_;
};

}  // namespace ebi

#endif  // EBI_INDEX_SHARDED_INDEX_H_
