#include "index/projection_index.h"

#include <algorithm>

namespace ebi {

Status ProjectionIndex::Build() {
  codes_ = column_->rows();
  built_ = true;
  return Status::OK();
}

Status ProjectionIndex::Append(size_t row) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (row != codes_.size()) {
    return Status::InvalidArgument("rows must be appended in order");
  }
  codes_.push_back(column_->ValueIdAt(row));
  return Status::OK();
}

template <typename Pred>
Result<BitVector> ProjectionIndex::Scan(Pred pred) {
  // A selection reads the entire projection: charge the full array.
  io_->ChargeBytes(SizeBytes());
  BitVector result(codes_.size());
  for (size_t row = 0; row < codes_.size(); ++row) {
    if (codes_[row] != kNullValueId && existence_->Get(row) &&
        pred(codes_[row])) {
      result.Set(row);
    }
  }
  return result;
}

Result<BitVector> ProjectionIndex::EvaluateEquals(const Value& value) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  const std::optional<ValueId> id = column_->Lookup(value);
  if (!id.has_value()) {
    return BitVector(codes_.size());
  }
  return Scan([target = *id](ValueId c) { return c == target; });
}

Result<BitVector> ProjectionIndex::EvaluateIn(
    const std::vector<Value>& values) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  std::vector<ValueId> ids = IdsOf(values);
  std::sort(ids.begin(), ids.end());
  return Scan([&ids](ValueId c) {
    return std::binary_search(ids.begin(), ids.end(), c);
  });
}

Result<BitVector> ProjectionIndex::EvaluateRange(int64_t lo, int64_t hi) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (column_->type() != Column::Type::kInt64) {
    return Status::InvalidArgument("range selection on non-integer column");
  }
  const Column* column = column_;
  return Scan([column, lo, hi](ValueId c) {
    const int64_t v = column->ValueOf(c).int_value;
    return v >= lo && v <= hi;
  });
}

Result<Value> ProjectionIndex::Fetch(size_t row) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (row >= codes_.size()) {
    return Status::OutOfRange("row out of range");
  }
  io_->ChargeBytes(io_->page_size());
  const ValueId id = codes_[row];
  if (id == kNullValueId) {
    return Value::Null();
  }
  return column_->ValueOf(id);
}

}  // namespace ebi
