#ifndef EBI_INDEX_BTREE_INDEX_H_
#define EBI_INDEX_BTREE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/index.h"

namespace ebi {

/// A page-based B+-tree value-list index: the OLTP baseline the paper
/// compares bitmap techniques against (Section 2.1's cost analysis with
/// page size p and degree M).
///
/// Keys are the column's distinct values; each leaf entry carries the
/// posting list of tuple-ids (4-byte RIDs). Node capacity derives from the
/// accountant's page size, so traversals charge exactly the node reads the
/// analysis counts. The tree supports point/range lookups and dynamic
/// inserts with node splits.
class BTreeIndex : public SecondaryIndex {
 public:
  BTreeIndex(const Column* column, const BitVector* existence,
             IoAccountant* io)
      : SecondaryIndex(column, existence, io) {}

  std::string Name() const override { return "btree"; }

  Status Build() override;
  Status Append(size_t row) override;

  Result<BitVector> EvaluateEquals(const Value& value) override;
  Result<BitVector> EvaluateIn(const std::vector<Value>& values) override;
  Result<BitVector> EvaluateRange(int64_t lo, int64_t hi) override;

  size_t SizeBytes() const override;
  size_t NumVectors() const override { return 0; }

  /// δ root-to-leaf descents (one per value; ranges share one descent and
  /// walk the leaf chain) plus the qualifying posting pages.
  double EstimatePages(const SelectionShape& shape) const override {
    const double height = static_cast<double>(Height());
    const double rows_per_key =
        column_->Cardinality() == 0
            ? 0.0
            : static_cast<double>(NumRows()) /
                  static_cast<double>(column_->Cardinality());
    const double posting_pages = std::max(
        1.0, rows_per_key * sizeof(uint32_t) /
                 static_cast<double>(io_->page_size()));
    const double delta = static_cast<double>(shape.delta);
    if (shape.kind == SelectionShape::Kind::kRange) {
      const double leaves = std::max(1.0, delta / Fanout());
      return height + leaves + delta * posting_pages;
    }
    return delta * (height + posting_pages);
  }

  /// Height of the tree (levels of nodes; 1 = root is a leaf).
  size_t Height() const;
  /// Total node (page) count — the 1.44 n/M * p space term of Section 2.1.
  size_t NumNodes() const { return nodes_.size(); }
  /// Node fanout derived from the page size (the paper's degree M).
  size_t Fanout() const { return fanout_; }

 private:
  struct Node {
    bool leaf = true;
    std::vector<int64_t> keys;  // Dictionary order keys (see KeyOf).
    // Internal: children.size() == keys.size() + 1.
    std::vector<uint32_t> children;
    // Leaf: postings[i] holds the RIDs of keys[i].
    std::vector<std::vector<uint32_t>> postings;
    uint32_t next_leaf = kNoNode;  // Leaf chain for range scans.
  };
  static constexpr uint32_t kNoNode = UINT32_MAX;

  /// Sort key of a value: for int columns the value itself; for string
  /// columns a rank assigned at build time (appends of novel strings get
  /// ranks past the end, keeping comparisons total).
  int64_t KeyOf(ValueId id) const;

  /// Charges one node (page) read.
  void ChargeNode() { io_->ChargeNodeRead(io_->page_size()); }
  /// Charges reading a posting list of `rids` entries.
  void ChargePosting(size_t rids) {
    io_->ChargeBytes(rids * sizeof(uint32_t));
  }

  /// Descends from the root to the leaf that would hold `key`, charging
  /// one node per level. Returns the leaf index.
  uint32_t DescendToLeaf(int64_t key);

  /// Inserts `rid` under `key`; splits on overflow.
  void Insert(int64_t key, uint32_t rid);
  /// Recursive insert; returns a (separator, new node) pair on split.
  struct SplitResult {
    bool split = false;
    int64_t separator = 0;
    uint32_t right = kNoNode;
  };
  SplitResult InsertInto(uint32_t node_id, int64_t key, uint32_t rid);

  /// Collects RIDs of one leaf entry into `out` and charges the posting.
  void EmitPostings(const std::vector<uint32_t>& rids, BitVector* out);

  bool built_ = false;
  size_t rows_indexed_ = 0;
  size_t fanout_ = 0;
  uint32_t root_ = kNoNode;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// String columns: rank of each ValueId in build-time sort order.
  std::vector<int64_t> string_rank_;
  int64_t next_string_rank_ = 0;
};

}  // namespace ebi

#endif  // EBI_INDEX_BTREE_INDEX_H_
