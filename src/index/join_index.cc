#include "index/join_index.h"

#include <unordered_set>

namespace ebi {

EncodedBitmapJoinIndex::EncodedBitmapJoinIndex(
    const Column* fact_fk, const BitVector* fact_existence,
    const Table* dimension, std::string dim_pk, IoAccountant* io,
    EncodedBitmapIndexOptions options)
    : dimension_(dimension), dim_pk_(std::move(dim_pk)), io_(io) {
  fact_index_ = std::make_unique<EncodedBitmapIndex>(
      fact_fk, fact_existence, io, std::move(options));
}

Status EncodedBitmapJoinIndex::Build() {
  EBI_ASSIGN_OR_RETURN(const Column* pk, dimension_->FindColumn(dim_pk_));
  // PK must be duplicate-free over existing rows.
  std::unordered_set<ValueId> seen;
  for (size_t row = 0; row < dimension_->NumRows(); ++row) {
    if (!dimension_->RowExists(row)) {
      continue;
    }
    const ValueId id = pk->ValueIdAt(row);
    if (id == kNullValueId) {
      return Status::InvalidArgument("dimension key column " + dim_pk_ +
                                     " contains NULLs");
    }
    if (!seen.insert(id).second) {
      return Status::InvalidArgument("dimension key column " + dim_pk_ +
                                     " contains duplicates");
    }
  }
  EBI_RETURN_IF_ERROR(fact_index_->Build());
  built_ = true;
  return Status::OK();
}

Result<std::vector<Value>> EncodedBitmapJoinIndex::QualifyingKeys(
    const Predicate& predicate) {
  EBI_ASSIGN_OR_RETURN(const Column* pk, dimension_->FindColumn(dim_pk_));
  EBI_ASSIGN_OR_RETURN(const Column* attr,
                       dimension_->FindColumn(predicate.column));
  // The dimension scan is charged as a read of its evaluated columns —
  // dimensions are small by star-schema assumption.
  io_->ChargeBytes(dimension_->NumRows() * sizeof(ValueId) * 2);

  std::vector<Value> keys;
  for (size_t row = 0; row < dimension_->NumRows(); ++row) {
    if (!dimension_->RowExists(row)) {
      continue;
    }
    const Value cell = attr->ValueAt(row);
    bool match = false;
    switch (predicate.kind) {
      case Predicate::Kind::kEquals:
        match = !cell.is_null() && cell == predicate.value;
        break;
      case Predicate::Kind::kIn:
        if (!cell.is_null()) {
          for (const Value& v : predicate.values) {
            if (cell == v) {
              match = true;
              break;
            }
          }
        }
        break;
      case Predicate::Kind::kRange:
        if (attr->type() != Column::Type::kInt64) {
          return Status::InvalidArgument(
              "range join predicate on non-integer dimension column");
        }
        match = !cell.is_null() && cell.int_value >= predicate.lo &&
                cell.int_value <= predicate.hi;
        break;
      case Predicate::Kind::kIsNull:
        match = cell.is_null();
        break;
      case Predicate::Kind::kNotEquals:
        match = !cell.is_null() && !(cell == predicate.value);
        break;
      case Predicate::Kind::kNotIn: {
        if (cell.is_null()) {
          break;
        }
        match = true;
        for (const Value& v : predicate.values) {
          if (cell == v) {
            match = false;
            break;
          }
        }
        break;
      }
    }
    if (match) {
      keys.push_back(pk->ValueAt(row));
    }
  }
  return keys;
}

Result<BitVector> EncodedBitmapJoinIndex::FactRowsWhere(
    const Predicate& predicate) {
  if (!built_) {
    return Status::FailedPrecondition("join index not built");
  }
  EBI_ASSIGN_OR_RETURN(const std::vector<Value> keys,
                       QualifyingKeys(predicate));
  return fact_index_->EvaluateIn(keys);
}

Result<BitVector> EncodedBitmapJoinIndex::FactRowsForDimRow(size_t dim_row) {
  if (!built_) {
    return Status::FailedPrecondition("join index not built");
  }
  if (dim_row >= dimension_->NumRows() ||
      !dimension_->RowExists(dim_row)) {
    return Status::OutOfRange("dimension row out of range or deleted");
  }
  EBI_ASSIGN_OR_RETURN(const Column* pk, dimension_->FindColumn(dim_pk_));
  io_->ChargeBytes(sizeof(ValueId));
  return fact_index_->EvaluateEquals(pk->ValueAt(dim_row));
}

}  // namespace ebi
