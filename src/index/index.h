#ifndef EBI_INDEX_INDEX_H_
#define EBI_INDEX_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/column.h"
#include "storage/io_accountant.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace ebi {

class MappingTable;
class StoredBitmap;

/// One bitmap vector an index physically holds, surfaced for structural
/// audits (analysis/auditor.h). Exactly one of `plain` / `stored` is set,
/// matching the index's storage: a raw BitVector or a format-tagged
/// StoredBitmap whose compressed form can be checked in place.
struct AuditableVector {
  /// What the vector represents: "value", "slice", "bucket", "digit",
  /// "null", ... — the index family's own vocabulary.
  const char* role = "vector";
  /// Position within the role (value id, slice number, bucket, ...).
  size_t ordinal = 0;
  const BitVector* plain = nullptr;
  const StoredBitmap* stored = nullptr;
};

/// Kinds of selection an index may be asked to cost (mirrors
/// Predicate::Kind without depending on the query layer).
struct SelectionShape {
  enum class Kind : uint8_t { kPoint, kValueSet, kRange } kind =
      Kind::kPoint;
  /// Number of distinct selected values (the paper's δ); 1 for points.
  size_t delta = 1;
};

/// Common interface of all secondary indexes in the library.
///
/// An index is bound to one column (plus the table's existence bitmap) at
/// construction, charges all its reads to an IoAccountant, and answers
/// point, IN-list and range selections with a result bitmap over rows.
/// Range bounds are inclusive ([lo, hi]) and apply to kInt64 columns.
///
/// All Evaluate* results exclude deleted (void) rows.
class SecondaryIndex {
 public:
  SecondaryIndex(const Column* column, const BitVector* existence,
                 IoAccountant* io)
      : column_(column), existence_(existence), io_(io) {}
  virtual ~SecondaryIndex() = default;

  SecondaryIndex(const SecondaryIndex&) = delete;
  SecondaryIndex& operator=(const SecondaryIndex&) = delete;

  /// Human-readable kind, e.g. "encoded-bitmap".
  virtual std::string Name() const = 0;

  /// Builds the index from the bound column's current contents.
  virtual Status Build() = 0;

  /// Extends the index for row `row`, which was just appended to the
  /// column. Rows must be appended in order.
  virtual Status Append(size_t row) = 0;

  /// Extends the index for rows [first_row, first_row + count), all
  /// already appended to the column. The default loops Append; families
  /// with an expensive per-append path (compressed slice rewrites, domain
  /// expansion) override it to coalesce the whole batch into one rewrite
  /// — the batched maintenance path of MaintenanceDriver::AppendRows.
  virtual Status AppendBatch(size_t first_row, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      EBI_RETURN_IF_ERROR(Append(first_row + i));
    }
    return Status::OK();
  }

  /// Copy-on-write rebuild hook for snapshot publication (src/serve/):
  /// returns a new index of the same family and configuration, bound to
  /// (`column`, `existence`, `io`) — typically the cloned table of the
  /// next snapshot — carrying over the already-built structure (mapping
  /// tables, slice vectors) instead of re-running Build(). The bound
  /// column must hold exactly the rows this index has indexed; append the
  /// batch afterwards through AppendBatch. Families without an override
  /// report Unimplemented and the serving layer falls back to a factory
  /// rebuild.
  virtual Result<std::unique_ptr<SecondaryIndex>> CloneRebound(
      const Column* column, const BitVector* existence,
      IoAccountant* io) const {
    (void)column;
    (void)existence;
    (void)io;
    return Status::Unimplemented(Name() + " has no copy-on-write clone");
  }

  /// Rows with column == value.
  virtual Result<BitVector> EvaluateEquals(const Value& value) = 0;

  /// Rows with column IN values.
  virtual Result<BitVector> EvaluateIn(const std::vector<Value>& values) = 0;

  /// Rows with lo <= column <= hi (kInt64 columns only).
  virtual Result<BitVector> EvaluateRange(int64_t lo, int64_t hi) = 0;

  /// Rows whose column is NULL. Only bitmap-family indexes materialize a
  /// NULL representation; others report Unimplemented.
  virtual Result<BitVector> EvaluateIsNull() {
    return Status::Unimplemented(Name() + " has no NULL representation");
  }

  /// True iff EvaluateIsNull is implemented — the planner only routes
  /// IS NULL predicates to capable indexes.
  virtual bool SupportsIsNull() const { return false; }

  /// Reacts to the logical deletion of `row`. Most indexes rely on the
  /// existence bitmap at evaluation time and need no action; encoded
  /// bitmap indexes re-encode the row to the void codeword.
  virtual Status MarkDeleted(size_t row) {
    (void)row;
    return Status::OK();
  }

  /// Estimated pages this index would read to answer a selection of the
  /// given shape — the quantity the access-path planner minimizes. The
  /// default is a pessimistic whole-index read; every index family
  /// overrides it with its Section 2.1/3.1 cost model.
  virtual double EstimatePages(const SelectionShape& shape) const {
    (void)shape;
    return static_cast<double>(
        (SizeBytes() + io_->page_size() - 1) / io_->page_size());
  }

  /// Enumerates the bitmap vectors the index physically holds, for the
  /// InvariantAuditor's structural checks (length contracts, compressed-
  /// form validity). Indexes without in-memory bitmap storage (B-tree,
  /// projection, value-list, cold) enumerate nothing; the auditor reaches
  /// disk-resident vectors through their own accessors.
  virtual void ForEachAuditVector(
      const std::function<void(const AuditableVector&)>& fn) const {
    (void)fn;
  }

  /// The mapping table driving the index's encoding, if any — audited for
  /// bijectivity, reserved codewords and retrieval-function consistency
  /// (Definitions 2.1/2.5, Theorem 2.1). nullptr for unencoded families.
  virtual const MappingTable* audit_mapping() const { return nullptr; }

 protected:
  /// Pages of one n-bit bitmap vector under the accountant's page size.
  double PagesPerVector() const {
    const double bytes = static_cast<double>((NumRows() + 7) / 8);
    return std::max(1.0, bytes / static_cast<double>(io_->page_size()));
  }

 public:

  /// Heap bytes of the index structures (the space metric of Figure 10 and
  /// the Section 2.1 analysis).
  virtual size_t SizeBytes() const = 0;

  /// Number of bitmap vectors (or vector-like structures) the index holds;
  /// |A| for simple bitmap indexes, ceil(log2 |A|) for encoded ones.
  virtual size_t NumVectors() const = 0;

  const Column& column() const { return *column_; }
  IoAccountant* io() const { return io_; }

 protected:
  /// Translates an IN-list of user values to ValueIds, silently dropping
  /// values that never occur (they match no row).
  std::vector<ValueId> IdsOf(const std::vector<Value>& values) const;

  /// Number of rows currently indexed.
  size_t NumRows() const { return column_->size(); }

  const Column* column_;
  const BitVector* existence_;
  IoAccountant* io_;
};

}  // namespace ebi

#endif  // EBI_INDEX_INDEX_H_
