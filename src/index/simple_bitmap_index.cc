#include "index/simple_bitmap_index.h"

#include <utility>

#include "obs/trace.h"

namespace ebi {

Status SimpleBitmapIndex::Build() {
  const size_t n = column_->size();
  const size_t m = column_->Cardinality();
  std::vector<BitVector> plain(m, BitVector(n));
  null_vector_ = BitVector(n);
  for (size_t row = 0; row < n; ++row) {
    const ValueId id = column_->ValueIdAt(row);
    if (id == kNullValueId) {
      null_vector_.Set(row);
    } else {
      plain[id].Set(row);
    }
  }
  vectors_.clear();
  vectors_.reserve(m);
  for (BitVector& v : plain) {
    vectors_.push_back(StoredBitmap::Make(std::move(v), options_.format));
  }
  rows_indexed_ = n;
  built_ = true;
  return Status::OK();
}

Status SimpleBitmapIndex::Append(size_t row) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (row != rows_indexed_) {
    return Status::InvalidArgument("rows must be appended in order");
  }
  const ValueId id = column_->ValueIdAt(row);

  // Domain expansion: a new value needs a brand-new vector of `row` zero
  // bits — the O(|T|) maintenance cost of Section 3.1.
  if (id != kNullValueId && id >= vectors_.size()) {
    vectors_.resize(id + 1,
                    StoredBitmap::Make(BitVector(row), options_.format));
  }

  // Extend every vector by one bit (plain vectors grow in place,
  // compressed ones are rewritten inside AppendBit).
  for (size_t v = 0; v < vectors_.size(); ++v) {
    vectors_[v].AppendBit(id != kNullValueId && v == id);
  }
  null_vector_.PushBack(id == kNullValueId);
  ++rows_indexed_;
  return Status::OK();
}

Result<std::unique_ptr<SecondaryIndex>> SimpleBitmapIndex::CloneRebound(
    const Column* column, const BitVector* existence,
    IoAccountant* io) const {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (column == nullptr || existence == nullptr || io == nullptr) {
    return Status::InvalidArgument("CloneRebound requires a full binding");
  }
  if (column->size() != rows_indexed_) {
    return Status::FailedPrecondition(
        "clone target holds " + std::to_string(column->size()) +
        " rows, index covers " + std::to_string(rows_indexed_));
  }
  auto clone = std::make_unique<SimpleBitmapIndex>(column, existence, io,
                                                   options_);
  clone->vectors_ = vectors_;
  clone->null_vector_ = null_vector_;
  clone->rows_indexed_ = rows_indexed_;
  clone->built_ = true;
  return std::unique_ptr<SecondaryIndex>(std::move(clone));
}

BitVector SimpleBitmapIndex::ReadVector(ValueId id) {
  io_->ChargeVectorRead(vectors_[id].SizeBytes());
  return vectors_[id].ToBitVector();
}

Result<BitVector> SimpleBitmapIndex::EvaluateIds(
    const std::vector<ValueId>& ids) {
  obs::ScopedSpan span("index.eval");
  const IoScope scope(io_);
  BitVector result(rows_indexed_);
  if (options_.format != BitmapFormat::kPlain && ids.size() > 1) {
    // OR the compressed representations directly; only the final result
    // is expanded. Sparse vectors make the compressed OR much cheaper
    // than per-vector decompression.
    StoredBitmap accumulated = StoredBitmap::Make(result, options_.format);
    for (ValueId id : ids) {
      io_->ChargeVectorRead(vectors_[id].SizeBytes());
      EBI_ASSIGN_OR_RETURN(accumulated,
                           StoredBitmap::Or(accumulated, vectors_[id]));
    }
    result = accumulated.ToBitVector();
  } else {
    // Materialize the selected vectors, then union them with one fused
    // kernel pass rather than a chain of binary ORs.
    std::vector<BitVector> materialized;
    materialized.reserve(ids.size());
    for (ValueId id : ids) {
      materialized.push_back(ReadVector(id));
    }
    std::vector<const BitVector*> operands;
    operands.reserve(materialized.size());
    for (const BitVector& v : materialized) {
      operands.push_back(&v);
    }
    if (!operands.empty()) {
      result.OrWithMany(operands);
    }
  }
  // Simple bitmap indexing must always AND the existence vector (the
  // contrast Theorem 2.1 draws with void-aware encodings).
  io_->ChargeVectorRead(existence_->SizeBytes());
  result.AndWith(*existence_);
  if (span.active()) {
    span.Attr("index", Name());
    // One vector per selected value plus the existence AND — the paper's
    // c_s = δ (+1) cost a simple bitmap pays.
    span.Attr("delta", ids.size());
    span.Attr("existence_and", true);
    span.AttrIo(scope.Delta());
  }
  return result;
}

Result<BitVector> SimpleBitmapIndex::EvaluateEquals(const Value& value) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  return EvaluateIds(IdsOf({value}));
}

Result<BitVector> SimpleBitmapIndex::EvaluateIn(
    const std::vector<Value>& values) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  return EvaluateIds(IdsOf(values));
}

Result<BitVector> SimpleBitmapIndex::EvaluateRange(int64_t lo, int64_t hi) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (column_->type() != Column::Type::kInt64) {
    return Status::InvalidArgument("range selection on non-integer column");
  }
  return EvaluateIds(column_->IdsInRange(lo, hi));
}

Result<BitVector> SimpleBitmapIndex::EvaluateIsNull() {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  obs::ScopedSpan span("index.eval");
  if (span.active()) {
    span.Attr("index", Name());
    span.Attr("op", "is_null");
  }
  io_->ChargeVectorRead(null_vector_.SizeBytes());
  BitVector result = null_vector_;
  io_->ChargeVectorRead(existence_->SizeBytes());
  result.AndWith(*existence_);
  return result;
}

size_t SimpleBitmapIndex::SizeBytes() const {
  size_t total = null_vector_.SizeBytes();
  for (const StoredBitmap& v : vectors_) {
    total += v.SizeBytes();
  }
  return total;
}

size_t SimpleBitmapIndex::NumVectors() const {
  return vectors_.size() + (column_->HasNulls() ? 1 : 0);
}

double SimpleBitmapIndex::AverageSparsity() const {
  const size_t m = vectors_.size();
  if (m == 0 || rows_indexed_ == 0) {
    return 0.0;
  }
  double total = 0.0;
  for (const StoredBitmap& v : vectors_) {
    total += v.Sparsity();
  }
  return total / static_cast<double>(m);
}

}  // namespace ebi
