#include "index/simple_bitmap_index.h"

namespace ebi {

Status SimpleBitmapIndex::Build() {
  const size_t n = column_->size();
  const size_t m = column_->Cardinality();
  std::vector<BitVector> plain(m, BitVector(n));
  null_vector_ = BitVector(n);
  for (size_t row = 0; row < n; ++row) {
    const ValueId id = column_->ValueIdAt(row);
    if (id == kNullValueId) {
      null_vector_.Set(row);
    } else {
      plain[id].Set(row);
    }
  }
  if (options_.compressed) {
    compressed_.clear();
    compressed_.reserve(m);
    for (const BitVector& v : plain) {
      compressed_.push_back(RleBitmap::Compress(v));
    }
    vectors_.clear();
  } else {
    vectors_ = std::move(plain);
  }
  rows_indexed_ = n;
  built_ = true;
  return Status::OK();
}

Status SimpleBitmapIndex::Append(size_t row) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (row != rows_indexed_) {
    return Status::InvalidArgument("rows must be appended in order");
  }
  const ValueId id = column_->ValueIdAt(row);
  const size_t num_vectors =
      options_.compressed ? compressed_.size() : vectors_.size();

  // Domain expansion: a new value needs a brand-new vector of `row` zero
  // bits — the O(|T|) maintenance cost of Section 3.1.
  if (id != kNullValueId && id >= num_vectors) {
    if (options_.compressed) {
      compressed_.resize(id + 1, RleBitmap::Compress(BitVector(row)));
    } else {
      vectors_.resize(id + 1, BitVector(row));
    }
  }

  // Extend every vector by one bit (conceptually; plain vectors grow
  // lazily, compressed ones are rewritten).
  if (options_.compressed) {
    for (size_t v = 0; v < compressed_.size(); ++v) {
      BitVector plain = compressed_[v].Decompress();
      plain.PushBack(id != kNullValueId && v == id);
      compressed_[v] = RleBitmap::Compress(plain);
    }
  } else {
    for (size_t v = 0; v < vectors_.size(); ++v) {
      vectors_[v].PushBack(id != kNullValueId && v == id);
    }
  }
  null_vector_.PushBack(id == kNullValueId);
  ++rows_indexed_;
  return Status::OK();
}

BitVector SimpleBitmapIndex::ReadVector(ValueId id) {
  if (options_.compressed) {
    io_->ChargeVectorRead(compressed_[id].SizeBytes());
    return compressed_[id].Decompress();
  }
  io_->ChargeVectorRead(vectors_[id].SizeBytes());
  return vectors_[id];
}

Result<BitVector> SimpleBitmapIndex::EvaluateIds(
    const std::vector<ValueId>& ids) {
  BitVector result(rows_indexed_);
  if (options_.compressed && ids.size() > 1) {
    // OR the run-length representations directly; only the final result
    // is expanded. Sparse vectors make the compressed OR much cheaper
    // than per-vector decompression.
    RleBitmap accumulated = RleBitmap::Compress(result);
    for (ValueId id : ids) {
      io_->ChargeVectorRead(compressed_[id].SizeBytes());
      accumulated = RleBitmap::Or(accumulated, compressed_[id]);
    }
    result = accumulated.Decompress();
    result.Resize(rows_indexed_);
  } else {
    for (ValueId id : ids) {
      result.OrWith(ReadVector(id));
    }
  }
  // Simple bitmap indexing must always AND the existence vector (the
  // contrast Theorem 2.1 draws with void-aware encodings).
  io_->ChargeVectorRead(existence_->SizeBytes());
  result.AndWith(*existence_);
  return result;
}

Result<BitVector> SimpleBitmapIndex::EvaluateEquals(const Value& value) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  return EvaluateIds(IdsOf({value}));
}

Result<BitVector> SimpleBitmapIndex::EvaluateIn(
    const std::vector<Value>& values) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  return EvaluateIds(IdsOf(values));
}

Result<BitVector> SimpleBitmapIndex::EvaluateRange(int64_t lo, int64_t hi) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (column_->type() != Column::Type::kInt64) {
    return Status::InvalidArgument("range selection on non-integer column");
  }
  return EvaluateIds(column_->IdsInRange(lo, hi));
}

Result<BitVector> SimpleBitmapIndex::EvaluateIsNull() {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  io_->ChargeVectorRead(null_vector_.SizeBytes());
  BitVector result = null_vector_;
  io_->ChargeVectorRead(existence_->SizeBytes());
  result.AndWith(*existence_);
  return result;
}

size_t SimpleBitmapIndex::SizeBytes() const {
  size_t total = null_vector_.SizeBytes();
  if (options_.compressed) {
    for (const RleBitmap& v : compressed_) {
      total += v.SizeBytes();
    }
  } else {
    for (const BitVector& v : vectors_) {
      total += v.SizeBytes();
    }
  }
  return total;
}

size_t SimpleBitmapIndex::NumVectors() const {
  return (options_.compressed ? compressed_.size() : vectors_.size()) +
         (column_->HasNulls() ? 1 : 0);
}

double SimpleBitmapIndex::AverageSparsity() const {
  const size_t m =
      options_.compressed ? compressed_.size() : vectors_.size();
  if (m == 0 || rows_indexed_ == 0) {
    return 0.0;
  }
  double total = 0.0;
  for (size_t v = 0; v < m; ++v) {
    if (options_.compressed) {
      total += 1.0 - static_cast<double>(compressed_[v].Count()) /
                         static_cast<double>(rows_indexed_);
    } else {
      total += vectors_[v].Sparsity();
    }
  }
  return total / static_cast<double>(m);
}

}  // namespace ebi
