#ifndef EBI_INDEX_BIT_SLICED_INDEX_H_
#define EBI_INDEX_BIT_SLICED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "index/index.h"

namespace ebi {

/// The bit-sliced index of O'Neil & Quass (Section 4 of the paper), for
/// kInt64 columns: bitmap vector S_i holds bit i of (value - bias), i.e.
/// the index is an encoded bitmap index whose encoding is the total-order
/// preserving internal binary representation.
///
/// Range selections run the classic slice-arithmetic comparison (no
/// per-value enumeration), and SUM aggregates are computed directly on the
/// slices — the operations [11] defines bit-sliced indexes for.
class BitSlicedIndex : public SecondaryIndex {
 public:
  BitSlicedIndex(const Column* column, const BitVector* existence,
                 IoAccountant* io)
      : SecondaryIndex(column, existence, io) {}

  std::string Name() const override { return "bit-sliced"; }

  Status Build() override;
  Status Append(size_t row) override;

  Result<BitVector> EvaluateEquals(const Value& value) override;
  Result<BitVector> EvaluateIn(const std::vector<Value>& values) override;
  Result<BitVector> EvaluateRange(int64_t lo, int64_t hi) override;

  size_t SizeBytes() const override;
  size_t NumVectors() const override { return slices_.size(); }

  /// Ranges run two slice-arithmetic passes (2k reads); value sets cost a
  /// pass per value. The existence AND adds one vector.
  double EstimatePages(const SelectionShape& shape) const override {
    const double k = static_cast<double>(slices_.size());
    const double passes =
        shape.kind == SelectionShape::Kind::kRange
            ? 2.0
            : 2.0 * static_cast<double>(shape.delta);
    return (passes * k + 1.0) * PagesPerVector();
  }

  /// SUM(column) over the rows selected by `rows`, evaluated on the slices
  /// as sum_i 2^i * Count(S_i AND rows) + bias * Count(rows). `rows` must
  /// not select NULL or deleted rows (Evaluate* results already comply).
  Result<int64_t> Sum(const BitVector& rows);

  /// MIN / MAX over the selected rows by most-significant-slice descent
  /// (O(k) slice reads, no data access). NotFound on an empty selection.
  Result<int64_t> Min(const BitVector& rows);
  Result<int64_t> Max(const BitVector& rows);

  /// The q-quantile (0 < q <= 1) of the selected rows' values, computed by
  /// rank descent over the slices — the paper's Section 5 median / N-tile
  /// aggregates. q = 0.5 is the (lower) median: the ceil(q*count)-th
  /// smallest value.
  Result<int64_t> Quantile(const BitVector& rows, double q);

  int64_t bias() const { return bias_; }

  void ForEachAuditVector(
      const std::function<void(const AuditableVector&)>& fn) const override {
    for (size_t i = 0; i < slices_.size(); ++i) {
      fn(AuditableVector{"slice", i, &slices_[i], nullptr});
    }
  }

 private:
  /// Bitmap of rows with (value - bias) <= c, by most-to-least significant
  /// slice scan. Charges every slice it reads.
  BitVector LessOrEqual(uint64_t c);
  /// Charges a read of slice i.
  void ChargeSlice(size_t i);
  void WriteBiased(size_t row, uint64_t biased);

  bool built_ = false;
  size_t rows_indexed_ = 0;
  int64_t bias_ = 0;
  std::vector<BitVector> slices_;
};

}  // namespace ebi

#endif  // EBI_INDEX_BIT_SLICED_INDEX_H_
