#ifndef EBI_INDEX_VALUE_LIST_INDEX_H_
#define EBI_INDEX_VALUE_LIST_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "index/index.h"
#include "util/rle_bitmap.h"

namespace ebi {

/// Options for the hybrid value-list index.
struct ValueListIndexOptions {
  /// A key stores a bitmap when its rows-per-distinct-value density
  /// (posting size / table size) is at least this; sparser keys store RID
  /// lists. 1/64 means "a bitmap costs no more than ~2x the RID list".
  double bitmap_density_threshold = 1.0 / 64.0;
};

/// The hybrid value-list index of Sections 3.2/4: a B-tree-like sorted key
/// directory whose leaf entries hold either a bitmap vector (dense keys) or
/// a tuple-id list (sparse keys).
///
/// The paper's critique is built in and observable: as cardinality grows,
/// postings fall below the density threshold, every entry degrades to a
/// RID list, and the structure "reduces to a B-tree" — losing bitmap
/// cooperativity. `FractionBitmapKeys()` exposes exactly that degradation.
class ValueListIndex : public SecondaryIndex {
 public:
  ValueListIndex(const Column* column, const BitVector* existence,
                 IoAccountant* io,
                 ValueListIndexOptions options = ValueListIndexOptions())
      : SecondaryIndex(column, existence, io), options_(options) {}

  std::string Name() const override { return "value-list-hybrid"; }

  Status Build() override;
  Status Append(size_t row) override;

  Result<BitVector> EvaluateEquals(const Value& value) override;
  Result<BitVector> EvaluateIn(const std::vector<Value>& values) override;
  Result<BitVector> EvaluateRange(int64_t lo, int64_t hi) override;

  size_t SizeBytes() const override;
  size_t NumVectors() const override;

  /// One key-directory descent per value (ranges share one) plus the
  /// posting payload: compressed bitmaps for dense keys, RID pages for
  /// sparse ones.
  double EstimatePages(const SelectionShape& shape) const override {
    const double per_key =
        entries_.empty()
            ? 1.0
            : std::max(1.0, static_cast<double>(SizeBytes()) /
                                static_cast<double>(entries_.size()) /
                                static_cast<double>(io_->page_size()));
    const double delta = static_cast<double>(shape.delta);
    const double descents =
        shape.kind == SelectionShape::Kind::kRange ? 1.0 : delta;
    return descents + delta * per_key + 1.0;
  }

  /// Fraction of keys currently stored as bitmaps (1.0 = pure bitmap
  /// index, 0.0 = degraded to a plain B-tree).
  double FractionBitmapKeys() const;

 private:
  struct Entry {
    int64_t key = 0;           // Sort key (value or string rank).
    ValueId id = 0;            // Dictionary id.
    bool is_bitmap = false;
    RleBitmap bitmap;          // When is_bitmap.
    std::vector<uint32_t> rids;  // Otherwise.
  };

  int64_t KeyOf(ValueId id) const;
  /// Charges the simulated key-directory descent: ceil(log_M(#keys)) node
  /// pages, M derived from the page size.
  void ChargeDescent();
  /// Reads (and charges) one entry's rows into `out`.
  void EmitEntry(const Entry& entry, BitVector* out);
  /// (Re)derives one entry's representation from its density.
  void Pack(Entry* entry, const std::vector<uint32_t>& rids);
  Result<BitVector> EvaluateIds(const std::vector<ValueId>& ids);

  ValueListIndexOptions options_;
  bool built_ = false;
  size_t rows_indexed_ = 0;
  std::vector<Entry> entries_;  // Sorted by key.
  std::vector<int64_t> string_rank_;
};

}  // namespace ebi

#endif  // EBI_INDEX_VALUE_LIST_INDEX_H_
