#ifndef EBI_INDEX_JOIN_INDEX_H_
#define EBI_INDEX_JOIN_INDEX_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "index/encoded_bitmap_index.h"
#include "query/predicate.h"
#include "storage/table.h"
#include "util/status.h"

namespace ebi {

/// An encoded bitmapped join index for star joins (Section 4's join-index
/// family: Valduriez [15], O'Neil & Graefe [10]).
///
/// A classic bitmapped join index keeps, per dimension row, a bitmap of
/// the fact rows that join it — i.e. a *simple* bitmap index keyed by
/// dimension row, with the usual linear blow-up in dimension cardinality.
/// This variant applies the paper's contribution to the join structure:
/// the dimension key is *encoded*, so the join index is ceil(log2 |D|)
/// bitmap vectors over the fact table, and "fact rows joining any subset
/// of dimension rows" is one reduced Boolean expression.
///
/// Queries take a predicate over any dimension column; the dimension is
/// small (paper's model), so it is scanned to resolve the qualifying keys,
/// and the fact-side bitmap work — the expensive part — runs on the
/// encoded vectors.
class EncodedBitmapJoinIndex {
 public:
  /// `fact_fk` is the fact table's foreign-key column; `dimension` the
  /// dimension table whose `dim_pk` column holds the matching keys.
  EncodedBitmapJoinIndex(const Column* fact_fk,
                         const BitVector* fact_existence,
                         const Table* dimension, std::string dim_pk,
                         IoAccountant* io,
                         EncodedBitmapIndexOptions options =
                             EncodedBitmapIndexOptions());

  /// Builds the encoded index over the fact FK column and validates that
  /// the dimension PK column exists and is duplicate-free.
  Status Build();

  /// Keeps the index in sync with fact-table appends.
  Status Append(size_t fact_row) { return fact_index_->Append(fact_row); }
  Status MarkDeleted(size_t fact_row) {
    return fact_index_->MarkDeleted(fact_row);
  }

  /// Fact rows whose dimension row satisfies `predicate` (a predicate on
  /// any column of the dimension table): the star-join primitive
  /// "SELECT ... FROM fact JOIN dim WHERE dim.attr ...".
  Result<BitVector> FactRowsWhere(const Predicate& predicate);

  /// Fact rows joining one specific dimension row.
  Result<BitVector> FactRowsForDimRow(size_t dim_row);

  /// Number of bitmap vectors held (ceil(log2 |keys|) + reserved bits) —
  /// a simple bitmapped join index would hold |dimension| of them.
  size_t NumVectors() const { return fact_index_->NumVectors(); }
  size_t SizeBytes() const { return fact_index_->SizeBytes(); }

  const EncodedBitmapIndex& fact_index() const { return *fact_index_; }

 private:
  /// Dimension keys qualifying under `predicate`, as fact-side Values.
  Result<std::vector<Value>> QualifyingKeys(const Predicate& predicate);

  const Table* dimension_;
  std::string dim_pk_;
  IoAccountant* io_;
  std::unique_ptr<EncodedBitmapIndex> fact_index_;
  bool built_ = false;
};

}  // namespace ebi

#endif  // EBI_INDEX_JOIN_INDEX_H_
