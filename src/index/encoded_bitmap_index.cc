#include "index/encoded_bitmap_index.h"

#include <utility>

#include "encoding/encoders.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bit_util.h"
#include "util/random.h"

namespace ebi {

Status EncodedBitmapIndex::SetMapping(MappingTable mapping) {
  if (built_) {
    return Status::FailedPrecondition("index already built");
  }
  mapping_ = std::move(mapping);
  options_.strategy = EncodingStrategy::kCustom;
  return Status::OK();
}

Status EncodedBitmapIndex::Build() {
  const size_t n = column_->size();
  const size_t m = column_->Cardinality();
  if (m == 0 && options_.strategy != EncodingStrategy::kCustom) {
    return Status::FailedPrecondition("cannot encode an empty domain");
  }

  EncoderOptions eo;
  eo.reserve_void_zero = options_.reserve_void_zero;
  eo.encode_null = options_.encode_null.value_or(column_->HasNulls());
  eo.extra_width = options_.extra_width;

  switch (options_.strategy) {
    case EncodingStrategy::kSequential: {
      EBI_ASSIGN_OR_RETURN(mapping_, MakeSequentialMapping(m, eo));
      break;
    }
    case EncodingStrategy::kGray: {
      EBI_ASSIGN_OR_RETURN(mapping_, MakeGrayMapping(m, eo));
      break;
    }
    case EncodingStrategy::kRandom: {
      Rng rng(options_.random_seed);
      EBI_ASSIGN_OR_RETURN(mapping_, MakeRandomMapping(m, &rng, eo));
      break;
    }
    case EncodingStrategy::kGreedy: {
      EBI_ASSIGN_OR_RETURN(
          mapping_, GreedyEncode(m, options_.training_predicates, eo));
      break;
    }
    case EncodingStrategy::kAnnealed: {
      EBI_ASSIGN_OR_RETURN(
          mapping_, AnnealEncode(m, options_.training_predicates,
                                 options_.optimizer, eo));
      break;
    }
    case EncodingStrategy::kCustom: {
      if (mapping_.NumValues() < m) {
        return Status::FailedPrecondition(
            "custom mapping covers " +
            std::to_string(mapping_.NumValues()) + " of " +
            std::to_string(m) + " values");
      }
      break;
    }
  }

  std::vector<BitVector> plain(static_cast<size_t>(mapping_.width()),
                               BitVector(n));
  for (size_t row = 0; row < n; ++row) {
    EBI_ASSIGN_OR_RETURN(const uint64_t code, CodeForRow(row));
    WriteCodeTo(&plain, row, code);
  }
  rows_indexed_ = n;
  StoreSlices(std::move(plain));
  built_ = true;
  return Status::OK();
}

void EncodedBitmapIndex::StoreSlices(std::vector<BitVector> plain) {
  if (options_.format == BitmapFormat::kPlain) {
    slices_ = std::move(plain);
    stored_slices_.clear();
    return;
  }
  stored_slices_.clear();
  stored_slices_.reserve(plain.size());
  for (BitVector& slice : plain) {
    stored_slices_.push_back(
        StoredBitmap::Make(std::move(slice), options_.format));
  }
  slices_.clear();
}

std::vector<BitVector> EncodedBitmapIndex::MaterializeSlices() const {
  if (options_.format == BitmapFormat::kPlain) {
    return slices_;
  }
  std::vector<BitVector> plain;
  plain.reserve(stored_slices_.size());
  for (const StoredBitmap& slice : stored_slices_) {
    plain.push_back(slice.ToBitVector());
  }
  return plain;
}

size_t EncodedBitmapIndex::SliceSizeBytes(size_t i) const {
  return options_.format == BitmapFormat::kPlain
             ? slices_[i].SizeBytes()
             : stored_slices_[i].SizeBytes();
}

Result<uint64_t> EncodedBitmapIndex::CodeForRow(size_t row) const {
  if (!existence_->Get(row)) {
    // Void tuple: its codeword, or an arbitrary 0 when the caller opted out
    // of void encoding (correctness then comes from the existence AND).
    return mapping_.void_code().value_or(0);
  }
  const ValueId id = column_->ValueIdAt(row);
  if (id == kNullValueId) {
    if (!mapping_.null_code().has_value()) {
      return Status::FailedPrecondition(
          "column has NULLs but the mapping reserves no NULL codeword");
    }
    return *mapping_.null_code();
  }
  return mapping_.CodeOf(id);
}

void EncodedBitmapIndex::WriteCodeTo(std::vector<BitVector>* slices,
                                     size_t row, uint64_t code) {
  for (size_t i = 0; i < slices->size(); ++i) {
    (*slices)[i].Assign(row, (code >> i) & 1);
  }
}

void EncodedBitmapIndex::CountSliceRewrite() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricIndexSliceRewrites);
  counter->Increment();
}

Status EncodedBitmapIndex::Append(size_t row) {
  return AppendBatch(row, 1);
}

Status EncodedBitmapIndex::AppendBatch(size_t first_row, size_t count) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (first_row != rows_indexed_) {
    return Status::InvalidArgument("rows must be appended in order");
  }
  if (first_row + count > column_->size()) {
    return Status::OutOfRange("batch extends past the column");
  }
  if (count == 0) {
    return Status::OK();
  }

  // Pass 1 — mapping only: resolve every row's codeword, taking the
  // domain-expansion path of Section 2.2 as needed. Equation (1) holds
  // iff a free codeword remains at the current width (Figure 2(a));
  // otherwise the width grows (Figure 2(b)). New distinct values arrive
  // in dense ValueId order because the column assigned their ids at
  // table-append time, and the width grows only as far as the whole
  // batch requires — not once per new value.
  const int width_before = mapping_.width();
  std::vector<uint64_t> codes(count);
  for (size_t r = 0; r < count; ++r) {
    const ValueId id = column_->ValueIdAt(first_row + r);
    if (id == kNullValueId) {
      if (!mapping_.null_code().has_value()) {
        return Status::FailedPrecondition(
            "NULL appended but the mapping reserves no NULL codeword; "
            "rebuild with encode_null");
      }
      codes[r] = *mapping_.null_code();
    } else if (id < mapping_.NumValues()) {
      // Update without domain expansion: set k bits (Section 2.2).
      EBI_ASSIGN_OR_RETURN(codes[r], mapping_.CodeOf(id));
    } else {
      std::optional<uint64_t> free = mapping_.FirstFreeCode();
      if (!free.has_value()) {
        EBI_RETURN_IF_ERROR(mapping_.ExpandWidth(mapping_.width() + 1));
        free = mapping_.FirstFreeCode();
        if (!free.has_value()) {
          return Status::Internal("no free codeword after width expansion");
        }
      }
      EBI_RETURN_IF_ERROR(mapping_.AddValue(id, *free));
      codes[r] = *free;
    }
  }

  // Pass 2 — slices, written once for the whole batch. Width growth adds
  // all-zero vectors B_k (existing rows keep zero high bits, matching the
  // zero-extension ExpandWidth applied to their codewords).
  if (options_.format == BitmapFormat::kPlain) {
    for (int w = width_before; w < mapping_.width(); ++w) {
      slices_.emplace_back(rows_indexed_);
    }
    for (size_t r = 0; r < count; ++r) {
      for (size_t i = 0; i < slices_.size(); ++i) {
        slices_[i].PushBack((codes[r] >> i) & 1);
      }
    }
  } else {
    // One decompress-modify-recompress cycle per batch — the coalesced
    // alternative to one full rewrite per appended row.
    std::vector<BitVector> plain = MaterializeSlices();
    for (int w = width_before; w < mapping_.width(); ++w) {
      plain.emplace_back(rows_indexed_);
    }
    for (size_t r = 0; r < count; ++r) {
      for (size_t i = 0; i < plain.size(); ++i) {
        plain[i].PushBack((codes[r] >> i) & 1);
      }
    }
    StoreSlices(std::move(plain));
    CountSliceRewrite();
  }
  rows_indexed_ += count;
  return Status::OK();
}

Result<std::unique_ptr<SecondaryIndex>> EncodedBitmapIndex::CloneRebound(
    const Column* column, const BitVector* existence,
    IoAccountant* io) const {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (column == nullptr || existence == nullptr || io == nullptr) {
    return Status::InvalidArgument("CloneRebound requires a full binding");
  }
  if (column->size() != rows_indexed_) {
    return Status::FailedPrecondition(
        "clone target holds " + std::to_string(column->size()) +
        " rows, index covers " + std::to_string(rows_indexed_));
  }
  auto clone = std::make_unique<EncodedBitmapIndex>(column, existence, io,
                                                    options_);
  // The mapping travels with the clone; a rebuild must not re-derive it.
  clone->options_.strategy = EncodingStrategy::kCustom;
  clone->mapping_ = mapping_;
  clone->slices_ = slices_;
  clone->stored_slices_ = stored_slices_;
  clone->rows_indexed_ = rows_indexed_;
  clone->built_ = true;
  return std::unique_ptr<SecondaryIndex>(std::move(clone));
}

Status EncodedBitmapIndex::MarkDeleted(size_t row) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (row >= rows_indexed_) {
    return Status::OutOfRange("row out of range");
  }
  if (mapping_.void_code().has_value()) {
    if (options_.format == BitmapFormat::kPlain) {
      WriteCodeTo(&slices_, row, *mapping_.void_code());
    } else {
      // Decompress-modify-recompress: the in-place update cost compressed
      // storage pays for maintenance (Section 2.2 discussion).
      std::vector<BitVector> plain = MaterializeSlices();
      WriteCodeTo(&plain, row, *mapping_.void_code());
      StoreSlices(std::move(plain));
      CountSliceRewrite();
    }
  }
  // Without a void codeword the existence AND in evaluation masks the row.
  return Status::OK();
}

Result<Cover> EncodedBitmapIndex::CoverForIds(
    const std::vector<ValueId>& ids) const {
  std::vector<uint64_t> onset;
  onset.reserve(ids.size());
  for (ValueId id : ids) {
    EBI_ASSIGN_OR_RETURN(const uint64_t code, mapping_.CodeOf(id));
    onset.push_back(code);
  }
  const std::vector<uint64_t> dc =
      mapping_.UnusedCodes(options_.reduction.max_dontcare_terms);
  return ReduceRetrievalFunction(onset, dc, mapping_.width(),
                                 options_.reduction);
}

Result<BitVector> EncodedBitmapIndex::EvaluateCoverCharged(
    const Cover& cover) {
  obs::ScopedSpan span("cover.eval");
  const IoScope scope(io_);
  const uint64_t vars = VariablesOf(cover);
  const size_t k = SliceCount();
  uint64_t vectors_read = 0;
  for (size_t i = 0; i < k; ++i) {
    if ((vars >> i) & 1) {
      // Compressed formats charge their (smaller) physical size here —
      // the I/O benefit the format knob exists to measure.
      io_->ChargeVectorRead(SliceSizeBytes(i));
      ++vectors_read;
    }
  }
  BitVector result;
  if (options_.format == BitmapFormat::kPlain) {
    result = EvaluateCover(cover, slices_, rows_indexed_);
  } else {
    // Decompress only the slices the reduced cover references; the rest
    // stay untouched (properly sized all-zero placeholders).
    std::vector<BitVector> touched(k, BitVector(rows_indexed_));
    for (size_t i = 0; i < k; ++i) {
      if ((vars >> i) & 1) {
        touched[i] = stored_slices_[i].ToBitVector();
      }
    }
    result = EvaluateCover(cover, touched, rows_indexed_);
  }
  const bool existence_and = !mapping_.void_code().has_value();
  if (existence_and) {
    // No void codeword: deleted rows still carry stale value codes, so the
    // existence bitmap must be ANDed — exactly the extra read Theorem 2.1
    // eliminates.
    io_->ChargeVectorRead(existence_->SizeBytes());
    result.AndWith(*existence_);
  }
  if (span.active()) {
    // The measured c_e of Section 3.1: distinct slice vectors the reduced
    // expression touched (existence_and marks the Theorem 2.1 extra read).
    span.Attr("minterms", cover.size());
    span.Attr("vectors_read", vectors_read);
    span.Attr("slices_held", k);
    span.Attr("existence_and", existence_and);
    span.AttrIo(scope.Delta());
  }
  return result;
}

Result<BitVector> EncodedBitmapIndex::EvaluateEquals(const Value& value) {
  return EvaluateIn({value});
}

Result<BitVector> EncodedBitmapIndex::EvaluateIn(
    const std::vector<Value>& values) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  obs::ScopedSpan span("index.eval");
  const std::vector<ValueId> ids = IdsOf(values);
  if (span.active()) {
    span.Attr("index", Name());
    span.Attr("delta", ids.size());
  }
  EBI_ASSIGN_OR_RETURN(const Cover cover, CoverForIds(ids));
  return EvaluateCoverCharged(cover);
}

Result<BitVector> EncodedBitmapIndex::EvaluateRange(int64_t lo, int64_t hi) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (column_->type() != Column::Type::kInt64) {
    return Status::InvalidArgument("range selection on non-integer column");
  }
  obs::ScopedSpan span("index.eval");
  const std::vector<ValueId> ids = column_->IdsInRange(lo, hi);
  if (span.active()) {
    span.Attr("index", Name());
    span.Attr("delta", ids.size());
  }
  EBI_ASSIGN_OR_RETURN(const Cover cover, CoverForIds(ids));
  return EvaluateCoverCharged(cover);
}

Result<BitVector> EncodedBitmapIndex::EvaluateIsNull() {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (!mapping_.null_code().has_value()) {
    return Status::FailedPrecondition("mapping reserves no NULL codeword");
  }
  obs::ScopedSpan span("index.eval");
  if (span.active()) {
    span.Attr("index", Name());
    span.Attr("op", "is_null");
  }
  Cover cover = {Cube::MinTerm(*mapping_.null_code(), mapping_.width())};
  return EvaluateCoverCharged(cover);
}

Result<Cover> EncodedBitmapIndex::CoverForIn(
    const std::vector<Value>& values) const {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  return CoverForIds(IdsOf(values));
}

Result<int> EncodedBitmapIndex::AccessCostForIn(
    const std::vector<Value>& values) const {
  EBI_ASSIGN_OR_RETURN(const Cover cover, CoverForIn(values));
  return DistinctVariables(cover);
}

Status EncodedBitmapIndex::Reencode(MappingTable new_mapping) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (new_mapping.NumValues() < column_->Cardinality()) {
    return Status::FailedPrecondition(
        "new mapping covers " + std::to_string(new_mapping.NumValues()) +
        " of " + std::to_string(column_->Cardinality()) + " values");
  }
  if (column_->HasNulls() && !new_mapping.null_code().has_value()) {
    return Status::FailedPrecondition(
        "column has NULLs but the new mapping reserves no NULL codeword");
  }
  // After the preconditions above CodeForRow cannot fail: ValueIds are
  // dense below the cardinality, NULLs have a codeword, and void falls
  // back to the reserved (or zero) codeword.
  mapping_ = std::move(new_mapping);
  std::vector<BitVector> plain(static_cast<size_t>(mapping_.width()),
                               BitVector(rows_indexed_));
  for (size_t row = 0; row < rows_indexed_; ++row) {
    const Result<uint64_t> code = CodeForRow(row);
    if (!code.ok()) {
      return Status::Internal("re-encoding failed mid-pass: " +
                              code.status().message());
    }
    WriteCodeTo(&plain, row, *code);
  }
  StoreSlices(std::move(plain));
  return Status::OK();
}

Status EncodedBitmapIndex::RestoreFromParts(MappingTable mapping,
                                            std::vector<BitVector> slices) {
  if (slices.size() != static_cast<size_t>(mapping.width())) {
    return Status::InvalidArgument(
        "slice count " + std::to_string(slices.size()) +
        " != mapping width " + std::to_string(mapping.width()));
  }
  if (mapping.NumValues() < column_->Cardinality()) {
    return Status::FailedPrecondition(
        "restored mapping covers fewer values than the column holds");
  }
  for (const BitVector& slice : slices) {
    if (slice.size() != column_->size()) {
      return Status::InvalidArgument(
          "slice length " + std::to_string(slice.size()) +
          " != column rows " + std::to_string(column_->size()));
    }
  }
  mapping_ = std::move(mapping);
  rows_indexed_ = column_->size();
  StoreSlices(std::move(slices));
  options_.strategy = EncodingStrategy::kCustom;
  built_ = true;
  return Status::OK();
}

size_t EncodedBitmapIndex::SizeBytes() const {
  size_t total = 0;
  const size_t k = SliceCount();
  for (size_t i = 0; i < k; ++i) {
    total += SliceSizeBytes(i);
  }
  // Mapping table: codeword array plus hash entries (code -> ValueId).
  total += mapping_.NumValues() * (sizeof(uint64_t) + 16);
  return total;
}

}  // namespace ebi
