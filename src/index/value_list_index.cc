#include "index/value_list_index.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace ebi {

int64_t ValueListIndex::KeyOf(ValueId id) const {
  if (column_->type() == Column::Type::kInt64) {
    return column_->ValueOf(id).int_value;
  }
  return string_rank_[id];
}

void ValueListIndex::Pack(Entry* entry, const std::vector<uint32_t>& rids) {
  const double density =
      rows_indexed_ == 0
          ? 0.0
          : static_cast<double>(rids.size()) /
                static_cast<double>(rows_indexed_);
  entry->is_bitmap = density >= options_.bitmap_density_threshold;
  if (entry->is_bitmap) {
    BitVector bits(rows_indexed_);
    for (uint32_t rid : rids) {
      bits.Set(rid);
    }
    entry->bitmap = RleBitmap::Compress(bits);
    entry->rids.clear();
  } else {
    entry->rids = rids;
    entry->bitmap = RleBitmap();
  }
}

Status ValueListIndex::Build() {
  if (column_->type() == Column::Type::kString) {
    const size_t m = column_->Cardinality();
    std::vector<ValueId> order(m);
    for (ValueId i = 0; i < m; ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(), [this](ValueId a, ValueId b) {
      return column_->ValueOf(a).string_value <
             column_->ValueOf(b).string_value;
    });
    string_rank_.assign(m, 0);
    for (size_t rank = 0; rank < m; ++rank) {
      string_rank_[order[rank]] = static_cast<int64_t>(rank);
    }
  }

  rows_indexed_ = column_->size();
  std::map<int64_t, std::pair<ValueId, std::vector<uint32_t>>> groups;
  for (size_t row = 0; row < rows_indexed_; ++row) {
    const ValueId id = column_->ValueIdAt(row);
    if (id == kNullValueId) {
      continue;
    }
    auto& slot = groups[KeyOf(id)];
    slot.first = id;
    slot.second.push_back(static_cast<uint32_t>(row));
  }

  entries_.clear();
  entries_.reserve(groups.size());
  for (auto& [key, slot] : groups) {
    Entry entry;
    entry.key = key;
    entry.id = slot.first;
    Pack(&entry, slot.second);
    entries_.push_back(std::move(entry));
  }
  built_ = true;
  return Status::OK();
}

Status ValueListIndex::Append(size_t row) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (row != rows_indexed_) {
    return Status::InvalidArgument("rows must be appended in order");
  }
  const ValueId id = column_->ValueIdAt(row);
  ++rows_indexed_;
  if (id == kNullValueId) {
    return Status::OK();
  }
  if (column_->type() == Column::Type::kString &&
      id >= string_rank_.size()) {
    string_rank_.resize(id + 1, 0);
    string_rank_[id] = static_cast<int64_t>(string_rank_.size()) - 1;
  }
  const int64_t key = KeyOf(id);
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, int64_t k) { return e.key < k; });
  if (it == entries_.end() || it->key != key) {
    Entry entry;
    entry.key = key;
    entry.id = id;
    Pack(&entry, {static_cast<uint32_t>(row)});
    entries_.insert(it, std::move(entry));
    return Status::OK();
  }
  // Existing key: materialize its RIDs, add the row, re-pack (the packed
  // form may flip between bitmap and RID list as density changes).
  std::vector<uint32_t> rids;
  if (it->is_bitmap) {
    rids = it->bitmap.Decompress().ToPositions();
  } else {
    rids = it->rids;
  }
  rids.push_back(static_cast<uint32_t>(row));
  Pack(&*it, rids);
  return Status::OK();
}

void ValueListIndex::ChargeDescent() {
  const size_t fanout = std::max<size_t>(4, io_->page_size() / 16);
  size_t levels = 1;
  size_t reach = fanout;
  while (reach < entries_.size()) {
    ++levels;
    reach *= fanout;
  }
  for (size_t i = 0; i < levels; ++i) {
    io_->ChargeNodeRead(io_->page_size());
  }
}

void ValueListIndex::EmitEntry(const Entry& entry, BitVector* out) {
  if (entry.is_bitmap) {
    io_->ChargeVectorRead(entry.bitmap.SizeBytes());
    BitVector bits = entry.bitmap.Decompress();
    bits.Resize(rows_indexed_);
    out->OrWith(bits);
  } else {
    io_->ChargeBytes(entry.rids.size() * sizeof(uint32_t));
    for (uint32_t rid : entry.rids) {
      out->Set(rid);
    }
  }
}

Result<BitVector> ValueListIndex::EvaluateIds(
    const std::vector<ValueId>& ids) {
  BitVector result(rows_indexed_);
  for (ValueId id : ids) {
    ChargeDescent();
    const int64_t key = KeyOf(id);
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& e, int64_t k) { return e.key < k; });
    if (it != entries_.end() && it->key == key) {
      EmitEntry(*it, &result);
    }
  }
  io_->ChargeVectorRead(existence_->SizeBytes());
  result.AndWith(*existence_);
  return result;
}

Result<BitVector> ValueListIndex::EvaluateEquals(const Value& value) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  return EvaluateIds(IdsOf({value}));
}

Result<BitVector> ValueListIndex::EvaluateIn(
    const std::vector<Value>& values) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  return EvaluateIds(IdsOf(values));
}

Result<BitVector> ValueListIndex::EvaluateRange(int64_t lo, int64_t hi) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (column_->type() != Column::Type::kInt64) {
    return Status::InvalidArgument("range selection on non-integer column");
  }
  // One descent, then a leaf-level sweep across the key range.
  ChargeDescent();
  BitVector result(rows_indexed_);
  for (const Entry& entry : entries_) {
    if (entry.key < lo) {
      continue;
    }
    if (entry.key > hi) {
      break;
    }
    EmitEntry(entry, &result);
  }
  io_->ChargeVectorRead(existence_->SizeBytes());
  result.AndWith(*existence_);
  return result;
}

size_t ValueListIndex::SizeBytes() const {
  size_t total = 0;
  for (const Entry& entry : entries_) {
    total += sizeof(int64_t);
    total += entry.is_bitmap ? entry.bitmap.SizeBytes()
                             : entry.rids.size() * sizeof(uint32_t);
  }
  return total;
}

size_t ValueListIndex::NumVectors() const {
  size_t bitmaps = 0;
  for (const Entry& entry : entries_) {
    bitmaps += entry.is_bitmap ? 1 : 0;
  }
  return bitmaps;
}

double ValueListIndex::FractionBitmapKeys() const {
  if (entries_.empty()) {
    return 0.0;
  }
  return static_cast<double>(NumVectors()) /
         static_cast<double>(entries_.size());
}

}  // namespace ebi
