#include "index/groupset_index.h"

#include <map>

namespace ebi {

GroupsetIndex::GroupsetIndex(std::vector<const Column*> columns,
                             const BitVector* existence, IoAccountant* io)
    : columns_(std::move(columns)), existence_(existence), io_(io) {
  members_.reserve(columns_.size());
  for (const Column* column : columns_) {
    EncodedBitmapIndexOptions options;
    options.strategy = EncodingStrategy::kSequential;
    options.reserve_void_zero = true;
    members_.push_back(std::make_unique<EncodedBitmapIndex>(
        column, existence_, io_, options));
  }
}

Status GroupsetIndex::Build() {
  if (columns_.empty()) {
    return Status::InvalidArgument("group-set index needs columns");
  }
  const size_t n = columns_.front()->size();
  for (const Column* column : columns_) {
    if (column->size() != n) {
      return Status::InvalidArgument(
          "group-set member columns differ in length");
    }
  }
  for (auto& member : members_) {
    EBI_RETURN_IF_ERROR(member->Build());
  }
  built_ = true;
  return Status::OK();
}

Status GroupsetIndex::Append(size_t row) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  for (auto& member : members_) {
    EBI_RETURN_IF_ERROR(member->Append(row));
  }
  return Status::OK();
}

Result<BitVector> GroupsetIndex::GroupBitmap(
    const std::vector<Value>& group) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (group.size() != members_.size()) {
    return Status::InvalidArgument("group arity mismatch");
  }
  BitVector result;
  for (size_t i = 0; i < members_.size(); ++i) {
    EBI_ASSIGN_OR_RETURN(BitVector one,
                         members_[i]->EvaluateEquals(group[i]));
    if (i == 0) {
      result = std::move(one);
    } else {
      result.AndWith(one);
    }
  }
  return result;
}

Status GroupsetIndex::ForEachGroup(
    const std::function<void(const std::vector<Value>&, const BitVector&)>&
        fn) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  // Group rows by their ValueId combination in one scan, then emit
  // bitmaps. (The per-attribute slices could also drive this, but the scan
  // keeps the run-time group-by exact regardless of encoding.)
  const size_t n = columns_.front()->size();
  std::map<std::vector<ValueId>, BitVector> groups;
  for (size_t row = 0; row < n; ++row) {
    if (!existence_->Get(row)) {
      continue;
    }
    std::vector<ValueId> key(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      key[c] = columns_[c]->ValueIdAt(row);
    }
    auto [it, inserted] = groups.try_emplace(std::move(key), BitVector(n));
    it->second.Set(row);
  }
  for (const auto& [key, rows] : groups) {
    std::vector<Value> values(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      values[c] = key[c] == kNullValueId ? Value::Null()
                                         : columns_[c]->ValueOf(key[c]);
    }
    fn(values, rows);
  }
  return Status::OK();
}

Result<size_t> GroupsetIndex::CountGroups() {
  size_t count = 0;
  EBI_RETURN_IF_ERROR(ForEachGroup(
      [&count](const std::vector<Value>&, const BitVector&) { ++count; }));
  return count;
}

Result<std::vector<GroupsetIndex::GroupAggregate>> GroupsetIndex::GroupBySum(
    BitSlicedIndex* measure) {
  std::vector<GroupAggregate> out;
  Status sum_status = Status::OK();
  EBI_RETURN_IF_ERROR(ForEachGroup(
      [&](const std::vector<Value>& group, const BitVector& rows) {
        if (!sum_status.ok()) {
          return;
        }
        GroupAggregate agg;
        agg.group = group;
        agg.count = rows.Count();
        const Result<int64_t> sum = measure->Sum(rows);
        if (!sum.ok()) {
          sum_status = sum.status();
          return;
        }
        agg.sum = *sum;
        out.push_back(std::move(agg));
      }));
  EBI_RETURN_IF_ERROR(sum_status);
  return out;
}

size_t GroupsetIndex::NumVectors() const {
  size_t total = 0;
  for (const auto& member : members_) {
    total += member->NumVectors();
  }
  return total;
}

size_t GroupsetIndex::SizeBytes() const {
  size_t total = 0;
  for (const auto& member : members_) {
    total += member->SizeBytes();
  }
  return total;
}

}  // namespace ebi
