#ifndef EBI_INDEX_DYNAMIC_BITMAP_INDEX_H_
#define EBI_INDEX_DYNAMIC_BITMAP_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "index/encoded_bitmap_index.h"
#include "index/index.h"

namespace ebi {

/// The dynamic bitmap of Sarawagi (Section 4, [13]): the n distinct values
/// of a high-cardinality attribute are mapped onto n consecutive
/// log2(n)-bit integers, built on demand.
///
/// As the paper notes, this is a special case of encoded bitmap indexing
/// whose encoding "trivially maps the domain onto a continuous integer
/// set" and where "the significance of encoding was not discussed" — so
/// this wrapper pins the sequential encoding, disables the
/// encoding-dependent options (void reservation, trained encodings), and
/// delegates the mechanics to EncodedBitmapIndex.
class DynamicBitmapIndex : public SecondaryIndex {
 public:
  DynamicBitmapIndex(const Column* column, const BitVector* existence,
                     IoAccountant* io);

  std::string Name() const override { return "dynamic-bitmap"; }

  Status Build() override { return impl_->Build(); }
  Status Append(size_t row) override { return impl_->Append(row); }

  Result<BitVector> EvaluateEquals(const Value& value) override {
    return impl_->EvaluateEquals(value);
  }
  Result<BitVector> EvaluateIn(const std::vector<Value>& values) override {
    return impl_->EvaluateIn(values);
  }
  Result<BitVector> EvaluateRange(int64_t lo, int64_t hi) override {
    return impl_->EvaluateRange(lo, hi);
  }

  size_t SizeBytes() const override { return impl_->SizeBytes(); }
  size_t NumVectors() const override { return impl_->NumVectors(); }
  double EstimatePages(const SelectionShape& shape) const override {
    return impl_->EstimatePages(shape);
  }
  Result<BitVector> EvaluateIsNull() override {
    return impl_->EvaluateIsNull();
  }
  bool SupportsIsNull() const override { return impl_->SupportsIsNull(); }

  void ForEachAuditVector(
      const std::function<void(const AuditableVector&)>& fn) const override {
    impl_->ForEachAuditVector(fn);
  }
  const MappingTable* audit_mapping() const override {
    return impl_->audit_mapping();
  }

 private:
  std::unique_ptr<EncodedBitmapIndex> impl_;
};

}  // namespace ebi

#endif  // EBI_INDEX_DYNAMIC_BITMAP_INDEX_H_
