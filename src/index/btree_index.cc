#include "index/btree_index.h"

#include <algorithm>
#include <map>

#include "obs/trace.h"

namespace ebi {

int64_t BTreeIndex::KeyOf(ValueId id) const {
  if (column_->type() == Column::Type::kInt64) {
    return column_->ValueOf(id).int_value;
  }
  return string_rank_[id];
}

Status BTreeIndex::Build() {
  // Degree M from the page size: each slot is a key (8 B) plus a child
  // pointer / posting pointer (8 B).
  fanout_ = std::max<size_t>(4, io_->page_size() / 16);

  // String columns get a dense rank so keys are totally ordered integers.
  if (column_->type() == Column::Type::kString) {
    const size_t m = column_->Cardinality();
    std::vector<ValueId> order(m);
    for (ValueId i = 0; i < m; ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(), [this](ValueId a, ValueId b) {
      return column_->ValueOf(a).string_value <
             column_->ValueOf(b).string_value;
    });
    string_rank_.assign(m, 0);
    for (size_t rank = 0; rank < m; ++rank) {
      string_rank_[order[rank]] = static_cast<int64_t>(rank);
    }
    next_string_rank_ = static_cast<int64_t>(m);
  }

  // Gather postings sorted by key.
  std::map<int64_t, std::vector<uint32_t>> postings;
  for (size_t row = 0; row < column_->size(); ++row) {
    const ValueId id = column_->ValueIdAt(row);
    if (id == kNullValueId) {
      continue;  // B-trees skip NULL keys.
    }
    postings[KeyOf(id)].push_back(static_cast<uint32_t>(row));
  }

  // Bulk-load leaves at ~fanout occupancy, then build internal levels.
  nodes_.clear();
  std::vector<uint32_t> level;
  std::vector<int64_t> level_min_keys;
  {
    auto it = postings.begin();
    while (it != postings.end()) {
      auto node = std::make_unique<Node>();
      node->leaf = true;
      for (size_t s = 0; s < fanout_ && it != postings.end(); ++s, ++it) {
        node->keys.push_back(it->first);
        node->postings.push_back(std::move(it->second));
      }
      const uint32_t id = static_cast<uint32_t>(nodes_.size());
      if (!level.empty()) {
        nodes_[level.back()]->next_leaf = id;
      }
      level_min_keys.push_back(node->keys.front());
      level.push_back(id);
      nodes_.push_back(std::move(node));
    }
  }
  if (level.empty()) {
    // Empty column: a single empty leaf keeps invariants simple.
    auto node = std::make_unique<Node>();
    node->leaf = true;
    level.push_back(0);
    level_min_keys.push_back(0);
    nodes_.push_back(std::move(node));
  }

  while (level.size() > 1) {
    std::vector<uint32_t> parent_level;
    std::vector<int64_t> parent_min_keys;
    size_t i = 0;
    while (i < level.size()) {
      auto node = std::make_unique<Node>();
      node->leaf = false;
      node->children.push_back(level[i]);
      const int64_t min_key = level_min_keys[i];
      ++i;
      while (node->children.size() < fanout_ + 1 && i < level.size()) {
        node->keys.push_back(level_min_keys[i]);
        node->children.push_back(level[i]);
        ++i;
      }
      parent_min_keys.push_back(min_key);
      parent_level.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(std::move(node));
    }
    level = std::move(parent_level);
    level_min_keys = std::move(parent_min_keys);
  }
  root_ = level.front();
  rows_indexed_ = column_->size();
  built_ = true;
  return Status::OK();
}

uint32_t BTreeIndex::DescendToLeaf(int64_t key) {
  uint32_t node_id = root_;
  for (;;) {
    ChargeNode();
    const Node& node = *nodes_[node_id];
    if (node.leaf) {
      return node_id;
    }
    // children[i] holds keys in [keys[i-1], keys[i]).
    const size_t slot =
        std::upper_bound(node.keys.begin(), node.keys.end(), key) -
        node.keys.begin();
    node_id = node.children[slot];
  }
}

BTreeIndex::SplitResult BTreeIndex::InsertInto(uint32_t node_id, int64_t key,
                                               uint32_t rid) {
  Node& node = *nodes_[node_id];
  if (node.leaf) {
    const auto it =
        std::lower_bound(node.keys.begin(), node.keys.end(), key);
    const size_t slot = it - node.keys.begin();
    if (it != node.keys.end() && *it == key) {
      node.postings[slot].push_back(rid);
      return SplitResult();
    }
    node.keys.insert(it, key);
    node.postings.insert(node.postings.begin() + slot, {rid});
    if (node.keys.size() <= fanout_) {
      return SplitResult();
    }
    // Split the leaf.
    auto right = std::make_unique<Node>();
    right->leaf = true;
    const size_t half = node.keys.size() / 2;
    right->keys.assign(node.keys.begin() + half, node.keys.end());
    right->postings.assign(
        std::make_move_iterator(node.postings.begin() + half),
        std::make_move_iterator(node.postings.end()));
    node.keys.resize(half);
    node.postings.resize(half);
    right->next_leaf = node.next_leaf;
    const uint32_t right_id = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(std::move(right));
    nodes_[node_id]->next_leaf = right_id;
    return SplitResult{true, nodes_[right_id]->keys.front(), right_id};
  }

  const size_t slot =
      std::upper_bound(node.keys.begin(), node.keys.end(), key) -
      node.keys.begin();
  const uint32_t child = node.children[slot];
  const SplitResult child_split = InsertInto(child, key, rid);
  if (!child_split.split) {
    return SplitResult();
  }
  Node& parent = *nodes_[node_id];  // Re-fetch: nodes_ may have grown.
  parent.keys.insert(parent.keys.begin() + slot, child_split.separator);
  parent.children.insert(parent.children.begin() + slot + 1,
                         child_split.right);
  if (parent.keys.size() <= fanout_) {
    return SplitResult();
  }
  // Split the internal node: middle key moves up.
  auto right = std::make_unique<Node>();
  right->leaf = false;
  const size_t mid = parent.keys.size() / 2;
  const int64_t separator = parent.keys[mid];
  right->keys.assign(parent.keys.begin() + mid + 1, parent.keys.end());
  right->children.assign(parent.children.begin() + mid + 1,
                         parent.children.end());
  parent.keys.resize(mid);
  parent.children.resize(mid + 1);
  const uint32_t right_id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(std::move(right));
  return SplitResult{true, separator, right_id};
}

void BTreeIndex::Insert(int64_t key, uint32_t rid) {
  const SplitResult split = InsertInto(root_, key, rid);
  if (split.split) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(split.separator);
    new_root->children.push_back(root_);
    new_root->children.push_back(split.right);
    root_ = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(std::move(new_root));
  }
}

Status BTreeIndex::Append(size_t row) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (row != rows_indexed_) {
    return Status::InvalidArgument("rows must be appended in order");
  }
  const ValueId id = column_->ValueIdAt(row);
  if (id != kNullValueId) {
    if (column_->type() == Column::Type::kString &&
        id >= string_rank_.size()) {
      // Novel strings rank past the build-time order (lookup stays exact;
      // ranges over strings are not supported anyway).
      string_rank_.resize(id + 1, 0);
      string_rank_[id] = next_string_rank_++;
    }
    Insert(KeyOf(id), static_cast<uint32_t>(row));
  }
  ++rows_indexed_;
  return Status::OK();
}

void BTreeIndex::EmitPostings(const std::vector<uint32_t>& rids,
                              BitVector* out) {
  ChargePosting(rids.size());
  for (uint32_t rid : rids) {
    if (existence_->Get(rid)) {
      out->Set(rid);
    }
  }
}

Result<BitVector> BTreeIndex::EvaluateEquals(const Value& value) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  obs::ScopedSpan span("index.eval");
  const IoScope scope(io_);
  BitVector result(rows_indexed_);
  const std::optional<ValueId> id = column_->Lookup(value);
  if (id.has_value()) {
    const int64_t key = KeyOf(*id);
    const uint32_t leaf_id = DescendToLeaf(key);
    const Node& leaf = *nodes_[leaf_id];
    const auto it =
        std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
    if (it != leaf.keys.end() && *it == key) {
      EmitPostings(leaf.postings[it - leaf.keys.begin()], &result);
    }
  }
  if (span.active()) {
    span.Attr("index", Name());
    span.Attr("height", Height());
    span.AttrIo(scope.Delta());
  }
  return result;
}

Result<BitVector> BTreeIndex::EvaluateIn(const std::vector<Value>& values) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  // One full root-to-leaf probe per value: the multi-index-access cost the
  // paper contrasts with bitmap cooperativity.
  BitVector result(rows_indexed_);
  for (const Value& v : values) {
    EBI_ASSIGN_OR_RETURN(const BitVector one, EvaluateEquals(v));
    result.OrWith(one);
  }
  return result;
}

Result<BitVector> BTreeIndex::EvaluateRange(int64_t lo, int64_t hi) {
  if (!built_) {
    return Status::FailedPrecondition("index not built");
  }
  if (column_->type() != Column::Type::kInt64) {
    return Status::InvalidArgument("range selection on non-integer column");
  }
  obs::ScopedSpan span("index.eval");
  const IoScope scope(io_);
  BitVector result(rows_indexed_);
  if (lo > hi) {
    return result;
  }
  size_t leaves_walked = 0;
  uint32_t leaf_id = DescendToLeaf(lo);
  while (leaf_id != kNoNode) {
    ++leaves_walked;
    const Node& leaf = *nodes_[leaf_id];
    bool past_end = false;
    for (size_t i = 0; i < leaf.keys.size(); ++i) {
      if (leaf.keys[i] < lo) {
        continue;
      }
      if (leaf.keys[i] > hi) {
        past_end = true;
        break;
      }
      EmitPostings(leaf.postings[i], &result);
    }
    if (past_end) {
      break;
    }
    leaf_id = leaf.next_leaf;
    if (leaf_id != kNoNode) {
      ChargeNode();  // Following the leaf chain reads the next page.
    }
  }
  if (span.active()) {
    span.Attr("index", Name());
    span.Attr("height", Height());
    span.Attr("leaves", leaves_walked);
    span.AttrIo(scope.Delta());
  }
  return result;
}

size_t BTreeIndex::SizeBytes() const {
  size_t postings_bytes = 0;
  for (const auto& node : nodes_) {
    for (const auto& p : node->postings) {
      postings_bytes += p.size() * sizeof(uint32_t);
    }
  }
  return nodes_.size() * io_->page_size() + postings_bytes;
}

size_t BTreeIndex::Height() const {
  size_t height = 1;
  uint32_t node_id = root_;
  while (node_id != kNoNode && !nodes_[node_id]->leaf) {
    ++height;
    node_id = nodes_[node_id]->children.front();
  }
  return height;
}

}  // namespace ebi
