#ifndef EBI_INDEX_PROJECTION_INDEX_H_
#define EBI_INDEX_PROJECTION_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "index/index.h"

namespace ebi {

/// The projection index of O'Neil & Quass (Section 4): a dense
/// materialization of the attribute's values in tuple-id order. The paper
/// observes it stores the same bits as a bit-sliced/encoded index but
/// *horizontally* (value-contiguous) instead of *vertically*
/// (position-contiguous); selections therefore scan the whole array.
///
/// Here the materialized values are the dictionary codes (4 bytes each),
/// matching the paper's "table of internal codes" reading of a projection
/// index.
class ProjectionIndex : public SecondaryIndex {
 public:
  ProjectionIndex(const Column* column, const BitVector* existence,
                  IoAccountant* io)
      : SecondaryIndex(column, existence, io) {}

  std::string Name() const override { return "projection"; }

  Status Build() override;
  Status Append(size_t row) override;

  Result<BitVector> EvaluateEquals(const Value& value) override;
  Result<BitVector> EvaluateIn(const std::vector<Value>& values) override;
  Result<BitVector> EvaluateRange(int64_t lo, int64_t hi) override;

  size_t SizeBytes() const override { return codes_.size() * sizeof(ValueId); }
  /// A projection index is one horizontal structure, not bitmap vectors.
  size_t NumVectors() const override { return 1; }

  /// The primary use of projection indexes: fetch the value of one tuple
  /// without touching the base table (charges one page).
  Result<Value> Fetch(size_t row);

 private:
  template <typename Pred>
  Result<BitVector> Scan(Pred pred);

  bool built_ = false;
  std::vector<ValueId> codes_;
};

}  // namespace ebi

#endif  // EBI_INDEX_PROJECTION_INDEX_H_
