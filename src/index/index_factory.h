#ifndef EBI_INDEX_INDEX_FACTORY_H_
#define EBI_INDEX_INDEX_FACTORY_H_

#include <memory>
#include <string>

#include "index/index.h"
#include "util/status.h"

namespace ebi {

/// Index families the library can instantiate by name. Lives in the index
/// layer so both the DBA surface (IndexManager) and the partitioned
/// execution engine (ShardedIndex builds one shard per table segment)
/// construct indexes through the same path.
enum class IndexKind {
  kSimpleBitmap,
  kSimpleBitmapRle,
  kSimpleBitmapEwah,
  kEncodedBitmap,
  kBitSliced,
  kBaseBitSliced,
  kProjection,
  kBTree,
  kValueList,
  kRangeBasedBitmap,
  kDynamicBitmap,
};

/// Parses "simple", "encoded", "bitsliced", "btree", ... (the names the
/// shell uses); NotFound for unknown names.
Result<IndexKind> IndexKindFromName(const std::string& name);
const char* IndexKindName(IndexKind kind);

/// Instantiates an index of `kind` bound to (column, existence, io). The
/// returned index is unbuilt — call Build() before evaluating.
std::unique_ptr<SecondaryIndex> MakeSecondaryIndex(
    IndexKind kind, const Column* column, const BitVector* existence,
    IoAccountant* io);

}  // namespace ebi

#endif  // EBI_INDEX_INDEX_FACTORY_H_
