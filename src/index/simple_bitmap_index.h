#ifndef EBI_INDEX_SIMPLE_BITMAP_INDEX_H_
#define EBI_INDEX_SIMPLE_BITMAP_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "index/index.h"
#include "util/stored_bitmap.h"

namespace ebi {

/// Options for the simple bitmap index.
struct SimpleBitmapIndexOptions {
  /// Physical format of the per-value bitmap vectors. Compression is the
  /// classic remedy (Section 4) for the (m-1)/m sparsity of simple bitmap
  /// vectors; logical operations then run on the compressed form.
  BitmapFormat format = BitmapFormat::kPlain;

  static SimpleBitmapIndexOptions WithFormat(BitmapFormat f) {
    SimpleBitmapIndexOptions options;
    options.format = f;
    return options;
  }
};

/// The simple (value-list) bitmap index of Section 2.1: one bitmap vector
/// B_v per distinct value v, plus a NULL vector when the column has NULLs.
///
/// A selection reads one vector per selected value (c_s = δ, Section 3.1)
/// and always ANDs the existence bitmap, which the paper contrasts with
/// Theorem 2.1's free existence handling in encoded indexes.
class SimpleBitmapIndex : public SecondaryIndex {
 public:
  SimpleBitmapIndex(const Column* column, const BitVector* existence,
                    IoAccountant* io,
                    SimpleBitmapIndexOptions options =
                        SimpleBitmapIndexOptions())
      : SecondaryIndex(column, existence, io), options_(options) {}

  std::string Name() const override {
    return std::string("simple-bitmap") + BitmapFormatSuffix(options_.format);
  }

  Status Build() override;
  Status Append(size_t row) override;

  /// Copy-on-write clone for snapshot publication: copies the per-value
  /// vectors as built, rebinding to the target table's column/existence.
  Result<std::unique_ptr<SecondaryIndex>> CloneRebound(
      const Column* column, const BitVector* existence,
      IoAccountant* io) const override;

  Result<BitVector> EvaluateEquals(const Value& value) override;
  Result<BitVector> EvaluateIn(const std::vector<Value>& values) override;
  Result<BitVector> EvaluateRange(int64_t lo, int64_t hi) override;

  size_t SizeBytes() const override;
  size_t NumVectors() const override;

  /// Section 3.1: c_s = δ vectors plus the mandatory existence AND.
  double EstimatePages(const SelectionShape& shape) const override {
    return (static_cast<double>(shape.delta) + 1.0) * PagesPerVector();
  }

  /// Rows whose column is NULL (reads the dedicated NULL vector).
  Result<BitVector> EvaluateIsNull() override;
  bool SupportsIsNull() const override { return true; }

  /// Average sparsity over all value vectors — the (m-1)/m quantity of
  /// Section 2.1.
  double AverageSparsity() const;

  void ForEachAuditVector(
      const std::function<void(const AuditableVector&)>& fn) const override {
    for (size_t i = 0; i < vectors_.size(); ++i) {
      fn(AuditableVector{"value", i, nullptr, &vectors_[i]});
    }
    if (!null_vector_.empty()) {
      fn(AuditableVector{"null", 0, &null_vector_, nullptr});
    }
  }

 private:
  /// Fetches (and charges) the bitmap vector of one value id.
  BitVector ReadVector(ValueId id);
  /// Evaluates an IN-list given resolved value ids.
  Result<BitVector> EvaluateIds(const std::vector<ValueId>& ids);

  SimpleBitmapIndexOptions options_;
  bool built_ = false;
  size_t rows_indexed_ = 0;
  /// One vector per value, in options_.format.
  std::vector<StoredBitmap> vectors_;
  /// B_NULL (always plain — read whole on every IS NULL).
  BitVector null_vector_;
};

}  // namespace ebi

#endif  // EBI_INDEX_SIMPLE_BITMAP_INDEX_H_
