#include "index/persistence.h"

#include <istream>
#include <ostream>

namespace ebi {

namespace {

constexpr uint32_t kMappingMagic = 0x4542494D;    // "EBIM".
constexpr uint32_t kIndexMagic = 0x45424949;      // "EBII".

void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out.write(buf, 4);
}

void WriteU64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out.write(buf, 8);
}

Result<uint32_t> ReadU32(std::istream& in) {
  char buf[4];
  if (!in.read(buf, 4)) {
    return Status::OutOfRange("truncated stream reading u32");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}

Result<uint64_t> ReadU64(std::istream& in) {
  char buf[8];
  if (!in.read(buf, 8)) {
    return Status::OutOfRange("truncated stream reading u64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}

Status ExpectMagic(std::istream& in, uint32_t magic, const char* what) {
  EBI_ASSIGN_OR_RETURN(const uint32_t got, ReadU32(in));
  if (got != magic) {
    return Status::InvalidArgument(std::string("bad magic for ") + what);
  }
  return Status::OK();
}

}  // namespace

Status SaveMappingTable(std::ostream& out, const MappingTable& mapping) {
  WriteU32(out, kMappingMagic);
  WriteU32(out, static_cast<uint32_t>(mapping.width()));
  WriteU32(out, mapping.void_code().has_value() ? 1 : 0);
  WriteU64(out, mapping.void_code().value_or(0));
  WriteU32(out, mapping.null_code().has_value() ? 1 : 0);
  WriteU64(out, mapping.null_code().value_or(0));
  WriteU64(out, mapping.NumValues());
  for (uint64_t code : mapping.codes()) {
    WriteU64(out, code);
  }
  if (!out) {
    return Status::Internal("stream write failed");
  }
  return Status::OK();
}

Result<MappingTable> LoadMappingTable(std::istream& in) {
  EBI_RETURN_IF_ERROR(ExpectMagic(in, kMappingMagic, "MappingTable"));
  EBI_ASSIGN_OR_RETURN(const uint32_t width, ReadU32(in));
  EBI_ASSIGN_OR_RETURN(const uint32_t has_void, ReadU32(in));
  EBI_ASSIGN_OR_RETURN(const uint64_t void_code, ReadU64(in));
  EBI_ASSIGN_OR_RETURN(const uint32_t has_null, ReadU32(in));
  EBI_ASSIGN_OR_RETURN(const uint64_t null_code, ReadU64(in));
  EBI_ASSIGN_OR_RETURN(const uint64_t num_values, ReadU64(in));
  std::vector<uint64_t> codes;
  codes.reserve(num_values);
  for (uint64_t i = 0; i < num_values; ++i) {
    EBI_ASSIGN_OR_RETURN(const uint64_t code, ReadU64(in));
    codes.push_back(code);
  }
  return MappingTable::Create(
      static_cast<int>(width), codes,
      has_void ? std::optional<uint64_t>(void_code) : std::nullopt,
      has_null ? std::optional<uint64_t>(null_code) : std::nullopt);
}

Status SaveEncodedBitmapIndex(std::ostream& out,
                              const EncodedBitmapIndex& index) {
  WriteU32(out, kIndexMagic);
  EBI_RETURN_IF_ERROR(SaveMappingTable(out, index.mapping()));
  WriteU64(out, index.slices().size());
  for (const BitVector& slice : index.slices()) {
    EBI_RETURN_IF_ERROR(SaveBitVector(out, slice));
  }
  return Status::OK();
}

Result<std::unique_ptr<EncodedBitmapIndex>> LoadEncodedBitmapIndex(
    std::istream& in, const Column* column, const BitVector* existence,
    IoAccountant* io) {
  EBI_RETURN_IF_ERROR(ExpectMagic(in, kIndexMagic, "EncodedBitmapIndex"));
  EBI_ASSIGN_OR_RETURN(MappingTable mapping, LoadMappingTable(in));
  EBI_ASSIGN_OR_RETURN(const uint64_t num_slices, ReadU64(in));
  std::vector<BitVector> slices;
  slices.reserve(num_slices);
  for (uint64_t i = 0; i < num_slices; ++i) {
    EBI_ASSIGN_OR_RETURN(BitVector slice, LoadBitVector(in));
    slices.push_back(std::move(slice));
  }
  auto index =
      std::make_unique<EncodedBitmapIndex>(column, existence, io);
  EBI_RETURN_IF_ERROR(
      index->RestoreFromParts(std::move(mapping), std::move(slices)));
  return index;
}

}  // namespace ebi
