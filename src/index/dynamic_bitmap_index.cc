#include "index/dynamic_bitmap_index.h"

namespace ebi {

DynamicBitmapIndex::DynamicBitmapIndex(const Column* column,
                                       const BitVector* existence,
                                       IoAccountant* io)
    : SecondaryIndex(column, existence, io) {
  EncodedBitmapIndexOptions options;
  options.strategy = EncodingStrategy::kSequential;
  // Dynamic bitmaps use the full continuous integer set with no reserved
  // codewords; existence is handled by the mandatory AND instead.
  options.reserve_void_zero = false;
  impl_ = std::make_unique<EncodedBitmapIndex>(column, existence, io,
                                               std::move(options));
}

}  // namespace ebi
