#ifndef EBI_OBS_METRICS_H_
#define EBI_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metric_names.h"
#include "storage/io_accountant.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ebi {
namespace obs {

/// A monotonically increasing named counter. Thread-safe, lock-free.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A fixed-bucket histogram: `bounds` are ascending inclusive upper
/// bounds, plus one implicit overflow bucket. Tracks sum and count so
/// means survive bucketing.
///
/// Thread-safe and lock-free: every bucket is a relaxed atomic, so
/// serve-path workers observing latencies never serialize on a histogram
/// mutex. Reads (TotalCount/Sum/BucketCounts) snapshot each atomic
/// individually — under concurrent observation the snapshot is
/// per-counter consistent, not cross-counter, which is fine for
/// monitoring (the same contract as IoAccountant::stats()).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t TotalCount() const;
  double Sum() const;
  double Mean() const;
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> BucketCounts() const;
  const std::vector<double>& bounds() const { return bounds_; }

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket the cumulative count crosses q at. Values in the
  /// overflow bucket report the last finite bound (the histogram cannot
  /// see past it). 0 when empty.
  double Quantile(double q) const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> counts_;
  /// Bit pattern of the running double sum (CAS-add keeps Observe
  /// lock-free without requiring std::atomic<double>::fetch_add).
  std::atomic<uint64_t> sum_bits_{0};
  std::atomic<uint64_t> count_{0};
};

/// Process-wide registry of named counters and histograms.
///
/// Lookups hash the name to one of kShards shards and take only that
/// shard's mutex, so concurrent registrations of unrelated metrics never
/// serialize. Returned pointers are stable for the registry's lifetime.
///
/// Handle-caching idiom (the hot-path contract, DESIGN.md §11): a name
/// lookup is a hash + mutex + map probe, far more than the increment
/// itself, so instrument sites must look a metric up ONCE and cache the
/// stable pointer in a function-local static:
///
///   static Counter* shed =
///       MetricsRegistry::Global().GetCounter(kMetricServeShed);
///   shed->Increment();
///
/// After the first call the site costs one relaxed fetch_add and zero
/// name lookups. Never call GetCounter/GetHistogram per event.
class MetricsRegistry {
 public:
  /// The process-wide registry every built-in instrumentation site feeds.
  static MetricsRegistry& Global();

  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the counter `name`.
  Counter* GetCounter(const std::string& name);
  /// Finds or creates the histogram `name`. `bounds` only applies on
  /// first creation; later callers get the existing bucket layout.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = DefaultBounds());

  /// 1, 2, 5, 10, ... 10^6 — a decade ladder wide enough for latencies in
  /// ms, vectors per query, and page errors alike.
  static std::vector<double> DefaultBounds();
  /// Sub-millisecond decade ladder (0.001 ms .. 10^5 ms) for serve-stage
  /// latencies, where queue/pin/plan stages run well under a millisecond.
  static std::vector<double> LatencyBounds();

  /// Snapshot as one JSON object: {"counters": {...}, "histograms": {...}}.
  std::string ToJson() const;
  /// Machine-readable JSON export: ToJson plus derived p50/p99/p999 per
  /// histogram — what the periodic serve-layer flush writes to disk.
  std::string RenderJson() const;
  /// Prometheus text exposition format (one # TYPE line per metric;
  /// histograms render cumulative _bucket{le=...}/_sum/_count series;
  /// dots in names become underscores). Deterministic: metrics sort by
  /// name, so goldens can compare the full document.
  std::string RenderPrometheus() const;
  /// Human-readable one-line-per-metric dump.
  std::string ToString() const;
  /// Zeroes every registered metric (registrations stay). For tests.
  void Reset();

 private:
  /// Shard fan-out: 16 independently locked maps keeps registration (and
  /// cold lookups that bypass the caching idiom) from serializing the
  /// whole process on one mutex.
  static constexpr size_t kShards = 16;
  struct Shard {
    /// Highest-ranked mutex in the table: metric registration may happen
    /// under any subsystem lock (handle-caching statics fire on first
    /// use), so nothing may be acquired after a shard mutex.
    mutable Mutex mu{lock_rank::kMetricsShard, "MetricsRegistry::Shard::mu"};
    std::unordered_map<std::string, std::unique_ptr<Counter>> counters
        EBI_GUARDED_BY(mu);
    std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms
        EBI_GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& name);
  /// Stable name-sorted snapshot of every registered metric (pointers
  /// remain valid; the registry never deletes).
  std::vector<std::pair<std::string, const Counter*>> CountersSorted() const;
  std::vector<std::pair<std::string, const Histogram*>> HistogramsSorted()
      const;

  std::array<Shard, kShards> shards_;
};

/// Feeds one finished query into the global registry: query count, the
/// vectors/pages histograms from `io`, and the latency histogram.
void RecordQuery(const IoStats& io, double latency_ms);

/// Feeds one planner access-path decision: |estimated - actual| pages.
void RecordEstimateError(double estimated_pages, double actual_pages);

}  // namespace obs
}  // namespace ebi

#endif  // EBI_OBS_METRICS_H_
