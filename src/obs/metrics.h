#ifndef EBI_OBS_METRICS_H_
#define EBI_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/io_accountant.h"

namespace ebi {
namespace obs {

// Canonical metric names (documented in DESIGN.md §6). Query-layer code
// feeds these; dashboards and the bench JSON export read them back.
inline constexpr char kMetricQueryCount[] = "ebi.query.count";
inline constexpr char kMetricQueryLatencyMs[] = "ebi.query.latency_ms";
inline constexpr char kMetricQueryVectors[] = "ebi.query.vectors";
inline constexpr char kMetricQueryPages[] = "ebi.query.pages";
inline constexpr char kMetricPlannerEstimateErrorPages[] =
    "ebi.planner.estimate_error_pages";
inline constexpr char kMetricStoreHits[] = "ebi.store.hits";
inline constexpr char kMetricStoreMisses[] = "ebi.store.misses";
inline constexpr char kMetricStoreEvictions[] = "ebi.store.evictions";
inline constexpr char kMetricStoreWritebacks[] = "ebi.store.writebacks";
inline constexpr char kMetricReductionCount[] = "ebi.reduction.count";
inline constexpr char kMetricReductionTermsIn[] = "ebi.reduction.terms_in";
inline constexpr char kMetricReductionTermsOut[] = "ebi.reduction.terms_out";
// Full slice-set rewrites of compressed encoded indexes (decompress-
// modify-recompress cycles). The batched maintenance path exists to keep
// this at one per batch instead of one per appended row.
inline constexpr char kMetricIndexSliceRewrites[] =
    "ebi.index.slice_rewrites";
// Serving layer (src/serve, DESIGN.md §9).
inline constexpr char kMetricServeSubmitted[] = "ebi.serve.submitted";
inline constexpr char kMetricServeShed[] = "ebi.serve.shed";
inline constexpr char kMetricServeDeadlineExceeded[] =
    "ebi.serve.deadline_exceeded";
inline constexpr char kMetricServeLatencyMs[] = "ebi.serve.latency_ms";
inline constexpr char kMetricServeQueueMs[] = "ebi.serve.queue_ms";
inline constexpr char kMetricServeQueueDepth[] = "ebi.serve.queue_depth";
inline constexpr char kMetricServePublishes[] = "ebi.serve.publishes";
inline constexpr char kMetricServeSnapshotsReclaimed[] =
    "ebi.serve.snapshots_reclaimed";

/// A monotonically increasing named counter. Thread-safe, lock-free.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A fixed-bucket histogram: `bounds` are ascending inclusive upper
/// bounds, plus one implicit overflow bucket. Tracks sum and count so
/// means survive bucketing. Thread-safe (one mutex per histogram).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t TotalCount() const;
  double Sum() const;
  double Mean() const;
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> BucketCounts() const;
  const std::vector<double>& bounds() const { return bounds_; }
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  double sum_ = 0.0;
  uint64_t count_ = 0;
};

/// Process-wide registry of named counters and histograms. Lookups are
/// mutex-guarded; returned pointers are stable for the registry's
/// lifetime, so hot paths cache them in function-local statics.
class MetricsRegistry {
 public:
  /// The process-wide registry every built-in instrumentation site feeds.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the counter `name`.
  Counter* GetCounter(const std::string& name);
  /// Finds or creates the histogram `name`. `bounds` only applies on
  /// first creation; later callers get the existing bucket layout.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = DefaultBounds());

  /// 1, 2, 5, 10, ... 10^6 — a decade ladder wide enough for latencies in
  /// ms, vectors per query, and page errors alike.
  static std::vector<double> DefaultBounds();

  /// Snapshot as one JSON object: {"counters": {...}, "histograms": {...}}.
  std::string ToJson() const;
  /// Human-readable one-line-per-metric dump.
  std::string ToString() const;
  /// Zeroes every registered metric (registrations stay). For tests.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Feeds one finished query into the global registry: query count, the
/// vectors/pages histograms from `io`, and the latency histogram.
void RecordQuery(const IoStats& io, double latency_ms);

/// Feeds one planner access-path decision: |estimated - actual| pages.
void RecordEstimateError(double estimated_pages, double actual_pages);

}  // namespace obs
}  // namespace ebi

#endif  // EBI_OBS_METRICS_H_
