#include "obs/trace.h"

#include <cstdio>

#include "obs/json.h"

namespace ebi {
namespace obs {

namespace {

/// Renders a double compactly: integral values without a fraction,
/// everything else with enough digits to be useful in a plan line.
std::string DoubleToString(double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v < 1e15 && v > -1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

thread_local QueryTrace* g_current_trace = nullptr;

}  // namespace

uint64_t AttrValue::AsUint() const {
  switch (kind_) {
    case Kind::kInt:
      return i_ < 0 ? 0 : static_cast<uint64_t>(i_);
    case Kind::kUint:
      return u_;
    case Kind::kDouble:
      return d_ < 0 ? 0 : static_cast<uint64_t>(d_);
    case Kind::kBool:
      return b_ ? 1 : 0;
    case Kind::kString:
      return 0;
  }
  return 0;
}

std::string AttrValue::ToString() const {
  switch (kind_) {
    case Kind::kInt:
      return std::to_string(i_);
    case Kind::kUint:
      return std::to_string(u_);
    case Kind::kDouble:
      return DoubleToString(d_);
    case Kind::kBool:
      return b_ ? "true" : "false";
    case Kind::kString:
      return s_;
  }
  return "";
}

std::string AttrValue::ToJson() const {
  switch (kind_) {
    case Kind::kInt:
      return std::to_string(i_);
    case Kind::kUint:
      return std::to_string(u_);
    case Kind::kDouble:
      return JsonNumber(d_);
    case Kind::kBool:
      return b_ ? "true" : "false";
    case Kind::kString: {
      std::string quoted = "\"";
      quoted += JsonEscape(s_);
      quoted += '"';
      return quoted;
    }
  }
  return "null";
}

const AttrValue* TraceSpan::FindAttr(std::string_view key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

uint64_t TraceSpan::AttrUint(std::string_view key, uint64_t fallback) const {
  const AttrValue* v = FindAttr(key);
  return v == nullptr ? fallback : v->AsUint();
}

namespace {

const TraceSpan* FindSpan(const TraceSpan& span, std::string_view name) {
  if (span.name == name) {
    return &span;
  }
  for (const TraceSpan& child : span.children) {
    if (const TraceSpan* found = FindSpan(child, name)) {
      return found;
    }
  }
  return nullptr;
}

}  // namespace

const TraceSpan* QueryTrace::Find(std::string_view name) const {
  return FindSpan(root_, name);
}

QueryTrace* CurrentTrace() { return g_current_trace; }

TraceScope::TraceScope(QueryTrace* trace)
    : trace_(trace),
      prev_(g_current_trace),
      start_(std::chrono::steady_clock::now()) {
  if (trace_ != nullptr) {
    g_current_trace = trace_;
  }
}

TraceScope::~TraceScope() {
  if (trace_ != nullptr) {
    trace_->root().elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    g_current_trace = prev_;
  }
}

}  // namespace obs
}  // namespace ebi
