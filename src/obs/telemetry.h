#ifndef EBI_OBS_TELEMETRY_H_
#define EBI_OBS_TELEMETRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ebi {
namespace obs {

/// Deterministic probabilistic sampling decision. Stateless apart from a
/// monotone sequence counter: request `seq` is sampled iff
/// splitmix64(seq) falls under rate * 2^64, so for a fixed admission
/// order the sampled set is reproducible (no wall-clock or
/// random_device involved — the repo's determinism contract).
class TraceSampler {
 public:
  /// rate clamps to [0, 1]. 0 never samples (and costs one branch per
  /// Decide), 1 samples everything.
  explicit TraceSampler(double rate);

  /// Draws the next sequence number and decides. Lock-free.
  bool Decide() { return DecideFor(seq_.fetch_add(1, std::memory_order_relaxed)); }
  /// Pure decision for an externally supplied sequence number.
  bool DecideFor(uint64_t seq) const;

  double rate() const { return rate_; }

 private:
  double rate_;
  /// rate mapped onto the splitmix64 output range; UINT64_MAX means
  /// "sample always" (avoids overflow at rate == 1).
  uint64_t threshold_;
  std::atomic<uint64_t> seq_{0};
};

/// One completed, captured query trace (the root span tree plus the
/// capture metadata the ring keys on).
struct CapturedTrace {
  /// Capture order (monotone across the ring's lifetime).
  uint64_t seq = 0;
  /// End-to-end latency the capturer stamped (serve: submit -> complete).
  double elapsed_ms = 0.0;
  /// True when captured by the slow-query path rather than sampling.
  bool slow = false;
  TraceSpan root;
};

/// Lock-light bounded MPMC ring of completed traces: writers claim a slot
/// with one atomic fetch_add and lock only that slot's mutex to move the
/// payload in, so concurrent captures on different slots never contend
/// and capture cost stays O(spans moved), not O(ring). The ring keeps the
/// most recent `capacity` captures; older ones are overwritten.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Captures one completed trace (moves it into a slot).
  void Push(CapturedTrace trace);

  /// Copies out the live captures, oldest first (by capture seq).
  std::vector<CapturedTrace> Snapshot() const;

  /// Total traces ever pushed (>= live size; the difference is what the
  /// ring overwrote).
  uint64_t TotalCaptured() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return slots_.size(); }

  /// The live captures as one JSON array of span trees (the dumpable
  /// form the serve layer exposes).
  std::string DumpJson() const;

 private:
  struct Slot {
    /// Leaf rank: slot mutexes guard only their own payload and never
    /// acquire anything further.
    mutable Mutex mu{lock_rank::kTelemetrySlot, "TraceRing::Slot::mu"};
    bool full EBI_GUARDED_BY(mu) = false;
    CapturedTrace trace EBI_GUARDED_BY(mu);
  };

  std::vector<Slot> slots_;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> pushed_{0};
};

/// One slow-query log entry. Built from data the serve path already has
/// in hand (stage timings, predicate summary), so slow queries are
/// captured unconditionally — no trace needs to have been recording.
struct SlowQueryEntry {
  uint64_t seq = 0;
  uint64_t epoch = 0;
  /// Predicate summary, e.g. "a = 3 AND b IN (1, 2)".
  std::string query;
  size_t rows = 0;
  double queue_ms = 0.0;
  double pin_ms = 0.0;
  double plan_ms = 0.0;
  double execute_ms = 0.0;
  double total_ms = 0.0;
  /// The span tree, when the request also happened to be traced
  /// (root.name empty otherwise).
  TraceSpan root;
};

/// Bounded ring of the most recent slow queries (same slot-locking
/// discipline as TraceRing). Dumpable as JSON.
class SlowQueryLog {
 public:
  SlowQueryLog(size_t capacity, double threshold_ms);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  double threshold_ms() const { return threshold_ms_; }
  /// True when `total_ms` crosses the slow threshold.
  bool IsSlow(double total_ms) const { return total_ms >= threshold_ms_; }

  void Push(SlowQueryEntry entry);

  std::vector<SlowQueryEntry> Snapshot() const;
  uint64_t TotalCaptured() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return slots_.size(); }

  /// JSON array of entries, oldest first.
  std::string DumpJson() const;

 private:
  struct Slot {
    mutable Mutex mu{lock_rank::kTelemetrySlot, "SlowQueryLog::Slot::mu"};
    bool full EBI_GUARDED_BY(mu) = false;
    SlowQueryEntry entry EBI_GUARDED_BY(mu);
  };

  double threshold_ms_;
  std::vector<Slot> slots_;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> pushed_{0};
};

/// Renders one span tree as JSON (name/elapsed_ms/attrs/children) — the
/// shape ExplainJson uses for whole traces, reusable for captured roots.
std::string SpanJson(const TraceSpan& span);

}  // namespace obs
}  // namespace ebi

#endif  // EBI_OBS_TELEMETRY_H_
