#ifndef EBI_OBS_TRACE_H_
#define EBI_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "storage/io_accountant.h"

namespace ebi {
namespace obs {

/// A typed span attribute value. Spans carry the quantities the paper's
/// cost analysis talks about (δ, minterms, vectors read, bytes, cache
/// hits) as named attributes rather than free-form strings, so EXPLAIN
/// can render them and tests can assert on them.
class AttrValue {
 public:
  enum class Kind : uint8_t { kInt, kUint, kDouble, kBool, kString };

  AttrValue() = default;
  static AttrValue Int(int64_t v) {
    AttrValue a;
    a.kind_ = Kind::kInt;
    a.i_ = v;
    return a;
  }
  static AttrValue Uint(uint64_t v) {
    AttrValue a;
    a.kind_ = Kind::kUint;
    a.u_ = v;
    return a;
  }
  static AttrValue Double(double v) {
    AttrValue a;
    a.kind_ = Kind::kDouble;
    a.d_ = v;
    return a;
  }
  static AttrValue Bool(bool v) {
    AttrValue a;
    a.kind_ = Kind::kBool;
    a.b_ = v;
    return a;
  }
  static AttrValue Str(std::string v) {
    AttrValue a;
    a.kind_ = Kind::kString;
    a.s_ = std::move(v);
    return a;
  }

  Kind kind() const { return kind_; }
  int64_t int_value() const { return i_; }
  uint64_t uint_value() const { return u_; }
  double double_value() const { return d_; }
  bool bool_value() const { return b_; }
  const std::string& string_value() const { return s_; }

  /// The value as a uint64 whatever the numeric kind (0 for strings);
  /// convenience for tests and counters.
  uint64_t AsUint() const;

  /// Human-readable rendering (EXPLAIN text form).
  std::string ToString() const;
  /// JSON literal rendering (strings quoted and escaped).
  std::string ToJson() const;

 private:
  Kind kind_ = Kind::kInt;
  int64_t i_ = 0;
  uint64_t u_ = 0;
  double d_ = 0.0;
  bool b_ = false;
  std::string s_;
};

/// One timed, attributed node of a query trace. Spans nest: a
/// planner.select span holds one predicate span per conjunct, which holds
/// the plan.choose and index.eval spans, and so on down to store.get.
struct TraceSpan {
  std::string name;
  /// Wall-clock duration, filled when the span closes.
  double elapsed_ms = 0.0;
  std::vector<std::pair<std::string, AttrValue>> attrs;
  std::vector<TraceSpan> children;

  /// First attribute named `key` on this span (nullptr if absent).
  const AttrValue* FindAttr(std::string_view key) const;
  /// Numeric attribute as uint64, or `fallback` when absent.
  uint64_t AttrUint(std::string_view key, uint64_t fallback = 0) const;
};

/// A tree of spans for one query, rooted at an implicit "query" span.
/// Build one, install it with a TraceScope, run the query, then render it
/// with ExplainText()/ExplainJson() (obs/explain.h).
///
/// Not thread-safe and not shared across threads: the trace is installed
/// per-thread, and spans opened on other threads are not recorded.
class QueryTrace {
 public:
  QueryTrace() {
    root_.name = "query";
    stack_.push_back(&root_);
  }
  // Open-span bookkeeping stores pointers into the tree; moving the trace
  // while spans are open would dangle them.
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  const TraceSpan& root() const { return root_; }
  TraceSpan& root() { return root_; }

  /// First span named `name`, depth-first from the root (nullptr if none).
  const TraceSpan* Find(std::string_view name) const;

  /// Opens a child under the innermost open span. Used by ScopedSpan.
  TraceSpan* OpenSpan(std::string_view name) {
    TraceSpan* top = stack_.back();
    top->children.emplace_back();
    TraceSpan* span = &top->children.back();
    span->name = name;
    stack_.push_back(span);
    return span;
  }

  /// Closes the innermost open span (never the root).
  void CloseSpan(double elapsed_ms) {
    if (stack_.size() > 1) {
      stack_.back()->elapsed_ms = elapsed_ms;
      stack_.pop_back();
    }
  }

 private:
  TraceSpan root_;
  /// Open spans, outermost first; stack_[0] is always &root_. Pointers
  /// stay valid because children are only appended to the innermost open
  /// span, which never reallocates an ancestor's children vector.
  std::vector<TraceSpan*> stack_;
};

/// The calling thread's active trace sink, or nullptr when none is
/// installed — the null-sink fast path every instrumentation site checks
/// first (one thread-local load and branch, no allocation, no timing).
QueryTrace* CurrentTrace();

/// RAII installer: makes `trace` the thread's active sink for the scope's
/// lifetime, restoring the previous sink (scopes nest) and stamping the
/// root span's elapsed time on exit. A nullptr trace is a no-op scope.
class TraceScope {
 public:
  explicit TraceScope(QueryTrace* trace);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  QueryTrace* trace_;
  QueryTrace* prev_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII span: opens a child of the innermost open span of the thread's
/// active trace, closes it (with wall-clock elapsed) on destruction. When
/// no trace is installed every member is a no-op.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) : trace_(CurrentTrace()) {
    if (trace_ != nullptr) {
      span_ = trace_->OpenSpan(name);
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) {
      trace_->CloseSpan(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start_)
                            .count());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when a trace is recording; use to skip attribute computation
  /// that is itself costly (string formatting etc.).
  bool active() const { return trace_ != nullptr; }

  /// Adds one typed attribute. Accepts bools, any integral or floating
  /// type, and string-ish values; no-op when inactive.
  template <typename T>
  void Attr(std::string_view key, T v) {
    if (trace_ == nullptr) {
      return;
    }
    if constexpr (std::is_same_v<T, bool>) {
      span_->attrs.emplace_back(key, AttrValue::Bool(v));
    } else if constexpr (std::is_floating_point_v<T>) {
      span_->attrs.emplace_back(key,
                                AttrValue::Double(static_cast<double>(v)));
    } else if constexpr (std::is_integral_v<T> && std::is_signed_v<T>) {
      span_->attrs.emplace_back(key,
                                AttrValue::Int(static_cast<int64_t>(v)));
    } else if constexpr (std::is_integral_v<T>) {
      span_->attrs.emplace_back(key,
                                AttrValue::Uint(static_cast<uint64_t>(v)));
    } else {
      span_->attrs.emplace_back(key, AttrValue::Str(std::string(v)));
    }
  }

  /// Appends an already-built span subtree as a child of this span —
  /// how spans recorded on worker threads (each into its own per-segment
  /// QueryTrace) are re-parented into the caller's trace after a
  /// parallel fan-out joins. Only call while this span is the innermost
  /// open span of its trace: appending to an outer span could reallocate
  /// the children vector an open descendant pointer lives in. No-op when
  /// inactive.
  void AddChild(TraceSpan child) {
    if (trace_ != nullptr) {
      span_->children.push_back(std::move(child));
    }
  }

  /// Adds the four IoStats counters as vectors/pages/bytes(/nodes when
  /// nonzero) attributes — the per-span I/O delta.
  void AttrIo(const IoStats& io) {
    if (trace_ == nullptr) {
      return;
    }
    Attr("vectors", io.vectors_read);
    Attr("pages", io.pages_read);
    Attr("bytes", io.bytes_read);
    if (io.nodes_read != 0) {
      Attr("nodes", io.nodes_read);
    }
  }

 private:
  QueryTrace* trace_;
  TraceSpan* span_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace ebi

#endif  // EBI_OBS_TRACE_H_
