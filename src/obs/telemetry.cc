#include "obs/telemetry.h"

#include <algorithm>
#include <utility>

#include "obs/explain.h"
#include "obs/json.h"

namespace ebi {
namespace obs {
namespace {

/// splitmix64: a high-quality 64-bit mixer; turns the monotone sequence
/// counter into a uniform draw without any mutable RNG state.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

TraceSampler::TraceSampler(double rate)
    : rate_(std::min(1.0, std::max(0.0, rate))) {
  if (rate_ >= 1.0) {
    threshold_ = UINT64_MAX;
  } else {
    threshold_ = static_cast<uint64_t>(
        rate_ * static_cast<double>(UINT64_MAX));
  }
}

bool TraceSampler::DecideFor(uint64_t seq) const {
  if (rate_ <= 0.0) {
    return false;
  }
  if (threshold_ == UINT64_MAX) {
    return true;
  }
  return SplitMix64(seq) < threshold_;
}

TraceRing::TraceRing(size_t capacity)
    : slots_(std::max<size_t>(1, capacity)) {}

void TraceRing::Push(CapturedTrace trace) {
  trace.seq = pushed_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t at = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[at % slots_.size()];
  const MutexLock lock(slot.mu);
  slot.trace = std::move(trace);
  slot.full = true;
}

std::vector<CapturedTrace> TraceRing::Snapshot() const {
  std::vector<CapturedTrace> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const MutexLock lock(slot.mu);
    if (slot.full) {
      out.push_back(slot.trace);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CapturedTrace& a, const CapturedTrace& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::string TraceRing::DumpJson() const {
  const std::vector<CapturedTrace> captures = Snapshot();
  JsonWriter w;
  w.BeginArray();
  for (const CapturedTrace& capture : captures) {
    w.BeginObject();
    w.Key("seq").Uint(capture.seq);
    w.Key("elapsed_ms").Number(capture.elapsed_ms);
    w.Key("slow").Bool(capture.slow);
    w.Key("trace").Raw(SpanJson(capture.root));
    w.EndObject();
  }
  w.EndArray();
  return w.str();
}

SlowQueryLog::SlowQueryLog(size_t capacity, double threshold_ms)
    : threshold_ms_(threshold_ms), slots_(std::max<size_t>(1, capacity)) {}

void SlowQueryLog::Push(SlowQueryEntry entry) {
  entry.seq = pushed_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t at = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[at % slots_.size()];
  const MutexLock lock(slot.mu);
  slot.entry = std::move(entry);
  slot.full = true;
}

std::vector<SlowQueryEntry> SlowQueryLog::Snapshot() const {
  std::vector<SlowQueryEntry> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const MutexLock lock(slot.mu);
    if (slot.full) {
      out.push_back(slot.entry);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::string SlowQueryLog::DumpJson() const {
  const std::vector<SlowQueryEntry> entries = Snapshot();
  JsonWriter w;
  w.BeginArray();
  for (const SlowQueryEntry& entry : entries) {
    w.BeginObject();
    w.Key("seq").Uint(entry.seq);
    w.Key("epoch").Uint(entry.epoch);
    w.Key("query").String(entry.query);
    w.Key("rows").Uint(entry.rows);
    w.Key("queue_ms").Number(entry.queue_ms);
    w.Key("pin_ms").Number(entry.pin_ms);
    w.Key("plan_ms").Number(entry.plan_ms);
    w.Key("execute_ms").Number(entry.execute_ms);
    w.Key("total_ms").Number(entry.total_ms);
    if (!entry.root.name.empty()) {
      w.Key("trace").Raw(SpanJson(entry.root));
    }
    w.EndObject();
  }
  w.EndArray();
  return w.str();
}

std::string SpanJson(const TraceSpan& span) {
  ExplainOptions options;
  options.include_timing = true;
  return ExplainSpanJson(span, options);
}

}  // namespace obs
}  // namespace ebi
