#ifndef EBI_OBS_METRIC_NAMES_H_
#define EBI_OBS_METRIC_NAMES_H_

// The single home of every metric name in the process (DESIGN.md §11).
//
// Metric names are constexpr constants, never inline string literals:
// a typo'd literal at one call site would silently split a metric into
// two time series that dashboards and the bench gates then miss.
// ebi-lint's `metric-name-literal` rule rejects any quoted "ebi.*"
// string outside this header, so adding a metric means adding it here.

namespace ebi {
namespace obs {

// --- Query layer (src/query, fed by RecordQuery/RecordEstimateError).
inline constexpr char kMetricQueryCount[] = "ebi.query.count";
inline constexpr char kMetricQueryLatencyMs[] = "ebi.query.latency_ms";
inline constexpr char kMetricQueryVectors[] = "ebi.query.vectors";
inline constexpr char kMetricQueryPages[] = "ebi.query.pages";
inline constexpr char kMetricPlannerEstimateErrorPages[] =
    "ebi.planner.estimate_error_pages";

// --- Storage engine buffer pool (src/storage/engine/buffer_pool.cc).
// Replaces the old per-vector ebi.store.* series: the pool caches pages,
// so hits/misses/evictions are page-granular (DESIGN.md §12).
inline constexpr char kMetricBufferPoolHits[] = "ebi.buffer_pool.hits";
inline constexpr char kMetricBufferPoolMisses[] = "ebi.buffer_pool.misses";
inline constexpr char kMetricBufferPoolEvictions[] =
    "ebi.buffer_pool.evictions";
inline constexpr char kMetricBufferPoolWritebacks[] =
    "ebi.buffer_pool.writebacks";
inline constexpr char kMetricBufferPoolPrefetches[] =
    "ebi.buffer_pool.prefetches";

// --- Write-ahead log (src/storage/engine/wal.cc, DESIGN.md §12).
inline constexpr char kMetricWalAppends[] = "ebi.wal.appends";
inline constexpr char kMetricWalAppendBytes[] = "ebi.wal.append_bytes";
inline constexpr char kMetricWalSyncs[] = "ebi.wal.syncs";
inline constexpr char kMetricWalReplayedRecords[] =
    "ebi.wal.replayed_records";
inline constexpr char kMetricWalTornTails[] = "ebi.wal.torn_tails";

// --- Boolean reduction (src/boolean/reduction.cc).
inline constexpr char kMetricReductionCount[] = "ebi.reduction.count";
inline constexpr char kMetricReductionTermsIn[] = "ebi.reduction.terms_in";
inline constexpr char kMetricReductionTermsOut[] = "ebi.reduction.terms_out";

// Full slice-set rewrites of compressed encoded indexes (decompress-
// modify-recompress cycles). The batched maintenance path exists to keep
// this at one per batch instead of one per appended row.
inline constexpr char kMetricIndexSliceRewrites[] =
    "ebi.index.slice_rewrites";

// --- Serving layer (src/serve, DESIGN.md §9/§11).
inline constexpr char kMetricServeSubmitted[] = "ebi.serve.submitted";
inline constexpr char kMetricServeShed[] = "ebi.serve.shed";
inline constexpr char kMetricServeDeadlineExceeded[] =
    "ebi.serve.deadline_exceeded";
inline constexpr char kMetricServeDrainRejected[] =
    "ebi.serve.drain_rejected";
inline constexpr char kMetricServeLatencyMs[] = "ebi.serve.latency_ms";
inline constexpr char kMetricServeQueueMs[] = "ebi.serve.queue_ms";
inline constexpr char kMetricServeQueueDepth[] = "ebi.serve.queue_depth";
inline constexpr char kMetricServePublishes[] = "ebi.serve.publishes";
inline constexpr char kMetricServeSnapshotsReclaimed[] =
    "ebi.serve.snapshots_reclaimed";

// Per-stage latency attribution of one served request (DESIGN.md §11):
// queue wait is kMetricServeQueueMs above; then snapshot pin, executor
// construction ("plan"), bitmap evaluation ("execute"), and the
// end-to-end figure kMetricServeLatencyMs.
inline constexpr char kMetricServeStagePinMs[] = "ebi.serve.stage.pin_ms";
inline constexpr char kMetricServeStagePlanMs[] = "ebi.serve.stage.plan_ms";
inline constexpr char kMetricServeStageExecuteMs[] =
    "ebi.serve.stage.execute_ms";

// --- Sharded serve tier (src/serve/cluster, DESIGN.md §14). One cluster
// query fans out to its owning shards; hedges are duplicate requests
// issued to a replica after the p99-derived delay, "won" when the
// replica answers first. Partial results carry a coverage mask instead
// of failing when a shard misses its deadline budget or sheds.
inline constexpr char kMetricClusterQueries[] = "ebi.cluster.queries";
inline constexpr char kMetricClusterFanout[] = "ebi.cluster.fanout";
inline constexpr char kMetricClusterHedgeIssued[] =
    "ebi.cluster.hedge_issued";
inline constexpr char kMetricClusterHedgeWon[] = "ebi.cluster.hedge_won";
inline constexpr char kMetricClusterPartialResults[] =
    "ebi.cluster.partial_results";
inline constexpr char kMetricClusterShardDeadlineMiss[] =
    "ebi.cluster.shard_deadline_miss";
/// Primary-shard response latency; the source of the hedging delay
/// (ClusterQueryService::CurrentHedgeDelayMs derives its p99 from it).
inline constexpr char kMetricClusterShardLatencyMs[] =
    "ebi.cluster.shard_latency_ms";

// --- Production telemetry (src/obs/telemetry.h, DESIGN.md §11).
inline constexpr char kMetricTraceSampled[] = "ebi.telemetry.traces_sampled";
inline constexpr char kMetricSlowQueries[] = "ebi.telemetry.slow_queries";
inline constexpr char kMetricWorkloadRecords[] =
    "ebi.telemetry.workload_records";
inline constexpr char kMetricWorkloadRotations[] =
    "ebi.telemetry.workload_rotations";
inline constexpr char kMetricMetricsExports[] =
    "ebi.telemetry.metrics_exports";

}  // namespace obs
}  // namespace ebi

#endif  // EBI_OBS_METRIC_NAMES_H_
