#include "obs/explain.h"

#include <cstdio>

#include "obs/json.h"

namespace ebi {
namespace obs {

namespace {

/// Text form of one attribute value: strings containing spaces, '=' or
/// quotes are double-quoted so lines stay machine-splittable on spaces.
std::string AttrText(const AttrValue& value) {
  std::string text = value.ToString();
  if (value.kind() == AttrValue::Kind::kString &&
      text.find_first_of(" =\"") != std::string::npos) {
    std::string quoted = "\"";
    for (const char c : text) {
      if (c == '"' || c == '\\') {
        quoted += '\\';
      }
      quoted += c;
    }
    quoted += '"';
    return quoted;
  }
  return text;
}

void RenderText(const TraceSpan& span, const ExplainOptions& options,
                int depth, std::string* out) {
  out->append(static_cast<size_t>(depth * options.indent), ' ');
  *out += span.name;
  for (const auto& [key, value] : span.attrs) {
    *out += ' ';
    *out += key;
    *out += '=';
    *out += AttrText(value);
  }
  if (options.include_timing) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), " elapsed_ms=%.3f", span.elapsed_ms);
    *out += buf;
  }
  *out += '\n';
  for (const TraceSpan& child : span.children) {
    RenderText(child, options, depth + 1, out);
  }
}

void RenderJson(const TraceSpan& span, const ExplainOptions& options,
                JsonWriter* w) {
  w->BeginObject();
  w->Key("name").String(span.name);
  if (options.include_timing) {
    w->Key("elapsed_ms").Number(span.elapsed_ms);
  }
  w->Key("attrs").BeginObject();
  for (const auto& [key, value] : span.attrs) {
    w->Key(key).Raw(value.ToJson());
  }
  w->EndObject();
  w->Key("children").BeginArray();
  for (const TraceSpan& child : span.children) {
    RenderJson(child, options, w);
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace

std::string ExplainText(const QueryTrace& trace,
                        const ExplainOptions& options) {
  std::string out;
  RenderText(trace.root(), options, 0, &out);
  return out;
}

std::string ExplainJson(const QueryTrace& trace,
                        const ExplainOptions& options) {
  JsonWriter w;
  RenderJson(trace.root(), options, &w);
  return w.str();
}

std::string ExplainSpanJson(const TraceSpan& span,
                            const ExplainOptions& options) {
  JsonWriter w;
  RenderJson(span, options, &w);
  return w.str();
}

}  // namespace obs
}  // namespace ebi
