#include "obs/workload_recorder.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <utility>

#include "obs/json.h"

namespace ebi {
namespace obs {
namespace {

/// uint64 fingerprints go into the log as hex strings: JSON numbers are
/// doubles on most readers, which silently mangles values above 2^53.
std::string HexU64(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for the workload log.
//
// The repo has a JSON *writer* (obs/json.h) but no parser; rather than
// grow a dependency, this is a small recursive-descent parser covering
// exactly what JSONL records need: objects, arrays, strings with
// escapes, numbers, bools, null. It builds a tiny DOM (JsonValue) that
// ParseWorkloadRecord then walks. Any syntax error fails the whole
// line, which the log reader treats as "skip and count".
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    EBI_RETURN_IF_ERROR(ParseValue(&value));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        return ParseLiteral("true", out, /*is_bool=*/true, /*value=*/true);
      case 'f':
        return ParseLiteral("false", out, /*is_bool=*/true, /*value=*/false);
      case 'n':
        return ParseLiteral("null", out, /*is_bool=*/false, /*value=*/false);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* word, JsonValue* out, bool is_bool,
                      bool value) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return Status::InvalidArgument("bad JSON literal");
    }
    pos_ += len;
    out->kind = is_bool ? JsonValue::Kind::kBool : JsonValue::Kind::kNull;
    out->bool_value = value;
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("bad JSON number");
    }
    errno = 0;
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0' || errno == ERANGE) {
      return Status::InvalidArgument("bad JSON number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    // Caller saw the opening quote.
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return Status::OK();
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("bad \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::InvalidArgument("bad \\u escape");
            }
          }
          // The log writer only emits \u00XX control escapes; decode the
          // BMP code point as UTF-8 and accept anything else verbatim.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xc0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            *out += static_cast<char>(0xe0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            *out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return Status::InvalidArgument("bad JSON escape");
      }
    }
    return Status::InvalidArgument("unterminated JSON string");
  }

  Status ParseArray(JsonValue* out) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      JsonValue element;
      EBI_RETURN_IF_ERROR(ParseValue(&element));
      out->array.push_back(std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated JSON array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Status::InvalidArgument("bad JSON array");
    }
  }

  Status ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status::InvalidArgument("bad JSON object key");
      }
      std::string key;
      EBI_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Status::InvalidArgument("missing ':' in JSON object");
      }
      ++pos_;
      JsonValue value;
      EBI_RETURN_IF_ERROR(ParseValue(&value));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated JSON object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Status::InvalidArgument("bad JSON object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

double NumberOr(const JsonValue* v, double fallback) {
  return (v != nullptr && v->kind == JsonValue::Kind::kNumber) ? v->number
                                                               : fallback;
}

uint64_t UintOr(const JsonValue* v, uint64_t fallback) {
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber || v->number < 0) {
    return fallback;
  }
  return static_cast<uint64_t>(v->number);
}

std::string StringOr(const JsonValue* v, std::string fallback) {
  return (v != nullptr && v->kind == JsonValue::Kind::kString)
             ? v->string_value
             : std::move(fallback);
}

Result<uint64_t> ParseHexU64(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) {
    return Status::InvalidArgument("bad fingerprint hex");
  }
  uint64_t value = 0;
  for (const char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return Status::InvalidArgument("bad fingerprint hex");
    }
  }
  return value;
}

/// `path` -> `path.1` -> ... shifted file name for rotation generation n.
std::string GenerationPath(const std::string& path, size_t n) {
  if (n == 0) {
    return path;
  }
  return path + "." + std::to_string(n);
}

}  // namespace

std::string WorkloadRecordJson(const WorkloadRecord& record) {
  JsonWriter w;
  w.BeginObject();
  w.Key("v").Int(record.version);
  w.Key("seq").Uint(record.seq);
  w.Key("ts").Number(record.ts_ms);
  w.Key("epoch").Uint(record.epoch);
  w.Key("rows").Uint(record.rows_selected);
  w.Key("total").Uint(record.rows_total);
  w.Key("sel").Number(record.selectivity);
  w.Key("queue").Number(record.queue_ms);
  w.Key("pin").Number(record.pin_ms);
  w.Key("plan").Number(record.plan_ms);
  w.Key("exec").Number(record.execute_ms);
  w.Key("ms").Number(record.total_ms);
  w.Key("vec").Uint(record.vectors);
  w.Key("pages").Uint(record.pages);
  w.Key("bytes").Uint(record.bytes);
  w.Key("kernel").String(record.kernel);
  w.Key("preds").BeginArray();
  for (const WorkloadPredicate& pred : record.predicates) {
    w.BeginObject();
    w.Key("col").String(pred.column);
    w.Key("op").String(pred.op);
    w.Key("fp").String(HexU64(pred.fingerprint));
    w.Key("rows").Uint(pred.rows);
    if (!pred.literals.empty()) {
      w.Key("lits").BeginArray();
      for (const int64_t lit : pred.literals) {
        w.Int(lit);
      }
      w.EndArray();
    }
    if (pred.has_range) {
      w.Key("lo").Int(pred.lo);
      w.Key("hi").Int(pred.hi);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Result<WorkloadRecord> ParseWorkloadRecord(const std::string& line) {
  JsonParser parser(line);
  EBI_ASSIGN_OR_RETURN(const JsonValue root, parser.Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("workload record is not a JSON object");
  }
  const JsonValue* v = root.Find("v");
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument("workload record missing version");
  }
  const int version = static_cast<int>(v->number);
  if (version != WorkloadRecorder::kSchemaVersion) {
    return Status::InvalidArgument("unknown workload log version " +
                                   std::to_string(version));
  }
  WorkloadRecord record;
  record.version = version;
  record.seq = UintOr(root.Find("seq"), 0);
  record.ts_ms = NumberOr(root.Find("ts"), 0.0);
  record.epoch = UintOr(root.Find("epoch"), 0);
  record.rows_selected = UintOr(root.Find("rows"), 0);
  record.rows_total = UintOr(root.Find("total"), 0);
  record.selectivity = NumberOr(root.Find("sel"), 0.0);
  record.queue_ms = NumberOr(root.Find("queue"), 0.0);
  record.pin_ms = NumberOr(root.Find("pin"), 0.0);
  record.plan_ms = NumberOr(root.Find("plan"), 0.0);
  record.execute_ms = NumberOr(root.Find("exec"), 0.0);
  record.total_ms = NumberOr(root.Find("ms"), 0.0);
  record.vectors = UintOr(root.Find("vec"), 0);
  record.pages = UintOr(root.Find("pages"), 0);
  record.bytes = UintOr(root.Find("bytes"), 0);
  record.kernel = StringOr(root.Find("kernel"), "");
  const JsonValue* preds = root.Find("preds");
  if (preds != nullptr) {
    if (preds->kind != JsonValue::Kind::kArray) {
      return Status::InvalidArgument("workload record preds is not an array");
    }
    for (const JsonValue& p : preds->array) {
      if (p.kind != JsonValue::Kind::kObject) {
        return Status::InvalidArgument("workload predicate is not an object");
      }
      WorkloadPredicate pred;
      pred.column = StringOr(p.Find("col"), "");
      pred.op = StringOr(p.Find("op"), "");
      EBI_ASSIGN_OR_RETURN(pred.fingerprint,
                           ParseHexU64(StringOr(p.Find("fp"), "0")));
      pred.rows = UintOr(p.Find("rows"), 0);
      const JsonValue* lits = p.Find("lits");
      if (lits != nullptr && lits->kind == JsonValue::Kind::kArray) {
        for (const JsonValue& lit : lits->array) {
          if (lit.kind == JsonValue::Kind::kNumber) {
            pred.literals.push_back(static_cast<int64_t>(lit.number));
          }
        }
      }
      const JsonValue* lo = p.Find("lo");
      const JsonValue* hi = p.Find("hi");
      if (lo != nullptr && hi != nullptr) {
        pred.has_range = true;
        pred.lo = static_cast<int64_t>(NumberOr(lo, 0.0));
        pred.hi = static_cast<int64_t>(NumberOr(hi, 0.0));
      }
      record.predicates.push_back(std::move(pred));
    }
  }
  return record;
}

WorkloadRecorder::WorkloadRecorder(std::string path,
                                   const WorkloadRecorderOptions& options)
    : path_(std::move(path)),
      options_(options),
      start_(std::chrono::steady_clock::now()) {}

WorkloadRecorder::~WorkloadRecorder() {
  const MutexLock lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WorkloadRecorder::EnsureOpenLocked() {
  if (file_ != nullptr) {
    return Status::OK();
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot open workload log " + path_);
  }
  // Appending to a pre-existing file: count its bytes toward rotation.
  if (std::fseek(file_, 0, SEEK_END) == 0) {
    const long at = std::ftell(file_);
    file_bytes_ = at > 0 ? static_cast<size_t>(at) : 0;
  }
  return Status::OK();
}

Status WorkloadRecorder::RotateLocked() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  // Shift path.(n-1) -> path.n from the oldest down, dropping the one
  // past max_files; then the live file becomes path.1.
  const size_t generations = std::max<size_t>(2, options_.max_files);
  std::remove(GenerationPath(path_, generations - 1).c_str());
  for (size_t n = generations - 1; n >= 1; --n) {
    std::rename(GenerationPath(path_, n - 1).c_str(),
                GenerationPath(path_, n).c_str());
  }
  rotations_ += 1;
  file_bytes_ = 0;
  return EnsureOpenLocked();
}

Status WorkloadRecorder::WriteLineLocked(const std::string& line) {
  EBI_RETURN_IF_ERROR(EnsureOpenLocked());
  if (options_.rotate_bytes > 0 && file_bytes_ > 0 &&
      file_bytes_ + line.size() > options_.rotate_bytes) {
    EBI_RETURN_IF_ERROR(RotateLocked());
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return Status::Internal("short write to workload log " + path_);
  }
  file_bytes_ += line.size();
  return Status::OK();
}

Status WorkloadRecorder::Append(WorkloadRecord record) {
  record.version = kSchemaVersion;
  // Claim a sequence number under the lock, then serialize outside it
  // so concurrent writers only contend on the fwrite, not on building
  // the JSON line.
  {
    const MutexLock lock(mu_);
    record.seq = records_;
    records_ += 1;
  }
  record.ts_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
  for (WorkloadPredicate& pred : record.predicates) {
    if (pred.literals.size() > options_.literal_cap) {
      pred.literals.resize(options_.literal_cap);
    }
  }
  std::string line = WorkloadRecordJson(record);
  line += '\n';

  // Turnstile: a writer that serialized faster than a predecessor waits
  // for its turn, so lines land in seq order and readers never see an
  // inversion. The wait only triggers under a genuine photo finish; the
  // turn must always advance, even when the write fails, or every later
  // writer would deadlock.
  MutexLock lock(mu_);
  while (next_write_ != record.seq) {
    turn_cv_.Wait(lock);
  }
  const Status status = WriteLineLocked(line);
  next_write_ += 1;
  turn_cv_.NotifyAll();
  return status;
}

Status WorkloadRecorder::Flush() {
  const MutexLock lock(mu_);
  if (file_ != nullptr && std::fflush(file_) != 0) {
    return Status::Internal("cannot flush workload log " + path_);
  }
  return Status::OK();
}

uint64_t WorkloadRecorder::RecordsWritten() const {
  const MutexLock lock(mu_);
  return records_;
}

uint64_t WorkloadRecorder::Rotations() const {
  const MutexLock lock(mu_);
  return rotations_;
}

Result<WorkloadLogRead> ReadWorkloadLog(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("workload log " + path + " not found");
  }
  WorkloadLogRead out;
  std::string line;
  char buf[4096];
  bool saw_newline = true;
  auto consume = [&out](const std::string& text, bool complete) {
    if (text.empty()) {
      return;
    }
    if (!complete) {
      // Truncated tail (crash mid-write): count, don't parse.
      out.skipped += 1;
      return;
    }
    Result<WorkloadRecord> record = ParseWorkloadRecord(text);
    if (record.ok()) {
      out.records.push_back(std::move(record).value());
    } else {
      out.skipped += 1;
    }
  };
  while (std::fgets(buf, sizeof(buf), file) != nullptr) {
    const size_t len = std::strlen(buf);
    line.append(buf, len);
    saw_newline = len > 0 && buf[len - 1] == '\n';
    if (saw_newline) {
      line.pop_back();
      consume(line, /*complete=*/true);
      line.clear();
    }
  }
  std::fclose(file);
  // A final line without a newline is a truncation artifact.
  consume(line, /*complete=*/false);
  return out;
}

Result<WorkloadLogRead> ReadWorkloadLogSet(const std::string& path,
                                           size_t max_files) {
  WorkloadLogRead out;
  const size_t generations = std::max<size_t>(1, max_files);
  for (size_t n = generations; n-- > 0;) {
    Result<WorkloadLogRead> one = ReadWorkloadLog(GenerationPath(path, n));
    if (!one.ok()) {
      continue;  // Missing generation: fine.
    }
    WorkloadLogRead& got = one.value();
    out.skipped += got.skipped;
    std::move(got.records.begin(), got.records.end(),
              std::back_inserter(out.records));
  }
  return out;
}

}  // namespace obs
}  // namespace ebi
