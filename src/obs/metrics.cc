#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/json.h"

namespace ebi {
namespace obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  size_t b = 0;
  while (b < bounds_.size() && value > bounds_[b]) {
    ++b;
  }
  ++counts_[b];
  sum_ += value;
  ++count_;
}

uint64_t Histogram::TotalCount() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::Sum() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::Mean() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

void Histogram::Reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  std::fill(counts_.begin(), counts_.end(), 0);
  sum_ = 0.0;
  count_ = 0;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

std::vector<double> MetricsRegistry::DefaultBounds() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

std::string MetricsRegistry::ToJson() const {
  const std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Key(name).Uint(counter->Value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    w.Key(name).BeginObject();
    w.Key("count").Uint(histogram->TotalCount());
    w.Key("sum").Number(histogram->Sum());
    w.Key("mean").Number(histogram->Mean());
    w.Key("bounds").BeginArray();
    for (const double b : histogram->bounds()) {
      w.Number(b);
    }
    w.EndArray();
    w.Key("buckets").BeginArray();
    for (const uint64_t c : histogram->BucketCounts()) {
      w.Uint(c);
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string MetricsRegistry::ToString() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += name + " = " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    char line[160];
    std::snprintf(line, sizeof(line), "%s = {count=%llu mean=%.3f}\n",
                  name.c_str(),
                  static_cast<unsigned long long>(histogram->TotalCount()),
                  histogram->Mean());
    out += line;
  }
  return out;
}

void MetricsRegistry::Reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

void RecordQuery(const IoStats& io, double latency_ms) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Counter* count = registry.GetCounter(kMetricQueryCount);
  static Histogram* latency = registry.GetHistogram(kMetricQueryLatencyMs);
  static Histogram* vectors = registry.GetHistogram(kMetricQueryVectors);
  static Histogram* pages = registry.GetHistogram(kMetricQueryPages);
  count->Increment();
  latency->Observe(latency_ms);
  vectors->Observe(static_cast<double>(io.vectors_read));
  pages->Observe(static_cast<double>(io.pages_read));
}

void RecordEstimateError(double estimated_pages, double actual_pages) {
  static Histogram* error = MetricsRegistry::Global().GetHistogram(
      kMetricPlannerEstimateErrorPages);
  error->Observe(std::fabs(estimated_pages - actual_pages));
}

}  // namespace obs
}  // namespace ebi
