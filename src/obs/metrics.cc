#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <utility>

#include "obs/json.h"

namespace ebi {
namespace obs {
namespace {

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

uint64_t DoubleToBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// "ebi.serve.latency_ms" -> "ebi_serve_latency_ms": Prometheus metric
/// names allow [a-zA-Z0-9_:] only.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) {
      c = '_';
    }
  }
  return out;
}

/// Bound rendering for le="..." labels: integral bounds print without a
/// fraction so goldens stay readable.
std::string BoundLabel(double b) { return JsonNumber(b); }

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t b = static_cast<size_t>(it - bounds_.begin());
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      observed, DoubleToBits(BitsToDouble(observed) + value),
      std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::TotalCount() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const {
  return BitsToDouble(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::Mean() const {
  const uint64_t n = TotalCount();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out;
  out.reserve(counts_.size());
  for (const std::atomic<uint64_t>& c : counts_) {
    out.push_back(c.load(std::memory_order_relaxed));
  }
  return out;
}

double Histogram::Quantile(double q) const {
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (const uint64_t c : counts) {
    total += c;
  }
  if (total == 0) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t b = 0; b < counts.size(); ++b) {
    const double next = cumulative + static_cast<double>(counts[b]);
    if (next >= target && counts[b] > 0) {
      // Interpolate within [lower, upper) of bucket b. The overflow
      // bucket has no upper bound; report the last finite one.
      if (b >= bounds_.size()) {
        return bounds_.empty() ? 0.0 : bounds_.back();
      }
      const double lower = b == 0 ? 0.0 : bounds_[b - 1];
      const double upper = bounds_[b];
      const double fraction =
          (target - cumulative) / static_cast<double>(counts[b]);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, fraction));
    }
    cumulative = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  sum_bits_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::MetricsRegistry() {
  // Pre-size the shard maps past the built-in metric census so steady
  // state never rehashes under a shard lock.
  for (Shard& shard : shards_) {
    const MutexLock lock(shard.mu);
    shard.counters.reserve(16);
    shard.histograms.reserve(16);
  }
}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Shard& shard = ShardFor(name);
  const MutexLock lock(shard.mu);
  std::unique_ptr<Counter>& slot = shard.counters[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  Shard& shard = ShardFor(name);
  const MutexLock lock(shard.mu);
  std::unique_ptr<Histogram>& slot = shard.histograms[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

std::vector<double> MetricsRegistry::DefaultBounds() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

std::vector<double> MetricsRegistry::LatencyBounds() {
  std::vector<double> bounds;
  for (double decade = 0.001; decade <= 1e5; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

std::vector<std::pair<std::string, const Counter*>>
MetricsRegistry::CountersSorted() const {
  std::vector<std::pair<std::string, const Counter*>> out;
  for (const Shard& shard : shards_) {
    const MutexLock lock(shard.mu);
    for (const auto& [name, counter] : shard.counters) {
      out.emplace_back(name, counter.get());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::HistogramsSorted() const {
  std::vector<std::pair<std::string, const Histogram*>> out;
  for (const Shard& shard : shards_) {
    const MutexLock lock(shard.mu);
    for (const auto& [name, histogram] : shard.histograms) {
      out.emplace_back(name, histogram.get());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

void HistogramJson(JsonWriter& w, const Histogram& histogram,
                   bool with_quantiles) {
  w.BeginObject();
  w.Key("count").Uint(histogram.TotalCount());
  w.Key("sum").Number(histogram.Sum());
  w.Key("mean").Number(histogram.Mean());
  if (with_quantiles) {
    w.Key("p50").Number(histogram.Quantile(0.50));
    w.Key("p99").Number(histogram.Quantile(0.99));
    w.Key("p999").Number(histogram.Quantile(0.999));
  }
  w.Key("bounds").BeginArray();
  for (const double b : histogram.bounds()) {
    w.Number(b);
  }
  w.EndArray();
  w.Key("buckets").BeginArray();
  for (const uint64_t c : histogram.BucketCounts()) {
    w.Uint(c);
  }
  w.EndArray();
  w.EndObject();
}

std::string RegistryJson(
    const std::vector<std::pair<std::string, const Counter*>>& counters,
    const std::vector<std::pair<std::string, const Histogram*>>& histograms,
    bool with_quantiles) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters) {
    w.Key(name).Uint(counter->Value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms) {
    w.Key(name);
    HistogramJson(w, *histogram, with_quantiles);
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  return RegistryJson(CountersSorted(), HistogramsSorted(),
                      /*with_quantiles=*/false);
}

std::string MetricsRegistry::RenderJson() const {
  return RegistryJson(CountersSorted(), HistogramsSorted(),
                      /*with_quantiles=*/true);
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::string out;
  for (const auto& [name, counter] : CountersSorted()) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, histogram] : HistogramsSorted()) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    const std::vector<uint64_t> counts = histogram->BucketCounts();
    const std::vector<double>& bounds = histogram->bounds();
    uint64_t cumulative = 0;
    for (size_t b = 0; b < bounds.size(); ++b) {
      cumulative += counts[b];
      out += prom + "_bucket{le=\"" + BoundLabel(bounds[b]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += counts.empty() ? 0 : counts.back();
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += prom + "_sum " + JsonNumber(histogram->Sum()) + "\n";
    out += prom + "_count " + std::to_string(histogram->TotalCount()) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ToString() const {
  std::string out;
  for (const auto& [name, counter] : CountersSorted()) {
    out += name + " = " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, histogram] : HistogramsSorted()) {
    char line[160];
    std::snprintf(line, sizeof(line), "%s = {count=%llu mean=%.3f}\n",
                  name.c_str(),
                  static_cast<unsigned long long>(histogram->TotalCount()),
                  histogram->Mean());
    out += line;
  }
  return out;
}

void MetricsRegistry::Reset() {
  for (Shard& shard : shards_) {
    const MutexLock lock(shard.mu);
    for (auto& [name, counter] : shard.counters) {
      counter->Reset();
    }
    for (auto& [name, histogram] : shard.histograms) {
      histogram->Reset();
    }
  }
}

void RecordQuery(const IoStats& io, double latency_ms) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Counter* count = registry.GetCounter(kMetricQueryCount);
  static Histogram* latency = registry.GetHistogram(kMetricQueryLatencyMs);
  static Histogram* vectors = registry.GetHistogram(kMetricQueryVectors);
  static Histogram* pages = registry.GetHistogram(kMetricQueryPages);
  count->Increment();
  latency->Observe(latency_ms);
  vectors->Observe(static_cast<double>(io.vectors_read));
  pages->Observe(static_cast<double>(io.pages_read));
}

void RecordEstimateError(double estimated_pages, double actual_pages) {
  static Histogram* error = MetricsRegistry::Global().GetHistogram(
      kMetricPlannerEstimateErrorPages);
  error->Observe(std::fabs(estimated_pages - actual_pages));
}

}  // namespace obs
}  // namespace ebi
