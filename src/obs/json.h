#ifndef EBI_OBS_JSON_H_
#define EBI_OBS_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace ebi {
namespace obs {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes
/// added). Control characters become \u00XX.
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Renders a double as a JSON number. JSON has no Inf/NaN, so non-finite
/// values degrade to 0; integral values print without a fraction.
inline std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Minimal streaming JSON writer: the caller drives structure with
/// Begin/End calls, the writer inserts commas. No pretty-printing —
/// consumers are scripts, not humans (EXPLAIN text is the human form).
class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Prefix();
    out_ += '{';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& EndObject() {
    first_.pop_back();
    out_ += '}';
    return *this;
  }
  JsonWriter& BeginArray() {
    Prefix();
    out_ += '[';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& EndArray() {
    first_.pop_back();
    out_ += ']';
    return *this;
  }
  JsonWriter& Key(std::string_view k) {
    Prefix();
    out_ += '"';
    out_ += JsonEscape(k);
    out_ += "\":";
    after_key_ = true;
    return *this;
  }
  JsonWriter& String(std::string_view v) {
    Prefix();
    out_ += '"';
    out_ += JsonEscape(v);
    out_ += '"';
    return *this;
  }
  JsonWriter& Number(double v) {
    Prefix();
    out_ += JsonNumber(v);
    return *this;
  }
  JsonWriter& Uint(uint64_t v) {
    Prefix();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Int(int64_t v) {
    Prefix();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Bool(bool v) {
    Prefix();
    out_ += v ? "true" : "false";
    return *this;
  }
  /// Splices pre-rendered JSON (e.g. a nested document) as one value.
  JsonWriter& Raw(std::string_view json) {
    Prefix();
    out_ += json;
    return *this;
  }

  const std::string& str() const { return out_; }

 private:
  /// Emits the separating comma for the second and later values of the
  /// enclosing object/array; keys suppress the comma of their value.
  void Prefix() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) {
        out_ += ',';
      }
      first_.back() = false;
    }
  }

  std::string out_;
  std::vector<bool> first_;
  bool after_key_ = false;
};

}  // namespace obs
}  // namespace ebi

#endif  // EBI_OBS_JSON_H_
