#ifndef EBI_OBS_EXPLAIN_H_
#define EBI_OBS_EXPLAIN_H_

#include <string>

#include "obs/trace.h"

namespace ebi {
namespace obs {

/// Rendering options for EXPLAIN output.
struct ExplainOptions {
  /// Include per-span wall-clock timings. Off by default so the output is
  /// deterministic (golden-testable); demos turn it on.
  bool include_timing = false;
  /// Spaces of indentation per tree level in the text form.
  int indent = 2;
};

/// Renders a finished QueryTrace as a human-readable plan tree, one span
/// per line:
///
///   query
///     planner.select rows=3575 vectors=19 pages=76 bytes=285000
///       predicate column=product pred="product IN (...)"
///         plan.choose chosen=encoded-bitmap est_pages=10 ...
///         index.eval index=encoded-bitmap ...
///           boolean.reduce method=exact terms_in=40 terms_out=3 ...
///
/// Grammar (DESIGN.md §6): line := indent name {" " key "=" value}* ;
/// string values with spaces are double-quoted; children are indented one
/// level deeper than their parent.
std::string ExplainText(const QueryTrace& trace,
                        const ExplainOptions& options = ExplainOptions());

/// The same tree as JSON:
///   {"name": ..., "attrs": {...}, "children": [...]}
/// with "elapsed_ms" per span when include_timing is set.
std::string ExplainJson(const QueryTrace& trace,
                        const ExplainOptions& options = ExplainOptions());

/// Renders one span subtree (same JSON shape as ExplainJson) — how the
/// telemetry layer dumps captured roots that no longer live in a
/// QueryTrace (obs/telemetry.h).
std::string ExplainSpanJson(const TraceSpan& span,
                            const ExplainOptions& options = ExplainOptions());

}  // namespace obs
}  // namespace ebi

#endif  // EBI_OBS_EXPLAIN_H_
