#ifndef EBI_OBS_WORKLOAD_RECORDER_H_
#define EBI_OBS_WORKLOAD_RECORDER_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ebi {
namespace obs {

/// One predicate of a recorded query: the fingerprint the re-encoding
/// advisor mines (column, operator, literal set) plus what the execution
/// observed (rows its bitmap selected).
struct WorkloadPredicate {
  std::string column;
  /// Stable operator tag: "eq", "in", "range", "isnull", "neq", "notin".
  std::string op;
  /// FNV-1a hash over column, operator and the literal set — the
  /// identity hot-predicate mining groups by. Two textually different
  /// IN-lists with the same members collide on purpose (the set is
  /// hashed sorted).
  uint64_t fingerprint = 0;
  /// Rows this predicate's bitmap selected (before conjunction).
  uint64_t rows = 0;
  /// Integer literals of eq/in predicates, ascending, capped at the
  /// recorder's literal_cap (the fingerprint always covers the full
  /// set). String literals contribute to the fingerprint only.
  std::vector<int64_t> literals;
  /// Range predicates: inclusive bounds.
  int64_t lo = 0;
  int64_t hi = 0;
  bool has_range = false;
};

/// One executed query, compactly: what ran, what it selected, what it
/// cost per stage. The append-only workload log is the data source for
/// reencode_advisor and the (future) online encoding optimizer
/// (ROADMAP item 5); `ebi_workload` summarizes it offline.
struct WorkloadRecord {
  /// Log-schema version this record was written as (see kSchemaVersion).
  int version = 1;
  /// Recorder-assigned sequence number (monotone per recorder).
  uint64_t seq = 0;
  /// Milliseconds since the recorder started (monotonic clock — the log
  /// carries no wall-clock time, keeping runs reproducible).
  double ts_ms = 0.0;
  uint64_t epoch = 0;
  uint64_t rows_selected = 0;
  uint64_t rows_total = 0;
  /// rows_selected / rows_total (0 when the table was empty).
  double selectivity = 0.0;
  double queue_ms = 0.0;
  double pin_ms = 0.0;
  double plan_ms = 0.0;
  double execute_ms = 0.0;
  double total_ms = 0.0;
  uint64_t vectors = 0;
  uint64_t pages = 0;
  uint64_t bytes = 0;
  /// Bitmap-kernel backend the process dispatched to ("scalar", "avx2",
  /// ...), so logs from different hosts stay comparable.
  std::string kernel;
  std::vector<WorkloadPredicate> predicates;
};

/// Serializes one record as a single JSONL line (no trailing newline).
std::string WorkloadRecordJson(const WorkloadRecord& record);

/// Parses one JSONL line. Rejects unknown schema versions and malformed
/// documents (the reader skips such lines and counts them).
Result<WorkloadRecord> ParseWorkloadRecord(const std::string& line);

struct WorkloadRecorderOptions {
  /// Rotate when the current log file exceeds this many bytes. 0 never
  /// rotates.
  size_t rotate_bytes = 4u << 20;
  /// Generations kept: the live file plus max_files-1 rotated ones
  /// (path.1 newest rotation .. path.<max_files-1> oldest).
  size_t max_files = 4;
  /// Integer literals stored per predicate; the fingerprint always
  /// covers the full set.
  size_t literal_cap = 16;
};

/// Append-only JSONL workload log with size-based rotation.
///
/// Thread-safe: Append serializes outside the lock and holds the
/// recorder mutex only for the buffered fwrite (and the rare rotation),
/// so concurrent serve workers contend for microseconds, not
/// serialization time. A seq-ordered turnstile keeps concurrent
/// appenders' lines in claim order on disk, so readers never see a
/// sequence inversion. Writes are buffered; Flush()/destructor drain.
class WorkloadRecorder {
 public:
  /// Log-format version written into every record.
  static constexpr int kSchemaVersion = 1;

  explicit WorkloadRecorder(
      std::string path,
      const WorkloadRecorderOptions& options = WorkloadRecorderOptions());
  ~WorkloadRecorder();

  WorkloadRecorder(const WorkloadRecorder&) = delete;
  WorkloadRecorder& operator=(const WorkloadRecorder&) = delete;

  /// Stamps seq/ts_ms/version and appends one line. Opens the file
  /// lazily on first append.
  Status Append(WorkloadRecord record);

  Status Flush();

  uint64_t RecordsWritten() const;
  uint64_t Rotations() const;
  const std::string& path() const { return path_; }
  const WorkloadRecorderOptions& options() const { return options_; }

 private:
  Status EnsureOpenLocked() EBI_REQUIRES(mu_);
  Status RotateLocked() EBI_REQUIRES(mu_);
  /// Open-if-needed, rotate-if-due, write one line. Never early-returns
  /// past the caller's turnstile bookkeeping.
  Status WriteLineLocked(const std::string& line) EBI_REQUIRES(mu_);

  const std::string path_;
  const WorkloadRecorderOptions options_;
  const std::chrono::steady_clock::time_point start_;

  mutable Mutex mu_{lock_rank::kWorkloadRecorder, "WorkloadRecorder::mu_"};
  /// Signals turn advancement to writers waiting in seq order.
  CondVar turn_cv_;
  /// The seq whose line is written next (== lines on disk so far).
  uint64_t next_write_ EBI_GUARDED_BY(mu_) = 0;
  std::FILE* file_ EBI_GUARDED_BY(mu_) = nullptr;
  size_t file_bytes_ EBI_GUARDED_BY(mu_) = 0;
  uint64_t records_ EBI_GUARDED_BY(mu_) = 0;
  uint64_t rotations_ EBI_GUARDED_BY(mu_) = 0;
};

/// Result of reading one log file (or a rotated set).
struct WorkloadLogRead {
  std::vector<WorkloadRecord> records;
  /// Lines skipped: truncated tails (a crash or rotation mid-line),
  /// malformed JSON, unknown schema versions.
  size_t skipped = 0;
};

/// Reads one JSONL log file, oldest line first. Damaged lines are
/// skipped and counted, never fatal — a truncated final line is the
/// normal crash/rotation artifact. NotFound only when the file is
/// missing entirely.
Result<WorkloadLogRead> ReadWorkloadLog(const std::string& path);

/// Reads a rotated set oldest-first: path.<max_files-1> .. path.1, then
/// the live file. Missing generations are skipped silently.
Result<WorkloadLogRead> ReadWorkloadLogSet(const std::string& path,
                                           size_t max_files);

}  // namespace obs
}  // namespace ebi

#endif  // EBI_OBS_WORKLOAD_RECORDER_H_
