// Range selections three ways (Section 2.3 of the paper):
//   1. total-order preserving encoding — arbitrary "j < A < i" predicates
//      rewrite to IN-lists over consecutive codewords;
//   2. range-based encoded bitmap index — predefined range selections are
//      encoded as intervals and answered from one or two bitmap vectors;
//   3. bit-sliced index — the O'Neil/Quass slice arithmetic, best for
//      wide ad-hoc ranges.
//
// Pass --explain to also print the trace of each indexed evaluation.

#include <cstdio>
#include <cstring>

#include "ebi/ebi.h"

namespace {

constexpr int64_t kDomainLo = 6;
constexpr int64_t kDomainHi = 20;  // Exclusive, as in Figure 7.

}  // namespace

int main(int argc, char** argv) {
  using ebi::Value;

  const bool explain =
      argc > 1 && std::strcmp(argv[1], "--explain") == 0;

  // Sensor readings in [6, 20) — the paper's Figure 7 domain.
  ebi::Table table("READINGS");
  if (!table.AddColumn("temp", ebi::Column::Type::kInt64).ok()) {
    return 1;
  }
  ebi::Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const int64_t v =
        kDomainLo +
        static_cast<int64_t>(rng.UniformInt(kDomainHi - kDomainLo));
    if (!table.AppendRow({Value::Int(v)}).ok()) {
      return 1;
    }
  }
  const ebi::Column* temp = *table.FindColumn("temp");

  // --- 1. Total-order preserving encoded bitmap index. ------------------
  ebi::IoAccountant io1;
  ebi::EncodedBitmapIndexOptions topts;
  topts.strategy = ebi::EncodingStrategy::kSequential;  // Order-preserving.
  ebi::EncodedBitmapIndex ordered(temp, &table.existence(), &io1, topts);
  if (!ordered.Build().ok()) {
    return 1;
  }
  ebi::obs::QueryTrace ordered_trace;
  ebi::Result<ebi::BitVector> r1 = [&] {
    const ebi::obs::TraceScope install(explain ? &ordered_trace : nullptr);
    return ordered.EvaluateRange(8, 11);  // 8 <= temp < 12.
  }();
  if (!r1.ok()) {
    return 1;
  }
  std::printf("total-order EBI : 8<=temp<12 -> %zu rows, %llu vectors\n",
              r1->Count(),
              static_cast<unsigned long long>(io1.stats().vectors_read));
  if (explain) {
    std::printf("%s", ebi::obs::ExplainText(ordered_trace).c_str());
  }

  // --- 2. Range-based encoding over the predefined selections. ----------
  const std::vector<ebi::HalfOpenRange> predefined = {
      {6, 10}, {8, 12}, {10, 13}, {16, 20}};
  auto range_enc =
      ebi::RangeBasedEncoding::Create(kDomainLo, kDomainHi, predefined);
  if (!range_enc.ok()) {
    return 1;
  }
  std::printf("\nrange-based EBI: partition of [6,20) into %zu intervals\n",
              range_enc->intervals().size());
  for (const ebi::HalfOpenRange& r : predefined) {
    const auto cover = range_enc->CoverForRange(r.lo, r.hi);
    if (!cover.ok()) {
      continue;
    }
    std::printf("  %-9s -> %-12s (%d vectors)\n", r.ToString().c_str(),
                ebi::CoverToString(*cover, range_enc->mapping().width())
                    .c_str(),
                ebi::DistinctVariables(*cover));
  }
  // A range that does not align with the partition falls back (the paper's
  // own advice: use a total-order preserving encoding then).
  const auto unaligned = range_enc->CoverForRange(7, 11);
  std::printf("  [7,11)    -> %s\n",
              unaligned.ok() ? "unexpected"
                             : unaligned.status().ToString().c_str());

  // --- 3. Bit-sliced index. ---------------------------------------------
  ebi::IoAccountant io3;
  ebi::BitSlicedIndex sliced(temp, &table.existence(), &io3);
  if (!sliced.Build().ok()) {
    return 1;
  }
  ebi::obs::QueryTrace sliced_trace;
  ebi::Result<ebi::BitVector> r3 = [&] {
    const ebi::obs::TraceScope install(explain ? &sliced_trace : nullptr);
    return sliced.EvaluateRange(8, 11);
  }();
  if (!r3.ok()) {
    return 1;
  }
  std::printf("\nbit-sliced      : 8<=temp<12 -> %zu rows, %llu slice "
              "reads (%zu slices held)\n",
              r3->Count(),
              static_cast<unsigned long long>(io3.stats().vectors_read),
              sliced.NumVectors());
  if (explain) {
    std::printf("%s", ebi::obs::ExplainText(sliced_trace).c_str());
  }
  // SUM on slices, no table access.
  const auto sum = sliced.Sum(*r3);
  if (sum.ok()) {
    std::printf("                  SUM(temp) over that range = %lld\n",
                static_cast<long long>(*sum));
  }

  // All three agree.
  if (!(*r1 == *r3)) {
    std::printf("DISAGREEMENT between index families!\n");
    return 1;
  }
  std::printf("\nall index families returned identical row sets.\n");
  return 0;
}
