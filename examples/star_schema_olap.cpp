// OLAP on a star schema (the paper's Section 2.3 scenario): a SALES fact
// table with a SALESPOINT dimension carrying the branch -> company ->
// alliance hierarchy of Figures 4/5. The branch column is indexed with a
// hierarchy-optimized encoded bitmap index, and roll-ups along the
// hierarchy run as cheap bitmap expressions; SUM(quantity) is evaluated
// directly on a bit-sliced index, never touching the fact rows.

#include <cstdio>

#include "ebi/ebi.h"

int main() {
  // Build the synthetic star schema: 12 branches with the Figure 5
  // memberships (companies a-e, alliances X/Y/Z, m:N edges included).
  ebi::StarSchemaConfig config;
  config.fact_rows = 50000;
  config.num_products = 200;
  config.seed = 42;
  auto schema_or = ebi::BuildStarSchema(config);
  if (!schema_or.ok()) {
    std::printf("schema: %s\n", schema_or.status().ToString().c_str());
    return 1;
  }
  ebi::StarSchema& schema = **schema_or;
  std::printf("star schema: SALES(%zu rows) -> PRODUCTS(%zu), "
              "SALESPOINT(%zu branches)\n",
              schema.sales->NumRows(), schema.products->NumRows(),
              schema.salespoints->NumRows());

  // Index SALES.branch with an encoding trained on all hierarchy groups
  // (Theorem 2.3's objective) and SALES.quantity with a bit-sliced index
  // for aggregation.
  ebi::IoAccountant io;
  const ebi::Column* branch = *schema.sales->FindColumn("branch");
  const ebi::Column* quantity = *schema.sales->FindColumn("quantity");

  ebi::EncodedBitmapIndexOptions options;
  options.strategy = ebi::EncodingStrategy::kAnnealed;
  options.training_predicates =
      schema.salespoint_hierarchy.AllGroupPredicates();
  options.optimizer.iterations = 2000;
  ebi::EncodedBitmapIndex branch_index(branch, &schema.sales->existence(),
                                       &io, options);
  ebi::BitSlicedIndex quantity_index(quantity, &schema.sales->existence(),
                                     &io);
  if (!branch_index.Build().ok() || !quantity_index.Build().ok()) {
    std::printf("index build failed\n");
    return 1;
  }
  std::printf("branch index: %zu bitmap vectors for %zu branches\n\n",
              branch_index.NumVectors(), branch->Cardinality());

  // Roll-up: SELECT alliance, COUNT(*), SUM(quantity) GROUP BY alliance.
  std::printf("%-10s %-10s %-14s %-14s %-16s\n", "alliance", "rows",
              "sum(quantity)", "avg(quantity)", "vectors_read");
  for (const char* alliance : {"X", "Y", "Z"}) {
    const auto members =
        schema.salespoint_hierarchy.Members("alliance", alliance);
    if (!members.ok()) {
      continue;
    }
    std::vector<ebi::Value> branches;
    for (ebi::ValueId b : *members) {
      branches.push_back(ebi::Value::Int(static_cast<int64_t>(b)));
    }
    io.Reset();
    const auto rows = branch_index.EvaluateIn(branches);
    if (!rows.ok()) {
      continue;
    }
    const auto vectors = io.stats().vectors_read;
    const auto sum = ebi::SumBitSliced(&quantity_index, *rows);
    bool empty = false;
    const auto avg = ebi::AvgBitSliced(&quantity_index, *rows, &empty);
    if (!sum.ok() || !avg.ok()) {
      continue;
    }
    std::printf("%-10s %-10zu %-14lld %-14.2f %-16llu\n", alliance,
                rows->Count(), static_cast<long long>(*sum), *avg,
                static_cast<unsigned long long>(vectors));
  }

  // Drill-down into one company of alliance X, combined with a product
  // predicate — index cooperativity: two separate indexes AND together.
  const ebi::Column* product = *schema.sales->FindColumn("product");
  ebi::EncodedBitmapIndex product_index(product, &schema.sales->existence(),
                                        &io);
  if (!product_index.Build().ok()) {
    return 1;
  }
  ebi::SelectionExecutor executor(schema.sales, &io);
  executor.RegisterIndex("branch", &branch_index);
  executor.RegisterIndex("product", &product_index);

  const auto company_a =
      schema.salespoint_hierarchy.Members("company", "a");
  std::vector<ebi::Value> a_branches;
  for (ebi::ValueId b : *company_a) {
    a_branches.push_back(ebi::Value::Int(static_cast<int64_t>(b)));
  }
  const auto drill = executor.Select(
      {ebi::Predicate::In("branch", a_branches),
       ebi::Predicate::Between("product", 0, 19)});
  if (!drill.ok()) {
    return 1;
  }
  std::printf("\ndrill-down: company a AND product in [0,20) -> %zu rows, "
              "io: %s\n",
              drill->count, drill->io.ToString().c_str());
  return 0;
}
