// Sharded serving walkthrough: partition a sales fact table over two
// QueryService shards by key range, scatter-gather selections through
// the ClusterQueryService, and show the pieces that make the cluster
// path trustworthy — fan-out pruning for key predicates, bit-identical
// merges (the global selection equals what one big service would
// return), routed appends, partial results with a coverage mask, and
// hedged duplicate requests to replicas (DESIGN.md §14).
//
// Build & run:
//   cmake --build build --target cluster_demo && ./build/examples/cluster_demo

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "serve/cluster/cluster_service.h"
#include "storage/table.h"

using ebi::Column;
using ebi::IndexKind;
using ebi::Predicate;
using ebi::Result;
using ebi::Table;
using ebi::Value;

namespace {

// 48 rows, keys 0..95: the range partition below puts keys <= 47 on
// shard 0 and the rest on shard 1.
std::unique_ptr<Table> SalesTable() {
  auto table = std::make_unique<Table>("sales");
  if (!table->AddColumn("key", Column::Type::kInt64).ok() ||
      !table->AddColumn("product", Column::Type::kInt64).ok()) {
    return nullptr;
  }
  for (int64_t i = 0; i < 48; ++i) {
    if (!table->AppendRow({Value::Int((i * 2) % 96), Value::Int(i % 6)})
             .ok()) {
      return nullptr;
    }
  }
  return table;
}

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "cluster_demo: %s failed\n", what);
    std::exit(1);
  }
}

}  // namespace

int main() {
  // Two shards, range-partitioned on "key": shard 0 owns (-inf, 47],
  // shard 1 owns (47, +inf). Each shard is a full QueryService with its
  // own snapshots, worker pool, and (suffixed) workload log; replicas
  // plus hedging give tail-latency insurance.
  ebi::serve::cluster::ClusterOptions options;
  options.shards = 2;
  options.partition = ebi::serve::cluster::PartitionKind::kRange;
  options.split_points = {47};
  options.key_column = "key";
  options.shard_options.worker_threads = 2;
  options.shard_options.telemetry.enabled = true;
  options.shard_options.telemetry.sample_rate = 1.0;
  options.shard_options.telemetry.workload_log_path =
      "cluster_demo.workload.jsonl";
  options.replicate = true;
  options.replica_options.worker_threads = 1;
  options.replica_options.telemetry.enabled = true;
  options.replica_options.telemetry.workload_log_path =
      "cluster_demo.workload.jsonl";
  options.hedge = true;
  options.partial_policy = ebi::serve::cluster::PartialResultPolicy::kPartial;

  ebi::serve::cluster::ClusterQueryService cluster(options);
  Check(cluster
            .Start(SalesTable(), {{"key", IndexKind::kEncodedBitmap},
                                  {"product", IndexKind::kEncodedBitmap}})
            .ok(),
        "Start");

  // A key-range selection owned entirely by shard 0: the router prunes
  // the fan-out to one shard, and the merged result still reports
  // positions in the *global* row space.
  const Result<ebi::serve::cluster::ClusterResult> pruned =
      cluster.Select({Predicate::Between("key", 0, 40)});
  Check(pruned.ok(), "pruned Select");
  std::printf("key in [0,40]      -> %zu rows, visited %zu of %zu shards\n",
              pruned.value().selection.count,
              pruned.value().visited_shards.size(), cluster.shards());

  // A non-key predicate fans out everywhere and merges bit-identically:
  // product == 3 lives on both sides of the split.
  const Result<ebi::serve::cluster::ClusterResult> fanout =
      cluster.Select({Predicate::Eq("product", Value::Int(3))});
  Check(fanout.ok(), "fan-out Select");
  std::printf("product == 3       -> %zu rows, visited %zu of %zu shards, "
              "hedge delay %.2f ms\n",
              fanout.value().selection.count,
              fanout.value().visited_shards.size(), cluster.shards(),
              cluster.CurrentHedgeDelayMs());

  // Appends route row-by-row on the key and publish on every owning
  // shard (and its replica) before the epoch ticks.
  const Result<uint64_t> epoch = cluster.Append({
      {Value::Int(10), Value::Int(3)},   // -> shard 0
      {Value::Int(90), Value::Int(3)},   // -> shard 1
  });
  Check(epoch.ok(), "Append");
  const Result<ebi::serve::cluster::ClusterResult> fresh =
      cluster.Select({Predicate::Eq("product", Value::Int(3))});
  Check(fresh.ok(), "Select after append");
  std::printf("after append #%llu  -> %zu rows over %llu total\n",
              static_cast<unsigned long long>(epoch.value()),
              fresh.value().selection.count,
              static_cast<unsigned long long>(fresh.value().total_rows));

  // Partial results: under PartialResultPolicy::kPartial a shard that
  // sheds or misses its deadline yields a partial answer plus a
  // coverage mask saying exactly which rows WERE consulted. An
  // already-expired deadline is instead rejected at admission, before
  // any shard is contacted.
  ebi::serve::RequestOptions expired;
  expired.deadline_ms = 0.0;
  const Result<ebi::serve::cluster::ClusterResult> late =
      cluster.Select({Predicate::Eq("product", Value::Int(3))}, expired);
  std::printf("expired deadline   -> %s\n",
              late.status().ToString().c_str());

  Check(cluster.Shutdown().ok(), "Shutdown");
  std::printf("drained; placement covers %llu rows across %zu shards\n",
              static_cast<unsigned long long>(
                  cluster.router().placement()->total_rows),
              cluster.shards());
  std::printf("per-shard workload logs: cluster_demo.workload.jsonl.s0, "
              ".s1 (replicas log to .s<N>r once hedges fire)\n");
  std::printf("aggregate them:  ./build/tools/ebi_workload summary "
              "--cluster cluster_demo.workload.jsonl\n");
  return 0;
}
