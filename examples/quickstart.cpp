// Quickstart: build an encoded bitmap index on one column, run point,
// IN-list and range selections, and look at what the index actually did —
// the five-minute tour of the library.

#include <cstdio>

#include "ebi/ebi.h"

int main() {
  using ebi::Value;

  // 1. A table with one indexed attribute. The domain {coffee, tea, mate,
  //    cocoa} has cardinality 4, so the encoded index will keep
  //    ceil(log2(4+1)) = 3 bitmap vectors (one codeword is reserved for
  //    deleted rows) instead of the simple index's 4.
  ebi::Table table("ORDERS");
  if (!table.AddColumn("drink", ebi::Column::Type::kString).ok()) {
    return 1;
  }
  const char* drinks[] = {"coffee", "tea",  "mate",   "coffee", "cocoa",
                          "tea",    "mate", "coffee", "tea",    "coffee"};
  for (const char* d : drinks) {
    if (!table.AppendRow({Value::Str(d)}).ok()) {
      return 1;
    }
  }

  // 2. Build the index. Every read it performs is charged to `io`.
  ebi::IoAccountant io;
  ebi::EncodedBitmapIndex index(*table.FindColumn("drink"),
                                &table.existence(), &io);
  if (!index.Build().ok()) {
    return 1;
  }
  std::printf("indexed %zu rows, %zu distinct values, %zu bitmap vectors\n",
              table.NumRows(), index.column().Cardinality(),
              index.NumVectors());
  std::printf("mapping table:\n%s", index.mapping().ToString().c_str());

  // 3. Point selection: drink = 'tea'.
  auto tea = index.EvaluateEquals(Value::Str("tea"));
  if (!tea.ok()) {
    return 1;
  }
  std::printf("\ndrink = 'tea'        -> rows %s (%zu hits)\n",
              tea->ToString().c_str(), tea->Count());

  // 4. IN-list selection with logical reduction: the retrieval Boolean
  //    expression is minimized before any bitmap is read.
  const std::vector<Value> caffeinated = {Value::Str("coffee"),
                                          Value::Str("tea"),
                                          Value::Str("mate")};
  const auto cover = index.CoverForIn(caffeinated);
  io.Reset();
  auto in = index.EvaluateIn(caffeinated);
  if (!in.ok() || !cover.ok()) {
    return 1;
  }
  std::printf("drink IN {coffee,tea,mate}\n");
  std::printf("  reduced expression : %s\n",
              ebi::CoverToString(*cover, index.mapping().width()).c_str());
  std::printf("  vectors read       : %llu of %zu\n",
              static_cast<unsigned long long>(io.stats().vectors_read),
              index.NumVectors());
  std::printf("  rows               : %s (%zu hits)\n",
              in->ToString().c_str(), in->Count());

  // 5. Deletion: the row is re-encoded to the void codeword (Theorem 2.1),
  //    so later selections need no existence mask.
  if (!table.DeleteRow(0).ok() || !index.MarkDeleted(0).ok()) {
    return 1;
  }
  auto coffee = index.EvaluateEquals(Value::Str("coffee"));
  if (!coffee.ok()) {
    return 1;
  }
  std::printf("\nafter deleting row 0: drink = 'coffee' -> %s\n",
              coffee->ToString().c_str());

  // 6. Appends — including one that expands the domain (a new value gets
  //    the next free codeword; when none is left, the index grows one
  //    bitmap vector, Figure 2 of the paper).
  if (!table.AppendRow({Value::Str("chai")}).ok() ||
      !index.Append(10).ok()) {
    return 1;
  }
  auto chai = index.EvaluateEquals(Value::Str("chai"));
  if (!chai.ok()) {
    return 1;
  }
  std::printf("after appending 'chai': %s (vectors now %zu)\n",
              chai->ToString().c_str(), index.NumVectors());
  return 0;
}
