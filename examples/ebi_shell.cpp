// ebi_shell: a tiny interactive shell over the library — load a CSV (or a
// generated demo table), build indexes on columns, and run conjunctive
// selections through the cost-based planner, watching exactly how many
// bitmap vectors each query touches.
//
// Commands (one per line; also scriptable via stdin):
//   demo                          generate a demo sales table
//   load <path> <name>            load a CSV file
//   index <column> <kind>         kind: simple|encoded|bitsliced|btree
//   select <pred> [and <pred>]*   pred: col = v | col in v1,v2,..
//                                       | col between lo hi | col null
//   count                         row count of the loaded table
//   indexes                       list built indexes
//   help | quit

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ebi/ebi.h"

namespace {

struct ShellState {
  std::unique_ptr<ebi::Table> table;
  ebi::IoAccountant io;
  std::unique_ptr<ebi::IndexManager> manager;
};

std::vector<std::string> Tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

ebi::Value ParseValue(const ebi::Column& column, const std::string& text) {
  if (column.type() == ebi::Column::Type::kInt64) {
    return ebi::Value::Int(std::stoll(text));
  }
  return ebi::Value::Str(text);
}

void CmdDemo(ShellState* state) {
  auto table_or = ebi::GenerateTable(
      "demo_sales", 50000,
      {{"product", 500, ebi::Distribution::kZipf, 0.8},
       {"region", 12, ebi::Distribution::kUniform},
       {"quantity", 100, ebi::Distribution::kUniform}},
      2026);
  if (!table_or.ok()) {
    std::printf("error: %s\n", table_or.status().ToString().c_str());
    return;
  }
  state->table = std::move(table_or).value();
  state->manager = std::make_unique<ebi::IndexManager>(state->table.get(),
                                                       &state->io);
  std::printf("demo table: %zu rows, columns product(500 zipf), "
              "region(12), quantity(100)\n",
              state->table->NumRows());
}

void CmdLoad(ShellState* state, const std::vector<std::string>& args) {
  if (args.size() < 3) {
    std::printf("usage: load <path> <name>\n");
    return;
  }
  auto table_or = ebi::LoadCsvFile(args[1], args[2]);
  if (!table_or.ok()) {
    std::printf("error: %s\n", table_or.status().ToString().c_str());
    return;
  }
  state->table = std::move(table_or).value();
  state->manager = std::make_unique<ebi::IndexManager>(state->table.get(),
                                                       &state->io);
  std::printf("loaded %zu rows x %zu columns\n", state->table->NumRows(),
              state->table->NumColumns());
}

void CmdIndex(ShellState* state, const std::vector<std::string>& args) {
  if (state->table == nullptr) {
    std::printf("no table loaded; try 'demo'\n");
    return;
  }
  if (args.size() < 3) {
    std::printf(
        "usage: index <column> simple|simple-rle|encoded|bitsliced|"
        "bitsliced-base10|projection|btree|valuelist|rangebased|dynamic\n");
    return;
  }
  const auto kind = ebi::IndexKindFromName(args[2]);
  if (!kind.ok()) {
    std::printf("error: %s\n", kind.status().ToString().c_str());
    return;
  }
  const auto index = state->manager->CreateIndex(args[1], *kind);
  if (!index.ok()) {
    std::printf("error: %s\n", index.status().ToString().c_str());
    return;
  }
  std::printf("built %s on %s: %zu vectors, %zu bytes\n",
              (*index)->Name().c_str(), args[1].c_str(),
              (*index)->NumVectors(), (*index)->SizeBytes());
}

void CmdDrop(ShellState* state, const std::vector<std::string>& args) {
  if (state->table == nullptr || args.size() < 3) {
    std::printf("usage: drop <column> <kind>\n");
    return;
  }
  const auto kind = ebi::IndexKindFromName(args[2]);
  if (!kind.ok()) {
    std::printf("error: %s\n", kind.status().ToString().c_str());
    return;
  }
  const ebi::Status status = state->manager->DropIndex(args[1], *kind);
  std::printf("%s\n", status.ok() ? "dropped" : status.ToString().c_str());
}

/// Parses "col = v | col in a,b,c | col between lo hi | col null" starting
/// at args[i]; advances i past the predicate.
bool ParsePredicate(const ShellState& state,
                    const std::vector<std::string>& args, size_t* i,
                    ebi::Predicate* out) {
  if (*i + 1 >= args.size()) {
    return false;
  }
  const std::string column = args[*i];
  const std::string op = args[*i + 1];
  const auto column_or = state.table->FindColumn(column);
  if (!column_or.ok()) {
    std::printf("unknown column '%s'\n", column.c_str());
    return false;
  }
  const ebi::Column& col = **column_or;
  if (op == "=" && *i + 2 < args.size()) {
    *out = ebi::Predicate::Eq(column, ParseValue(col, args[*i + 2]));
    *i += 3;
    return true;
  }
  if (op == "!=" && *i + 2 < args.size()) {
    *out = ebi::Predicate::NotEq(column, ParseValue(col, args[*i + 2]));
    *i += 3;
    return true;
  }
  if (op == "notin" && *i + 2 < args.size()) {
    std::vector<ebi::Value> values;
    for (const std::string& part :
         ebi::SplitCsvLine(args[*i + 2], ',')) {
      values.push_back(ParseValue(col, part));
    }
    *out = ebi::Predicate::NotIn(column, std::move(values));
    *i += 3;
    return true;
  }
  if (op == "in" && *i + 2 < args.size()) {
    std::vector<ebi::Value> values;
    const auto parts = ebi::SplitCsvLine(args[*i + 2], ',');
    for (const std::string& part : parts) {
      values.push_back(ParseValue(col, part));
    }
    *out = ebi::Predicate::In(column, std::move(values));
    *i += 3;
    return true;
  }
  if (op == "between" && *i + 3 < args.size()) {
    *out = ebi::Predicate::Between(column, std::stoll(args[*i + 2]),
                                   std::stoll(args[*i + 3]));
    *i += 4;
    return true;
  }
  if (op == "null") {
    *out = ebi::Predicate::IsNull(column);
    *i += 2;
    return true;
  }
  std::printf("cannot parse predicate near '%s'\n", op.c_str());
  return false;
}

void CmdSelect(ShellState* state, const std::vector<std::string>& args) {
  if (state->table == nullptr) {
    std::printf("no table loaded; try 'demo'\n");
    return;
  }
  std::vector<ebi::Predicate> predicates;
  size_t i = 1;
  while (i < args.size()) {
    if (args[i] == "and") {
      ++i;
      continue;
    }
    ebi::Predicate p;
    if (!ParsePredicate(*state, args, &i, &p)) {
      return;
    }
    predicates.push_back(std::move(p));
  }
  std::vector<ebi::AccessPath> paths;
  const auto result = state->manager->Select(predicates, &paths);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%zu rows\n", result->count);
  for (size_t p = 0; p < predicates.size(); ++p) {
    std::printf("  %-30s via %-16s (delta=%zu, est. %.1f pages)\n",
                predicates[p].ToString().c_str(),
                paths[p].index->Name().c_str(), paths[p].delta,
                paths[p].estimated_pages);
  }
  std::printf("  io: %s\n", result->io.ToString().c_str());
}

void CmdIndexes(const ShellState& state) {
  if (state.table == nullptr) {
    return;
  }
  for (size_t c = 0; c < state.table->NumColumns(); ++c) {
    const std::string& column = state.table->column(c).name();
    for (const ebi::SecondaryIndex* index :
         state.manager->IndexesOn(column)) {
      std::printf("  %-20s on %-12s %8zu vectors %12zu bytes\n",
                  index->Name().c_str(), column.c_str(),
                  index->NumVectors(), index->SizeBytes());
    }
  }
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  demo                         generate a demo sales table\n"
      "  load <path> <name>           load a CSV file\n"
      "  index <column> <kind>        simple|simple-rle|encoded|bitsliced|\n"
      "                               bitsliced-base10|projection|btree|\n"
      "                               valuelist|rangebased|dynamic\n"
      "  drop <column> <kind>         drop an index\n"
      "  select <pred> [and <pred>]*  col = v | col != v | col in a,b,c |\n"
      "                               col notin a,b,c |\n"
      "                               col between lo hi | col null\n"
      "  count | indexes | help | quit\n");
}

}  // namespace

int main() {
  ShellState state;
  std::printf("ebi shell — encoded bitmap indexing playground. 'help' for "
              "commands.\n");
  std::string line;
  while (std::printf("ebi> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    const std::vector<std::string> args = Tokenize(line);
    if (args.empty()) {
      continue;
    }
    const std::string& cmd = args[0];
    if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "demo") {
      CmdDemo(&state);
    } else if (cmd == "load") {
      CmdLoad(&state, args);
    } else if (cmd == "index") {
      CmdIndex(&state, args);
    } else if (cmd == "drop") {
      CmdDrop(&state, args);
    } else if (cmd == "select") {
      CmdSelect(&state, args);
    } else if (cmd == "count") {
      std::printf("%zu rows\n",
                  state.table ? state.table->NumRows() : 0);
    } else if (cmd == "indexes") {
      CmdIndexes(state);
    } else {
      std::printf("unknown command '%s'; try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}
