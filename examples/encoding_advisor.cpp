// Encoding advisor: derive a good encoding from an observed query history
// — the paper's "future work" item 4 ("a proper encoding is achievable
// through an analysis of the history of users' queries"). We mine the
// IN-list predicates from a simulated query log, feed them to the
// annealing optimizer (Theorem 2.3's objective), and report what the
// re-encoding saves against the naive sequential mapping.

#include <cstdio>
#include <map>

#include "ebi/ebi.h"

int main() {
  const size_t cardinality = 24;
  const size_t n = 30000;

  // Simulated history: users mostly query three "hot" value groups (think
  // product families), plus noise.
  ebi::Rng rng(11);
  const std::vector<std::vector<ebi::ValueId>> hot_groups = {
      {0, 1, 2, 3, 4, 5},
      {6, 7, 8, 9},
      {10, 11, 12, 13, 14, 15, 16, 17},
  };
  std::vector<std::vector<ebi::ValueId>> history;
  for (int q = 0; q < 200; ++q) {
    if (rng.Bernoulli(0.8)) {
      history.push_back(
          hot_groups[rng.UniformInt(hot_groups.size())]);
    } else {
      std::vector<ebi::ValueId> random_pred;
      const size_t width = 2 + rng.UniformInt(5);
      for (size_t i = 0; i < width; ++i) {
        random_pred.push_back(
            static_cast<ebi::ValueId>(rng.UniformInt(cardinality)));
      }
      history.push_back(std::move(random_pred));
    }
  }

  // Mine the history: count distinct predicates, keep the frequent ones.
  std::map<std::vector<ebi::ValueId>, int> frequency;
  for (auto pred : history) {
    std::sort(pred.begin(), pred.end());
    pred.erase(std::unique(pred.begin(), pred.end()), pred.end());
    ++frequency[pred];
  }
  ebi::PredicateSet mined;
  std::printf("query log: %zu queries, %zu distinct predicates; mined "
              "frequent ones:\n",
              history.size(), frequency.size());
  for (const auto& [pred, count] : frequency) {
    if (count >= 5) {
      std::printf("  %3dx  IN-list of %zu values\n", count, pred.size());
      mined.push_back(pred);
    }
  }

  // Optimize an encoding for the mined predicates.
  ebi::OptimizerOptions options;
  options.iterations = 4000;
  options.seed = 3;
  auto tuned = ebi::AnnealEncode(cardinality, mined, options);
  auto naive = ebi::MakeSequentialMapping(cardinality);
  if (!tuned.ok() || !naive.ok()) {
    return 1;
  }

  const auto tuned_cost = ebi::TotalAccessCost(*tuned, mined);
  const auto naive_cost = ebi::TotalAccessCost(*naive, mined);
  if (!tuned_cost.ok() || !naive_cost.ok()) {
    return 1;
  }
  std::printf("\nmodel cost over mined predicates (bitmap vectors read):\n");
  std::printf("  sequential encoding : %d\n", *naive_cost);
  std::printf("  history-tuned       : %d\n", *tuned_cost);

  // Validate on real data: replay the full history against two indexes.
  auto table_or = ebi::GenerateTable(
      "F", n, {{"a", cardinality, ebi::Distribution::kUniform}}, 5);
  if (!table_or.ok()) {
    return 1;
  }
  const ebi::Table& table = **table_or;
  const ebi::Column* column = *table.FindColumn("a");

  ebi::IoAccountant naive_io;
  ebi::IoAccountant tuned_io;
  ebi::EncodedBitmapIndex naive_index(column, &table.existence(),
                                      &naive_io);
  ebi::EncodedBitmapIndex tuned_index(column, &table.existence(),
                                      &tuned_io);
  if (!naive_index.SetMapping(std::move(naive).value()).ok() ||
      !tuned_index.SetMapping(std::move(tuned).value()).ok() ||
      !naive_index.Build().ok() || !tuned_index.Build().ok()) {
    return 1;
  }
  for (const auto& pred : history) {
    std::vector<ebi::Value> values;
    for (ebi::ValueId v : pred) {
      values.push_back(ebi::Value::Int(static_cast<int64_t>(v)));
    }
    const auto a = naive_index.EvaluateIn(values);
    const auto b = tuned_index.EvaluateIn(values);
    if (!a.ok() || !b.ok() || !(*a == *b)) {
      std::printf("DISAGREEMENT\n");
      return 1;
    }
  }
  std::printf("\nreplaying all %zu queries on %zu rows:\n", history.size(),
              n);
  std::printf("  sequential encoding : %llu vector reads\n",
              static_cast<unsigned long long>(
                  naive_io.stats().vectors_read));
  std::printf("  history-tuned       : %llu vector reads (%.0f%% saved)\n",
              static_cast<unsigned long long>(tuned_io.stats().vectors_read),
              100.0 * (1.0 - static_cast<double>(
                                 tuned_io.stats().vectors_read) /
                                 static_cast<double>(
                                     naive_io.stats().vectors_read)));
  return 0;
}
