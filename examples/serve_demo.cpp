// Serving layer walkthrough: start a QueryService over a small sales
// table, run concurrent selections against a pinned snapshot, publish an
// append batch, and show that a reader pinned before the publish still
// sees its frozen version while new requests see the new epoch. Runs
// with production telemetry on: every request is trace-sampled into the
// ring, a workload log records each query, and the metrics registry is
// exported as Prometheus text + JSON on shutdown.
//
// Build & run:
//   cmake --build build --target serve_demo && ./build/examples/serve_demo

#include <cstdio>
#include <memory>

#include "serve/query_service.h"
#include "storage/table.h"

using ebi::Column;
using ebi::IndexKind;
using ebi::Predicate;
using ebi::Result;
using ebi::Table;
using ebi::Value;

namespace {

std::unique_ptr<Table> SalesTable() {
  auto table = std::make_unique<Table>("sales");
  if (!table->AddColumn("region", Column::Type::kInt64).ok() ||
      !table->AddColumn("product", Column::Type::kInt64).ok()) {
    return nullptr;
  }
  for (int64_t i = 0; i < 24; ++i) {
    if (!table->AppendRow({Value::Int(i % 4), Value::Int(i % 6)}).ok()) {
      return nullptr;
    }
  }
  return table;
}

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "serve_demo: %s failed\n", what);
    std::exit(1);
  }
}

}  // namespace

int main() {
  // One service, two indexed columns. Every request runs against an
  // immutable snapshot; appends publish new snapshots copy-on-write.
  ebi::serve::ServeOptions options;
  options.worker_threads = 2;
  options.queue_depth = 32;
  // Production telemetry (DESIGN.md §11): sample every request into the
  // trace ring (a demo-friendly 100%; production defaults to ~1%),
  // record each executed query into a workload log, and flag anything
  // over 50 ms as slow.
  options.telemetry.enabled = true;
  options.telemetry.sample_rate = 1.0;
  options.telemetry.slow_threshold_ms = 50.0;
  options.telemetry.workload_log_path = "serve_demo.workload.jsonl";
  options.telemetry.export_path_prefix = "serve_demo.metrics";
  ebi::serve::QueryService service(options);
  Check(service
            .Start(SalesTable(), {{"region", IndexKind::kEncodedBitmap},
                                  {"product", IndexKind::kSimpleBitmap}})
            .ok(),
        "Start");

  // A plain selection: region == 2 AND product == 2.
  const Result<ebi::serve::ServeResult> first =
      service.Select({Predicate::Eq("region", Value::Int(2)),
                      Predicate::Eq("product", Value::Int(2))});
  Check(first.ok(), "Select");
  std::printf("epoch %llu: region=2 AND product=2 -> %zu rows "
              "(%.3f ms queued, %.3f ms run)\n",
              static_cast<unsigned long long>(first.value().epoch),
              first.value().selection.count, first.value().queue_ms,
              first.value().run_ms);

  // Pin the current snapshot, then publish an append batch. The pin
  // keeps epoch 0 alive and frozen; the service moves on to epoch 1.
  ebi::serve::SnapshotManager::Pin pin = service.snapshots().Acquire();
  const Result<uint64_t> epoch = service.Append({
      {Value::Int(2), Value::Int(2)},
      {Value::Int(9), Value::Int(5)},  // region 9 expands the domain
  });
  Check(epoch.ok(), "Append");
  std::printf("append published epoch %llu\n",
              static_cast<unsigned long long>(epoch.value()));

  const Result<ebi::serve::ServeResult> fresh =
      service.Select({Predicate::Eq("region", Value::Int(2)),
                      Predicate::Eq("product", Value::Int(2))});
  Check(fresh.ok(), "Select after append");
  std::printf("epoch %llu sees %zu rows; pinned epoch %llu still has "
              "%zu total rows\n",
              static_cast<unsigned long long>(fresh.value().epoch),
              fresh.value().selection.count,
              static_cast<unsigned long long>(pin->epoch()), pin->NumRows());
  pin.Release();

  // Deadlines and admission control: a request whose deadline already
  // passed is rejected with kDeadlineExceeded instead of running.
  ebi::serve::RequestOptions expired;
  expired.deadline_ms = 0.0;
  const Result<ebi::serve::ServeResult> late =
      service.Select({Predicate::Eq("region", Value::Int(1))}, expired);
  std::printf("expired deadline -> %s\n", late.status().ToString().c_str());

  Check(service.Shutdown().ok(), "Shutdown");
  std::printf("drained; %llu snapshots reclaimed\n",
              static_cast<unsigned long long>(
                  service.snapshots().ReclaimedCount()));

  // What telemetry captured. Shutdown already flushed the workload log
  // and wrote serve_demo.metrics.prom / serve_demo.metrics.json.
  std::printf("telemetry: %llu traces sampled, %llu slow, %llu workload "
              "records -> %s\n",
              static_cast<unsigned long long>(
                  service.trace_ring()->TotalCaptured()),
              static_cast<unsigned long long>(
                  service.slow_log()->TotalCaptured()),
              static_cast<unsigned long long>(
                  service.workload_recorder()->RecordsWritten()),
              service.workload_recorder()->path().c_str());
  std::printf("summarize it:  ./build/tools/ebi_workload summary "
              "serve_demo.workload.jsonl\n");
  std::printf("exporter wrote serve_demo.metrics.prom and "
              "serve_demo.metrics.json\n");
  return 0;
}
