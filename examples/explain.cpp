// EXPLAIN demo: runs one multi-value selection through the cost-based
// planner with a trace sink installed, then renders the plan tree —
// every cost the paper's analysis talks about (candidate estimates, the
// chosen access path, minterms before/after Boolean reduction, vectors
// actually read) measured from the real execution.
//
// Usage: explain [--json] [--timing]

#include <cstdio>
#include <cstring>

#include "ebi/ebi.h"
#include "query/planner.h"

int main(int argc, char** argv) {
  using ebi::Value;

  bool as_json = false;
  ebi::obs::ExplainOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[i], "--timing") == 0) {
      options.include_timing = true;
    } else {
      std::printf("usage: explain [--json] [--timing]\n");
      return 1;
    }
  }

  // A SALES-like table: 60000 rows, product in [0, 500), day in [0, 365).
  ebi::Table table("SALES");
  if (!table.AddColumn("product", ebi::Column::Type::kInt64).ok() ||
      !table.AddColumn("day", ebi::Column::Type::kInt64).ok()) {
    return 1;
  }
  ebi::Rng rng(99);
  for (int i = 0; i < 60000; ++i) {
    if (!table
             .AppendRow({Value::Int(static_cast<int64_t>(
                             rng.UniformInt(500))),
                         Value::Int(static_cast<int64_t>(
                             rng.UniformInt(365)))})
             .ok()) {
      return 1;
    }
  }

  // Competing access paths per column, exactly as the planner sees them.
  ebi::IoAccountant io;
  const ebi::Column* product = *table.FindColumn("product");
  const ebi::Column* day = *table.FindColumn("day");
  ebi::SimpleBitmapIndex product_simple(product, &table.existence(), &io);
  ebi::EncodedBitmapIndex product_encoded(product, &table.existence(), &io);
  ebi::BitSlicedIndex day_sliced(day, &table.existence(), &io);
  ebi::EncodedBitmapIndex day_encoded(day, &table.existence(), &io);
  if (!product_simple.Build().ok() || !product_encoded.Build().ok() ||
      !day_sliced.Build().ok() || !day_encoded.Build().ok()) {
    return 1;
  }
  ebi::AccessPathPlanner planner(&table, &io);
  planner.RegisterIndex("product", &product_simple);
  planner.RegisterIndex("product", &product_encoded);
  planner.RegisterIndex("day", &day_sliced);
  planner.RegisterIndex("day", &day_encoded);

  // The Figure 2 shape: a wide IN-list (encoded-bitmap territory) ANDed
  // with a range (bit-sliced territory).
  std::vector<Value> products;
  for (int64_t p = 100; p < 132; ++p) {
    products.push_back(Value::Int(p));
  }
  const std::vector<ebi::Predicate> query = {
      ebi::Predicate::In("product", products),
      ebi::Predicate::Between("day", 30, 120)};

  ebi::obs::QueryTrace trace;
  const auto sel = planner.ExplainSelect(query, &trace);
  if (!sel.ok()) {
    std::printf("query failed: %s\n", sel.status().ToString().c_str());
    return 1;
  }

  if (as_json) {
    std::printf("%s\n", ebi::obs::ExplainJson(trace, options).c_str());
  } else {
    std::printf("EXPLAIN ANALYZE (%zu rows, %s)\n\n%s", sel->count,
                sel->io.ToString().c_str(),
                ebi::obs::ExplainText(trace, options).c_str());
    std::printf("\nprocess-wide metrics so far:\n%s",
                ebi::obs::MetricsRegistry::Global().ToString().c_str());
  }
  return 0;
}
