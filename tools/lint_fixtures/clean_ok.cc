// lint-fixture-path: src/query/clean.cc
// Known-good: mentions every banned construct only in comments and
// string literals ("new BitVector", "std::thread", "rand()"), which the
// linter must not flag.
#include "util/bitvector.h"

namespace ebi {

// A comment saying `new Foo` or std::thread must not fire.
const char* Describe() {
  return "allocated with new BitVector, seeded without rand()";
}

}  // namespace ebi
