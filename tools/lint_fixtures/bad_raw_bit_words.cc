// lint-fixture-path: src/query/raw_words.cc
// Known-bad: word-level bit arithmetic above the src/util kernel layer.
#include "util/bitvector.h"

namespace ebi {

size_t CountDirectly(const BitVector& bits, size_t i) {
  size_t total = static_cast<size_t>(
      __builtin_popcountll(bits.words()[i >> 6]));
  total += bits.words()[0] & 63;
  return total;
}

}  // namespace ebi
