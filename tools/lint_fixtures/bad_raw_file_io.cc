// lint-fixture-path: src/query/result_dumper.cc
// Known-bad fixture: raw file I/O outside src/storage/engine/. Durable
// bytes must flow through the engine's checksummed pages or the WAL,
// not ad-hoc stdio calls sprinkled through the query layer.

#include <cstdio>

namespace ebi {

bool DumpResult(const char* path) {
  std::FILE* out = std::fopen(path, "wb");
  if (out == nullptr) {
    return false;
  }
  const char payload[] = {0x01, 0x02, 0x03, 0x04};
  const bool ok = std::fwrite(payload, 1, sizeof(payload), out) ==
                  sizeof(payload);
  std::fclose(out);
  return ok;
}

}  // namespace ebi
