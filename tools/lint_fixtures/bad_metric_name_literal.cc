// lint-fixture-path: src/query/observe_site.cc
//
// A metric name spelled as a raw string literal outside
// src/obs/metric_names.h: instrumentation sites must reference the
// kMetric* constants so a typo cannot silently split a time series.
// (A comment mentioning "ebi.query.count" must NOT fire the rule.)

void ObserveSomething(int value) {
  RecordCounter("ebi.query.count", value);
}
