// lint-fixture-path: src/query/misguarded.h
// Known-bad: guard name does not match the file's path.
#ifndef EBI_SOMETHING_ELSE_H_
#define EBI_SOMETHING_ELSE_H_

namespace ebi {

inline int Nine() { return 9; }

}  // namespace ebi

#endif  // EBI_SOMETHING_ELSE_H_
