// lint-fixture-path: tests/flaky_test.cc
// Known-bad: unseeded randomness makes the test irreproducible.
#include <cstdlib>
#include <ctime>

namespace ebi {

int RollDice() {
  srand(static_cast<unsigned>(time(nullptr)));
  return rand() % 6;
}

}  // namespace ebi
