// lint-fixture-path: src/serve/bad_raw_mutex.cc
// Raw std synchronization primitives inside a concurrency layer (so
// raw-sync stays quiet): the serve layer must lock through ebi::Mutex /
// MutexLock, which carry the capability annotations and the debug
// lock-rank checks a raw std::mutex silently bypasses.
#include <condition_variable>
#include <mutex>

namespace ebi {

int RawGuardedCounter() {
  static std::mutex mu;
  static std::condition_variable cv;
  static int count = 0;
  const std::lock_guard<std::mutex> lock(mu);
  cv.notify_all();
  return ++count;
}

}  // namespace ebi
