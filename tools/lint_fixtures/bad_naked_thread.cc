// lint-fixture-path: src/query/rogue_thread.cc
// Known-bad: spawning threads outside the exec::ThreadPool.
#include <thread>

namespace ebi {

void RunDetached(void (*fn)()) {
  std::thread worker(fn);
  worker.detach();
}

}  // namespace ebi
