// lint-fixture-path: src/index/leaky.cc
// Known-bad: raw `new` expressing ownership by hand.
#include "util/bitvector.h"

namespace ebi {

BitVector* MakeLeaked() {
  return new BitVector(64);
}

}  // namespace ebi
