// lint-fixture-path: src/serve/bad_mutex_guarded_fields.cc
// A class that owns an ebi::Mutex with an unannotated mutable member:
// `pending_` is mutated under mu_ in practice but nothing ties it to the
// mutex, so -Wthread-safety would never notice an unlocked access. Every
// mutable field of a mutex-owning class needs EBI_GUARDED_BY /
// EBI_PT_GUARDED_BY or an EBI_UNGUARDED("reason") waiver.
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ebi {

class BadQueue {
 public:
  void Push(int v) {
    const MutexLock lock(mu_);
    pending_.push_back(v);
    count_ += 1;
  }

 private:
  const int capacity_ = 16;
  Mutex mu_{lock_rank::kLeafBarrier, "BadQueue::mu_"};
  std::vector<int> pending_;
  int count_ EBI_GUARDED_BY(mu_) = 0;
};

}  // namespace ebi
