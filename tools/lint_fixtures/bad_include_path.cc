// lint-fixture-path: src/query/stale_include.cc
// Known-bad: the quoted include resolves against no real file.
#include "query/removed_header.h"

namespace ebi {

int Ten() { return 10; }

}  // namespace ebi
