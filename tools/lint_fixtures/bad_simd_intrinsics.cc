// lint-fixture-path: src/query/fast_merge.cc
// Known-bad: raw SIMD intrinsics above src/util/kernels/ — this code
// would crash on CPUs without AVX2 because nothing gates it behind the
// runtime CPUID check the kernel registry performs.
#include <immintrin.h>

#include "util/bitvector.h"

namespace ebi {

void MergeDirectly(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a, b));
  }
  for (; i < n; ++i) {
    dst[i] |= src[i];
  }
}

}  // namespace ebi
