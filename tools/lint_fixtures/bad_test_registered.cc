// lint-fixture-path: tests/ghost_test.cc
// Known-bad: defines a TEST but is absent from tests/CMakeLists.txt, so
// it would silently never run.
#include <gtest/gtest.h>

namespace ebi {
namespace {

TEST(GhostTest, NeverRuns) {
  EXPECT_TRUE(true);
}

}  // namespace
}  // namespace ebi
