// lint-fixture-path: src/query/bad_sync.cc
// Raw synchronization outside the concurrency layers: the query layer
// is single-threaded by contract and must share state through snapshots
// or the pool, not ad-hoc shared atomics. (Atomics only, on purpose:
// mutex primitives would additionally fire raw-mutex.)
#include <atomic>

namespace ebi {

int SharedCounter() {
  static std::atomic<int> count{0};
  return count.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace ebi
