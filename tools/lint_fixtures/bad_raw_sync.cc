// lint-fixture-path: src/query/bad_sync.cc
// Raw synchronization outside src/serve/ and src/exec/: the query layer
// is single-threaded by contract and must share state through snapshots
// or the pool, not ad-hoc mutexes.
#include <mutex>

namespace ebi {

int GuardedCounter() {
  static std::mutex mu;
  static int count = 0;
  const std::lock_guard<std::mutex> lock(mu);
  return ++count;
}

}  // namespace ebi
