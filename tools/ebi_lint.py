#!/usr/bin/env python3
"""ebi-lint: repo-specific static checks for the EBI codebase.

Enforces structural conventions the compiler cannot:

  raw-bit-words     Bit-word arithmetic (word indexing, GCC bit builtins)
                    is confined to src/util, the kernel layer. Everything
                    above it goes through BitVector / bit_util.
  simd-intrinsics   Raw SIMD (<immintrin.h>/<arm_neon.h> includes, _mm*/
                    __m128/256/512 / NEON v*q_* intrinsics) is confined to
                    src/util/kernels/, the runtime-dispatched backend
                    layer. Everything else calls the BitmapKernels vtable
                    so vector code is only ever reached behind the CPUID
                    check.
  naked-new         No raw `new` outside src/exec/thread_pool.*; ownership
                    is expressed with std::make_unique / containers.
  naked-thread      No direct std::thread outside src/exec/thread_pool.*;
                    parallelism borrows workers from the pool so thread
                    counts stay centrally bounded.
  raw-sync          Synchronization (ebi::Mutex/CondVar, std::atomic,
                    and the raw std primitives) inside src/ is confined
                    to src/serve/, src/exec/, src/storage/engine/ and
                    src/obs/ — the concurrency layers. Everything else
                    is single-threaded by contract and shared through
                    snapshots or the pool. (Allowlisted: the wrapper
                    layer itself in src/util/sync.* and the
                    IoAccountant's relaxed counters.)
  raw-mutex         Raw std::mutex / std::condition_variable /
                    std::lock_guard / std::unique_lock (and friends) are
                    banned everywhere in src/ outside src/util/sync.*:
                    locking goes through ebi::Mutex / MutexLock /
                    CondVar, which carry the capability annotations and
                    the debug lock-rank checks. A raw primitive would
                    silently bypass both.
  mutex-guarded-fields
                    A class that owns an ebi::Mutex member must annotate
                    every mutable data member with EBI_GUARDED_BY /
                    EBI_PT_GUARDED_BY, or document why it needs no guard
                    with EBI_UNGUARDED("reason"). const members, atomics
                    and the synchronization members themselves are
                    exempt. Keeps the capability analysis honest: an
                    unannotated field in a locking class is exactly
                    where a data race hides from -Wthread-safety.
  raw-file-io       Raw file I/O (fopen/fwrite/fsync/fstream/mmap...)
                    inside src/ is confined to src/storage/engine/, the
                    durability layer, so every byte that must survive a
                    crash flows through checksummed pages or the WAL.
                    (Allowlisted: the CSV loader and the telemetry
                    sinks, which predate the engine and write
                    best-effort diagnostic artifacts.)
  nondeterminism    No rand()/srand()/std::random_device/time(NULL) in
                    src/ or tests/ — randomized code takes an explicit
                    seeded Rng so every run is reproducible.
  header-guard      Every header uses an #ifndef guard derived from its
                    path (EBI_<PATH>_H_); #pragma once is not used, so
                    guard style stays greppable and uniform.
  include-path      Quoted #include paths must resolve against src/ (or
                    the including file's directory) — catches stale
                    includes that only work through accidental -I paths.
  test-registered   Every tests/*.cc that defines a TEST must be
                    registered in tests/CMakeLists.txt, so no test file
                    silently stops running.
  metric-name-literal
                    Metric names ("ebi.*") are declared once in
                    src/obs/metric_names.h and referenced as kMetric*
                    constants everywhere else. A quoted "ebi.*" literal
                    anywhere else is a typo waiting to split a time
                    series.

Exceptions live in tools/ebi_lint_allow.txt as `<rule> <path>` lines
(rule `nolint` entries are consumed by scripts/lint.sh's NOLINT audit).

Usage:
  tools/ebi_lint.py             lint the repo; exit 1 on findings
  tools/ebi_lint.py --selftest  verify each rule against the known-bad
                                fixtures in tools/lint_fixtures/
"""

import argparse
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ALLOWLIST = os.path.join(ROOT, "tools", "ebi_lint_allow.txt")
FIXTURES = os.path.join(ROOT, "tools", "lint_fixtures")

SCAN_DIRS = ("src", "tests", "examples", "bench")
EXTENSIONS = (".h", ".cc", ".cpp")


def strip_code(text):
    """Blanks comments and string/char literals, preserving newlines and
    column positions so line numbers in findings stay exact."""
    out = []
    i, n = 0, len(text)
    state = None  # None | "line" | "block" | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # inside a string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def grep_lines(stripped, pattern):
    regex = re.compile(pattern)
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if regex.search(line):
            yield lineno, line.strip()


# --- Rules. Each takes (path, text, stripped) with `path` repo-relative
# --- and yields Findings. Path scoping happens inside the rule.

BIT_WORD_PATTERNS = (
    r"__builtin_(popcount|ctz|clz)",
    r">>\s*6\s*\]",
    r"&\s*63\b",
)


def rule_raw_bit_words(path, text, stripped):
    if not path.startswith("src/") or path.startswith("src/util/"):
        return
    for pattern in BIT_WORD_PATTERNS:
        for lineno, line in grep_lines(stripped, pattern):
            yield Finding(
                "raw-bit-words", path, lineno,
                f"raw bit-word access `{line}` outside src/util; use "
                "BitVector / bit_util kernels")


SIMD_PATTERNS = (
    r"^\s*#\s*include\s*<(immintrin|x86intrin|emmintrin|smmintrin|"
    r"tmmintrin|nmmintrin|wmmintrin|xmmintrin|pmmintrin|arm_neon|"
    r"arm_sve)\.h>",
    r"\b_mm\d*_\w+\s*\(",
    r"\b__m(128|256|512)i?\b",
    r"\bv(and|orr|eor|bic|mvn|cnt|addv|ld1|st1|dup|add)q?(v)?q?_\w+\s*\(",
)


def rule_simd_intrinsics(path, text, stripped):
    if path.startswith("src/util/kernels/"):
        return
    for pattern in SIMD_PATTERNS:
        for lineno, line in grep_lines(stripped, pattern):
            yield Finding(
                "simd-intrinsics", path, lineno,
                f"raw SIMD `{line}` outside src/util/kernels/; go through "
                "the kernels::BitmapKernels vtable so vector code stays "
                "behind the runtime CPUID check")


def rule_naked_new(path, text, stripped):
    if path.startswith("src/exec/thread_pool."):
        return
    for lineno, line in grep_lines(stripped, r"\bnew\s+[A-Za-z_:]"):
        yield Finding(
            "naked-new", path, lineno,
            f"raw `new` in `{line}`; use std::make_unique or a container")


def rule_naked_thread(path, text, stripped):
    if path.startswith("src/exec/thread_pool."):
        return
    for lineno, line in grep_lines(stripped, r"\bstd::thread\b"):
        yield Finding(
            "naked-thread", path, lineno,
            "direct std::thread use; borrow workers from exec::ThreadPool")


SYNC_PATTERN = (
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any|atomic|atomic_flag|atomic_ref|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|call_once|once_flag)\b"
    # The annotated wrappers count as synchronization too: a layer that
    # is single-threaded by contract has no business taking ebi locks.
    r"|\b(Mutex|MutexLock|CondVar)\b")

SYNC_ALLOWED_PREFIXES = ("src/serve/", "src/exec/", "src/storage/engine/",
                         "src/obs/")


def rule_raw_sync(path, text, stripped):
    if not path.startswith("src/"):
        return
    if path.startswith(SYNC_ALLOWED_PREFIXES):
        return
    for lineno, line in grep_lines(stripped, SYNC_PATTERN):
        yield Finding(
            "raw-sync", path, lineno,
            f"raw synchronization `{line}` outside the concurrency layers "
            "(src/serve/, src/exec/, src/storage/engine/, src/obs/); share "
            "state through snapshots or the thread pool")


RAW_MUTEX_PATTERN = (
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")

RAW_MUTEX_ALLOWED = ("src/util/sync.h", "src/util/sync.cc")


def rule_raw_mutex(path, text, stripped):
    if not path.startswith("src/") or path in RAW_MUTEX_ALLOWED:
        return
    for lineno, line in grep_lines(stripped, RAW_MUTEX_PATTERN):
        yield Finding(
            "raw-mutex", path, lineno,
            f"raw std synchronization primitive `{line}`; use ebi::Mutex / "
            "MutexLock / CondVar (util/sync.h) so the capability "
            "annotations and debug lock-rank checks apply")


CLASS_HEAD_RE = re.compile(
    r"\b(class|struct)\s+"
    r"(?:EBI_\w+\s*(?:\([^()]*\))?\s+)*"     # EBI_CAPABILITY(...) etc.
    r"([A-Za-z_]\w*)\s*(?:final\s*)?"
    r"(?::[^;{}]*)?\{")

FIELD_ANNOTATIONS = ("EBI_GUARDED_BY", "EBI_PT_GUARDED_BY", "EBI_UNGUARDED")

# Statements that are not mutable data members: functions and anything
# with parens (annotations were checked first), nested types, aliases,
# statics, immutables, and the synchronization members themselves.
FIELD_EXEMPT_RE = re.compile(
    r"[()]|\b(using|typedef|friend|static|constexpr|enum|class|struct|"
    r"operator|const|Mutex|CondVar)\b|std::atomic|~|#")

FIELD_DECL_RE = re.compile(r"[\w>\]*&]\s+[A-Za-z_]\w*\s*(\[[^\]]*\])?\s*$")


def class_bodies(stripped):
    """Yields (name, body_start, top_level_text) for each class/struct,
    where top_level_text has nested brace regions blanked (preserving
    offsets) so member statements can be split on `;`."""
    for match in CLASS_HEAD_RE.finditer(stripped):
        if stripped[max(0, match.start() - 6):match.start()].strip() \
                .endswith("enum"):
            continue
        open_at = match.end() - 1
        depth = 0
        close_at = None
        for i in range(open_at, len(stripped)):
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
                if depth == 0:
                    close_at = i
                    break
        if close_at is None:
            continue
        body = stripped[open_at + 1:close_at]
        top = []
        depth = 0
        for c in body:
            if c == "{":
                depth += 1
                top.append(" ")
            elif c == "}":
                depth -= 1
                top.append(" ")
            else:
                top.append(c if (depth == 0 or c == "\n") else " ")
        yield match.group(2), open_at + 1, "".join(top)


def rule_mutex_guarded_fields(path, text, stripped):
    if not path.startswith("src/") or path in RAW_MUTEX_ALLOWED:
        return
    for name, body_start, top in class_bodies(stripped):
        if not re.search(r"\bMutex\b", top):
            continue
        at = 0
        for statement in top.split(";"):
            stmt_start = body_start + at
            at += len(statement) + 1
            stmt = re.sub(r"\b(public|private|protected)\s*:", " ", statement)
            stmt = re.sub(r"=[^;]*$", "", stmt).strip()
            if not stmt or any(a in statement for a in FIELD_ANNOTATIONS):
                continue
            if FIELD_EXEMPT_RE.search(stmt):
                continue
            if not FIELD_DECL_RE.search(stmt):
                continue
            lineno = stripped.count("\n", 0, stmt_start + len(statement)) + 1
            yield Finding(
                "mutex-guarded-fields", path, lineno,
                f"member `{stmt.split()[-1]}` of mutex-owning "
                f"{name} lacks EBI_GUARDED_BY / EBI_PT_GUARDED_BY / "
                "EBI_UNGUARDED(reason)")


FILE_IO_PATTERNS = (
    r"^\s*#\s*include\s*<fstream>",
    r"\bstd::(i|o)?fstream\b",
    r"\b(std::)?(fopen|fwrite|fread|freopen|tmpfile)\s*\(",
    r"\b(fsync|fdatasync|fileno|mmap|pread|pwrite|ftruncate)\s*\(",
)

FILE_IO_ALLOWED_PREFIX = "src/storage/engine/"


def rule_raw_file_io(path, text, stripped):
    if not path.startswith("src/"):
        return
    if path.startswith(FILE_IO_ALLOWED_PREFIX):
        return
    for pattern in FILE_IO_PATTERNS:
        for lineno, line in grep_lines(stripped, pattern):
            yield Finding(
                "raw-file-io", path, lineno,
                f"raw file I/O `{line}` outside {FILE_IO_ALLOWED_PREFIX}; "
                "durable bytes go through the storage engine's pages or "
                "WAL")


NONDET_PATTERNS = (
    (r"\b(s?rand)\s*\(", "libc {0}() is unseeded nondeterminism"),
    (r"\bstd::random_device\b", "std::random_device is nondeterministic"),
    (r"\btime\s*\(\s*(NULL|nullptr|0)\s*\)", "wall-clock seeding"),
)


def rule_nondeterminism(path, text, stripped):
    if not (path.startswith("src/") or path.startswith("tests/")):
        return
    for pattern, why in NONDET_PATTERNS:
        for lineno, line in grep_lines(stripped, pattern):
            match = re.search(pattern, line)
            name = match.group(1) if match.lastindex else ""
            yield Finding(
                "nondeterminism", path, lineno,
                why.format(name) + "; use an explicitly seeded ebi::Rng")


def expected_guard(path):
    parts = path.split("/")
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem)
    return "EBI_" + stem.upper() + "_"


def rule_header_guard(path, text, stripped):
    if not path.endswith(".h"):
        return
    if re.search(r"^\s*#\s*pragma\s+once", stripped, re.MULTILINE):
        yield Finding(
            "header-guard", path, 1,
            "#pragma once; this repo uses #ifndef guards uniformly")
    guard = expected_guard(path)
    match = re.search(r"^\s*#\s*ifndef\s+(\S+)", stripped, re.MULTILINE)
    if match is None:
        yield Finding("header-guard", path, 1,
                      f"missing include guard (expected {guard})")
        return
    if match.group(1) != guard:
        yield Finding(
            "header-guard", path, 1,
            f"guard {match.group(1)} does not match path (expected {guard})")
        return
    if not re.search(r"^\s*#\s*define\s+" + re.escape(guard),
                     stripped, re.MULTILINE):
        yield Finding("header-guard", path, 1,
                      f"#ifndef {guard} without matching #define")


def rule_include_path(path, text, stripped):
    raw_lines = text.splitlines()
    for lineno, _ in grep_lines(stripped, r"^\s*#\s*include\s+\""):
        # strip_code blanks string-literal contents, so recover the
        # include path from the raw line.
        match = re.search(r'#\s*include\s+"([^"]+)"', raw_lines[lineno - 1])
        if match is None:
            continue
        inc = match.group(1)
        candidates = [
            os.path.join(ROOT, "src", inc),
            os.path.join(ROOT, os.path.dirname(path), inc),
        ]
        if not any(os.path.isfile(c) for c in candidates):
            yield Finding(
                "include-path", path, lineno,
                f'#include "{inc}" resolves against neither src/ nor the '
                "including directory")


def rule_test_registered(path, text, stripped, cmake_text=None):
    if not (path.startswith("tests/") and path.endswith(".cc")):
        return
    if not re.search(r"\bTEST(_F|_P)?\s*\(", stripped):
        return
    if cmake_text is None:
        cmake_path = os.path.join(ROOT, "tests", "CMakeLists.txt")
        with open(cmake_path, encoding="utf-8") as f:
            cmake_text = f.read()
    name = os.path.splitext(os.path.basename(path))[0]
    if not re.search(r"\b" + re.escape(name) + r"\b", cmake_text):
        yield Finding(
            "test-registered", path, 1,
            f"{name} defines TESTs but is not registered in "
            "tests/CMakeLists.txt")


METRIC_NAMES_HEADER = "src/obs/metric_names.h"


def rule_metric_name_literal(path, text, stripped):
    if path == METRIC_NAMES_HEADER:
        return
    # strip_code blanks string contents but keeps the opening quote, so a
    # raw-text match whose quote survives in the stripped text is a real
    # string literal (not a comment mentioning one).
    for match in re.finditer(r'"ebi\.', text):
        at = match.start()
        if stripped[at] != '"':
            continue
        lineno = text.count("\n", 0, at) + 1
        literal = re.match(r'"[^"\n]*"?', text[at:]).group(0)
        yield Finding(
            "metric-name-literal", path, lineno,
            f"metric name literal {literal} outside {METRIC_NAMES_HEADER}; "
            "reference the kMetric* constant instead")


RULES = (
    rule_raw_bit_words,
    rule_simd_intrinsics,
    rule_naked_new,
    rule_naked_thread,
    rule_raw_sync,
    rule_raw_mutex,
    rule_mutex_guarded_fields,
    rule_raw_file_io,
    rule_nondeterminism,
    rule_header_guard,
    rule_include_path,
    rule_test_registered,
    rule_metric_name_literal,
)

RULE_NAMES = (
    "raw-bit-words",
    "simd-intrinsics",
    "naked-new",
    "naked-thread",
    "raw-sync",
    "raw-mutex",
    "mutex-guarded-fields",
    "raw-file-io",
    "nondeterminism",
    "header-guard",
    "include-path",
    "test-registered",
    "metric-name-literal",
)


def load_allowlist():
    allowed = set()
    if not os.path.isfile(ALLOWLIST):
        return allowed
    with open(ALLOWLIST, encoding="utf-8") as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                print(f"ebi-lint: malformed allowlist line: {raw.rstrip()}",
                      file=sys.stderr)
                sys.exit(2)
            allowed.add((parts[0], parts[1]))
    return allowed


def lint_file(path, text, cmake_text=None):
    stripped = strip_code(text)
    findings = []
    for rule in RULES:
        if rule is rule_test_registered:
            findings.extend(rule(path, text, stripped, cmake_text))
        else:
            findings.extend(rule(path, text, stripped))
    return findings


def repo_files():
    for top in SCAN_DIRS:
        base = os.path.join(ROOT, top)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(EXTENSIONS):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, ROOT)


def run_lint():
    allowed = load_allowlist()
    used = set()
    findings = []
    for path in repo_files():
        with open(os.path.join(ROOT, path), encoding="utf-8") as f:
            text = f.read()
        for finding in lint_file(path, text):
            key = (finding.rule, finding.path)
            if key in allowed:
                used.add(key)
                continue
            findings.append(finding)
    for finding in findings:
        print(finding)
    stale = {k for k in allowed if k[0] != "nolint"} - used
    for rule, path in sorted(stale):
        print(f"{ALLOWLIST}: stale allowlist entry `{rule} {path}` "
              "(nothing to allow)")
    if findings or stale:
        print(f"ebi-lint: {len(findings)} finding(s), "
              f"{len(stale)} stale allowlist entr(ies)")
        return 1
    print("ebi-lint: clean")
    return 0


FIXTURE_PATH_RE = re.compile(r"lint-fixture-path:\s*(\S+)")


def run_selftest():
    """Every tools/lint_fixtures/bad_<rule>* file must trigger exactly its
    rule at its pretend path; clean_* fixtures must trigger nothing."""
    if not os.path.isdir(FIXTURES):
        print(f"ebi-lint: fixture directory {FIXTURES} missing",
              file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for name in sorted(os.listdir(FIXTURES)):
        full = os.path.join(FIXTURES, name)
        if not name.endswith(EXTENSIONS):
            continue
        with open(full, encoding="utf-8") as f:
            text = f.read()
        match = FIXTURE_PATH_RE.search(text)
        if match is None:
            print(f"FAIL {name}: no `lint-fixture-path:` header")
            failures += 1
            continue
        pretend = match.group(1)
        # An unregistered-test fixture must not be saved by the real
        # CMakeLists, so give the registration rule an empty one.
        fired = {f.rule for f in lint_file(pretend, text, cmake_text="")}
        stem = os.path.splitext(name)[0]
        checked += 1
        if stem.startswith("clean_"):
            if fired:
                print(f"FAIL {name}: expected clean, fired {sorted(fired)}")
                failures += 1
            else:
                print(f"ok   {name}: clean as expected")
            continue
        expected = stem[len("bad_"):].replace("_", "-")
        if expected not in RULE_NAMES:
            print(f"FAIL {name}: fixture names unknown rule {expected}")
            failures += 1
        elif fired != {expected}:
            print(f"FAIL {name}: expected exactly {{{expected}}}, "
                  f"fired {sorted(fired)}")
            failures += 1
        else:
            print(f"ok   {name}: fires {expected} and nothing else")
    missing = set(RULE_NAMES) - {
        os.path.splitext(n)[0][len("bad_"):].replace("_", "-")
        for n in os.listdir(FIXTURES) if n.startswith("bad_")
    }
    if missing:
        print(f"FAIL: rules without a bad fixture: {sorted(missing)}")
        failures += 1
    if failures:
        print(f"ebi-lint selftest: {failures} failure(s)")
        return 1
    print(f"ebi-lint selftest: {checked} fixtures ok, all rules covered")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--selftest", action="store_true",
                        help="verify the rules against known-bad fixtures")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    args = parser.parse_args()
    if args.list_rules:
        for name in RULE_NAMES:
            print(name)
        return 0
    if args.selftest:
        return run_selftest()
    return run_lint()


if __name__ == "__main__":
    sys.exit(main())
