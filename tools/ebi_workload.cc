// ebi_workload: summarize workload logs recorded by the serve layer
// (obs::WorkloadRecorder JSONL files, DESIGN.md §11).
//
//   ebi_workload summary <log> [<log>...]    per-log and overall totals
//   ebi_workload top [--k N] <log> [...]     hottest predicates by count
//   ebi_workload json <log> [...]            re-emit parsed records as JSON
//
// A <log> argument names the live file of a rotation set; rotated
// generations (<log>.1, <log>.2, ...) are read automatically, oldest
// first. Damaged lines (truncated tails, unknown schema versions) are
// skipped and reported on stderr, never fatal.
//
// With --cluster, each <log> is the base workload_log_path of a
// ClusterQueryService: the per-shard sets the cluster layer writes
// (<log>.s0, <log>.s1, ... and replica sets <log>.s0r, ...) are
// discovered and read instead, and `summary` prints a per-shard
// breakdown ahead of the merged totals — the fan-in companion to the
// serve tier's fan-out (DESIGN.md §14).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "obs/workload_recorder.h"

namespace {

using ebi::obs::ReadWorkloadLogSet;
using ebi::obs::WorkloadLogRead;
using ebi::obs::WorkloadPredicate;
using ebi::obs::WorkloadRecord;
using ebi::obs::WorkloadRecordJson;

constexpr size_t kMaxGenerations = 16;
constexpr size_t kMaxShards = 64;

int Usage() {
  std::fprintf(stderr,
               "usage: ebi_workload <summary|top|json> [--k N] [--cluster] "
               "<log> [<log>...]\n");
  return 2;
}

/// One log set to read: `path` is the live file of a rotation set,
/// `label` is what the per-shard breakdown calls it.
struct LogSource {
  std::string label;
  std::string path;
};

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::fclose(f);
  return true;
}

/// Expands a cluster base path into the per-shard log sets the serve
/// tier writes: <base>.s0, <base>.s1, ... plus replica sets
/// <base>.s<N>r when hedging was on. Shards are contiguous from 0, so
/// discovery stops at the first missing primary.
std::vector<LogSource> ExpandCluster(const std::string& base) {
  std::vector<LogSource> sources;
  for (size_t s = 0; s < kMaxShards; ++s) {
    const std::string primary = base + ".s" + std::to_string(s);
    if (!FileExists(primary)) {
      break;
    }
    sources.push_back({"shard " + std::to_string(s), primary});
    const std::string replica = primary + "r";
    if (FileExists(replica)) {
      sources.push_back({"shard " + std::to_string(s) + " (replica)",
                         replica});
    }
  }
  return sources;
}

struct PredicateGroup {
  std::string column;
  std::string op;
  uint64_t count = 0;
  uint64_t rows = 0;
  std::vector<int64_t> literals;
  int64_t lo = 0;
  int64_t hi = 0;
  bool has_range = false;
};

std::string GroupText(const PredicateGroup& group) {
  std::string out = group.column;
  if (group.has_range) {
    out += " range [" + std::to_string(group.lo) + ", " +
           std::to_string(group.hi) + "]";
    return out;
  }
  out += " " + group.op;
  if (!group.literals.empty()) {
    out += " {";
    for (size_t i = 0; i < group.literals.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += std::to_string(group.literals[i]);
    }
    out += "}";
  }
  return out;
}

double Quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Per-shard breakdown printed ahead of the merged totals in --cluster
/// summary mode: where did the fan-out's work actually land?
void PrintShardBreakdown(
    const std::vector<std::pair<LogSource, WorkloadLogRead>>& reads) {
  std::printf("%-20s %-8s %-10s %-10s %-10s\n", "shard", "records",
              "p50_ms", "p99_ms", "mean_ms");
  for (const auto& [source, read] : reads) {
    std::vector<double> latencies;
    latencies.reserve(read.records.size());
    double total_ms = 0.0;
    for (const WorkloadRecord& r : read.records) {
      latencies.push_back(r.total_ms);
      total_ms += r.total_ms;
    }
    std::sort(latencies.begin(), latencies.end());
    const double n = latencies.empty()
                         ? 1.0
                         : static_cast<double>(latencies.size());
    std::printf("%-20s %-8zu %-10.3f %-10.3f %-10.3f\n",
                source.label.c_str(), read.records.size(),
                Quantile(latencies, 0.5), Quantile(latencies, 0.99),
                total_ms / n);
  }
  std::printf("\n");
}

int RunSummary(const std::vector<WorkloadRecord>& records, size_t skipped) {
  std::printf("records:        %zu\n", records.size());
  std::printf("skipped lines:  %zu\n", skipped);
  if (records.empty()) {
    return 0;
  }
  double total_ms = 0.0;
  double exec_ms = 0.0;
  double selectivity = 0.0;
  uint64_t vectors = 0;
  uint64_t bytes = 0;
  std::vector<double> latencies;
  latencies.reserve(records.size());
  std::map<std::string, uint64_t> kernels;
  std::map<uint64_t, uint64_t> epochs;
  for (const WorkloadRecord& r : records) {
    total_ms += r.total_ms;
    exec_ms += r.execute_ms;
    selectivity += r.selectivity;
    vectors += r.vectors;
    bytes += r.bytes;
    latencies.push_back(r.total_ms);
    kernels[r.kernel] += 1;
    epochs[r.epoch] += 1;
  }
  std::sort(latencies.begin(), latencies.end());
  const double n = static_cast<double>(records.size());
  std::printf("latency ms:     mean=%.3f p50=%.3f p99=%.3f max=%.3f\n",
              total_ms / n, Quantile(latencies, 0.5),
              Quantile(latencies, 0.99), latencies.back());
  std::printf("execute ms:     mean=%.3f (%.1f%% of total)\n", exec_ms / n,
              total_ms > 0 ? 100.0 * exec_ms / total_ms : 0.0);
  std::printf("selectivity:    mean=%.4f\n", selectivity / n);
  std::printf("vectors read:   %llu (%.1f per query)\n",
              static_cast<unsigned long long>(vectors), vectors / n);
  std::printf("bytes read:     %llu\n", static_cast<unsigned long long>(bytes));
  std::printf("epochs seen:    %zu\n", epochs.size());
  for (const auto& [kernel, count] : kernels) {
    std::printf("kernel %-8s %llu\n", (kernel + ":").c_str(),
                static_cast<unsigned long long>(count));
  }
  return 0;
}

int RunTop(const std::vector<WorkloadRecord>& records, size_t k) {
  // Group by fingerprint; representative literals from first occurrence.
  std::map<uint64_t, PredicateGroup> groups;
  for (const WorkloadRecord& r : records) {
    for (const WorkloadPredicate& p : r.predicates) {
      PredicateGroup& group = groups[p.fingerprint];
      if (group.count == 0) {
        group.column = p.column;
        group.op = p.op;
        group.literals = p.literals;
        group.lo = p.lo;
        group.hi = p.hi;
        group.has_range = p.has_range;
      }
      group.count += 1;
      group.rows += p.rows;
    }
  }
  std::vector<PredicateGroup> ranked;
  ranked.reserve(groups.size());
  for (auto& [fingerprint, group] : groups) {
    (void)fingerprint;
    ranked.push_back(std::move(group));
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const PredicateGroup& a, const PredicateGroup& b) {
                     return a.count > b.count;
                   });
  if (ranked.size() > k) {
    ranked.resize(k);
  }
  std::printf("%-8s %-12s %s\n", "count", "avg_rows", "predicate");
  for (const PredicateGroup& group : ranked) {
    std::printf("%-8llu %-12.1f %s\n",
                static_cast<unsigned long long>(group.count),
                static_cast<double>(group.rows) /
                    static_cast<double>(group.count),
                GroupText(group).c_str());
  }
  return 0;
}

int RunJson(const std::vector<WorkloadRecord>& records) {
  std::printf("[");
  for (size_t i = 0; i < records.size(); ++i) {
    std::printf("%s%s", i > 0 ? ",\n " : "",
                WorkloadRecordJson(records[i]).c_str());
  }
  std::printf("]\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string mode = argv[1];
  size_t k = 10;
  bool cluster = false;
  std::vector<std::string> paths;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--k") == 0) {
      if (i + 1 >= argc) {
        return Usage();
      }
      k = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
      continue;
    }
    if (std::strcmp(argv[i], "--cluster") == 0) {
      cluster = true;
      continue;
    }
    paths.emplace_back(argv[i]);
  }
  if (paths.empty() ||
      (mode != "summary" && mode != "top" && mode != "json")) {
    return Usage();
  }

  std::vector<LogSource> sources;
  for (const std::string& path : paths) {
    if (cluster) {
      std::vector<LogSource> expanded = ExpandCluster(path);
      if (expanded.empty()) {
        std::fprintf(stderr,
                     "ebi_workload: %s: no per-shard logs (%s.s0 not "
                     "found)\n",
                     path.c_str(), path.c_str());
        return 1;
      }
      std::move(expanded.begin(), expanded.end(),
                std::back_inserter(sources));
    } else {
      sources.push_back({path, path});
    }
  }

  std::vector<std::pair<LogSource, WorkloadLogRead>> reads;
  std::vector<WorkloadRecord> records;
  size_t skipped = 0;
  for (const LogSource& source : sources) {
    ebi::Result<WorkloadLogRead> one =
        ReadWorkloadLogSet(source.path, kMaxGenerations);
    if (!one.ok()) {
      std::fprintf(stderr, "ebi_workload: %s: %s\n", source.path.c_str(),
                   one.status().ToString().c_str());
      return 1;
    }
    if (one.value().records.empty() && one.value().skipped == 0) {
      std::fprintf(stderr, "ebi_workload: %s: no records\n",
                   source.path.c_str());
    }
    skipped += one.value().skipped;
    reads.emplace_back(source, one.value());
    std::copy(one.value().records.begin(), one.value().records.end(),
              std::back_inserter(records));
  }
  if (skipped > 0) {
    std::fprintf(stderr, "ebi_workload: skipped %zu damaged line(s)\n",
                 skipped);
  }
  if (mode == "summary") {
    if (cluster) {
      PrintShardBreakdown(reads);
    }
    return RunSummary(records, skipped);
  }
  if (mode == "top") {
    return RunTop(records, k);
  }
  return RunJson(records);
}
