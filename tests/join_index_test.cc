#include "index/join_index.h"

#include <gtest/gtest.h>

#include "workload/star_schema.h"

namespace ebi {
namespace {

class JoinIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StarSchemaConfig config;
    config.fact_rows = 2000;
    config.num_products = 60;
    config.seed = 5;
    auto schema_or = BuildStarSchema(config);
    ASSERT_TRUE(schema_or.ok());
    schema_ = std::move(schema_or).value();
    const Column* fk = *schema_->sales->FindColumn("product");
    index_ = std::make_unique<EncodedBitmapJoinIndex>(
        fk, &schema_->sales->existence(), schema_->products, "product_id",
        &io_);
    ASSERT_TRUE(index_->Build().ok());
  }

  /// Reference: fact rows whose product's category equals `cat`.
  BitVector ScanCategoryEquals(int64_t cat) {
    const Column* fk = *schema_->sales->FindColumn("product");
    BitVector out(schema_->sales->NumRows());
    for (size_t row = 0; row < schema_->sales->NumRows(); ++row) {
      if (!schema_->sales->RowExists(row)) {
        continue;
      }
      const int64_t product = fk->ValueAt(row).int_value;
      // Product p has category p / 50 by construction.
      if (product / 50 == cat) {
        out.Set(row);
      }
    }
    return out;
  }

  IoAccountant io_;
  std::unique_ptr<StarSchema> schema_;
  std::unique_ptr<EncodedBitmapJoinIndex> index_;
};

TEST_F(JoinIndexTest, LogarithmicVectorCount) {
  // 60 products + void codeword -> ceil(log2 61) = 6 vectors; a simple
  // bitmapped join index would hold 60.
  EXPECT_EQ(index_->NumVectors(), 6u);
}

TEST_F(JoinIndexTest, StarJoinOnDimensionAttribute) {
  // SELECT fact rows WHERE products.category = 0 (products 0..49).
  const auto rows =
      index_->FactRowsWhere(Predicate::Eq("category", Value::Int(0)));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, ScanCategoryEquals(0));
  EXPECT_GT(rows->Count(), 0u);
}

TEST_F(JoinIndexTest, RangePredicateOnDimension) {
  const auto rows =
      index_->FactRowsWhere(Predicate::Between("category", 1, 1));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, ScanCategoryEquals(1));
}

TEST_F(JoinIndexTest, JoinReadsFewVectors) {
  io_.Reset();
  ASSERT_TRUE(
      index_->FactRowsWhere(Predicate::Eq("category", Value::Int(0))).ok());
  // The fact-side work is one reduced Boolean expression over <= 6
  // vectors, however many dimension rows qualify (50 here).
  EXPECT_LE(io_.stats().vectors_read, index_->NumVectors());
}

TEST_F(JoinIndexTest, FactRowsForDimRow) {
  // Dimension row 7 is product_id 7.
  const auto rows = index_->FactRowsForDimRow(7);
  ASSERT_TRUE(rows.ok());
  const Column* fk = *schema_->sales->FindColumn("product");
  rows->ForEachSetBit([&](size_t row) {
    EXPECT_EQ(fk->ValueAt(row).int_value, 7);
  });
  EXPECT_GT(rows->Count(), 0u);
  EXPECT_FALSE(index_->FactRowsForDimRow(9999).ok());
}

TEST_F(JoinIndexTest, PredicateOnMissingDimensionColumnFails) {
  EXPECT_EQ(index_->FactRowsWhere(Predicate::Eq("nope", Value::Int(0)))
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(JoinIndexTest, AppendKeepsJoinCorrect) {
  const size_t row = schema_->sales->NumRows();
  ASSERT_TRUE(schema_->sales
                  ->AppendRow({Value::Int(3), Value::Int(0), Value::Int(1),
                               Value::Int(10)})
                  .ok());
  ASSERT_TRUE(index_->Append(row).ok());
  const auto rows = index_->FactRowsForDimRow(3);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->Get(row));
}

TEST_F(JoinIndexTest, DeletedFactRowsDropOut) {
  const auto before =
      index_->FactRowsWhere(Predicate::Eq("category", Value::Int(0)));
  ASSERT_TRUE(before.ok());
  size_t victim = 0;
  before->ForEachSetBit([&](size_t row) { victim = row; });
  ASSERT_TRUE(schema_->sales->DeleteRow(victim).ok());
  ASSERT_TRUE(index_->MarkDeleted(victim).ok());
  const auto after =
      index_->FactRowsWhere(Predicate::Eq("category", Value::Int(0)));
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->Get(victim));
  EXPECT_EQ(after->Count(), before->Count() - 1);
}

TEST_F(JoinIndexTest, DuplicateDimensionKeysRejected) {
  Table dim("D");
  ASSERT_TRUE(dim.AddColumn("id", Column::Type::kInt64).ok());
  ASSERT_TRUE(dim.AppendRow({Value::Int(1)}).ok());
  ASSERT_TRUE(dim.AppendRow({Value::Int(1)}).ok());
  const Column* fk = *schema_->sales->FindColumn("product");
  EncodedBitmapJoinIndex bad(fk, &schema_->sales->existence(), &dim, "id",
                             &io_);
  EXPECT_EQ(bad.Build().code(), StatusCode::kInvalidArgument);
}

TEST_F(JoinIndexTest, NullDimensionKeysRejected) {
  Table dim("D");
  ASSERT_TRUE(dim.AddColumn("id", Column::Type::kInt64).ok());
  ASSERT_TRUE(dim.AppendRow({Value::Null()}).ok());
  const Column* fk = *schema_->sales->FindColumn("product");
  EncodedBitmapJoinIndex bad(fk, &schema_->sales->existence(), &dim, "id",
                             &io_);
  EXPECT_EQ(bad.Build().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ebi
