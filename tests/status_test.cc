#include "util/status.h"

#include <gtest/gtest.h>

namespace ebi {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad m");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad m");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad m");
}

TEST(StatusTest, AllFactories) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  const Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  const Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusDegradesToInternal) {
  const Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

namespace helpers {

Status Fails() { return Status::OutOfRange("boom"); }
Status Succeeds() { return Status::OK(); }

Status Caller(bool fail) {
  EBI_RETURN_IF_ERROR(fail ? Fails() : Succeeds());
  return Status::OK();
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return Status::InvalidArgument("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  EBI_ASSIGN_OR_RETURN(const int half, Half(x));
  EBI_ASSIGN_OR_RETURN(const int quarter, Half(half));
  return quarter;
}

}  // namespace helpers

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::Caller(false).ok());
  EXPECT_EQ(helpers::Caller(true).code(), StatusCode::kOutOfRange);
}

TEST(StatusMacroTest, AssignOrReturnChains) {
  const Result<int> ok = helpers::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_EQ(helpers::Quarter(6).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ebi
