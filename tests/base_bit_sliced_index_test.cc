#include "index/base_bit_sliced_index.h"

#include <gtest/gtest.h>

#include "index/bit_sliced_index.h"
#include "test_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::RandomIntTable;
using testing_util::ScanEquals;
using testing_util::ScanRange;

class BaseBitSlicedIndexTest : public ::testing::Test {
 protected:
  void Init(std::unique_ptr<Table> table, uint32_t base = 10) {
    table_ = std::move(table);
    BaseBitSlicedIndexOptions options;
    options.base = base;
    index_ = std::make_unique<BaseBitSlicedIndex>(
        &table_->column(0), &table_->existence(), &io_, options);
    ASSERT_TRUE(index_->Build().ok());
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<BaseBitSlicedIndex> index_;
};

TEST_F(BaseBitSlicedIndexTest, DigitAndVectorCounts) {
  // Values 0..99 in base 10: 2 digit positions, 20 vectors.
  Init(IntTable({0, 37, 99, 50}));
  EXPECT_EQ(index_->NumDigits(), 2u);
  EXPECT_EQ(index_->NumVectors(), 20u);
  EXPECT_EQ(index_->Name(), "bit-sliced-base10");
}

TEST_F(BaseBitSlicedIndexTest, EqualsReadsOneVectorPerDigit) {
  Init(IntTable({0, 37, 99, 50, 37}));
  io_.Reset();
  const auto result = index_->EvaluateEquals(Value::Int(37));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "01001");
  // 2 digit vectors + existence.
  EXPECT_EQ(io_.stats().vectors_read, 3u);
}

TEST_F(BaseBitSlicedIndexTest, EqualsMatchesScan) {
  Init(IntTable({9, 4, 6, 2, 8, 0, 3, 7, 5, 1, 42, 100}));
  for (int64_t v = -1; v <= 101; v += 7) {
    const auto result = index_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v)) << v;
  }
}

TEST_F(BaseBitSlicedIndexTest, RangeMatchesScanExhaustively) {
  Init(IntTable({19, 4, 16, 2, 8, 0, 13, 7, 5, 11}), /*base=*/4);
  for (int64_t lo = -2; lo <= 20; lo += 3) {
    for (int64_t hi = lo; hi <= 22; hi += 4) {
      const auto result = index_->EvaluateRange(lo, hi);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(*result, ScanRange(*table_, table_->column(0), lo, hi))
          << lo << ".." << hi;
    }
  }
}

TEST_F(BaseBitSlicedIndexTest, AgreesWithBinarySlices) {
  auto table = RandomIntTable(500, 1000, 3, 0.05);
  IoAccountant io;
  BaseBitSlicedIndexOptions options;
  options.base = 10;
  BaseBitSlicedIndex decimal(&table->column(0), &table->existence(), &io,
                             options);
  BitSlicedIndex binary(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(decimal.Build().ok());
  ASSERT_TRUE(binary.Build().ok());
  Rng rng(9);
  for (int q = 0; q < 20; ++q) {
    const int64_t lo = static_cast<int64_t>(rng.UniformInt(1000));
    const int64_t hi = lo + static_cast<int64_t>(rng.UniformInt(200));
    const auto a = decimal.EvaluateRange(lo, hi);
    const auto b = binary.EvaluateRange(lo, hi);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << lo << ".." << hi;
  }
}

TEST_F(BaseBitSlicedIndexTest, BaseTradesSpaceForPointCost) {
  auto table = RandomIntTable(2000, 900, 5);
  IoAccountant io10;
  IoAccountant io2;
  BaseBitSlicedIndexOptions d10;
  d10.base = 10;
  BaseBitSlicedIndex decimal(&table->column(0), &table->existence(), &io10,
                             d10);
  BitSlicedIndex binary(&table->column(0), &table->existence(), &io2);
  ASSERT_TRUE(decimal.Build().ok());
  ASSERT_TRUE(binary.Build().ok());
  // Base 10 holds more vectors (3 digits * 10 = 30 vs 10 binary slices)...
  EXPECT_GT(decimal.NumVectors(), binary.NumVectors());
  // ...but answers a point query from fewer reads (3+1 vs 10+1).
  const Value probe = table->column(0).ValueAt(0);
  io10.Reset();
  io2.Reset();
  ASSERT_TRUE(decimal.EvaluateEquals(probe).ok());
  ASSERT_TRUE(binary.EvaluateEquals(probe).ok());
  EXPECT_LT(io10.stats().vectors_read, io2.stats().vectors_read);
}

TEST_F(BaseBitSlicedIndexTest, AppendWithinAndBeyondRange) {
  Init(IntTable({5, 17, 63}), /*base=*/8);
  EXPECT_EQ(index_->NumDigits(), 2u);
  ASSERT_TRUE(table_->AppendRow({Value::Int(40)}).ok());
  ASSERT_TRUE(index_->Append(3).ok());
  // A value beyond base^digits grows a digit position.
  ASSERT_TRUE(table_->AppendRow({Value::Int(100)}).ok());
  ASSERT_TRUE(index_->Append(4).ok());
  EXPECT_EQ(index_->NumDigits(), 3u);
  for (int64_t v : {5, 17, 63, 40, 100}) {
    const auto result = index_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v)) << v;
  }
}

TEST_F(BaseBitSlicedIndexTest, DeletedAndNullRowsMasked) {
  Init(IntTable({7, INT64_MIN, 7}));
  ASSERT_TRUE(table_->DeleteRow(0).ok());
  const auto result = index_->EvaluateEquals(Value::Int(7));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "001");
}

TEST_F(BaseBitSlicedIndexTest, InvalidBaseRejected) {
  auto table = IntTable({1});
  IoAccountant io;
  BaseBitSlicedIndexOptions options;
  options.base = 1;
  BaseBitSlicedIndex index(&table->column(0), &table->existence(), &io,
                           options);
  EXPECT_EQ(index.Build().code(), StatusCode::kInvalidArgument);
}

TEST_F(BaseBitSlicedIndexTest, NegativeValuesViaBias) {
  Init(IntTable({-50, 0, 49}));
  const auto result = index_->EvaluateRange(-10, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "010");
}

}  // namespace
}  // namespace ebi
