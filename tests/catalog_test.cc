#include "storage/catalog.h"

#include <gtest/gtest.h>

namespace ebi {
namespace {

Catalog MakeStar() {
  Catalog catalog;
  Table* fact = *catalog.CreateTable("SALES");
  EXPECT_TRUE(fact->AddColumn("product", Column::Type::kInt64).ok());
  Table* dim = *catalog.CreateTable("PRODUCTS");
  EXPECT_TRUE(dim->AddColumn("product_id", Column::Type::kInt64).ok());
  return catalog;
}

TEST(CatalogTest, CreateAndGet) {
  Catalog catalog;
  const auto t = catalog.CreateTable("T");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "T");
  EXPECT_TRUE(catalog.GetTable("T").ok());
  EXPECT_EQ(catalog.GetTable("X").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog catalog;
  EXPECT_TRUE(catalog.CreateTable("T").ok());
  EXPECT_EQ(catalog.CreateTable("T").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, ForeignKeyValidation) {
  Catalog catalog = MakeStar();
  EXPECT_TRUE(
      catalog
          .AddForeignKey({"SALES", "product", "PRODUCTS", "product_id"})
          .ok());
  EXPECT_FALSE(
      catalog.AddForeignKey({"SALES", "nope", "PRODUCTS", "product_id"})
          .ok());
  EXPECT_FALSE(
      catalog.AddForeignKey({"NOPE", "product", "PRODUCTS", "product_id"})
          .ok());
  EXPECT_EQ(catalog.foreign_keys().size(), 1u);
}

TEST(CatalogTest, DimensionsOf) {
  Catalog catalog = MakeStar();
  ASSERT_TRUE(
      catalog
          .AddForeignKey({"SALES", "product", "PRODUCTS", "product_id"})
          .ok());
  const auto dims = catalog.DimensionsOf("SALES");
  ASSERT_EQ(dims.size(), 1u);
  EXPECT_EQ(dims[0]->name(), "PRODUCTS");
  EXPECT_TRUE(catalog.DimensionsOf("PRODUCTS").empty());
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog catalog;
  EXPECT_TRUE(catalog.CreateTable("b").ok());
  EXPECT_TRUE(catalog.CreateTable("a").ok());
  EXPECT_EQ(catalog.TableNames(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace ebi
