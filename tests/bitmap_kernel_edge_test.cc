// Edge-case and randomized-equivalence coverage for the bitmap kernel
// layer: BitVector (the oracle), RleBitmap and EwahBitmap (the compressed
// backends). Every compressed-form operation is checked bit-for-bit
// against the plain BitVector result over ~1k seeded random trials.

#include <gtest/gtest.h>

#include <vector>

#include "util/bitvector.h"
#include "util/ewah_bitmap.h"
#include "util/random.h"
#include "util/rle_bitmap.h"

namespace ebi {
namespace {

BitVector RandomBits(size_t n, double density, Rng* rng) {
  BitVector v(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(density)) {
      v.Set(i);
    }
  }
  return v;
}

// --- Empty / all-zero / all-one edge cases -------------------------------

TEST(BitmapKernelEdgeTest, EmptyBitmapsThroughEveryKernel) {
  const BitVector empty;
  EXPECT_EQ(And(empty, empty), empty);
  EXPECT_EQ(Or(empty, empty), empty);
  EXPECT_EQ(Not(empty), empty);
  EXPECT_EQ(RleBitmap::And(RleBitmap(), RleBitmap()).size(), 0u);
  EXPECT_EQ(EwahBitmap::Or(EwahBitmap(), EwahBitmap()).size(), 0u);
  EXPECT_EQ(EwahBitmap().Not().Count(), 0u);
}

TEST(BitmapKernelEdgeTest, RleNotOfEmptyIsEmpty) {
  const RleBitmap empty;
  EXPECT_EQ(empty.Not().size(), 0u);
  EXPECT_EQ(empty.Not().Count(), 0u);
  EXPECT_EQ(empty.Not().Decompress(), BitVector());
  // Not of a compressed empty vector likewise.
  EXPECT_EQ(RleBitmap::Compress(BitVector()).Not().size(), 0u);
}

TEST(BitmapKernelEdgeTest, AllZeroAllOneCombinations) {
  const size_t n = 1000;
  const BitVector zeros(n);
  const BitVector ones(n, true);
  const RleBitmap rle_zeros = RleBitmap::Compress(zeros);
  const RleBitmap rle_ones = RleBitmap::Compress(ones);
  const EwahBitmap ewah_zeros = EwahBitmap::Compress(zeros);
  const EwahBitmap ewah_ones = EwahBitmap::Compress(ones);

  EXPECT_EQ(RleBitmap::And(rle_zeros, rle_ones).Decompress(), zeros);
  EXPECT_EQ(RleBitmap::Or(rle_zeros, rle_ones).Decompress(), ones);
  EXPECT_EQ(EwahBitmap::And(ewah_zeros, ewah_ones).Decompress(), zeros);
  EXPECT_EQ(EwahBitmap::Or(ewah_zeros, ewah_ones).Decompress(), ones);
  EXPECT_EQ(EwahBitmap::Xor(ewah_ones, ewah_ones).Decompress(), zeros);
  EXPECT_EQ(EwahBitmap::AndNot(ewah_ones, ewah_zeros).Decompress(), ones);
  EXPECT_EQ(rle_ones.Not().Decompress(), zeros);
  EXPECT_EQ(ewah_zeros.Not().Decompress(), ones);
}

// --- Size-contract enforcement -------------------------------------------

TEST(BitmapKernelEdgeTest, CheckedVariantsRejectMismatchedSizes) {
  const BitVector a_bits(100);
  const BitVector b_bits(101);
  const RleBitmap ra = RleBitmap::Compress(a_bits);
  const RleBitmap rb = RleBitmap::Compress(b_bits);
  EXPECT_EQ(RleBitmap::AndChecked(ra, rb).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RleBitmap::OrChecked(ra, rb).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(RleBitmap::AndChecked(ra, ra).ok());

  const EwahBitmap ea = EwahBitmap::Compress(a_bits);
  const EwahBitmap eb = EwahBitmap::Compress(b_bits);
  EXPECT_EQ(EwahBitmap::AndChecked(ea, eb).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(EwahBitmap::OrChecked(ea, eb).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(EwahBitmap::OrChecked(eb, eb).ok());
}

// --- Tail-masking invariants ---------------------------------------------

TEST(BitmapKernelEdgeTest, ResizeShrinkMasksTailBeforeFlipAndCount) {
  BitVector v(128, true);
  v.Resize(70);
  EXPECT_EQ(v.Count(), 70u);
  // FlipAll after the shrink: the 58 dropped tail positions must stay
  // zero, so the flipped vector has no set bits at all.
  v.FlipAll();
  EXPECT_EQ(v.Count(), 0u);
  EXPECT_TRUE(v.IsZero());
  v.FlipAll();
  EXPECT_EQ(v.Count(), 70u);
  EXPECT_EQ(v, BitVector(70, true));
}

TEST(BitmapKernelEdgeTest, ResizeShrinkWithinLastWord) {
  BitVector v(64, true);
  v.Resize(10);
  EXPECT_EQ(v.Count(), 10u);
  v.FlipAll();
  EXPECT_TRUE(v.IsZero());
  // Growing back exposes zero bits, not stale ones.
  v.Resize(64);
  EXPECT_EQ(v.Count(), 0u);
}

TEST(BitmapKernelEdgeTest, CompressedTailsStayClearAfterNot) {
  for (size_t n : std::vector<size_t>{1, 63, 65, 100, 130}) {
    const BitVector zeros(n);
    EXPECT_EQ(RleBitmap::Compress(zeros).Not().Count(), n) << n;
    EXPECT_EQ(EwahBitmap::Compress(zeros).Not().Count(), n) << n;
    EXPECT_EQ(EwahBitmap::Compress(zeros).Not().Decompress(),
              BitVector(n, true))
        << n;
  }
}

// --- Randomized equivalence: compressed kernels vs the plain oracle ------

TEST(BitmapKernelEdgeTest, RandomizedEquivalenceAgainstPlainOracle) {
  // ~1k trials: 250 iterations x (And, Or, Not/Xor) x (RLE, EWAH),
  // with sizes crossing word boundaries and densities spanning sparse to
  // dense. Seeded, so failures reproduce.
  Rng rng(20260805);
  for (int trial = 0; trial < 250; ++trial) {
    const size_t n = 1 + rng.UniformInt(2500);
    const double da = rng.UniformDouble();
    const double db = rng.UniformDouble();
    const BitVector a = RandomBits(n, da * da, &rng);  // skew sparse
    const BitVector b = RandomBits(n, db, &rng);

    const RleBitmap ra = RleBitmap::Compress(a);
    const RleBitmap rb = RleBitmap::Compress(b);
    ASSERT_EQ(ra.Decompress(), a) << "trial " << trial;
    ASSERT_EQ(RleBitmap::And(ra, rb).Decompress(), And(a, b))
        << "trial " << trial;
    ASSERT_EQ(RleBitmap::Or(ra, rb).Decompress(), Or(a, b))
        << "trial " << trial;
    ASSERT_EQ(ra.Not().Decompress(), Not(a)) << "trial " << trial;
    ASSERT_EQ(ra.Count(), a.Count()) << "trial " << trial;

    const EwahBitmap ea = EwahBitmap::Compress(a);
    const EwahBitmap eb = EwahBitmap::Compress(b);
    ASSERT_EQ(ea.Decompress(), a) << "trial " << trial;
    ASSERT_EQ(EwahBitmap::And(ea, eb).Decompress(), And(a, b))
        << "trial " << trial;
    ASSERT_EQ(EwahBitmap::Or(ea, eb).Decompress(), Or(a, b))
        << "trial " << trial;
    ASSERT_EQ(EwahBitmap::Xor(ea, eb).Decompress(), Xor(a, b))
        << "trial " << trial;
    ASSERT_EQ(ea.Not().Decompress(), Not(a)) << "trial " << trial;
    ASSERT_EQ(ea.Count(), a.Count()) << "trial " << trial;
  }
}

TEST(BitmapKernelEdgeTest, RandomizedRunHeavyEquivalence) {
  // Run-heavy inputs (long homogeneous stretches) exercise the clean-run
  // fast paths of both compressed kernels rather than literal handling.
  Rng rng(97);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 200 + rng.UniformInt(3000);
    BitVector a(n);
    BitVector b(n);
    for (size_t i = 0; i < n;) {
      const size_t len = 1 + rng.UniformInt(400);
      const bool va = rng.Bernoulli(0.5);
      const bool vb = rng.Bernoulli(0.5);
      for (size_t j = i; j < std::min(n, i + len); ++j) {
        a.Assign(j, va);
        b.Assign(j, vb);
      }
      i += len;
    }
    ASSERT_EQ(EwahBitmap::And(EwahBitmap::Compress(a),
                              EwahBitmap::Compress(b))
                  .Decompress(),
              And(a, b))
        << "trial " << trial;
    ASSERT_EQ(RleBitmap::Or(RleBitmap::Compress(a), RleBitmap::Compress(b))
                  .Decompress(),
              Or(a, b))
        << "trial " << trial;
    ASSERT_EQ(EwahBitmap::AndNot(EwahBitmap::Compress(a),
                                 EwahBitmap::Compress(b))
                  .Decompress(),
              BitVector(a).AndNotWith(b))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace ebi
