#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace ebi {
namespace exec {
namespace {

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPoolTest, ReportsRequestedSize) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPoolTest, DestructorDrainsSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // No explicit wait: ~ThreadPool must let every submitted task finish.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) {
    h.store(0);
  }
  pool.ParallelFor(0, hits.size(), [&hits](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeReturnsImmediately) {
  ThreadPool pool(2);
  bool touched = false;
  pool.ParallelFor(5, 5, [&touched](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, ParallelForSingleIterationRunsInline) {
  ThreadPool pool(2);
  size_t seen = 0;
  pool.ParallelFor(7, 8, [&seen](size_t i) { seen = i; });
  EXPECT_EQ(seen, 7u);
}

TEST(ThreadPoolTest, ParallelForNonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(10, 20, [&sum](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19.
}

TEST(ThreadPoolTest, SequentialParallelForsReuseTheSamePool) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.ParallelFor(0, 50, [&total](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPoolTest, ManyMoreTasksThanThreads) {
  // Segment count greater than thread count — the executor's common case.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.ParallelFor(0, 1000, [&ran](size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 1000);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

}  // namespace
}  // namespace exec
}  // namespace ebi
