#include "index/btree_index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::RandomIntTable;
using testing_util::ScanEquals;
using testing_util::ScanRange;

class BTreeIndexTest : public ::testing::Test {
 protected:
  void Init(std::unique_ptr<Table> table, size_t page_size = 4096) {
    table_ = std::move(table);
    io_ = std::make_unique<IoAccountant>(page_size);
    index_ = std::make_unique<BTreeIndex>(&table_->column(0),
                                          &table_->existence(), io_.get());
    ASSERT_TRUE(index_->Build().ok());
  }

  std::unique_ptr<IoAccountant> io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<BTreeIndex> index_;
};

TEST_F(BTreeIndexTest, EqualsMatchesScan) {
  Init(IntTable({4, 2, 4, 6, 2, 4}));
  for (int64_t v : {2, 4, 6, 9}) {
    const auto result = index_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v)) << v;
  }
}

TEST_F(BTreeIndexTest, RangeMatchesScan) {
  Init(IntTable({9, 4, 6, 2, 8, 0, 3, 7, 5, 1}));
  for (int64_t lo = 0; lo <= 9; lo += 3) {
    for (int64_t hi = lo; hi <= 10; hi += 2) {
      const auto result = index_->EvaluateRange(lo, hi);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(*result, ScanRange(*table_, table_->column(0), lo, hi))
          << lo << ".." << hi;
    }
  }
}

TEST_F(BTreeIndexTest, SmallPageSizeForcesMultiLevelTree) {
  // Page 64 B -> fanout 4: 300 keys need height >= 3.
  Init(RandomIntTable(600, 300, 1), /*page_size=*/64);
  EXPECT_EQ(index_->Fanout(), 4u);
  EXPECT_GE(index_->Height(), 3u);
  EXPECT_GT(index_->NumNodes(), 75u);
  for (int64_t v = 0; v < 300; v += 37) {
    const auto result = index_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v)) << v;
  }
}

TEST_F(BTreeIndexTest, PointLookupChargesHeightNodes) {
  Init(RandomIntTable(600, 300, 2), /*page_size=*/64);
  io_->Reset();
  // Query a value that certainly occurs so the descent actually runs.
  ASSERT_TRUE(index_->EvaluateEquals(table_->column(0).ValueAt(0)).ok());
  EXPECT_EQ(io_->stats().nodes_read, index_->Height());
}

TEST_F(BTreeIndexTest, InListChargesOneDescentPerValue) {
  // Section 2.1: compound selections need one full probe per value — no
  // bitmap cooperativity.
  Init(RandomIntTable(600, 300, 3), /*page_size=*/64);
  io_->Reset();
  const Column& col = table_->column(0);
  ASSERT_TRUE(index_
                  ->EvaluateIn({col.ValueAt(0), col.ValueAt(1),
                                col.ValueAt(2)})
                  .ok());
  EXPECT_EQ(io_->stats().nodes_read, 3 * index_->Height());
}

TEST_F(BTreeIndexTest, InsertWithSplitsStaysCorrect) {
  // Start small and append novel keys until multiple splits happen.
  Init(IntTable({0}), /*page_size=*/64);
  for (int64_t v = 1; v < 200; ++v) {
    ASSERT_TRUE(table_->AppendRow({Value::Int(v * 7 % 200)}).ok());
    ASSERT_TRUE(index_->Append(static_cast<size_t>(v)).ok());
  }
  EXPECT_GE(index_->Height(), 2u);
  for (int64_t v = 0; v < 200; v += 23) {
    const auto result = index_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v)) << v;
  }
}

TEST_F(BTreeIndexTest, AppendExistingKeyExtendsPosting) {
  Init(IntTable({5, 6}));
  ASSERT_TRUE(table_->AppendRow({Value::Int(5)}).ok());
  ASSERT_TRUE(index_->Append(2).ok());
  const auto result = index_->EvaluateEquals(Value::Int(5));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "101");
}

TEST_F(BTreeIndexTest, DeletedRowsFilteredAtEmit) {
  Init(IntTable({5, 5, 5}));
  ASSERT_TRUE(table_->DeleteRow(1).ok());
  const auto result = index_->EvaluateEquals(Value::Int(5));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "101");
}

TEST_F(BTreeIndexTest, NullKeysSkipped) {
  Init(IntTable({1, INT64_MIN, 2}));
  const auto result = index_->EvaluateRange(0, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "101");
}

TEST_F(BTreeIndexTest, StringColumnLookups) {
  auto table = std::make_unique<Table>("T");
  ASSERT_TRUE(table->AddColumn("s", Column::Type::kString).ok());
  for (const char* s : {"pear", "apple", "fig", "apple", "date"}) {
    ASSERT_TRUE(table->AppendRow({Value::Str(s)}).ok());
  }
  table_ = std::move(table);
  io_ = std::make_unique<IoAccountant>();
  index_ = std::make_unique<BTreeIndex>(&table_->column(0),
                                        &table_->existence(), io_.get());
  ASSERT_TRUE(index_->Build().ok());
  const auto result = index_->EvaluateEquals(Value::Str("apple"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "01010");
  // Ranges over strings are rejected.
  EXPECT_EQ(index_->EvaluateRange(0, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BTreeIndexTest, EmptyColumnBuilds) {
  auto table = std::make_unique<Table>("T");
  ASSERT_TRUE(table->AddColumn("a", Column::Type::kInt64).ok());
  table_ = std::move(table);
  io_ = std::make_unique<IoAccountant>();
  index_ = std::make_unique<BTreeIndex>(&table_->column(0),
                                        &table_->existence(), io_.get());
  ASSERT_TRUE(index_->Build().ok());
  const auto result = index_->EvaluateEquals(Value::Int(1));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->IsZero());
}

TEST_F(BTreeIndexTest, SizeIncludesNodesAndPostings) {
  Init(RandomIntTable(1000, 50, 4));
  EXPECT_GE(index_->SizeBytes(),
            index_->NumNodes() * io_->page_size() +
                1000 * sizeof(uint32_t));
}

TEST_F(BTreeIndexTest, RandomizedAgreementAfterMixedAppends) {
  Init(RandomIntTable(300, 80, 5), /*page_size=*/128);
  Rng rng(123);
  for (size_t r = 300; r < 500; ++r) {
    ASSERT_TRUE(
        table_->AppendRow({Value::Int(static_cast<int64_t>(
            rng.UniformInt(120)))}).ok());
    ASSERT_TRUE(index_->Append(r).ok());
  }
  for (int64_t v = 0; v < 120; v += 11) {
    const auto result = index_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v)) << v;
  }
  const auto range = index_->EvaluateRange(30, 90);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(*range, ScanRange(*table_, table_->column(0), 30, 90));
}

}  // namespace
}  // namespace ebi
