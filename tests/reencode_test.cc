#include "query/reencode_advisor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "encoding/well_defined.h"
#include "index/encoded_bitmap_index.h"
#include "test_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::ScanEquals;

TEST(ReencodeIndexTest, ReencodePreservesAnswers) {
  auto table = IntTable({0, 1, 2, 3, 4, 5, 6, 7, 2, 5});
  IoAccountant io;
  EncodedBitmapIndex index(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(index.Build().ok());

  // Re-encode with a Gray mapping (void still reserved).
  EncoderOptions eo;
  eo.reserve_void_zero = true;
  auto gray = MakeGrayMapping(8, eo);
  ASSERT_TRUE(gray.ok());
  ASSERT_TRUE(index.Reencode(std::move(gray).value()).ok());

  for (int64_t v = 0; v < 8; ++v) {
    const auto rows = index.EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(*rows, ScanEquals(*table, table->column(0), v)) << v;
  }
}

TEST(ReencodeIndexTest, ReencodeChangesAccessCosts) {
  auto table = IntTable({0, 1, 2, 3, 4, 5, 6, 7});
  IoAccountant io;
  EncodedBitmapIndexOptions options;
  options.reserve_void_zero = false;
  options.strategy = EncodingStrategy::kRandom;
  options.random_seed = 12345;
  EncodedBitmapIndex index(&table->column(0), &table->existence(), &io,
                           options);
  ASSERT_TRUE(index.Build().ok());
  const std::vector<Value> pred = {Value::Int(0), Value::Int(1),
                                   Value::Int(2), Value::Int(3)};
  const int before = *index.AccessCostForIn(pred);

  auto sequential = MakeSequentialMapping(8);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(index.Reencode(std::move(sequential).value()).ok());
  const int after = *index.AccessCostForIn(pred);
  EXPECT_EQ(after, 1);  // {0..3} is the low subcube under sequential codes.
  EXPECT_LE(after, before);
}

TEST(ReencodeIndexTest, ReencodeKeepsDeletedRowsVoid) {
  auto table = IntTable({1, 2, 1});
  IoAccountant io;
  EncodedBitmapIndex index(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(index.Build().ok());
  ASSERT_TRUE(table->DeleteRow(0).ok());
  ASSERT_TRUE(index.MarkDeleted(0).ok());

  EncoderOptions eo;
  eo.reserve_void_zero = true;
  auto gray = MakeGrayMapping(2, eo);
  ASSERT_TRUE(gray.ok());
  ASSERT_TRUE(index.Reencode(std::move(gray).value()).ok());
  const auto rows = index.EvaluateEquals(Value::Int(1));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->ToString(), "001");
}

TEST(ReencodeIndexTest, UndersizedMappingRejected) {
  auto table = IntTable({0, 1, 2, 3});
  IoAccountant io;
  EncodedBitmapIndex index(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(index.Build().ok());
  auto tiny = MakeSequentialMapping(2);
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(index.Reencode(std::move(tiny).value()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ReencodeIndexTest, NullColumnNeedsNullCode) {
  auto table = IntTable({1, INT64_MIN, 2});
  IoAccountant io;
  EncodedBitmapIndex index(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(index.Build().ok());
  auto no_null = MakeSequentialMapping(2);  // No NULL codeword.
  ASSERT_TRUE(no_null.ok());
  EXPECT_EQ(index.Reencode(std::move(no_null).value()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ReencodeAdvisorTest, RecommendsCheaperMapping) {
  // Workload hammers {0,1,2,3}; the random current mapping is bad for it.
  Rng rng(5);
  auto current = MakeRandomMapping(8, &rng);
  ASSERT_TRUE(current.ok());
  auto candidate = MakeSequentialMapping(8);
  ASSERT_TRUE(candidate.ok());

  const WorkloadProfile profile = {{{0, 1, 2, 3}, /*frequency=*/100.0}};
  const auto decision =
      EvaluateReencoding(*current, *candidate, profile, 1000);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->candidate_cost, 100.0);  // 1 vector * 100 queries.
  EXPECT_GT(decision->current_cost, decision->candidate_cost);
  EXPECT_TRUE(decision->worthwhile);
  EXPECT_LT(decision->break_even_periods, 1.0);
}

TEST(ReencodeAdvisorTest, RejectsPointlessReencoding) {
  auto a = MakeSequentialMapping(8);
  auto b = MakeSequentialMapping(8);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const WorkloadProfile profile = {{{0, 1}, 1.0}};
  const auto decision = EvaluateReencoding(*a, *b, profile, 1000);
  ASSERT_TRUE(decision.ok());
  EXPECT_FALSE(decision->worthwhile);
  EXPECT_TRUE(std::isinf(decision->break_even_periods));
}

TEST(ReencodeAdvisorTest, ProposeFindsGoodCandidate) {
  Rng rng(17);
  auto current = MakeRandomMapping(8, &rng);
  ASSERT_TRUE(current.ok());
  const WorkloadProfile profile = {{{0, 1, 2, 3}, 50.0}, {{2, 3, 4, 5}, 50.0}};
  OptimizerOptions options;
  options.iterations = 2500;
  const auto proposal = ProposeReencoding(*current, profile, 8, 1000,
                                          options);
  ASSERT_TRUE(proposal.ok());
  // The annealer reaches the Figure 3(a) optimum: cost 1 per predicate.
  EXPECT_EQ(proposal->decision.candidate_cost, 100.0);
  EXPECT_LE(proposal->decision.candidate_cost,
            proposal->decision.current_cost);
}

TEST(ReencodeAdvisorTest, FrequenciesWeightCosts) {
  auto seq = MakeSequentialMapping(8);
  Rng rng(23);
  auto rnd = MakeRandomMapping(8, &rng);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(rnd.ok());
  const WorkloadProfile light = {{{0, 1, 2, 3}, 1.0}};
  const WorkloadProfile heavy = {{{0, 1, 2, 3}, 1000.0}};
  const auto d_light = EvaluateReencoding(*rnd, *seq, light, 100);
  const auto d_heavy = EvaluateReencoding(*rnd, *seq, heavy, 100);
  ASSERT_TRUE(d_light.ok());
  ASSERT_TRUE(d_heavy.ok());
  EXPECT_LE(d_heavy->break_even_periods, d_light->break_even_periods);
}

}  // namespace
}  // namespace ebi
