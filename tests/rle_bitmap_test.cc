#include "util/rle_bitmap.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ebi {
namespace {

TEST(RleBitmapTest, EmptyRoundTrip) {
  const RleBitmap rle = RleBitmap::Compress(BitVector());
  EXPECT_EQ(rle.size(), 0u);
  EXPECT_EQ(rle.Count(), 0u);
  EXPECT_EQ(rle.Decompress(), BitVector());
}

TEST(RleBitmapTest, AllZerosRoundTrip) {
  const BitVector v(1000);
  const RleBitmap rle = RleBitmap::Compress(v);
  EXPECT_EQ(rle.Decompress(), v);
  EXPECT_EQ(rle.Count(), 0u);
  // One run of 1000 zeros: 4 bytes against 125 plain.
  EXPECT_LT(rle.SizeBytes(), 16u);
}

TEST(RleBitmapTest, AllOnesRoundTrip) {
  const BitVector v(1000, true);
  const RleBitmap rle = RleBitmap::Compress(v);
  EXPECT_EQ(rle.Decompress(), v);
  EXPECT_EQ(rle.Count(), 1000u);
}

TEST(RleBitmapTest, LeadingOneRoundTrip) {
  const BitVector v = BitVector::FromString("110001");
  const RleBitmap rle = RleBitmap::Compress(v);
  EXPECT_EQ(rle.Decompress(), v);
  EXPECT_EQ(rle.Count(), 3u);
}

TEST(RleBitmapTest, FromRunsMatchesCompress) {
  // 3 zeros, 2 ones, 1 zero, 4 ones.
  const RleBitmap a = RleBitmap::FromRuns({3, 2, 1, 4});
  const RleBitmap b = RleBitmap::Compress(BitVector::FromString("0001101111"));
  EXPECT_EQ(a, b);
}

TEST(RleBitmapTest, FromRunsNormalizesEmptyAndAdjacentRuns) {
  // {2,0,3} = 2 zeros, 0 ones, 3 zeros = 5 zeros.
  const RleBitmap a = RleBitmap::FromRuns({2, 0, 3});
  const RleBitmap b = RleBitmap::Compress(BitVector(5));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.NumRuns(), 1u);
}

TEST(RleBitmapTest, AndOnCompressedForm) {
  const BitVector a = BitVector::FromString("11001100");
  const BitVector b = BitVector::FromString("10101010");
  const RleBitmap result =
      RleBitmap::And(RleBitmap::Compress(a), RleBitmap::Compress(b));
  EXPECT_EQ(result.Decompress(), And(a, b));
}

TEST(RleBitmapTest, OrOnCompressedForm) {
  const BitVector a = BitVector::FromString("11001100");
  const BitVector b = BitVector::FromString("10101010");
  const RleBitmap result =
      RleBitmap::Or(RleBitmap::Compress(a), RleBitmap::Compress(b));
  EXPECT_EQ(result.Decompress(), Or(a, b));
}

TEST(RleBitmapTest, NotOnCompressedForm) {
  const BitVector a = BitVector::FromString("0011010");
  EXPECT_EQ(RleBitmap::Compress(a).Not().Decompress(), Not(a));
}

TEST(RleBitmapTest, NotOfAllZeros) {
  const BitVector a(100);
  EXPECT_EQ(RleBitmap::Compress(a).Not().Decompress(), Not(a));
}

TEST(RleBitmapTest, DoubleNotIsIdentity) {
  const BitVector a = BitVector::FromString("101100011");
  const RleBitmap rle = RleBitmap::Compress(a);
  EXPECT_EQ(rle.Not().Not(), rle);
}

TEST(RleBitmapTest, SparseBitmapCompressesWell) {
  BitVector v(100000);
  v.Set(5);
  v.Set(70000);
  const RleBitmap rle = RleBitmap::Compress(v);
  EXPECT_GT(rle.CompressionRatio(), 100.0);
  EXPECT_EQ(rle.Decompress(), v);
}

TEST(RleBitmapTest, DenseRandomBitmapDoesNotCompress) {
  Rng rng(3);
  BitVector v(10000);
  for (size_t i = 0; i < v.size(); ++i) {
    if (rng.Bernoulli(0.5)) {
      v.Set(i);
    }
  }
  const RleBitmap rle = RleBitmap::Compress(v);
  // ~50% density alternates constantly; RLE expands.
  EXPECT_LT(rle.CompressionRatio(), 1.0);
  EXPECT_EQ(rle.Decompress(), v);
}

class RleBitmapPropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, double>> {};

TEST_P(RleBitmapPropertyTest, RoundTripAndOpsMatchPlain) {
  const auto [n, density] = GetParam();
  Rng rng(n * 131 + static_cast<uint64_t>(density * 100));
  BitVector a(n);
  BitVector b(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(density)) {
      a.Set(i);
    }
    if (rng.Bernoulli(density)) {
      b.Set(i);
    }
  }
  const RleBitmap ca = RleBitmap::Compress(a);
  const RleBitmap cb = RleBitmap::Compress(b);
  EXPECT_EQ(ca.Decompress(), a);
  EXPECT_EQ(ca.Count(), a.Count());
  EXPECT_EQ(RleBitmap::And(ca, cb).Decompress(), And(a, b));
  EXPECT_EQ(RleBitmap::Or(ca, cb).Decompress(), Or(a, b));
  EXPECT_EQ(ca.Not().Decompress(), Not(a));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDensities, RleBitmapPropertyTest,
    ::testing::Values(std::pair<size_t, double>{1, 0.5},
                      std::pair<size_t, double>{64, 0.01},
                      std::pair<size_t, double>{65, 0.99},
                      std::pair<size_t, double>{1000, 0.001},
                      std::pair<size_t, double>{1000, 0.5},
                      std::pair<size_t, double>{5000, 0.1},
                      std::pair<size_t, double>{5000, 0.9}));

}  // namespace
}  // namespace ebi
