#include "query/materialize.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "encoding/hierarchy.h"

namespace ebi {
namespace {

std::unique_ptr<Table> SampleTable() {
  auto table = std::make_unique<Table>("T");
  EXPECT_TRUE(table->AddColumn("id", Column::Type::kInt64).ok());
  EXPECT_TRUE(table->AddColumn("name", Column::Type::kString).ok());
  EXPECT_TRUE(
      table->AppendRow({Value::Int(1), Value::Str("alpha")}).ok());
  EXPECT_TRUE(table->AppendRow({Value::Int(2), Value::Null()}).ok());
  EXPECT_TRUE(table->AppendRow({Value::Int(3), Value::Str("gamma")}).ok());
  return table;
}

TEST(MaterializeTest, FetchesSelectedRows) {
  auto table = SampleTable();
  BitVector rows(3);
  rows.Set(0);
  rows.Set(2);
  const auto result = MaterializeRows(*table, rows, {"name", "id"});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].row, 0u);
  EXPECT_EQ((*result)[0].values[0], Value::Str("alpha"));
  EXPECT_EQ((*result)[0].values[1], Value::Int(1));
  EXPECT_EQ((*result)[1].row, 2u);
  EXPECT_EQ((*result)[1].values[0], Value::Str("gamma"));
}

TEST(MaterializeTest, NullCellsSurvive) {
  auto table = SampleTable();
  BitVector rows(3);
  rows.Set(1);
  const auto result = MaterializeRows(*table, rows, {"name"});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_TRUE((*result)[0].values[0].is_null());
}

TEST(MaterializeTest, LimitCapsOutput) {
  auto table = SampleTable();
  BitVector rows(3, true);
  const auto result = MaterializeRows(*table, rows, {"id"}, /*limit=*/2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(MaterializeTest, UnknownColumnRejected) {
  auto table = SampleTable();
  BitVector rows(3);
  EXPECT_EQ(MaterializeRows(*table, rows, {"zzz"}).status().code(),
            StatusCode::kNotFound);
}

TEST(MaterializeTest, SizeMismatchRejected) {
  auto table = SampleTable();
  EXPECT_EQ(
      MaterializeRows(*table, BitVector(99), {"id"}).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(MaterializeTest, RowsToStringAligns) {
  auto table = SampleTable();
  BitVector rows(3, true);
  const auto result = MaterializeRows(*table, rows, {"id", "name"});
  ASSERT_TRUE(result.ok());
  const std::string text = RowsToString({"id", "name"}, *result);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("NULL"), std::string::npos);
  // Header plus three rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(HierarchyNavigationTest, GroupsContainingHandlesMToN) {
  Hierarchy h(12);
  ASSERT_TRUE(h.AddLevel({"company",
                          {{"a", {0, 1, 2, 3}},
                           {"d", {2, 3, 8, 9}},
                           {"e", {8, 9, 10, 11}}}})
                  .ok());
  // Branch 3 (ValueId 2) belongs to companies a and d (Figure 5's m:N).
  const auto groups = h.GroupsContaining("company", 2);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(*groups, (std::vector<std::string>{"a", "d"}));
  const auto none = h.GroupsContaining("company", 5);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_FALSE(h.GroupsContaining("nope", 0).ok());
}

TEST(HierarchyNavigationTest, DrillDownIsMembers) {
  Hierarchy h(6);
  ASSERT_TRUE(h.AddLevel({"g", {{"x", {1, 2, 5}}}}).ok());
  const auto drilled = h.DrillDown("g", "x");
  ASSERT_TRUE(drilled.ok());
  EXPECT_EQ(*drilled, (std::vector<ValueId>{1, 2, 5}));
}

}  // namespace
}  // namespace ebi
