// Property tests for the paper's theorems as checkable invariants over
// random encodings — not just the worked examples.

#include <gtest/gtest.h>

#include <algorithm>

#include "encoding/chain.h"
#include "encoding/encoders.h"
#include "encoding/optimizer.h"
#include "encoding/well_defined.h"
#include "util/bit_util.h"
#include "util/random.h"

namespace ebi {
namespace {

/// Random bijective mapping of m values onto the full k-bit space.
MappingTable RandomFullMapping(size_t m, uint64_t seed) {
  Rng rng(seed);
  auto mapping = MakeRandomMapping(m, &rng);
  EXPECT_TRUE(mapping.ok());
  return std::move(mapping).value();
}

/// Random subdomain of the given size.
std::vector<ValueId> RandomSubdomain(size_t m, size_t n, Rng* rng) {
  std::vector<ValueId> all(m);
  for (ValueId v = 0; v < m; ++v) {
    all[v] = v;
  }
  rng->Shuffle(&all);
  all.resize(n);
  return all;
}

TEST(Theorem22Test, PowerOfTwoWellDefinedIffSubcubeCost) {
  // For |s| = 2^p on a full k-bit code space (no don't-cares), the
  // well-defined property (a prime chain) holds exactly when the selection
  // reduces to k-p vectors: a prime chain of 2^p codewords is a p-subcube.
  ReductionOptions no_dc;
  no_dc.max_dontcare_terms = 0;
  const size_t m = 8;  // k = 3, full space.
  const int k = 3;
  int well_defined_seen = 0;
  int improper_seen = 0;
  Rng rng(1234);
  for (uint64_t trial = 0; trial < 150; ++trial) {
    const MappingTable mapping = RandomFullMapping(m, trial);
    for (size_t n : {size_t{2}, size_t{4}}) {
      const int p = Log2Floor(n);
      const std::vector<ValueId> s = RandomSubdomain(m, n, &rng);
      const auto wd = IsWellDefined(mapping, s, m);
      ASSERT_TRUE(wd.ok());
      const auto cost = AccessCost(mapping, s, no_dc);
      ASSERT_TRUE(cost.ok());
      if (*wd) {
        ++well_defined_seen;
        EXPECT_EQ(*cost, k - p)
            << "trial " << trial << " n=" << n
            << ": well-defined must reduce to a " << p << "-subcube";
      } else {
        ++improper_seen;
        EXPECT_GT(*cost, k - p)
            << "trial " << trial << " n=" << n
            << ": improper encodings cannot reach the minimum";
      }
    }
  }
  // The property test must actually have exercised both sides.
  EXPECT_GT(well_defined_seen, 10);
  EXPECT_GT(improper_seen, 10);
}

TEST(Theorem22Test, GrayPrefixSelectionsAreWellDefined) {
  // Consecutive Gray codewords of length 2^p always form a prime chain
  // (they span a subcube when aligned); check alignment at 0.
  const auto mapping = MakeGrayMapping(16);
  ASSERT_TRUE(mapping.ok());
  for (size_t n : {size_t{2}, size_t{4}, size_t{8}}) {
    std::vector<ValueId> s;
    for (ValueId v = 0; v < n; ++v) {
      s.push_back(v);
    }
    const auto wd = IsWellDefined(*mapping, s, 16);
    ASSERT_TRUE(wd.ok());
    EXPECT_TRUE(*wd) << n;
  }
}

TEST(Theorem23Test, TotalCostIsSumOfPerPredicateCosts) {
  Rng rng(55);
  const MappingTable mapping = RandomFullMapping(16, 9);
  PredicateSet predicates;
  int expected = 0;
  for (int i = 0; i < 6; ++i) {
    predicates.push_back(RandomSubdomain(16, 2 + rng.UniformInt(6), &rng));
    const auto one = AccessCost(mapping, predicates.back());
    ASSERT_TRUE(one.ok());
    expected += *one;
  }
  const auto total = TotalAccessCost(mapping, predicates);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, expected);
}

TEST(Theorem21Test, VoidZeroSelectionsNeverCoverVoid) {
  // With code 0 reserved for void tuples, the reduced retrieval
  // expression of ANY selection over existing values must evaluate to 0
  // on the void codeword — that is why the existence conjunct can be
  // dropped.
  Rng rng(77);
  for (uint64_t trial = 0; trial < 60; ++trial) {
    EncoderOptions eo;
    eo.reserve_void_zero = true;
    Rng mrng(trial);
    const auto mapping = MakeRandomMapping(10, &mrng, eo);
    ASSERT_TRUE(mapping.ok());
    const size_t n = 1 + rng.UniformInt(9);
    const std::vector<ValueId> s = RandomSubdomain(10, n, &rng);
    std::vector<uint64_t> onset;
    for (ValueId v : s) {
      onset.push_back(*mapping->CodeOf(v));
    }
    const std::vector<uint64_t> dc = mapping->UnusedCodes(1024);
    const Cover cover =
        ReduceRetrievalFunction(onset, dc, mapping->width());
    EXPECT_FALSE(CoverCovers(cover, 0)) << "trial " << trial;
    for (uint64_t code : onset) {
      EXPECT_TRUE(CoverCovers(cover, code));
    }
  }
}

TEST(Theorem21Test, WithoutVoidReservationSelectionsMayCoverZero) {
  // The contrast: if 0 is a live codeword, selections containing that
  // value do cover 0 — so deleted rows would leak without the existence
  // AND. (This is the behaviour Theorem 2.1's reservation removes.)
  const auto mapping = MakeSequentialMapping(4);  // Value 0 -> code 0.
  ASSERT_TRUE(mapping.ok());
  const Cover cover = ReduceRetrievalFunction({0b00, 0b01}, {}, 2);
  EXPECT_TRUE(CoverCovers(cover, 0));
}

TEST(PrimeChainTheoryTest, PrimeChainsAreExactlySubcubes) {
  // Supporting lemma for Theorem 2.2: a set of 2^p codewords with
  // pairwise distance <= p admitting a chain is precisely an affine
  // subcube. Verify over all 4-subsets of a 4-bit space (exhaustive).
  std::vector<uint64_t> codes;
  for (uint64_t a = 0; a < 16; ++a) {
    for (uint64_t b = a + 1; b < 16; ++b) {
      for (uint64_t c = b + 1; c < 16; ++c) {
        for (uint64_t d = c + 1; d < 16; ++d) {
          codes = {a, b, c, d};
          const bool prime = FindPrimeChain(codes).has_value();
          // Subcube test: the XOR-differences span a <= 2-dimensional
          // space and all codes share the complement mask.
          const uint64_t base = a;
          uint64_t varying = 0;
          for (uint64_t x : codes) {
            varying |= x ^ base;
          }
          bool subcube = PopCount(varying) == 2;
          if (subcube) {
            // All four combinations of the two varying bits must occur.
            std::vector<uint64_t> expected;
            const uint64_t bit1 = varying & (varying - 1);
            const uint64_t bit0 = varying ^ bit1;
            for (int i = 0; i < 4; ++i) {
              expected.push_back((base & ~varying) | (i & 1 ? bit0 : 0) |
                                 (i & 2 ? bit1 : 0));
            }
            std::sort(expected.begin(), expected.end());
            subcube = expected == codes;
          }
          ASSERT_EQ(prime, subcube)
              << a << "," << b << "," << c << "," << d;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ebi
