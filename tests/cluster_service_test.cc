#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/auditor.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "serve/cluster/cluster_service.h"
#include "serve/cluster/partitioner.h"
#include "serve/cluster/shard_router.h"
#include "serve/query_service.h"
#include "storage/table.h"

namespace ebi {
namespace serve {
namespace cluster {
namespace {

constexpr int64_t kKeyDomain = 101;

/// Two-column fact table: key k = (i*7) % 101 (spread over the domain,
/// with a few NULL keys sprinkled in), value v = i % 5.
std::unique_ptr<Table> FactTable(size_t rows) {
  auto table = std::make_unique<Table>("facts");
  EXPECT_TRUE(table->AddColumn("k", Column::Type::kInt64).ok());
  EXPECT_TRUE(table->AddColumn("v", Column::Type::kInt64).ok());
  for (size_t i = 0; i < rows; ++i) {
    Value key = (i % 17 == 0)
                    ? Value::Null()
                    : Value::Int(static_cast<int64_t>(i * 7 % kKeyDomain));
    EXPECT_TRUE(
        table->AppendRow({key, Value::Int(static_cast<int64_t>(i % 5))})
            .ok());
  }
  return table;
}

std::vector<IndexSpec> BothColumns() {
  return {{"k", IndexKind::kEncodedBitmap}, {"v", IndexKind::kEncodedBitmap}};
}

/// Evenly spaced split points for a range partitioner over [0, 101).
std::vector<int64_t> EvenSplits(size_t shards) {
  std::vector<int64_t> splits;
  for (size_t s = 1; s < shards; ++s) {
    splits.push_back(static_cast<int64_t>(s * kKeyDomain / shards));
  }
  return splits;
}

/// The predicate mix the bit-identity grid replays: every kind the
/// router prunes on plus non-key conjuncts and negations.
std::vector<std::vector<Predicate>> QueryMix() {
  return {
      {Predicate::Eq("k", Value::Int(42))},
      {Predicate::Between("k", 20, 60)},
      {Predicate::Eq("v", Value::Int(2))},
      {Predicate::Between("k", 30, 80), Predicate::Eq("v", Value::Int(3))},
      {Predicate::In("k", {Value::Int(7), Value::Int(49), Value::Int(98)})},
      {Predicate::IsNull("k")},
      {Predicate::NotEq("v", Value::Int(0))},
      {Predicate::Between("k", 90, 10)},  // Empty range: zero fan-out.
      {Predicate::Eq("k", Value::Int(42)), Predicate::Eq("k", Value::Int(7))},
  };
}

TEST(PartitionerTest, HashCoversAllShardsAndIsStable) {
  HashPartitioner partitioner(4);
  std::vector<size_t> hits(4, 0);
  for (int64_t key = 0; key < 1000; ++key) {
    size_t shard = partitioner.ShardOf(key);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(shard, partitioner.ShardOf(key));  // Deterministic.
    ++hits[shard];
  }
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_GT(hits[s], 0u) << "shard " << s << " never hit";
  }
  // Hash cannot prune ranges: every shard may own part of any span.
  EXPECT_EQ(partitioner.ShardsForRange(10, 20).size(), 4u);
}

TEST(PartitionerTest, RangeOwnsSplitPointBoundariesExactly) {
  auto created = RangePartitioner::Create(3, {10, 20});
  ASSERT_TRUE(created.ok());
  const RangePartitioner& partitioner = *created.value();
  EXPECT_EQ(partitioner.ShardOf(-5), 0u);
  EXPECT_EQ(partitioner.ShardOf(10), 0u);   // Inclusive upper bound.
  EXPECT_EQ(partitioner.ShardOf(11), 1u);
  EXPECT_EQ(partitioner.ShardOf(20), 1u);
  EXPECT_EQ(partitioner.ShardOf(21), 2u);
  EXPECT_EQ(partitioner.ShardOf(1000), 2u);

  EXPECT_EQ(partitioner.ShardsForRange(0, 5),
            (std::vector<size_t>{0}));
  EXPECT_EQ(partitioner.ShardsForRange(5, 15),
            (std::vector<size_t>{0, 1}));
  EXPECT_EQ(partitioner.ShardsForRange(11, 1000),
            (std::vector<size_t>{1, 2}));
  EXPECT_TRUE(partitioner.ShardsForRange(8, 3).empty());
}

TEST(PartitionerTest, RangeCreateRejectsBadSplits) {
  EXPECT_FALSE(RangePartitioner::Create(3, {10}).ok());       // Too few.
  EXPECT_FALSE(RangePartitioner::Create(3, {20, 10}).ok());   // Unsorted.
  EXPECT_FALSE(RangePartitioner::Create(3, {10, 10}).ok());   // Duplicate.
  EXPECT_FALSE(RangePartitioner::Create(0, {}).ok());         // No shards.
  EXPECT_TRUE(RangePartitioner::Create(1, {}).ok());
}

TEST(ShardRouterTest, OwningShardsPrunesByKeyPredicates) {
  auto created = MakePartitioner(PartitionKind::kRange, 3, {10, 20});
  ASSERT_TRUE(created.ok());
  ShardRouter router(std::move(created).value(), "k");

  EXPECT_EQ(router.OwningShards({Predicate::Eq("k", Value::Int(15))}),
            (std::vector<size_t>{1}));
  EXPECT_EQ(router.OwningShards(
                {Predicate::In("k", {Value::Int(5), Value::Int(25)})}),
            (std::vector<size_t>{0, 2}));
  EXPECT_EQ(router.OwningShards({Predicate::Between("k", 12, 30)}),
            (std::vector<size_t>{1, 2}));
  // NULL keys pin to shard 0.
  EXPECT_EQ(router.OwningShards({Predicate::IsNull("k")}),
            (std::vector<size_t>{0}));
  // Negations and non-key predicates cannot prune.
  EXPECT_EQ(
      router.OwningShards({Predicate::NotEq("k", Value::Int(15))}).size(),
      3u);
  EXPECT_EQ(router.OwningShards({Predicate::Eq("v", Value::Int(1))}).size(),
            3u);
  // Conjuncts intersect: k = 15 AND k in {5, 25} owns no shard.
  EXPECT_TRUE(router
                  .OwningShards({Predicate::Eq("k", Value::Int(15)),
                                 Predicate::In("k", {Value::Int(5),
                                                     Value::Int(25)})})
                  .empty());
}

TEST(ShardRouterTest, RouteAppendTilesGlobalIdsExactly) {
  auto created = MakePartitioner(PartitionKind::kHash, 4);
  ASSERT_TRUE(created.ok());
  ShardRouter router(std::move(created).value(), "k");

  std::vector<std::vector<Value>> rows;
  for (int64_t i = 0; i < 64; ++i) {
    rows.push_back({i % 13 == 0 ? Value::Null() : Value::Int(i * 3),
                    Value::Int(i)});
  }
  ASSERT_TRUE(router.RouteAppend(rows, 0).ok());
  ASSERT_TRUE(router.RouteAppend(rows, 0).ok());  // Second batch extends.

  auto placement = router.placement();
  EXPECT_EQ(placement->total_rows, 128u);
  AuditReport report = InvariantAuditor::AuditClusterPartition(
      placement->shard_rows, placement->total_rows);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(AuditorTest, ClusterPartitionAuditFlagsBrokenTilings) {
  // Clean tiling: rows 0..5 split across two shards.
  EXPECT_TRUE(InvariantAuditor::AuditClusterPartition(
                  {{0, 2, 4}, {1, 3, 5}}, 6)
                  .clean());
  // Row 3 owned twice.
  AuditReport dup =
      InvariantAuditor::AuditClusterPartition({{0, 2, 3}, {1, 3}}, 4);
  EXPECT_TRUE(dup.Has(ViolationKind::kClusterPartitionMismatch));
  // Row 2 owned by nobody.
  AuditReport gap =
      InvariantAuditor::AuditClusterPartition({{0}, {1, 3}}, 4);
  EXPECT_TRUE(gap.Has(ViolationKind::kClusterPartitionMismatch));
  // Out of append order within a shard.
  AuditReport order =
      InvariantAuditor::AuditClusterPartition({{2, 0}, {1, 3}}, 4);
  EXPECT_TRUE(order.Has(ViolationKind::kClusterPartitionMismatch));
  // Claim beyond total_rows.
  AuditReport range =
      InvariantAuditor::AuditClusterPartition({{0, 9}, {1}}, 3);
  EXPECT_TRUE(range.Has(ViolationKind::kClusterPartitionMismatch));
}

/// The tentpole acceptance bar: for every partitioner × shard count ×
/// worker count, the merged scatter-gather bitmap is bit-identical to a
/// single QueryService holding all rows — before and after appends.
TEST(ClusterServiceTest, ScatterGatherIsBitIdenticalToSingleService) {
  constexpr size_t kRows = 400;
  const std::vector<std::vector<Value>> extra_rows = {
      {Value::Int(42), Value::Int(2)},
      {Value::Null(), Value::Int(3)},
      {Value::Int(100), Value::Int(0)},
      {Value::Int(13), Value::Int(4)},
  };

  for (PartitionKind kind : {PartitionKind::kHash, PartitionKind::kRange}) {
    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
      for (size_t workers : {size_t{1}, size_t{2}}) {
        SCOPED_TRACE("kind=" + std::string(kind == PartitionKind::kHash
                                               ? "hash"
                                               : "range") +
                     " shards=" + std::to_string(shards) +
                     " workers=" + std::to_string(workers));

        ServeOptions single_options;
        single_options.worker_threads = workers;
        QueryService single(single_options);
        ASSERT_TRUE(single.Start(FactTable(kRows), BothColumns()).ok());

        ClusterOptions options;
        options.shards = shards;
        options.partition = kind;
        if (kind == PartitionKind::kRange) {
          options.split_points = EvenSplits(shards);
        }
        options.key_column = "k";
        options.shard_options.worker_threads = workers;
        ClusterQueryService clustered(options);
        ASSERT_TRUE(clustered.Start(FactTable(kRows), BothColumns()).ok());

        auto compare_all = [&]() {
          for (const auto& predicates : QueryMix()) {
            auto expected = single.Select(predicates);
            auto actual = clustered.Select(predicates);
            ASSERT_TRUE(expected.ok()) << expected.status().ToString();
            ASSERT_TRUE(actual.ok()) << actual.status().ToString();
            EXPECT_FALSE(actual->partial);
            EXPECT_EQ(actual->selection.rows, expected->selection.rows);
            EXPECT_EQ(actual->selection.count, expected->selection.count);
            EXPECT_EQ(actual->coverage.Count(), actual->total_rows);
          }
        };
        compare_all();

        // Appends route through the cluster and land on the single
        // service in the same order; results must stay aligned.
        ASSERT_TRUE(single.Append(extra_rows).ok());
        ASSERT_TRUE(clustered.Append(extra_rows).ok());
        compare_all();

        // The placement still tiles [0, rows) exactly.
        auto placement = clustered.router().placement();
        EXPECT_EQ(placement->total_rows, kRows + extra_rows.size());
        AuditReport report = InvariantAuditor::AuditClusterPartition(
            placement->shard_rows, placement->total_rows);
        EXPECT_TRUE(report.clean()) << report.ToString();

        EXPECT_TRUE(clustered.Shutdown().ok());
        EXPECT_TRUE(single.Shutdown().ok());
      }
    }
  }
}

TEST(ClusterServiceTest, KeyPredicatesPruneFanout) {
  ClusterOptions options;
  options.shards = 4;
  options.partition = PartitionKind::kRange;
  options.split_points = EvenSplits(4);
  options.key_column = "k";
  ClusterQueryService clustered(options);
  ASSERT_TRUE(clustered.Start(FactTable(200), BothColumns()).ok());

  auto narrow = clustered.Select({Predicate::Eq("k", Value::Int(5))});
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(narrow->visited_shards, (std::vector<size_t>{0}));

  auto wide = clustered.Select({Predicate::Eq("v", Value::Int(1))});
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->visited_shards.size(), 4u);

  auto empty = clustered.Select({Predicate::Between("k", 50, 10)});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->visited_shards.empty());
  EXPECT_EQ(empty->selection.count, 0u);
  EXPECT_FALSE(empty->partial);
}

TEST(ClusterServiceTest, ExpiredDeadlineRejectedBeforeAnyShardContact) {
  ClusterOptions options;
  options.shards = 2;
  options.key_column = "k";
  ClusterQueryService clustered(options);
  ASSERT_TRUE(clustered.Start(FactTable(50), BothColumns()).ok());

  RequestOptions expired;
  expired.deadline_ms = -1.0;
  auto result = clustered.Select({Predicate::Eq("v", Value::Int(1))},
                                 expired);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

/// With a sub-microsecond budget every shard rejects the request as
/// expired at admission; kFail surfaces that, kPartial converts it into
/// an empty answer whose coverage mask vouches for nothing.
TEST(ClusterServiceTest, PartialPolicyGovernsShardDeadlineMisses) {
  for (PartialResultPolicy policy :
       {PartialResultPolicy::kFail, PartialResultPolicy::kPartial}) {
    ClusterOptions options;
    options.shards = 2;
    options.key_column = "k";
    options.partial_policy = policy;
    ClusterQueryService clustered(options);
    ASSERT_TRUE(clustered.Start(FactTable(50), BothColumns()).ok());

    RequestOptions tight;
    tight.deadline_ms = 1e-4;  // Positive at admission, gone at scatter.
    auto result =
        clustered.Select({Predicate::Eq("v", Value::Int(1))}, tight);
    if (policy == PartialResultPolicy::kFail) {
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
    } else {
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(result->partial);
      EXPECT_EQ(result->missing_shards.size(), 2u);
      EXPECT_EQ(result->selection.count, 0u);
      EXPECT_EQ(result->coverage.Count(), 0u);  // Vouches for no row.
    }
  }
}

/// queue_depth 0 makes every primary shed at admission; with hedging on
/// and instant hedge delay, the replicas answer every query. The merged
/// result must equal the replica-backed truth, and every visited shard
/// must record a hedge win.
TEST(ClusterServiceTest, HedgeToReplicaRescuesShedPrimaries) {
  obs::Counter* issued = obs::MetricsRegistry::Global().GetCounter(
      obs::kMetricClusterHedgeIssued);
  obs::Counter* won = obs::MetricsRegistry::Global().GetCounter(
      obs::kMetricClusterHedgeWon);
  const uint64_t issued_before = issued->Value();
  const uint64_t won_before = won->Value();

  ClusterOptions options;
  options.shards = 2;
  options.key_column = "k";
  options.replicate = true;
  options.hedge = true;
  options.hedge_min_delay_ms = 0.0;
  options.hedge_max_delay_ms = 0.0;
  options.shard_options.queue_depth = 0;  // Primary sheds everything.
  ClusterQueryService clustered(options);
  ASSERT_TRUE(clustered.Start(FactTable(200), BothColumns()).ok());

  ServeOptions single_options;
  QueryService single(single_options);
  ASSERT_TRUE(single.Start(FactTable(200), BothColumns()).ok());

  auto expected = single.Select({Predicate::Between("k", 10, 90)});
  auto actual = clustered.Select({Predicate::Between("k", 10, 90)});
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_FALSE(actual->partial);
  EXPECT_EQ(actual->selection.rows, expected->selection.rows);
  for (const ShardOutcome& outcome : actual->outcomes) {
    EXPECT_TRUE(outcome.hedged);
    EXPECT_TRUE(outcome.hedge_won);
    EXPECT_TRUE(outcome.status.ok());
  }
  EXPECT_GE(issued->Value() - issued_before, actual->outcomes.size());
  EXPECT_GE(won->Value() - won_before, actual->outcomes.size());
}

TEST(ClusterServiceTest, StartValidatesConfiguration) {
  {
    // Hedging without replicas is structurally impossible.
    ClusterOptions options;
    options.shards = 2;
    options.key_column = "k";
    options.hedge = true;
    ClusterQueryService clustered(options);
    EXPECT_EQ(clustered.Start(FactTable(10), BothColumns()).code(),
              StatusCode::kInvalidArgument);
  }
  {
    // The partition key must exist.
    ClusterOptions options;
    options.shards = 2;
    options.key_column = "missing";
    ClusterQueryService clustered(options);
    EXPECT_EQ(clustered.Start(FactTable(10), BothColumns()).code(),
              StatusCode::kNotFound);
  }
  {
    // Range partitioning needs exactly shards-1 split points.
    ClusterOptions options;
    options.shards = 3;
    options.partition = PartitionKind::kRange;
    options.split_points = {10};
    options.key_column = "k";
    ClusterQueryService clustered(options);
    EXPECT_EQ(clustered.Start(FactTable(10), BothColumns()).code(),
              StatusCode::kInvalidArgument);
  }
  {
    // Deleted rows have no owning shard.
    ClusterOptions options;
    options.shards = 2;
    options.key_column = "k";
    auto table = FactTable(10);
    ASSERT_TRUE(table->DeleteRow(3).ok());
    ClusterQueryService clustered(options);
    EXPECT_EQ(clustered.Start(std::move(table), BothColumns()).code(),
              StatusCode::kFailedPrecondition);
  }
}

TEST(ClusterServiceTest, AppendValidatesBeforeRouting) {
  ClusterOptions options;
  options.shards = 2;
  options.key_column = "k";
  ClusterQueryService clustered(options);
  ASSERT_TRUE(clustered.Start(FactTable(20), BothColumns()).ok());

  // Wrong arity and wrong type both bounce before any id is assigned.
  EXPECT_EQ(clustered.Append({{Value::Int(1)}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(clustered
                .Append({{Value::Str("oops"), Value::Int(1)}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  auto placement = clustered.router().placement();
  EXPECT_EQ(placement->total_rows, 20u);  // Nothing routed.

  EXPECT_TRUE(clustered.Append({{Value::Int(7), Value::Int(1)}}).ok());
  EXPECT_EQ(clustered.router().placement()->total_rows, 21u);
}

}  // namespace
}  // namespace cluster
}  // namespace serve
}  // namespace ebi
